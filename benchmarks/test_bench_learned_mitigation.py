"""Sec. V extension — learning-based cycle-noise mitigation.

The paper: "cycle-noise mitigation system can be optimized by
learning-based approaches to improve its prediction accuracy of execution
time."  This bench compares the on-line learned budget policy against the
four static policies of Fig. 6: inside the wall window it should match
the conservative policies' deadline hit rate at an energy cost close to
the aggressive ones — a Pareto improvement.
"""

import numpy as np
import pytest

from repro.core import (
    ALL_POLICIES,
    AdaptiveBudgetPolicy,
    CheckpointSystem,
    adpcm_like_workload,
    simulate_run,
)

ERROR_PROBS = (1e-7, 1e-6, 3e-6, 1e-5)
N_RUNS = 80


def _evaluate(policy_factory, p, workload, stateful=False):
    cp = CheckpointSystem(p)
    rng = np.random.default_rng(0)
    policy = policy_factory()
    hits = 0
    energy = []
    for _ in range(N_RUNS):
        run = simulate_run(workload, cp, policy, rng)
        hits += int(run.deadline_met)
        energy.append(run.energy)
    return hits / N_RUNS, float(np.mean(energy))


@pytest.fixture(scope="module")
def workload():
    return adpcm_like_workload(n_segments=12, seed=0)


@pytest.fixture(scope="module")
def table(workload):
    rows = {}
    for p in ERROR_PROBS:
        row = {}
        for policy in ALL_POLICIES:
            row[policy.name] = _evaluate(lambda pol=policy: pol, p, workload)
        row["Learned"] = _evaluate(
            lambda: AdaptiveBudgetPolicy(quantile=0.98), p, workload, stateful=True
        )
        rows[p] = row
    return rows


def test_bench_learned_policy_pareto(benchmark, workload, table, report):
    benchmark.pedantic(
        _evaluate,
        args=(lambda: AdaptiveBudgetPolicy(quantile=0.98), 1e-6, workload),
        rounds=1,
        iterations=1,
    )

    names = [p.name for p in ALL_POLICIES] + ["Learned"]
    hit_rows = []
    energy_rows = []
    for p, row in table.items():
        hit_rows.append((f"{p:.0e}", *(f"{row[n][0]:.2f}" for n in names)))
        energy_rows.append((f"{p:.0e}", *(f"{row[n][1]:.2e}" for n in names)))
    report("Learned mitigation: deadline hit rate", ("p", *names), hit_rows)
    report("Learned mitigation: mean energy", ("p", *names), energy_rows)

    # Inside the window: learned matches WCET's hit rate, cheaper energy.
    for p in (1e-7, 1e-6, 3e-6):
        row = table[p]
        assert row["Learned"][0] >= row["WCET"][0] - 0.05, p
        assert row["Learned"][0] > row["DS"][0] - 0.02, p
    assert table[1e-7]["Learned"][1] < 0.5 * table[1e-7]["WCET"][1]
    # Past the wall nothing saves deadlines — including the learner.
    assert table[1e-5]["Learned"][0] < 0.3


def test_bench_learned_policy_estimator_accuracy(benchmark, workload, report):
    """How fast the on-line p-estimate converges at each error level."""
    rows = []
    for p in ERROR_PROBS:
        cp = CheckpointSystem(p)
        policy = AdaptiveBudgetPolicy()
        rng = np.random.default_rng(1)
        for _ in range(30):
            simulate_run(workload, cp, policy, rng)
        rows.append((f"{p:.0e}", f"{policy.p_hat:.2e}",
                     f"{policy.p_hat / p:.2f}x"))
    benchmark.pedantic(
        simulate_run,
        args=(workload, CheckpointSystem(1e-6), AdaptiveBudgetPolicy(),
              np.random.default_rng(0)),
        rounds=3,
        iterations=1,
    )
    report(
        "On-line error-probability estimation after 30 runs",
        ("true p", "estimated p", "ratio"),
        rows,
    )
    # Within the wall window the estimate lands within ~3x of truth.
    estimates = {float(r[0]): float(r[1]) for r in rows}
    for p in (1e-6, 3e-6, 1e-5):
        assert 0.3 < estimates[p] / p < 3.5
