"""Perf-smoke harness for the Sec. V kernels and the Sec. III FI engine.

Three bench groups, each with its own trajectory record:

* **sweep** (``BENCH_sweep.json``) — times the Fig. 5/Fig. 6 Monte
  Carlo sweep and the wall-ablation hit-rate grid on both the batched
  numpy kernels and the scalar reference path (same seeds, ``jobs=1``,
  no cache), verifying the scalar-vs-batched equivalence contract.
* **fi** (``BENCH_fi.json``) — times a fault-injection campaign on the
  trial-vectorized (batched), checkpoint-and-replay (forked), and
  full-rerun (reference) engines, verifying the records are
  bit-identical across all three (see ``docs/fi-engine.md``).
* **obs** (``BENCH_obs.json``) — times the same campaign with telemetry
  recording off vs on (spans, metrics, and the flight-recorder event
  stream); ``--max-obs-overhead 0.05`` gates the observability layer's
  <5% overhead budget in CI (see ``docs/observability.md``).
* **dist** (``BENCH_dist.json``) — times a latency-bound campaign
  (:class:`repro.runtime.loadgen.LatencyWorker`) over the ``fqueue``,
  ``tcp``, and ``pool`` transports at increasing worker counts,
  verifying every run bit-identical to the inline reference, plus the
  scheduler's own per-unit overhead on the inline fast path.
  ``--min-dist-speedup`` gates the 1→4-worker fqueue *and* tcp
  throughput gains and ``--max-sched-overhead-us`` the bookkeeping
  budget; this group is *not* gated by ``--min-speedup`` (the fabric
  pipelines waiting, it does not vectorize math — see
  ``docs/distributed.md``).
* **steer** (``BENCH_steer.json``) — runs the surrogate-steered and
  uniform sequential campaigns to the same AVF confidence half-width
  and records the trial-count ratio as the group's ``speedup``
  (``docs/steering.md``).  ``--min-trials-saved`` gates the ratio in
  CI; like the dist group it bypasses ``--min-speedup`` (the gain is
  statistical — fewer trials — not vectorization).

Each run appends one entry — machine info, wall-clock timings,
speedups — to the group's record.  See ``docs/performance.md`` for how
to read the records and why regression checks compare *speedups*
(within-run ratios) rather than raw wall-clock across machines.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py                 # print only
    PYTHONPATH=src python benchmarks/perf_smoke.py --output BENCH_sweep.json
    PYTHONPATH=src python benchmarks/perf_smoke.py \\
        --check BENCH_sweep.json --min-speedup 5 --output out/BENCH_sweep.json \\
        --fi-check BENCH_fi.json --fi-output out/BENCH_fi.json

Exit status is non-zero when an equivalence contract fails, when any
bench's speedup is below ``--min-speedup``, or when ``--check`` /
``--fi-check`` finds a more-than-``--regression-factor`` speedup drop
against the baseline record's newest entry.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

from repro.core import (
    CheckpointSystem,
    MonteCarloStudy,
    WCET,
    adpcm_like_workload,
    simulate_run,
    simulate_runs_batch,
)
from repro.core.montecarlo import DEFAULT_ERROR_PROBS

SCHEMA = 1
WALL_PROBS = (1e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4)
WALL_SPEEDS = (2.0, 4.0, 8.0)
HIT_RATE_TOLERANCE = 0.15
# FI bench workload: a seed program long enough that per-trial setup is
# noise, with a 1.5x hang budget — hang trials run to the cycle budget
# on *both* engines, so a loose budget only measures the hang rate, not
# the engine (docs/performance.md, "The fault-injection engine").
FI_HANG_BUDGET_FACTOR = 1.5
# Scale-determining result keys: regression checks skip a bench when the
# baseline ran at a different scale (speedups are scale-dependent).
SCALE_KEYS = ("n_runs", "n_trials", "n_units")
# Dist-fabric bench shape: worker counts to sweep, the simulated unit
# latency (docs/distributed.md: latency-bound units pipeline across
# workers even on one core, which is what the fabric — not the CPU —
# provides), and the unit count of the scheduler-overhead measurement.
DIST_WORKER_COUNTS = (1, 2, 4)
DIST_UNIT_LATENCY_S = 0.02
SCHED_OVERHEAD_UNITS = 512
# Steered-campaign bench shape: both the steered and the uniform
# sequential campaign run to this CI half-width at this fixed seed (the
# run is deterministic, so the recorded ratio is too); the budget is
# the safety ceiling neither run should hit.
STEER_TARGET_CI = 0.02
STEER_SEED = 2


def _timed(fn, rounds):
    """Median wall-clock of ``rounds`` calls, plus the last return value."""
    times = []
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times)), result


def _study(n_runs, kernel):
    return MonteCarloStudy(
        adpcm_like_workload(n_segments=12, seed=0),
        n_runs=n_runs,
        seed=0,
        kernel=kernel,
    )


def bench_fig5_fig6_sweep(n_runs, rounds):
    """The headline bench: the full default-grid Fig. 5 + Fig. 6 sweep."""
    probs = list(DEFAULT_ERROR_PROBS)
    batched = _study(n_runs, "auto")
    scalar = _study(n_runs, "scalar")
    batched_s, batched_pts = _timed(
        lambda: batched.sweep(probs, jobs=1, cache=None), rounds
    )
    scalar_s, scalar_pts = _timed(
        lambda: scalar.sweep(probs, jobs=1, cache=None), rounds
    )

    # Equivalence contract (docs/performance.md): Fig. 5 statistic is
    # draw-for-draw identical, hit rates distribution-equivalent,
    # analytic curves bit-identical.
    deltas = []
    for pb, ps in zip(batched_pts, scalar_pts):
        if pb.mean_rollbacks_per_segment != ps.mean_rollbacks_per_segment:
            raise AssertionError(
                f"fig5 statistic diverged at p={pb.error_probability:.0e}"
            )
        deltas.extend(
            abs(pb.hit_rate[name] - ps.hit_rate[name]) for name in pb.hit_rate
        )
    if max(deltas) > HIT_RATE_TOLERANCE:
        raise AssertionError(
            f"hit-rate delta {max(deltas):.3f} exceeds {HIT_RATE_TOLERANCE}"
        )
    if not np.array_equal(
        batched.analytic_rollbacks(probs), scalar.analytic_rollbacks(probs)
    ):
        raise AssertionError("analytic curves are kernel-dependent")

    return {
        "batched_s": batched_s,
        "scalar_s": scalar_s,
        "speedup": scalar_s / batched_s,
        "levels": len(probs),
        "n_runs": n_runs,
        "max_hit_rate_delta": max(deltas),
    }


def _wall_grid_batched(workload, n_runs):
    rates = []
    for max_speed in WALL_SPEEDS:
        for p in WALL_PROBS:
            batch = simulate_runs_batch(
                workload,
                CheckpointSystem(p),
                WCET,
                np.random.default_rng(0),
                n_runs,
                max_speed=max_speed,
            )
            rates.append(float(np.mean(batch.deadline_met)))
    return rates


def _wall_grid_scalar(workload, n_runs):
    rates = []
    for max_speed in WALL_SPEEDS:
        for p in WALL_PROBS:
            cp = CheckpointSystem(p)
            rng = np.random.default_rng(0)
            hits = sum(
                simulate_run(
                    workload, cp, WCET, rng, max_speed=max_speed
                ).deadline_met
                for _ in range(n_runs)
            )
            rates.append(hits / n_runs)
    return rates


def bench_wall_ablation(n_runs, rounds):
    """The wall-ablation grid: WCET hit rate over (max speed, p)."""
    workload = adpcm_like_workload(n_segments=12, seed=0)
    batched_s, batched_rates = _timed(
        lambda: _wall_grid_batched(workload, n_runs), rounds
    )
    scalar_s, scalar_rates = _timed(
        lambda: _wall_grid_scalar(workload, n_runs), rounds
    )
    delta = max(abs(a - b) for a, b in zip(batched_rates, scalar_rates))
    if delta > HIT_RATE_TOLERANCE:
        raise AssertionError(
            f"wall grid hit-rate delta {delta:.3f} exceeds {HIT_RATE_TOLERANCE}"
        )
    return {
        "batched_s": batched_s,
        "scalar_s": scalar_s,
        "speedup": scalar_s / batched_s,
        "grid_points": len(batched_rates),
        "n_runs": n_runs,
        "max_hit_rate_delta": delta,
    }


def bench_fi_campaign(n_trials, rounds):
    """Forked vs reference trial engine on one seed-program campaign."""
    from repro.arch import FaultInjector
    from repro.arch import programs as P

    program = P.matmul(5)
    forked = FaultInjector(
        program, engine="forked", max_cycles_factor=FI_HANG_BUDGET_FACTOR
    )
    reference = FaultInjector(
        program, engine="reference", max_cycles_factor=FI_HANG_BUDGET_FACTOR
    )
    forked_s, forked_res = _timed(
        lambda: forked.run_campaign(n_trials=n_trials, seed=0), rounds
    )
    reference_s, reference_res = _timed(
        lambda: reference.run_campaign(n_trials=n_trials, seed=0), rounds
    )
    # Equivalence contract: bit-identical records, trial for trial.
    if forked_res.records != reference_res.records:
        raise AssertionError("forked engine records diverged from reference")
    return {
        "forked_s": forked_s,
        "reference_s": reference_s,
        "speedup": reference_s / forked_s,
        "n_trials": n_trials,
        "program": program.name,
        "golden_cycles": forked.golden_cycles,
        "hang_budget_factor": FI_HANG_BUDGET_FACTOR,
    }


def bench_fi_campaign_batched(n_trials, rounds):
    """Batched (trial-vectorized) engine vs both oracle engines."""
    from repro.arch import FaultInjector
    from repro.arch import programs as P

    program = P.matmul(5)

    def make(engine):
        return FaultInjector(
            program, engine=engine, max_cycles_factor=FI_HANG_BUDGET_FACTOR
        )

    batched, forked, reference = (
        make("batched"), make("forked"), make("reference")
    )
    batched_s, batched_res = _timed(
        lambda: batched.run_campaign(n_trials=n_trials, seed=0), rounds
    )
    forked_s, forked_res = _timed(
        lambda: forked.run_campaign(n_trials=n_trials, seed=0), rounds
    )
    reference_s, reference_res = _timed(
        lambda: reference.run_campaign(n_trials=n_trials, seed=0), rounds
    )
    # Equivalence contract: bit-identical records against both oracles.
    if batched_res.records != reference_res.records:
        raise AssertionError("batched engine records diverged from reference")
    if batched_res.records != forked_res.records:
        raise AssertionError("batched engine records diverged from forked")
    return {
        "batched_s": batched_s,
        "forked_s": forked_s,
        "reference_s": reference_s,
        "speedup": reference_s / batched_s,
        "vs_forked": forked_s / batched_s,
        "n_trials": n_trials,
        "program": program.name,
        "golden_cycles": batched.golden_cycles,
        "hang_budget_factor": FI_HANG_BUDGET_FACTOR,
    }


def bench_obs_overhead(n_trials, rounds):
    """Flight-recorder cost: the same campaign with recording off vs on.

    Each round times one batched-engine campaign bare and one under a
    :class:`repro.obs.RunRecorder` (spans + metrics + the per-trial
    ``fi.trials`` event stream, written to a throwaway directory), and
    keeps the per-round on/off ratio — pairing the measurements cancels
    machine drift that would swamp a few-percent effect.  The recorded
    overhead is the median ratio minus one; CI gates it with
    ``--max-obs-overhead`` (the observability layer's "off by default,
    cheap when on" contract, docs/observability.md).
    """
    import shutil
    import tempfile

    from repro import obs
    from repro.arch import FaultInjector
    from repro.arch import programs as P
    from repro.obs import RunRecorder

    program = P.matmul(5)
    injector = FaultInjector(
        program, engine="batched", max_cycles_factor=FI_HANG_BUDGET_FACTOR
    )
    injector.run_campaign(n_trials=n_trials, seed=0)  # warm the engine
    tmp = tempfile.mkdtemp(prefix="bench-obs-")
    ratios, off_times, on_times = [], [], []
    try:
        for _ in range(rounds):
            obs.disable()
            start = time.perf_counter()
            off_res = injector.run_campaign(n_trials=n_trials, seed=0)
            off_s = time.perf_counter() - start
            with RunRecorder(tmp, name="obs-overhead") as recorder:
                start = time.perf_counter()
                on_res = injector.run_campaign(n_trials=n_trials, seed=0)
                on_s = time.perf_counter() - start
            if off_res.records != on_res.records:
                raise AssertionError("recording changed campaign records")
            events = recorder.events_path.read_text().splitlines()
            ratios.append(on_s / off_s)
            off_times.append(off_s)
            on_times.append(on_s)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "off_s": float(np.median(off_times)),
        "on_s": float(np.median(on_times)),
        "overhead": float(np.median(ratios)) - 1.0,
        "events_per_run": len(events),
        "n_trials": n_trials,
        "program": program.name,
    }


def bench_dist_scaling(n_units, rounds):
    """Fabric scaling: fqueue/tcp/pool throughput vs workers, one core.

    Each configuration runs the same latency-bound campaign
    (one-trial units, each sleeping ``DIST_UNIT_LATENCY_S``) after a
    warm-up run that spawns its workers, and every measured run is
    checked bit-identical against the inline reference for its seed.
    The recorded ``speedup`` is the fqueue throughput gain from one
    worker to ``DIST_WORKER_COUNTS[-1]`` — the fabric's pipelining
    factor, deliberately independent of CPU count — and
    ``tcp_speedup`` is the same factor over the socket transport,
    measured cache-less so result values really cross the wire.
    """
    import shutil
    import tempfile

    from repro.runtime import CampaignRunner, FaultPolicy, ResultCache
    from repro.runtime.loadgen import LatencyWorker
    from repro.runtime.transports import (
        FileQueueTransport,
        PoolTransport,
        TcpTransport,
    )

    worker = LatencyWorker(DIST_UNIT_LATENCY_S)
    # One unit per task keeps the fabric busy with fine-grained claims;
    # tight polls keep the scheduler tick out of the measurement.
    policy = FaultPolicy(max_units_per_task=1, poll_interval_s=0.005,
                         backoff_base_s=0.001)
    seeds = list(range(1, rounds + 1))

    def runner(transport=None, cache=None, jobs=1):
        return CampaignRunner(jobs=jobs, chunk_size=1, policy=policy,
                              cache=cache, transport=transport)

    references, inline_times = {}, []
    for seed in seeds:
        start = time.perf_counter()
        references[seed] = runner().run_trials(worker, n_units, seed=seed)
        inline_times.append(time.perf_counter() - start)
    inline_s = float(np.median(inline_times))

    def timed_config(label, transport, cache, jobs=1):
        # Warm-up on its own seed spawns workers/pools so the measured
        # rounds see a steady-state fabric, not python start-up.
        runner(transport, cache, jobs).run_trials(worker, n_units, seed=0)
        times = []
        for seed in seeds:
            start = time.perf_counter()
            out = runner(transport, cache, jobs).run_trials(
                worker, n_units, seed=seed
            )
            times.append(time.perf_counter() - start)
            if out != references[seed]:
                raise AssertionError(f"{label} diverged from inline")
        return float(np.median(times))

    tmp = pathlib.Path(tempfile.mkdtemp(prefix="bench-dist-"))
    result = {
        "inline_tput": n_units / inline_s,
        "n_units": n_units,
        "unit_latency_s": DIST_UNIT_LATENCY_S,
        "worker_counts": list(DIST_WORKER_COUNTS),
    }
    try:
        for w in DIST_WORKER_COUNTS:
            transport = FileQueueTransport(
                tmp / f"fqueue-{w}", workers=w, poll_s=0.005,
                worker_poll_s=0.005,
            )
            try:
                elapsed = timed_config(
                    f"fqueue x{w}", transport, ResultCache(tmp / f"cache-{w}")
                )
            finally:
                transport.shutdown()
            result[f"fqueue_{w}_tput"] = n_units / elapsed
        for w in (1, DIST_WORKER_COUNTS[-1]):
            # cache=None: results stream back over the socket, so the
            # row times the wire path, not the shared-filesystem one.
            transport = TcpTransport(workers=w, poll_s=0.005,
                                     worker_poll_s=0.005)
            try:
                elapsed = timed_config(f"tcp x{w}", transport, None)
            finally:
                transport.shutdown()
            result[f"tcp_{w}_tput"] = n_units / elapsed
        for w in (1, DIST_WORKER_COUNTS[-1]):
            transport = PoolTransport()
            try:
                elapsed = timed_config(f"pool x{w}", transport, None, jobs=w)
            finally:
                transport.shutdown()
            result[f"pool_{w}_tput"] = n_units / elapsed
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    top = DIST_WORKER_COUNTS[-1]
    result["speedup"] = result[f"fqueue_{top}_tput"] / result["fqueue_1_tput"]
    result["tcp_speedup"] = result[f"tcp_{top}_tput"] / result["tcp_1_tput"]
    return result


def bench_sched_overhead(n_units, rounds):
    """Scheduler bookkeeping cost per unit on the inline fast path.

    Zero-latency one-trial units make the workload a few microseconds,
    so an inline run of ``SCHED_OVERHEAD_UNITS`` units measures what the
    scheduler itself charges per unit (admission, journal, telemetry).
    ``--max-sched-overhead-us`` turns the figure into a CI budget.
    """
    del n_units  # fixed scale: the budget is a per-unit absolute
    from repro.runtime import CampaignRunner, FaultPolicy
    from repro.runtime.loadgen import LatencyWorker

    worker = LatencyWorker(0.0)
    policy = FaultPolicy(max_units_per_task=1)

    def run():
        return CampaignRunner(jobs=1, chunk_size=1, policy=policy).run_trials(
            worker, SCHED_OVERHEAD_UNITS, seed=0
        )

    elapsed_s, out = _timed(run, rounds)
    if len(out) != SCHED_OVERHEAD_UNITS:
        raise AssertionError("scheduler-overhead campaign lost trials")
    return {
        "inline_s": elapsed_s,
        "overhead_us_per_unit": elapsed_s / SCHED_OVERHEAD_UNITS * 1e6,
        "n_units": SCHED_OVERHEAD_UNITS,
    }


def bench_steered_campaign(budget, rounds):
    """Surrogate-steered vs uniform sequential campaign at one CI target.

    Both campaigns run the same round-sealed sequential machinery
    (``docs/steering.md``) to the same ±``STEER_TARGET_CI`` AVF
    half-width on the matmul seed program; the recorded ``speedup`` is
    the uniform/steered executed-trial ratio — the quantity steering
    exists to improve — so ``check_regression`` and
    ``--min-trials-saved`` gate it directly.  Contracts checked here:
    both runs stop on the CI target (not budget exhaustion) and the
    steered estimate lands inside the uniform run's Wilson reference
    interval (unbiasedness under adaptive allocation).
    """
    from repro.arch import FaultInjector, SteeringConfig
    from repro.arch import programs as P

    program = P.matmul(5)
    injector = FaultInjector(
        program, max_cycles_factor=FI_HANG_BUDGET_FACTOR
    )

    def run(mode):
        return injector.run_steered_campaign(
            budget=budget, seed=STEER_SEED,
            config=SteeringConfig(mode=mode, target_ci=STEER_TARGET_CI),
        )

    steered_s, steered = _timed(lambda: run("steered"), rounds)
    uniform_s, uniform = _timed(lambda: run("uniform"), rounds)
    for label, res in (("steered", steered), ("uniform", uniform)):
        if res.steering["stop_reason"] != "target":
            raise AssertionError(
                f"{label} campaign exhausted its {budget}-trial budget "
                f"before reaching the ±{STEER_TARGET_CI} target"
            )
    ref_lo, ref_hi = uniform.uniform_interval()
    estimate = steered.steering["avf_estimate"]
    if not ref_lo <= estimate <= ref_hi:
        raise AssertionError(
            f"steered AVF {estimate:.4f} outside the uniform reference "
            f"interval ({ref_lo:.4f}, {ref_hi:.4f})"
        )
    steered_trials = steered.steering["trials_executed"]
    uniform_trials = uniform.steering["trials_executed"]
    return {
        "steered_s": steered_s,
        "uniform_s": uniform_s,
        "speedup": uniform_trials / steered_trials,
        "steered_trials": steered_trials,
        "uniform_trials": uniform_trials,
        "trials_saved": steered.steering["trials_saved"],
        "n_trials": budget,
        "target_ci": STEER_TARGET_CI,
        "seed": STEER_SEED,
        "steered_estimate": estimate,
        "steered_halfwidth": steered.steering["ci_halfwidth"],
        "uniform_estimate": uniform.steering["avf_estimate"],
        "reference_lo": ref_lo,
        "reference_hi": ref_hi,
        "rounds_sealed": steered.steering["rounds"],
        "refits": steered.steering["refits"],
        "program": program.name,
        "golden_cycles": injector.golden_cycles,
        "hang_budget_factor": FI_HANG_BUDGET_FACTOR,
    }


SWEEP_BENCHES = {
    "fig5_fig6_sweep": bench_fig5_fig6_sweep,
    "wall_ablation": bench_wall_ablation,
}
OBS_BENCHES = {
    "obs_overhead": bench_obs_overhead,
}
FI_BENCHES = {
    "fi_campaign": bench_fi_campaign,
    "fi_campaign_batched": bench_fi_campaign_batched,
}
DIST_BENCHES = {
    "dist_scaling": bench_dist_scaling,
    "sched_overhead": bench_sched_overhead,
}
STEER_BENCHES = {
    "steered_campaign": bench_steered_campaign,
}


def machine_info():
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def _new_entry(config):
    return {
        "schema": SCHEMA,
        "created_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "machine": machine_info(),
        "config": config,
        "results": {},
    }


def run_sweep_benches(n_runs, rounds):
    entry = _new_entry(
        {"n_runs": n_runs, "rounds": rounds, "jobs": 1, "cache": False}
    )
    for name, bench in SWEEP_BENCHES.items():
        result = bench(n_runs, rounds)
        entry["results"][name] = result
        print(
            f"{name}: batched {result['batched_s']*1e3:8.1f} ms   "
            f"scalar {result['scalar_s']*1e3:8.1f} ms   "
            f"speedup {result['speedup']:6.1f}x   "
            f"max hit-rate delta {result['max_hit_rate_delta']:.3f}"
        )
    return entry


def run_fi_benches(n_trials, rounds):
    entry = _new_entry(
        {"n_trials": n_trials, "rounds": rounds, "jobs": 1, "cache": False}
    )
    for name, bench in FI_BENCHES.items():
        result = bench(n_trials, rounds)
        entry["results"][name] = result
        fast = "batched" if "batched_s" in result else "forked"
        line = (
            f"{name}: {fast} {result[fast + '_s']*1e3:8.1f} ms   "
            f"reference {result['reference_s']*1e3:8.1f} ms   "
            f"speedup {result['speedup']:6.1f}x"
        )
        if "vs_forked" in result:
            line += f"   vs forked {result['vs_forked']:4.1f}x"
        line += f"   ({result['program']}, {result['n_trials']} trials)"
        print(line)
    return entry


def run_obs_benches(n_trials, rounds):
    entry = _new_entry(
        {"n_trials": n_trials, "rounds": rounds, "jobs": 1, "cache": False}
    )
    for name, bench in OBS_BENCHES.items():
        result = bench(n_trials, rounds)
        entry["results"][name] = result
        print(
            f"{name}: off {result['off_s']*1e3:8.1f} ms   "
            f"on {result['on_s']*1e3:8.1f} ms   "
            f"overhead {result['overhead']*100:+5.1f}%   "
            f"({result['events_per_run']} events, "
            f"{result['n_trials']} trials)"
        )
    return entry


def run_dist_benches(n_units, rounds):
    entry = _new_entry(
        {"n_units": n_units, "rounds": rounds,
         "unit_latency_s": DIST_UNIT_LATENCY_S, "cache": True}
    )
    for name, bench in DIST_BENCHES.items():
        result = bench(n_units, rounds)
        entry["results"][name] = result
        if name == "dist_scaling":
            tputs = "   ".join(
                f"fqueue x{w} {result[f'fqueue_{w}_tput']:6.1f}/s"
                for w in DIST_WORKER_COUNTS
            )
            top = DIST_WORKER_COUNTS[-1]
            print(
                f"{name}: inline {result['inline_tput']:6.1f}/s   {tputs}   "
                f"scaling {result['speedup']:4.1f}x   "
                f"tcp x{top} {result[f'tcp_{top}_tput']:6.1f}/s "
                f"({result['tcp_speedup']:4.1f}x)   "
                f"({result['n_units']} units of "
                f"{result['unit_latency_s']*1e3:.0f} ms)"
            )
        else:
            print(
                f"{name}: {result['overhead_us_per_unit']:8.1f} us/unit   "
                f"({result['n_units']} inline zero-latency units)"
            )
    return entry


def run_steer_benches(budget, rounds):
    entry = _new_entry(
        {"n_trials": budget, "rounds": rounds, "jobs": 1, "cache": False,
         "target_ci": STEER_TARGET_CI, "seed": STEER_SEED}
    )
    for name, bench in STEER_BENCHES.items():
        result = bench(budget, rounds)
        entry["results"][name] = result
        print(
            f"{name}: steered {result['steered_trials']:5d} trials "
            f"({result['steered_s']*1e3:8.1f} ms)   "
            f"uniform {result['uniform_trials']:5d} trials "
            f"({result['uniform_s']*1e3:8.1f} ms)   "
            f"trials saved {result['speedup']:4.1f}x   "
            f"AVF {result['steered_estimate']:.4f} "
            f"±{result['steered_halfwidth']:.4f} "
            f"(ref {result['reference_lo']:.4f}"
            f"–{result['reference_hi']:.4f})   "
            f"({result['program']}, target ±{result['target_ci']})"
        )
    return entry


def load_record(path):
    with open(path) as fh:
        record = json.load(fh)
    if record.get("schema") != SCHEMA or "entries" not in record:
        raise ValueError(f"{path} is not a schema-{SCHEMA} BENCH record")
    return record


def append_entry(path, entry, benchmark="sec5-kernels"):
    path = pathlib.Path(path)
    if path.exists():
        record = load_record(path)
    else:
        record = {"schema": SCHEMA, "benchmark": benchmark, "entries": []}
    record["entries"].append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path


def check_regression(entry, baseline_path, regression_factor):
    """Fail when any bench's speedup dropped > ``regression_factor``x.

    Wall-clock is machine-bound, so the check compares each bench's
    *speedup vs its own scalar reference* — a within-run ratio that is
    portable across runners — against the baseline record's newest
    entry.
    """
    baseline = load_record(baseline_path)["entries"][-1]
    failures = []
    for name, result in entry["results"].items():
        base = baseline["results"].get(name)
        if base is None or "speedup" not in result:
            continue  # new bench, or gated by an absolute budget instead
        scale_diff = [
            k for k in SCALE_KEYS if base.get(k) != result.get(k)
        ]
        if scale_diff:
            # Speedup scales with the batch/campaign size; unlike-for-
            # unlike comparisons would produce meaningless failures.
            print(
                f"skip {name}: baseline scale differs "
                f"({', '.join(f'{k}={base.get(k)}' for k in scale_diff)})"
            )
            continue
        if result["speedup"] * regression_factor < base["speedup"]:
            failures.append(
                f"{name}: speedup {result['speedup']:.1f}x is more than "
                f"{regression_factor}x below baseline {base['speedup']:.1f}x "
                f"({baseline['created_utc']})"
            )
    return failures


def _gate_entry(entry, args, check_path, output_path, benchmark):
    """Apply --min-speedup / baseline-check / append to one bench group."""
    status = 0
    if args.min_speedup is not None:
        for name, result in entry["results"].items():
            if result["speedup"] < args.min_speedup:
                print(
                    f"FAIL {name}: speedup {result['speedup']:.1f}x "
                    f"< required {args.min_speedup:.1f}x",
                    file=sys.stderr,
                )
                status = 1
    if check_path:
        failures = check_regression(entry, check_path, args.regression_factor)
        for line in failures:
            print(f"FAIL {line}", file=sys.stderr)
        if failures:
            status = 1
    if output_path:
        path = append_entry(output_path, entry, benchmark=benchmark)
        print(f"recorded entry -> {path}")
    return status


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Time the Sec. V Monte Carlo kernels and the Sec. III "
                    "FI engine; record BENCH_sweep.json / BENCH_fi.json"
    )
    parser.add_argument("--runs", type=int, default=100,
                        help="Monte Carlo runs per level (default 100)")
    parser.add_argument("--trials", type=int, default=400,
                        help="fault-injection trials for the FI bench "
                             "(default 400)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per bench; the median is recorded")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="append the sweep entry to FILE (trajectory record)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare sweep speedups against BASELINE's "
                             "newest entry")
    parser.add_argument("--fi-output", default=None, metavar="FILE",
                        help="append the FI-engine entry to FILE")
    parser.add_argument("--fi-check", default=None, metavar="BASELINE",
                        help="compare FI-engine speedups against BASELINE's "
                             "newest entry")
    parser.add_argument("--obs-output", default=None, metavar="FILE",
                        help="append the observability-overhead entry to FILE")
    parser.add_argument("--dist-units", type=int, default=48,
                        help="latency-bound units per dist-fabric run "
                             "(default 48)")
    parser.add_argument("--dist-output", default=None, metavar="FILE",
                        help="append the dist-fabric entry to FILE")
    parser.add_argument("--dist-check", default=None, metavar="BASELINE",
                        help="compare the fqueue scaling factor against "
                             "BASELINE's newest entry")
    parser.add_argument("--steer-budget", type=int, default=8192,
                        help="trial budget ceiling for the steered-campaign "
                             "bench (default 8192; neither run should hit it)")
    parser.add_argument("--steer-output", default=None, metavar="FILE",
                        help="append the steered-campaign entry to FILE")
    parser.add_argument("--steer-check", default=None, metavar="BASELINE",
                        help="compare the steered trials-saved ratio against "
                             "BASELINE's newest entry")
    parser.add_argument("--min-trials-saved", type=float, default=None,
                        help="fail when the steered campaign saves fewer "
                             "than this factor of trials vs the uniform "
                             "baseline (CI passes 3)")
    parser.add_argument("--min-dist-speedup", type=float, default=None,
                        help="fail when the 1-to-max-worker fqueue or tcp "
                             "throughput gain is below this (CI passes 2)")
    parser.add_argument("--max-sched-overhead-us", type=float, default=None,
                        metavar="US",
                        help="fail when inline scheduler overhead exceeds "
                             "this many microseconds per unit")
    parser.add_argument("--max-obs-overhead", type=float, default=None,
                        metavar="FRACTION",
                        help="fail when recording overhead exceeds this "
                             "fraction (CI passes 0.05 for the <5%% gate)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail when any bench's speedup is below this")
    parser.add_argument("--regression-factor", type=float, default=2.0,
                        help="allowed speedup drop vs baseline (default 2x)")
    args = parser.parse_args(argv)

    sweep_entry = run_sweep_benches(args.runs, args.rounds)
    fi_entry = run_fi_benches(args.trials, args.rounds)
    obs_entry = run_obs_benches(args.trials, args.rounds)
    dist_entry = run_dist_benches(args.dist_units, args.rounds)
    steer_entry = run_steer_benches(args.steer_budget, args.rounds)

    status = _gate_entry(sweep_entry, args, args.check, args.output,
                         "sec5-kernels")
    status |= _gate_entry(fi_entry, args, args.fi_check, args.fi_output,
                          "sec3-fi-engine")
    # The obs group gates on an absolute overhead budget, not a speedup.
    if args.max_obs_overhead is not None:
        for name, result in obs_entry["results"].items():
            if result["overhead"] > args.max_obs_overhead:
                print(
                    f"FAIL {name}: recording overhead "
                    f"{result['overhead']*100:.1f}% exceeds the "
                    f"{args.max_obs_overhead*100:.1f}% budget",
                    file=sys.stderr,
                )
                status = 1
    if args.obs_output:
        path = append_entry(args.obs_output, obs_entry,
                            benchmark="obs-overhead")
        print(f"recorded entry -> {path}")
    # The dist group has its own floors: the fqueue scaling factor and
    # an absolute scheduler-overhead budget.  It deliberately bypasses
    # --min-speedup, which gates vectorization ratios an order of
    # magnitude above what worker pipelining can (or should) reach.
    scaling = dist_entry["results"]["dist_scaling"]
    overhead = dist_entry["results"]["sched_overhead"]
    if args.min_dist_speedup is not None:
        for fabric, key in (("fqueue", "speedup"), ("tcp", "tcp_speedup")):
            if scaling[key] < args.min_dist_speedup:
                print(
                    f"FAIL dist_scaling: {fabric} throughput gain "
                    f"{scaling[key]:.1f}x < required "
                    f"{args.min_dist_speedup:.1f}x",
                    file=sys.stderr,
                )
                status = 1
    if (args.max_sched_overhead_us is not None
            and overhead["overhead_us_per_unit"] > args.max_sched_overhead_us):
        print(
            f"FAIL sched_overhead: {overhead['overhead_us_per_unit']:.1f} "
            f"us/unit exceeds the {args.max_sched_overhead_us:.1f} us budget",
            file=sys.stderr,
        )
        status = 1
    if args.dist_check:
        failures = check_regression(dist_entry, args.dist_check,
                                    args.regression_factor)
        for line in failures:
            print(f"FAIL {line}", file=sys.stderr)
        if failures:
            status = 1
    if args.dist_output:
        path = append_entry(args.dist_output, dist_entry,
                            benchmark="dist-fabric")
        print(f"recorded entry -> {path}")
    # The steer group's "speedup" is a trial-count ratio, not a
    # vectorization ratio, so like dist it has its own floor
    # (--min-trials-saved) and bypasses --min-speedup.
    steer = steer_entry["results"]["steered_campaign"]
    if (args.min_trials_saved is not None
            and steer["speedup"] < args.min_trials_saved):
        print(
            f"FAIL steered_campaign: trials-saved ratio "
            f"{steer['speedup']:.1f}x < required "
            f"{args.min_trials_saved:.1f}x",
            file=sys.stderr,
        )
        status = 1
    if args.steer_check:
        failures = check_regression(steer_entry, args.steer_check,
                                    args.regression_factor)
        for line in failures:
            print(f"FAIL {line}", file=sys.stderr)
        if failures:
            status = 1
    if args.steer_output:
        path = append_entry(args.steer_output, steer_entry,
                            benchmark="steered-campaign")
        print(f"recorded entry -> {path}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
