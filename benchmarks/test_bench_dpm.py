"""Sec. IV knob 3 — dynamic power management by core consolidation.

Paper: DPM changes core power states (active/idle/sleep/off) to improve
energy efficiency and help thermal/reliability management by "tuning the
state of cores in multi/many-core processors".  The bench sweeps the
workload utilization and compares all-cores-active against sleep-state
consolidation.
"""

import pytest

from repro.system import (
    ConsolidationDPMManager,
    StaticManager,
    generate_task_set,
    run_managed_simulation,
)

UTILIZATIONS = (0.5, 1.0, 1.6, 2.4)


@pytest.fixture(scope="module")
def results():
    out = {}
    for u in UTILIZATIONS:
        tasks = generate_task_set(n_tasks=8, total_utilization=u, seed=3)
        static = run_managed_simulation(
            StaticManager(), tasks, n_cores=4, duration=10.0, seed=0
        )
        dpm = run_managed_simulation(
            ConsolidationDPMManager(), tasks, n_cores=4, duration=10.0, seed=0
        )
        out[u] = (static, dpm)
    return out


def test_bench_dpm_consolidation(benchmark, results, report):
    tasks = generate_task_set(n_tasks=8, total_utilization=0.8, seed=3)
    benchmark.pedantic(
        run_managed_simulation,
        args=(ConsolidationDPMManager(), tasks),
        kwargs={"n_cores": 4, "duration": 4.0, "seed": 1},
        rounds=2,
        iterations=1,
    )

    rows = []
    for u, (static, dpm) in results.items():
        saving = 1.0 - dpm.energy_j / static.energy_j
        rows.append(
            (
                f"{u:.1f}",
                f"{static.energy_j:.1f}",
                f"{dpm.energy_j:.1f}",
                f"{saving:.0%}",
                f"{dpm.deadline_hit_rate:.3f}",
            )
        )
    report(
        "DPM: energy at varying workload utilization (4 cores)",
        ("total util", "all-active (J)", "consolidated (J)", "saving", "DPM hit rate"),
        rows,
    )

    # Light loads leave cores to sleep: real savings, no deadline cost.
    light_static, light_dpm = results[0.5]
    assert light_dpm.energy_j < 0.95 * light_static.energy_j
    assert light_dpm.deadline_hit_rate > 0.99
    # Heavy loads keep all cores awake: no deadline collapse either way.
    _, heavy_dpm = results[2.4]
    assert heavy_dpm.deadline_hit_rate > 0.95
