"""Sec. IV-A4 ref [45] — adaptive replica management under drifting faults.

Paper: ML determines the architecture's fault status and adapts the
number of task replicas to environmental changes, instead of statically
over- or under-provisioning.
"""

import pytest

from repro.system import AdaptiveReplicationManager, ReplicationEnvironment


@pytest.fixture(scope="module")
def manager():
    return AdaptiveReplicationManager(seed=0).train(
        lambda: ReplicationEnvironment(seed=42), n_epochs=800
    )


@pytest.fixture(scope="module")
def episodes(manager):
    policies = {
        "static 1 replica": lambda obs: 1,
        "static 3 replicas": lambda obs: 3,
        "static 5 replicas": lambda obs: 5,
        "adaptive (learned)": manager.choose_replicas,
    }
    out = {}
    for name, policy in policies.items():
        env = ReplicationEnvironment(seed=7)
        out[name] = manager.run_episode(env, policy, n_epochs=600)
    return out


def test_bench_replication_manager(benchmark, manager, episodes, report):
    benchmark.pedantic(
        manager.run_episode,
        args=(ReplicationEnvironment(seed=11), manager.choose_replicas),
        kwargs={"n_epochs": 100},
        rounds=3,
        iterations=1,
    )

    rows = [
        (name, f"{m.failure_rate:.4f}", f"{m.overhead:.2f}")
        for name, m in episodes.items()
    ]
    report(
        "[45]: replica policies under a drifting fault environment",
        ("policy", "job failure rate", "replicas per job"),
        rows,
    )

    adaptive = episodes["adaptive (learned)"]
    s1 = episodes["static 1 replica"]
    s5 = episodes["static 5 replicas"]
    # Pareto: far fewer failures than no-replication, far cheaper than
    # permanent maximum replication.
    assert adaptive.failure_rate < 0.5 * s1.failure_rate
    assert adaptive.overhead < 0.85 * s5.overhead


def test_bench_replication_regime_tracking(benchmark, manager, report):
    """The learned regime classifier drives replica counts correctly."""
    import numpy as np

    env = ReplicationEnvironment(seed=3)
    correct = 0
    total = 300
    confusion = np.zeros((3, 3), dtype=int)
    rng = np.random.default_rng(0)
    for _ in range(total):
        env.regime = int(rng.integers(3))
        obs = env.observe()
        n = manager.choose_replicas(obs)
        predicted_regime = AdaptiveReplicationManager.REPLICAS_PER_REGIME.index(n)
        confusion[env.regime, predicted_regime] += 1
        correct += int(predicted_regime == env.regime)
    benchmark.pedantic(manager.choose_replicas, args=(env.observe(),), rounds=5, iterations=5)
    report(
        "[45]: regime classification (rows = true regime, cols = predicted)",
        ("regime", "benign", "elevated", "harsh"),
        [(i, *confusion[i]) for i in range(3)],
    )
    assert correct / total > 0.75
