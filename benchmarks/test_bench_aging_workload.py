"""Sec. II refs [11],[12] — circuit aging under workload dependency.

Paper: ML estimates the impact of aging on circuits *under workload
dependency*, replacing the blanket worst-case stress assumption with
per-instance stress derived from the workload's signal statistics —
less pessimistic guardbands at full lifetime reliability.
"""

import numpy as np
import pytest

from repro.circuit import (
    AgingFlow,
    SpiceLikeCharacterizer,
    build_default_library,
    instance_stress,
    synthesize_core,
)


@pytest.fixture(scope="module")
def setup():
    lib = build_default_library()
    ch = SpiceLikeCharacterizer()
    ch.characterize_library(lib)
    net = synthesize_core(lib, n_instances=250, seed=1)
    return lib, ch, net


@pytest.fixture(scope="module")
def result(setup):
    _, ch, net = setup
    flow = AgingFlow(ch, lifetime_s=3.15e8, temperature_c=85.0)
    return flow, flow.signoff(net, build_default_library, ml_training_samples=3000)


def test_bench_aging_workload_signoff(benchmark, setup, result, report):
    lib, ch, net = setup
    flow, signoff = result
    benchmark.pedantic(
        flow.instance_delta_vth, args=(net, lib), rounds=3, iterations=1
    )

    report(
        "[11],[12]: 10-year aging sign-off, worst-case vs workload-aware",
        ("flow", "min period (ps)", "guardband (ps)"),
        [
            ("fresh silicon", f"{signoff.fresh_period:.1f}", "0.0"),
            (
                "worst-case stress corner",
                f"{signoff.worst_case_period:.1f}",
                f"{signoff.guardband_worst_case:.1f}",
            ),
            (
                "workload-aware ML per-instance",
                f"{signoff.workload_aware_period:.1f}",
                f"{signoff.guardband_workload_aware:.1f}",
            ),
        ],
    )
    print(
        f"guardband reduction: {signoff.guardband_reduction:.0%}; "
        f"dVth mean {signoff.mean_delta_vth*1000:.1f} mV vs "
        f"worst-case {flow.worst_case_delta_vth(lib)*1000:.1f} mV"
    )
    assert signoff.worst_case_period > signoff.fresh_period
    assert signoff.fresh_period < signoff.workload_aware_period < signoff.worst_case_period
    assert signoff.guardband_reduction > 0.15


def test_bench_aging_stress_spread(benchmark, setup, report):
    """The mechanism: workloads create a wide spread of per-instance stress."""
    _, _, net = setup
    stress = benchmark.pedantic(instance_stress, args=(net,), rounds=3, iterations=1)
    duties = np.asarray([s["duty_cycle"] for s in stress.values()])
    activities = np.asarray([s["activity"] for s in stress.values()])
    report(
        "[11]: per-instance stress statistics under a random workload profile",
        ("statistic", "min", "mean", "max"),
        [
            ("NBTI duty cycle", f"{duties.min():.2f}", f"{duties.mean():.2f}",
             f"{duties.max():.2f}"),
            ("switching activity", f"{activities.min():.2f}",
             f"{activities.mean():.2f}", f"{activities.max():.2f}"),
        ],
    )
    assert duties.max() - duties.min() > 0.3
    assert duties.mean() < 0.9  # most instances far from worst-case stress


def test_bench_aging_vs_workload_profiles(benchmark, setup, report):
    """Different workloads age the same netlist differently."""
    lib, ch, net = setup
    flow = AgingFlow(ch)
    rng = np.random.default_rng(0)
    rows = []
    means = {}
    profiles = {
        "idle-ish (PIs mostly low)": {pi: 0.1 for pi in net.primary_inputs},
        "balanced": {pi: 0.5 for pi in net.primary_inputs},
        "active-high": {pi: 0.9 for pi in net.primary_inputs},
        "random": {pi: float(rng.random()) for pi in net.primary_inputs},
    }
    for name, profile in profiles.items():
        shifts = flow.instance_delta_vth(net, lib, pi_probabilities=profile)
        values = np.asarray(list(shifts.values()))
        means[name] = values.mean()
        rows.append((name, f"{values.mean()*1000:.1f}", f"{values.max()*1000:.1f}"))
    benchmark.pedantic(
        flow.instance_delta_vth, args=(net, lib),
        kwargs={"pi_probabilities": profiles["balanced"]}, rounds=2, iterations=1,
    )
    report(
        "[12]: mean/max dVth (mV) per workload profile",
        ("workload profile", "mean dVth (mV)", "max dVth (mV)"),
        rows,
    )
    # Aging must respond to the workload (the whole point of [11],[12]).
    assert len({round(m, 5) for m in means.values()}) > 1
