"""Fig. 5 — average rollbacks per segment vs error probability.

Paper: rollbacks stay near zero below p ~ 1e-6, rise rapidly beyond, and
exceed 10 per segment once p > 1e-5 (the error-rate wall's onset).
"""

import numpy as np
import pytest

from repro.core import MonteCarloStudy, adpcm_like_workload

ERROR_PROBS = [1e-8, 1e-7, 3e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 1e-3]


@pytest.fixture(scope="module")
def study():
    workload = adpcm_like_workload(n_segments=12, seed=0)
    return MonteCarloStudy(workload, n_runs=100, seed=0)


@pytest.fixture(scope="module")
def sweep(study):
    # Exercise the parallel campaign runtime; levels are internally
    # seeded, so this is bit-identical to the serial sweep.
    return study.sweep(ERROR_PROBS, jobs=2)


def test_bench_fig5_rollbacks(benchmark, study, sweep, report):
    # Time one Monte Carlo level (100 runs) at the wall.
    benchmark.pedantic(study.run_level, args=(1e-5,), rounds=3, iterations=1)

    # The parallel sweep must reproduce the serial level exactly.
    serial = study.run_level(1e-6)
    parallel_pt = sweep[ERROR_PROBS.index(1e-6)]
    assert parallel_pt.mean_rollbacks_per_segment == serial.mean_rollbacks_per_segment
    assert parallel_pt.hit_rate == serial.hit_rate

    analytic = study.analytic_rollbacks(ERROR_PROBS)
    rows = [
        (f"{pt.error_probability:.0e}",
         f"{pt.mean_rollbacks_per_segment:.4f}",
         f"{a:.4f}" if np.isfinite(a) and a < 1e6 else ">1e6")
        for pt, a in zip(sweep, analytic)
    ]
    report(
        "Fig. 5: avg rollbacks per segment vs error probability (100 MC runs)",
        ("p", "simulated", "analytic Eq.(2)"),
        rows,
    )

    rollbacks = [pt.mean_rollbacks_per_segment for pt in sweep]
    # Shape claims from the paper.
    assert rollbacks[ERROR_PROBS.index(1e-7)] < 0.1, "flat region below 1e-6"
    assert rollbacks[ERROR_PROBS.index(3e-5)] > 10.0, ">10 rollbacks past 1e-5"
    # Monotone growth (within MC noise).
    assert all(a <= b + 0.25 for a, b in zip(rollbacks[:-1], rollbacks[1:]))


def test_bench_fig5_scalar_reference(benchmark, study, sweep):
    """Scalar reference kernel: timed for the speedup baseline, and held
    to the equivalence contract against the batched sweep."""
    reference = MonteCarloStudy(
        study.workload, n_runs=study.n_runs, seed=study.seed, kernel="scalar"
    )
    benchmark.pedantic(reference.run_level, args=(1e-5,), rounds=3, iterations=1)

    point = reference.run_level(1e-6)
    batched = sweep[ERROR_PROBS.index(1e-6)]
    # The Fig. 5 statistic is draw-for-draw identical across kernels.
    assert point.mean_rollbacks_per_segment == batched.mean_rollbacks_per_segment
    # Hit rates are distribution-equivalent at fixed seeds.
    for name, rate in point.hit_rate.items():
        assert abs(rate - batched.hit_rate[name]) <= 0.15, name
    # Analytic curves are kernel-independent, bit for bit.
    assert np.array_equal(
        reference.analytic_rollbacks(ERROR_PROBS),
        study.analytic_rollbacks(ERROR_PROBS),
    )
