"""Sec. II ref [17] — HDC for wafer-map defect-pattern classification.

Paper: HDC has been applied from circuit reliability and semiconductor
manufacturing (wafer-map defect classification) to language and
bio-signal tasks.  The bench classifies the canonical defect patterns
(center, edge ring, scratch, donut, random, none) and checks the same
hardware-error robustness that motivates HDC elsewhere in Sec. II.
"""

import numpy as np
import pytest

from repro.hdc.wafer import PATTERN_CLASSES, WaferHDCClassifier, WaferMapGenerator
from repro.ml import MLPClassifier, train_test_split


@pytest.fixture(scope="module")
def data():
    gen = WaferMapGenerator(side=20, seed=0)
    maps, labels = gen.dataset(n_per_class=40)
    idx = np.arange(len(maps))
    tr, te, ytr, yte = train_test_split(idx, labels, test_size=0.3, seed=0)
    return maps, tr, te, ytr, yte


@pytest.fixture(scope="module")
def models(data):
    maps, tr, te, ytr, yte = data
    hdc = WaferHDCClassifier(side=20, dim=4096, seed=0).fit(maps[tr], ytr)
    X = maps.reshape(len(maps), -1).astype(float)
    mlp = MLPClassifier(hidden=(64,), n_epochs=150, lr=3e-3, seed=0).fit(X[tr], ytr)
    return hdc, mlp, X


def test_bench_wafer_hdc_classification(benchmark, data, models, report):
    maps, tr, te, ytr, yte = data
    hdc, mlp, X = models
    benchmark.pedantic(hdc.predict, args=(maps[te][:20],), rounds=2, iterations=1)

    hdc_acc = float(np.mean(hdc.predict(maps[te]) == yte))
    mlp_acc = float(np.mean(mlp.predict(X[te]) == yte))
    per_class = []
    pred = hdc.predict(maps[te])
    for label, pattern in enumerate(PATTERN_CLASSES):
        mask = yte == label
        acc = float(np.mean(pred[mask] == label)) if mask.any() else float("nan")
        per_class.append((pattern, f"{acc:.2f}"))
    report(
        "[17]: wafer-map defect classification — per-class HDC accuracy",
        ("pattern", "accuracy"),
        per_class,
    )
    print(f"overall: HDC {hdc_acc:.3f} vs MLP-on-pixels {mlp_acc:.3f}")
    assert hdc_acc > 0.85


def test_bench_wafer_hdc_error_robustness(benchmark, data, models, report):
    maps, tr, te, ytr, yte = data
    hdc, mlp, X = models
    benchmark.pedantic(
        hdc.predict, args=(maps[te][:20],), kwargs={"error_rate": 0.3},
        rounds=2, iterations=1,
    )
    rows = []
    accs = {}
    for er in (0.0, 0.2, 0.4):
        acc = float(
            np.mean(hdc.predict(maps[te], error_rate=er, rng=np.random.default_rng(1)) == yte)
        )
        accs[er] = acc
        rows.append((f"{er:.1f}", f"{acc:.3f}"))
    report(
        "[17]: HDC wafer classification under component errors",
        ("error rate", "accuracy"),
        rows,
    )
    assert accs[0.2] > accs[0.0] - 0.15, "graceful degradation at 20% errors"
    assert accs[0.4] > 0.5, "still far above 1/6 chance at 40% errors"
