"""Sec. IV-B1 ref [46] — device-level lifetime models and their sensitivities.

Regenerates the MTTF-vs-temperature/voltage trends the management layers
rely on: EM, TDDB, TC, NBTI, HCI and their sum-of-failure-rates
combination.
"""

import numpy as np
import pytest

from repro.system import (
    combined_mttf,
    em_mttf,
    hci_mttf,
    nbti_mttf,
    tc_mttf,
    tddb_mttf,
)

TEMPERATURES = (40.0, 60.0, 80.0, 100.0, 120.0)
VOLTAGES = (0.8, 0.9, 1.0, 1.1)


def test_bench_lifetime_vs_temperature(benchmark, report):
    benchmark.pedantic(
        combined_mttf, args=(80.0,), kwargs={"voltage": 1.0}, rounds=5, iterations=10
    )
    rows = []
    for t in TEMPERATURES:
        rows.append(
            (
                f"{t:.0f}",
                f"{float(em_mttf(t)):.2f}",
                f"{float(tddb_mttf(t)):.2f}",
                f"{float(nbti_mttf(t)):.2f}",
                f"{float(hci_mttf(t)):.2f}",
                f"{float(combined_mttf(t)):.2f}",
            )
        )
    report(
        "[46]: MTTF (years) vs temperature at nominal voltage",
        ("T (C)", "EM", "TDDB", "NBTI", "HCI", "combined"),
        rows,
    )
    combined = [float(combined_mttf(t)) for t in TEMPERATURES]
    assert all(a > b for a, b in zip(combined[:-1], combined[1:])), "monotone in T"
    # Order-of-magnitude acceleration across the 80 K span.
    assert combined[0] / combined[-1] > 5.0


def test_bench_lifetime_vs_voltage(benchmark, report):
    benchmark.pedantic(tddb_mttf, args=(60.0,), kwargs={"voltage": 1.0}, rounds=5, iterations=10)
    rows = []
    for v in VOLTAGES:
        rows.append(
            (
                f"{v:.1f}",
                f"{float(tddb_mttf(60.0, voltage=v)):.2f}",
                f"{float(em_mttf(60.0, current_density=v * 2.2 / 2.2)):.2f}",
                f"{float(combined_mttf(60.0, voltage=v)):.2f}",
            )
        )
    report(
        "[46]: MTTF (years) vs supply voltage at 60 C",
        ("V", "TDDB", "EM", "combined"),
        rows,
    )
    tddb = [float(tddb_mttf(60.0, voltage=v)) for v in VOLTAGES]
    assert all(a > b for a, b in zip(tddb[:-1], tddb[1:])), "monotone in V"


def test_bench_thermal_cycling_sensitivity(benchmark, report):
    benchmark.pedantic(tc_mttf, args=(10.0,), rounds=5, iterations=10)
    amplitudes = (2.0, 5.0, 10.0, 20.0, 40.0)
    rows = [(f"{a:.0f}", f"{float(tc_mttf(a)):.2f}") for a in amplitudes]
    report(
        "[46]: Coffin-Manson thermal-cycling MTTF (years) vs swing amplitude",
        ("dT per cycle (K)", "MTTF (y)"),
        rows,
    )
    mttfs = [float(tc_mttf(a)) for a in amplitudes]
    assert all(a > b for a, b in zip(mttfs[:-1], mttfs[1:]))
    # Coffin-Manson exponent: doubling the swing costs ~2^q in cycles.
    ratio = mttfs[2] / mttfs[3]
    assert 3.0 < ratio < 8.0


def test_bench_dvfs_reliability_tension(benchmark, report):
    """The Sec. IV trade-off in one table: lowering V-f helps lifetime but
    raises SER and stretches execution — functional reliability falls."""
    from repro.system.core import DEFAULT_VF_LEVELS
    from repro.system.ser import soft_error_rate

    benchmark.pedantic(soft_error_rate, args=(0.7,), rounds=5, iterations=10)
    rows = []
    for level in DEFAULT_VF_LEVELS:
        ser = float(soft_error_rate(level.voltage))
        lifetime = float(combined_mttf(45.0 + 25.0 * level.voltage, voltage=level.voltage))
        exec_stretch = DEFAULT_VF_LEVELS[-1].frequency / level.frequency
        rows.append(
            (
                f"{level.voltage:.2f}/{level.frequency:.1f}",
                f"{ser:.2e}",
                f"{exec_stretch:.2f}x",
                f"{lifetime:.2f}",
            )
        )
    report(
        "Sec. IV: the DVFS tension (SER up, exec time up, lifetime up as V falls)",
        ("V/f", "SER (faults/s)", "exec time", "lifetime MTTF (y)"),
        rows,
    )
    sers = [float(soft_error_rate(l.voltage)) for l in DEFAULT_VF_LEVELS]
    assert all(a > b for a, b in zip(sers[:-1], sers[1:])), "SER falls as V rises"
