"""Sec. III-C2 ref [30] — MLP symptom detection on DNN intermediate outputs.

Paper: a two-hidden-layer network watching intermediate outputs detects
misclassification-causing errors with ~99 % recall and ~97 % precision at
~2.67 % compute overhead.
"""

import pytest

from repro.arch import SymptomDetector
from repro.arch.warning_net import make_image_dataset
from repro.ml import MLPClassifier, train_test_split


@pytest.fixture(scope="module")
def setup():
    X, y = make_image_dataset(n_samples=700, seed=3)
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.35, seed=0)
    mission = MLPClassifier(hidden=(64, 32), n_epochs=120, lr=3e-3, seed=0).fit(Xtr, ytr)
    detector = SymptomDetector(mission, seed=0).fit(Xtr[:300])
    return mission, detector, Xte


def test_bench_symptom_detection(benchmark, setup, report):
    mission, detector, Xte = setup
    result = benchmark.pedantic(
        detector.evaluate, args=(Xte[:150],), rounds=2, iterations=1
    )
    report(
        "[30]: symptom-based error detection on DNN activations",
        ("metric", "measured", "paper"),
        [
            ("recall", f"{result.recall:.3f}", "~0.99"),
            ("precision", f"{result.precision:.3f}", "~0.97"),
            ("compute overhead", f"{result.overhead:.3%}", "~2.67%"),
        ],
    )
    assert result.recall > 0.9
    assert result.precision > 0.9
    assert result.overhead < 0.08


def test_bench_symptom_detection_compressed(benchmark, setup, report):
    """Ref [31] hook: the detector survives pruning + quantization."""
    from repro.ml import prune_mlp, quantize_mlp
    from repro.ml.compression import compression_ratio

    mission, detector, Xte = setup
    original = detector._detector
    compressed = quantize_mlp(prune_mlp(original, sparsity=0.6), n_bits=8)

    def evaluate_compressed():
        detector._detector = compressed
        try:
            return detector.evaluate(Xte[:120])
        finally:
            detector._detector = original

    result = benchmark.pedantic(evaluate_compressed, rounds=1, iterations=1)
    ratio = compression_ratio(compressed, n_bits=8)
    report(
        "[31]: compressed symptom detector (60% pruned, 8-bit)",
        ("metric", "value"),
        [
            ("recall", f"{result.recall:.3f}"),
            ("precision", f"{result.precision:.3f}"),
            ("storage compression vs dense fp32", f"{ratio:.1f}x"),
        ],
    )
    assert result.recall > 0.8
    assert ratio > 1.0
