"""Sec. VI-A — run-time cross-layer reliability management (aging loop).

The paper's open challenge made concrete: NBTI (device) stretches the
critical path (circuit) and erodes the clock margin (system).  The bench
compares static worst-case clocking, naive nominal clocking, and the
adaptive cross-layer loop — driven either by the physics model or by its
HDC mimic ([18]) in the confidentiality scenario.
"""

import numpy as np
import pytest

from repro.core.cross_layer import AgingAwareSystem, compare_strategies, run_mission


@pytest.fixture(scope="module")
def system():
    return AgingAwareSystem(
        nominal_delay_ps=500.0, vdd=0.8, vth0=0.30, duty_cycle=0.5,
        temperature_c=85.0,
    )


@pytest.fixture(scope="module")
def logs(system):
    return compare_strategies(system, mission_years=10.0)


def test_bench_cross_layer_strategies(benchmark, system, logs, report):
    benchmark.pedantic(
        run_mission, args=(system, "adaptive"), kwargs={"mission_years": 10.0},
        rounds=3, iterations=1,
    )
    rows = [
        (
            s,
            f"{log.mean_frequency:.3f}",
            log.violations,
            f"{log.work:.3e}",
        )
        for s, log in logs.items()
    ]
    report(
        "Sec. VI-A: 10-year mission under three clocking strategies",
        ("strategy", "mean f (GHz)", "timing violations", "work (cycles)"),
        rows,
    )
    adaptive = logs["adaptive"]
    worst = logs["static_worst_case"]
    nominal = logs["static_nominal"]
    assert adaptive.violations == 0
    assert worst.violations == 0
    assert nominal.violations > 0
    assert adaptive.work > worst.work
    gain = adaptive.work / worst.work - 1.0
    print(f"adaptive work gain over static worst-case: {gain:.2%}")


def test_bench_cross_layer_hdc_mimic(benchmark, system, report):
    """Drive the adaptive loop with the HDC aging mimic instead of the
    (confidential) physics model."""
    from repro.hdc import HDCAgingModel

    rng = np.random.default_rng(0)
    times = rng.uniform(0.05, 10.0, 250) * 3.154e7
    waves = [np.full(16, t / (10 * 3.154e7) * 0.8) for t in times]
    labels = [1.15 * system.delta_vth_at(t) for t in times]  # margined labels
    mimic = HDCAgingModel(dim=2048, n_buckets=24, seed=0).fit(waves, labels)

    def predictor(t_seconds):
        wave = np.full(16, t_seconds / (10 * 3.154e7) * 0.8)
        return float(mimic.predict([wave])[0])

    log = benchmark.pedantic(
        run_mission,
        args=(system, "adaptive"),
        kwargs={"mission_years": 10.0, "aging_predictor": predictor},
        rounds=1,
        iterations=1,
    )
    worst = run_mission(system, "static_worst_case", mission_years=10.0)
    report(
        "Sec. VI-A + [18]: adaptive loop driven by the HDC aging mimic",
        ("metric", "value"),
        [
            ("violations (120 epochs)", log.violations),
            ("work vs worst-case static", f"{log.work / worst.work:.3f}x"),
            ("mean frequency (GHz)", f"{log.mean_frequency:.3f}"),
        ],
    )
    assert log.violations <= 6
    assert log.work > 0.9 * worst.work
