"""Shared helpers for the benchmark harness.

Every bench regenerates one table/figure of the paper (see DESIGN.md's
experiment index) and prints the series the paper reports, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the evaluation.  Timings measure each experiment's core
computational kernel.
"""

import pytest


def print_table(title, header, rows):
    """Print one experiment's result table."""
    print()
    print(f"== {title} ==")
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(header)]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def report():
    return print_table
