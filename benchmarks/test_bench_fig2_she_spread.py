"""Fig. 2 — per-instance self-heating temperatures across a processor core.

Paper: although only 59 distinct standard cells are used in the design, a
wide variety of SHE temperatures is observed, because each instance's SHE
depends on its input slew and output load, not just its cell type.
"""

import numpy as np
import pytest

from repro.circuit import (
    SheFlow,
    SpiceLikeCharacterizer,
    build_default_library,
    synthesize_core,
)


@pytest.fixture(scope="module")
def setup():
    library = build_default_library(temperature_c=45.0)
    characterizer = SpiceLikeCharacterizer()
    characterizer.characterize_library(library)
    netlist = synthesize_core(library, n_instances=800, seed=0)
    return library, characterizer, netlist


@pytest.fixture(scope="module")
def she_report(setup):
    library, characterizer, netlist = setup
    return SheFlow(characterizer).run(netlist, library)


def test_bench_fig2_she_spread(benchmark, setup, she_report, report):
    library, characterizer, netlist = setup
    flow = SheFlow(characterizer)
    benchmark.pedantic(flow.run, args=(netlist, library), rounds=1, iterations=1)

    lo, mean, hi = she_report.spread()
    counts, edges = she_report.histogram(bins=8)
    rows = [
        (f"{edges[i]:.1f}-{edges[i+1]:.1f}", int(c)) for i, c in enumerate(counts)
    ]
    report(
        f"Fig. 2: SHE dT histogram over {len(netlist)} instances "
        f"(min {lo:.1f} K, mean {mean:.1f} K, max {hi:.1f} K)",
        ("dT bin (K)", "#instances"),
        rows,
    )

    # 59 distinct cells, wide per-instance variety.
    assert len(library) == 59
    assert hi > 3.0 * lo, "expected a wide spread of SHE temperatures"


def test_bench_fig2_same_cell_type_variety(benchmark, she_report, report):
    benchmark.pedantic(she_report.per_cell_type, rounds=5, iterations=1)
    by_type = she_report.per_cell_type()
    # Report the five cell types with the widest per-instance spread.
    spreads = sorted(
        (
            (name, min(ts), max(ts), len(ts))
            for name, ts in by_type.items()
            if len(ts) >= 5
        ),
        key=lambda row: -(row[2] - row[1]),
    )[:5]
    report(
        "Fig. 2 companion: per-instance SHE range within one cell type",
        ("cell", "min dT (K)", "max dT (K)", "#instances"),
        [(n, f"{a:.2f}", f"{b:.2f}", k) for n, a, b, k in spreads],
    )
    assert spreads
    name, lo, hi, _ = spreads[0]
    assert hi - lo > 1.0, "one cell type must see many different SHE temps"
