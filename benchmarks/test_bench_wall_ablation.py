"""Sec. V-D ablation — "moving the wall" with system parameters.

The paper notes the wall's position depends on system parameters such as
processor speed and checkpointing granularity, and that optimizing them
can push the wall outward.  This bench sweeps both knobs.
"""

import numpy as np
import pytest

from repro.core import (
    CheckpointSystem,
    MonteCarloStudy,
    SegmentedWorkload,
    WCET,
    adpcm_like_workload,
    simulate_run,
    simulate_runs_batch,
)

ERROR_PROBS = [1e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4]


def _hit_rate(workload, p, max_speed, n_runs=60, seed=0):
    cp = CheckpointSystem(p)
    rng = np.random.default_rng(seed)
    batch = simulate_runs_batch(
        workload, cp, WCET, rng, n_runs, max_speed=max_speed
    )
    return float(np.mean(batch.deadline_met))


def _hit_rate_scalar(workload, p, max_speed, n_runs=60, seed=0):
    """Scalar reference of :func:`_hit_rate` (perf + equivalence checks)."""
    cp = CheckpointSystem(p)
    rng = np.random.default_rng(seed)
    hits = 0
    for _ in range(n_runs):
        run = simulate_run(workload, cp, WCET, rng, max_speed=max_speed)
        hits += int(run.deadline_met)
    return hits / n_runs


def _wall_position(hit_rates):
    """Largest p whose hit rate is still >= 0.5."""
    last = ERROR_PROBS[0]
    for p, rate in zip(ERROR_PROBS, hit_rates):
        if rate >= 0.5:
            last = p
    return last


@pytest.fixture(scope="module")
def base_workload():
    return adpcm_like_workload(n_segments=12, seed=0)


def test_bench_wall_vs_processor_speed(benchmark, base_workload, report):
    speeds = (2.0, 4.0, 8.0)
    benchmark.pedantic(
        _hit_rate, args=(base_workload, 1e-5, 4.0), rounds=3, iterations=1
    )
    rows = []
    walls = {}
    for s in speeds:
        rates = [_hit_rate(base_workload, p, s) for p in ERROR_PROBS]
        walls[s] = _wall_position(rates)
        rows.append((f"{s:.0f}x", *(f"{r:.2f}" for r in rates)))
    report(
        "Wall ablation: WCET hit rate vs p for different max processor speeds",
        ("max speed", *(f"{p:.0e}" for p in ERROR_PROBS)),
        rows,
    )
    # Faster processors move the wall outward (or keep it, never inward).
    assert walls[8.0] >= walls[2.0]

    # Batched and scalar hit-rate kernels agree within MC tolerance.
    for p in (1e-6, 1e-5):
        assert abs(
            _hit_rate(base_workload, p, 4.0) - _hit_rate_scalar(base_workload, p, 4.0)
        ) <= 0.15


def test_bench_wall_vs_checkpoint_granularity(benchmark, report):
    """Finer segmentation shrinks per-segment n_c, pushing the wall out.

    Splitting the same total work into more segments costs more
    checkpoints but makes each rollback far cheaper.
    """
    benchmark.pedantic(
        _hit_rate,
        args=(adpcm_like_workload(n_segments=12, seed=0), 3e-6, 4.0),
        rounds=2,
        iterations=1,
    )
    total = 1_800_000
    rows = []
    walls = {}
    for n_segments in (6, 12, 48):
        seg = total // n_segments
        workload = SegmentedWorkload(
            f"uniform_{n_segments}", [seg] * n_segments, deadline_slack=0.15
        )
        rates = [_hit_rate(workload, p, 4.0) for p in ERROR_PROBS]
        walls[n_segments] = _wall_position(rates)
        rows.append((n_segments, *(f"{r:.2f}" for r in rates)))
    report(
        "Wall ablation: WCET hit rate vs p for checkpoint granularities",
        ("#segments", *(f"{p:.0e}" for p in ERROR_PROBS)),
        rows,
    )
    assert walls[48] >= walls[6], "finer checkpointing must not pull the wall in"


def test_bench_expected_overhead_vs_granularity(benchmark, report):
    """Analytic view: expected cycle-overhead factor per granularity."""
    benchmark.pedantic(
        CheckpointSystem(1e-5).expected_overhead_factor,
        args=(150_000,),
        rounds=5,
        iterations=10,
    )
    total = 1_800_000
    p = 1e-5
    rows = []
    overheads = {}
    for n_segments in (6, 12, 48, 120):
        seg = total // n_segments
        cp = CheckpointSystem(p)
        factor = cp.expected_overhead_factor(seg)
        overheads[n_segments] = factor
        rows.append((n_segments, f"{factor:.3f}"))
    report(
        f"Expected execution overhead factor at p={p:.0e}",
        ("#segments", "overhead factor"),
        rows,
    )
    assert overheads[120] < overheads[6]


def test_bench_optimal_checkpoint_count(benchmark, report):
    """[51]: execution overhead minimized by optimizing checkpoint count."""
    total = 1_800_000
    cp_mid = CheckpointSystem(1e-5)
    n_opt_mid = benchmark.pedantic(
        cp_mid.optimal_segment_count, args=(total,), rounds=3, iterations=1
    )
    rows = []
    for p in (1e-7, 1e-6, 1e-5, 1e-4):
        cp = CheckpointSystem(p)
        n_opt = cp.optimal_segment_count(total)
        at_opt = cp.expected_total_cycles(total, n_opt) / total
        at_paper = cp.expected_total_cycles(total, 12) / total  # the Fig. 5 setup
        rows.append(
            (f"{p:.0e}", n_opt, f"{at_opt:.4f}", f"{at_paper:.4f}")
        )
    report(
        "[51]: optimal checkpoint count vs the paper's 12-segment setup",
        ("p", "optimal #segments", "overhead@opt", "overhead@12"),
        rows,
    )
    assert n_opt_mid > 12  # at 1e-5 the paper's granularity is far from optimal
    cp = CheckpointSystem(1e-5)
    assert cp.expected_total_cycles(total, n_opt_mid) < cp.expected_total_cycles(
        total, 12
    )
