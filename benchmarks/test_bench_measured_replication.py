"""Refs [25],[26] measured — duplicate-and-compare program transformation.

The analytic IPAS bench models slowdown/coverage; this bench *measures*
them: programs are actually transformed (duplicated computation +
compare + detection handler), executed on the CPU simulator, and
fault-injected.  Combining the transform with the IPAS SVM's
vulnerable-instruction selection closes the loop: learned selection,
measured protection.
"""

import numpy as np
import pytest

from repro.arch import ReplicationStudy, measure_protection
from repro.arch import programs as P


@pytest.fixture(scope="module")
def programs():
    return [P.checksum(10), P.vector_add(8), P.fibonacci(10)]


def test_bench_measured_full_duplication(benchmark, programs, report):
    program = programs[0]
    full_set = set(range(len(program.instructions)))
    result = benchmark.pedantic(
        measure_protection, args=(program, full_set),
        kwargs={"n_trials": 200, "seed": 0}, rounds=1, iterations=1,
    )
    rows = []
    for prog in programs:
        m = measure_protection(
            prog, set(range(len(prog.instructions))), n_trials=200, seed=0
        )
        rows.append(
            (
                prog.name,
                f"{m.slowdown:.2f}x",
                f"{m.sdc_rate_unprotected:.2f}",
                f"{m.sdc_rate_protected:.2f}",
                f"{m.detection_rate:.2f}",
            )
        )
    report(
        "[25],[26] measured: full duplicate-and-compare per workload",
        ("program", "slowdown", "SDC before", "SDC after", "detected"),
        rows,
    )
    assert result.sdc_reduction > 0.95
    assert result.detection_rate > 0.8
    assert result.slowdown < 3.6


def test_bench_measured_ipas_selection(benchmark, programs, report):
    """SVM-selected protection, measured: most of the SDC reduction at a
    fraction of full duplication's slowdown."""
    study = ReplicationStudy(programs, n_trials_per_instruction=30, seed=0)
    svm, scaler = study.train_svm()

    rows = []
    ratios = []
    for prog in programs:
        from repro.arch.selective_replication import _instruction_features

        counts = study._exec_counts[prog.name]
        X = np.asarray(
            [
                _instruction_features(prog, idx, counts)
                for idx in range(len(prog.instructions))
            ]
        )
        selected = {
            i for i, flag in enumerate(svm.predict(scaler.transform(X))) if flag == 1
        }
        full_set = set(range(len(prog.instructions)))
        m_sel = measure_protection(prog, selected, n_trials=150, seed=1)
        m_full = measure_protection(prog, full_set, n_trials=150, seed=1)
        overhead_ratio = (m_sel.slowdown - 1.0) / max(m_full.slowdown - 1.0, 1e-9)
        ratios.append(overhead_ratio)
        rows.append(
            (
                prog.name,
                len(selected),
                f"{m_sel.slowdown:.2f}x vs {m_full.slowdown:.2f}x",
                f"{m_sel.sdc_reduction:.2f}",
                f"{overhead_ratio:.2f}",
            )
        )
    benchmark.pedantic(
        measure_protection, args=(programs[0], {4, 5}),
        kwargs={"n_trials": 60, "seed": 2}, rounds=1, iterations=1,
    )
    report(
        "[27]+[25] measured: SVM-selected duplication vs full duplication",
        ("program", "#protected", "slowdown (sel vs full)", "SDC reduction", "overhead ratio"),
        rows,
    )
    # Selected protection must cost materially less than full duplication.
    assert np.mean(ratios) < 0.9
