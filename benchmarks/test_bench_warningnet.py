"""Sec. III-C2 ref [32] — WarningNet: early warning under input perturbation.

Paper: a small network running in parallel with a mission-critical task
detects input noise/environmental conditions that would cause task
failures, consuming only ~1/20 of the mission task's time, enabling
on-demand input pre-processing.
"""

import pytest

from repro.arch import WarningNet
from repro.arch.warning_net import PERTURBATION_KINDS, make_image_dataset, perturb
from repro.ml import MLPClassifier, train_test_split
import numpy as np


@pytest.fixture(scope="module")
def setup():
    X, y = make_image_dataset(n_samples=700, seed=3)
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.35, seed=0)
    mission = MLPClassifier(hidden=(64, 32), n_epochs=120, lr=3e-3, seed=0).fit(Xtr, ytr)
    warning = WarningNet(mission, seed=0).fit(Xtr[:250], ytr[:250])
    return mission, warning, Xte, yte


def test_bench_warningnet(benchmark, setup, report):
    mission, warning, Xte, yte = setup
    result = benchmark.pedantic(
        warning.evaluate, args=(Xte[:180], yte[:180]), rounds=2, iterations=1
    )
    report(
        "[32] WarningNet: failure warnings under input perturbation",
        ("metric", "measured", "paper"),
        [
            ("warning accuracy", f"{result.accuracy:.3f}", "-"),
            ("failure recall (lead warnings)", f"{result.recall:.3f}", "high"),
            ("precision", f"{result.precision:.3f}", "-"),
            ("cost vs mission task", f"{result.cost_ratio:.3f}", "~0.05 (1/20)"),
        ],
    )
    assert result.recall > 0.7
    assert result.cost_ratio < 0.08, "WarningNet must cost a small fraction"


def test_bench_warningnet_severity_response(benchmark, setup, report):
    """Warnings must track perturbation severity per perturbation kind."""
    mission, warning, Xte, yte = setup
    rng = np.random.default_rng(0)
    rows = []
    rates = {}
    benchmark.pedantic(warning.warn, args=(Xte[:50],), rounds=3, iterations=1)
    for kind in PERTURBATION_KINDS:
        per_severity = []
        for severity in (0.1, 0.5, 0.9):
            Xp = perturb(Xte[:120], kind, severity, rng=rng)
            per_severity.append(float(np.mean(warning.warn(Xp))))
        rates[kind] = per_severity
        rows.append((kind, *(f"{r:.2f}" for r in per_severity)))
    report(
        "[32]: warning rate vs perturbation severity",
        ("kind", "sev 0.1", "sev 0.5", "sev 0.9"),
        rows,
    )
    # Severe perturbations must trigger more warnings than mild ones.
    for kind, series in rates.items():
        assert series[2] >= series[0], kind
