"""Fig. 6 — deadline hit rate vs error probability per mitigation policy.

Paper: hit rates fall from ~1 to ~0 inside the 1e-6..1e-5 window; within
the window conservative policies (WCET > DS 2x > DS 1.5x > DS) win; past
the wall every policy converges to zero.
"""

import pytest

from repro.core import ALL_POLICIES, MonteCarloStudy, adpcm_like_workload

ERROR_PROBS = [1e-8, 1e-7, 3e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4]


@pytest.fixture(scope="module")
def study():
    workload = adpcm_like_workload(n_segments=12, seed=0)
    return MonteCarloStudy(workload, n_runs=100, seed=0)


@pytest.fixture(scope="module")
def sweep(study):
    # Parallel campaign runtime; bit-identical to the serial sweep
    # (asserted in test_bench_fig5_rollbacks).
    return study.sweep(ERROR_PROBS, jobs=2)


def test_bench_fig6_deadline_hit_rate(benchmark, study, sweep, report):
    benchmark.pedantic(study.run_level, args=(3e-6,), rounds=3, iterations=1)

    names = [p.name for p in ALL_POLICIES]
    rows = [
        (f"{pt.error_probability:.0e}", *(f"{pt.hit_rate[n]:.2f}" for n in names))
        for pt in sweep
    ]
    report(
        "Fig. 6: deadline hit rate vs error probability (100 MC runs/policy)",
        ("p", *names),
        rows,
    )

    for name in names:
        rates = [pt.hit_rate[name] for pt in sweep]
        assert rates[0] > 0.95, f"{name} safe well below the wall"
        assert rates[-1] < 0.05, f"{name} fails past the wall"

    # Conservative ordering inside the 1e-6..1e-5 window.
    window = [pt for pt in sweep if 1e-6 <= pt.error_probability <= 1e-5]
    assert window
    for pt in window:
        hr = pt.hit_rate
        assert hr["WCET"] >= hr["DS 2x"] - 0.05
        assert hr["DS 2x"] >= hr["DS 1.5x"] - 0.05
        assert hr["DS 1.5x"] >= hr["DS"] - 0.05

    # The wall for every policy sits in the paper's window.
    for name in names:
        wall = study.find_wall(sweep, name)
        assert wall.first_failed_p <= 1e-4
        assert wall.last_safe_p >= 1e-8


def test_bench_fig6_scalar_reference(benchmark, study, sweep):
    """Scalar reference kernel at the wall's center: timed, and its hit
    rates must agree with the batched sweep within MC tolerance."""
    reference = MonteCarloStudy(
        study.workload, n_runs=study.n_runs, seed=study.seed, kernel="scalar"
    )
    benchmark.pedantic(reference.run_level, args=(3e-6,), rounds=3, iterations=1)

    point = reference.run_level(3e-6)
    batched = sweep[ERROR_PROBS.index(3e-6)]
    for name, rate in point.hit_rate.items():
        assert abs(rate - batched.hit_rate[name]) <= 0.15, name
        assert point.mean_energy[name] == pytest.approx(
            batched.mean_energy[name], rel=0.2
        )


def test_bench_fig6_energy_tradeoff(benchmark, study, sweep, report):
    """Sec. V-C's cost note: conservative policies buy hit rate with energy."""
    benchmark.pedantic(study.run_level, args=(1e-8,), rounds=2, iterations=1)
    safe = sweep[0]
    names = [p.name for p in ALL_POLICIES]
    report(
        "Fig. 6 companion: mean energy per run (error-free regime)",
        ("policy", "energy (cycle*speed^2)"),
        [(n, f"{safe.mean_energy[n]:.3e}") for n in names],
    )
    assert safe.mean_energy["WCET"] > safe.mean_energy["DS 2x"]
    assert safe.mean_energy["DS 2x"] > safe.mean_energy["DS"]
