"""Sec. IV refs [1],[33],[43] — RL-DVFS dynamic reliability management.

Paper: learning-based managers tune V-f at run time to optimize
availability/lifetime under SER, temperature, performance, and power
constraints, adapting to workload variation where static policies cannot.
The bench compares the Q-learning DVFS manager with static-max, random,
and greedy-thermal baselines on one mission window.
"""

import pytest

from repro.system import (
    GreedyThermalManager,
    RandomManager,
    RLDVFSManager,
    StaticManager,
    generate_task_set,
    run_managed_simulation,
)

DURATION = 20.0
N_CORES = 4


@pytest.fixture(scope="module")
def task_set():
    return generate_task_set(n_tasks=8, total_utilization=2.0, seed=0)


@pytest.fixture(scope="module")
def results(task_set):
    out = {}
    out["static max V-f"] = run_managed_simulation(
        StaticManager(), task_set, n_cores=N_CORES, duration=DURATION, seed=0
    )
    out["random"] = run_managed_simulation(
        RandomManager(seed=1), task_set, n_cores=N_CORES, duration=DURATION, seed=0
    )
    out["greedy thermal"] = run_managed_simulation(
        GreedyThermalManager(hot_c=55.0, cool_c=45.0),
        task_set, n_cores=N_CORES, duration=DURATION, seed=0,
    )
    rl = RLDVFSManager(seed=0)
    out["RL-DVFS"] = run_managed_simulation(
        rl, task_set, n_cores=N_CORES, duration=DURATION, seed=0, training_episodes=8
    )
    return out


def test_bench_rl_dvfs_manager(benchmark, task_set, results, report):
    benchmark.pedantic(
        run_managed_simulation,
        args=(StaticManager(), task_set),
        kwargs={"n_cores": N_CORES, "duration": 5.0, "seed": 3},
        rounds=2,
        iterations=1,
    )

    rows = [
        (
            name,
            f"{m.deadline_hit_rate:.3f}",
            f"{m.functional_reliability:.4f}",
            f"{m.peak_temperature_c:.1f}",
            f"{m.energy_j:.1f}",
            f"{m.mttf_years:.2f}",
        )
        for name, m in results.items()
    ]
    report(
        "[1],[43]: dynamic reliability management over one mission window",
        ("manager", "deadline hit", "functional rel.", "peak T (C)", "energy (J)", "MTTF (y)"),
        rows,
    )

    rl = results["RL-DVFS"]
    static = results["static max V-f"]
    random = results["random"]
    # RL keeps deadlines near the static optimum...
    assert rl.deadline_hit_rate > 0.95
    assert rl.deadline_hit_rate > random.deadline_hit_rate
    # ...while spending less energy / running cooler than static-max.
    assert rl.energy_j < static.energy_j
    assert rl.peak_temperature_c <= static.peak_temperature_c + 0.5


def test_bench_per_core_vs_global_dvfs(benchmark, report):
    """Sec. IV ablation: DVFS "applied to cores individually ... or globally".

    On a skewed workload (two heavy cores, light elsewhere), per-core
    agents can slow lightly loaded cores without throttling busy ones —
    once they have enough training episodes; with few episodes the single
    global agent is more sample-efficient (the survey's caution about
    learning overheads at scale).
    """
    from repro.system import PerCoreRLDVFSManager, Task, TaskSet

    skewed = TaskSet(
        [Task(f"heavy{i}", wcet=0.08, period=0.1) for i in range(2)]
        + [Task(f"light{i}", wcet=0.004, period=0.1) for i in range(6)]
    )
    rows = []
    results = {}
    for name, factory, eps in (
        ("static max", lambda: StaticManager(), 0),
        ("global RL (10 ep)", lambda: RLDVFSManager(seed=0), 10),
        ("per-core RL (10 ep)", lambda: PerCoreRLDVFSManager(seed=0), 10),
        ("per-core RL (25 ep)", lambda: PerCoreRLDVFSManager(seed=0), 25),
    ):
        m = run_managed_simulation(
            factory(), skewed, n_cores=4, duration=20.0, seed=0,
            training_episodes=eps,
        )
        results[name] = m
        rows.append(
            (name, f"{m.deadline_hit_rate:.3f}", f"{m.energy_j:.1f}",
             f"{m.peak_temperature_c:.1f}")
        )
    benchmark.pedantic(
        run_managed_simulation,
        args=(PerCoreRLDVFSManager(seed=1), skewed),
        kwargs={"n_cores": 4, "duration": 4.0, "seed": 1},
        rounds=1,
        iterations=1,
    )
    report(
        "Sec. IV ablation: global vs per-core DVFS on a skewed workload",
        ("manager", "deadline hit", "energy (J)", "peak T (C)"),
        rows,
    )
    static = results["static max"]
    trained = results["per-core RL (25 ep)"]
    assert trained.deadline_hit_rate > 0.97
    assert trained.energy_j < static.energy_j


def test_bench_rl_dvfs_learning_curve(benchmark, task_set, report):
    """Reward improves over training episodes (the Fig. 1 loop converging)."""
    rl = RLDVFSManager(seed=1)
    hit_rates = []
    for episode in range(6):
        metrics = run_managed_simulation(
            rl, task_set, n_cores=N_CORES, duration=8.0, seed=100 + episode
        )
        rl.training = True  # keep learning across windows
        hit_rates.append(metrics.deadline_hit_rate)
    benchmark.pedantic(
        run_managed_simulation,
        args=(rl, task_set),
        kwargs={"n_cores": N_CORES, "duration": 4.0, "seed": 999},
        rounds=1,
        iterations=1,
    )
    report(
        "RL-DVFS learning: deadline hit rate per training window",
        ("episode", "hit rate"),
        [(i, f"{h:.3f}") for i, h in enumerate(hit_rates)],
    )
    assert max(hit_rates[-3:]) >= max(hit_rates[:2]) - 0.02
    assert rl.agent.n_visited_states > 1
