"""Sec. III-C1 ref [27] — IPAS: SVM-guided selective instruction replication.

Paper: replicating only SVM-classified-vulnerable instructions achieved
up to 47 % less slowdown than the baseline selective-replication
technique while maintaining similar SDC coverage.
"""

import numpy as np
import pytest

from repro.arch import ReplicationStudy
from repro.arch import programs as P


@pytest.fixture(scope="module")
def study():
    return ReplicationStudy(
        [P.dot_product(8), P.checksum(12), P.vector_add(8), P.fibonacci(10)],
        n_trials_per_instruction=30,
        seed=0,
    )


def test_bench_ipas_replication(benchmark, study, report):
    benchmark.pedantic(study.train_svm, rounds=3, iterations=1)

    rows = []
    reductions = []
    coverage_gaps = []
    for program in study.programs:
        heuristic = study.evaluate_heuristic(program)
        ipas = study.evaluate_ipas(program)
        full = study.evaluate_full_replication(program)
        reduction = ipas.slowdown_reduction_vs(heuristic)
        reductions.append(reduction)
        coverage_gaps.append(heuristic.coverage - ipas.coverage)
        rows.append(
            (
                program.name,
                f"{full.slowdown:.2f}",
                f"{heuristic.coverage:.2f}/{heuristic.slowdown:.2f}",
                f"{ipas.coverage:.2f}/{ipas.slowdown:.2f}",
                f"{reduction:.0%}",
            )
        )
    report(
        "[27] IPAS: coverage/slowdown per strategy (slowdown = exec overhead)",
        ("program", "full slowdown", "heuristic cov/slow", "IPAS cov/slow", "slowdown cut"),
        rows,
    )
    print(
        f"mean slowdown reduction vs baseline selective replication: "
        f"{np.mean(reductions):.0%} (paper: up to 47%)"
    )

    assert np.mean(reductions) > 0.1, "IPAS must cut the baseline's slowdown"
    assert max(reductions) > 0.2
    assert np.mean(coverage_gaps) < 0.35, "coverage must stay comparable"


def test_bench_ipas_leave_one_out(benchmark, study, report):
    """Generalization: the SVM trained on other workloads protects a new one."""
    target = study.programs[1]
    result = benchmark.pedantic(
        study.leave_one_out, args=(target,), rounds=1, iterations=1
    )
    report(
        "[27] IPAS leave-one-out on " + target.name,
        ("metric", "value"),
        [
            ("coverage", f"{result.coverage:.2f}"),
            ("slowdown", f"{result.slowdown:.2f}"),
            ("protected fraction", f"{result.protected_fraction:.2f}"),
        ],
    )
    assert result.coverage > 0.3
