"""Sec. II HDC claim — ~40 % component error rate, ~0.5 % accuracy drop.

Paper: "Despite an error rate of about 40 % on average, the inference
accuracy with HDC drops only by 0.5 %", because hypervector components
are i.i.d. by design.  An MLP under an equally harsh weight-error model
collapses, motivating HDC for unreliable hardware.
"""

import numpy as np
import pytest

from repro.hdc import HDCClassifier
from repro.ml import MLPClassifier, accuracy_score, train_test_split

ERROR_RATES = (0.0, 0.1, 0.2, 0.3, 0.4, 0.45)


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(c, 0.7, size=(80, 6)) for c in (0.0, 2.0, 4.0, 6.0)])
    y = np.repeat([0, 1, 2, 3], 80)
    return train_test_split(X, y, test_size=0.3, seed=1)


@pytest.fixture(scope="module")
def models(dataset):
    Xtr, Xte, ytr, yte = dataset
    hdc = HDCClassifier(dim=4096, retrain_epochs=3, seed=0).fit(Xtr, ytr)
    mlp = MLPClassifier(hidden=(32,), n_epochs=200, lr=3e-3, seed=0).fit(Xtr, ytr)
    return hdc, mlp


def _mlp_accuracy_under_weight_errors(mlp, X, y, error_rate, rng):
    """Flip the sign of a fraction of MLP weights (harsh hardware errors)."""
    import copy

    noisy = copy.deepcopy(mlp)
    for layer in range(len(noisy.weights_)):
        mask = rng.random(noisy.weights_[layer].shape) < error_rate
        noisy.weights_[layer] = np.where(
            mask, -noisy.weights_[layer], noisy.weights_[layer]
        )
    return accuracy_score(y, noisy.predict(X))


def test_bench_hdc_error_robustness(benchmark, dataset, models, report):
    Xtr, Xte, ytr, yte = dataset
    hdc, mlp = models

    benchmark.pedantic(
        hdc.predict, args=(Xte,), kwargs={"error_rate": 0.4}, rounds=2, iterations=1
    )

    rng = np.random.default_rng(42)
    rows = []
    hdc_accs = hdc.accuracy_under_errors(Xte, yte, ERROR_RATES, n_repeats=3)
    for er, hdc_acc in zip(ERROR_RATES, hdc_accs):
        mlp_acc = np.mean(
            [
                _mlp_accuracy_under_weight_errors(mlp, Xte, yte, er, rng)
                for _ in range(3)
            ]
        )
        rows.append((f"{er:.2f}", f"{hdc_acc:.3f}", f"{mlp_acc:.3f}"))
    report(
        "Sec. II: inference accuracy vs hardware error rate",
        ("error rate", "HDC", "MLP (sign-flipped weights)"),
        rows,
    )

    clean = hdc_accs[0]
    at_forty = hdc_accs[ERROR_RATES.index(0.4)]
    drop = clean - at_forty
    print(f"HDC drop at 40% errors: {drop:.3%} (paper: ~0.5%)")
    assert clean > 0.95
    assert drop <= 0.02, "HDC must lose at most ~2% accuracy at 40% errors"
    mlp_at_forty = _mlp_accuracy_under_weight_errors(
        mlp, Xte, yte, 0.4, np.random.default_rng(7)
    )
    assert mlp_at_forty < clean - 0.15, "MLP must degrade far more than HDC"


def test_bench_hdc_dimensionality_ablation(benchmark, dataset, report):
    """DESIGN.md ablation: robustness grows with hypervector dimension."""
    Xtr, Xte, ytr, yte = dataset
    dims = (256, 1024, 4096)
    rows = []
    accs_at_04 = {}
    for dim in dims:
        clf = HDCClassifier(dim=dim, retrain_epochs=2, seed=0).fit(Xtr, ytr)
        accs = clf.accuracy_under_errors(Xte, yte, (0.0, 0.4), n_repeats=3)
        accs_at_04[dim] = accs[1]
        rows.append((dim, f"{accs[0]:.3f}", f"{accs[1]:.3f}"))
    benchmark.pedantic(
        HDCClassifier(dim=1024, retrain_epochs=1, seed=0).fit,
        args=(Xtr, ytr),
        rounds=1,
        iterations=1,
    )
    report(
        "HDC ablation: accuracy vs hypervector dimensionality",
        ("dim", "clean acc", "acc @ 40% errors"),
        rows,
    )
    assert accs_at_04[4096] >= accs_at_04[256] - 0.02
