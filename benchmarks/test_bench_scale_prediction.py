"""Sec. III-B1 ref [21] — predicting large-scale fault behaviour.

Paper: fault behaviours of large-scale applications (4096 cores) can be
modelled with ~90 % accuracy using data from small-scale (single-core)
execution, and boosting models (AdaBoost, stochastic gradient boosting)
are more consistently accurate than MLPs, naive Bayes, or SVMs.
"""

import numpy as np
import pytest

from repro.arch import ScalePredictionStudy


@pytest.fixture(scope="module")
def study():
    return ScalePredictionStudy(n_train=600, n_test=400, seed=0)


@pytest.fixture(scope="module")
def results(study):
    return study.compare_all()


def test_bench_scale_prediction(benchmark, study, results, report):
    benchmark.pedantic(study.evaluate, args=("adaboost",), rounds=1, iterations=1)

    report(
        "[21]: large-scale (4096-core) outcome prediction accuracy per model",
        ("model", "accuracy"),
        [(r.model_name, f"{r.accuracy:.3f}") for r in results],
    )

    by_name = {r.model_name: r.accuracy for r in results}
    # ~90% band for the winning models.
    assert max(by_name.values()) > 0.8
    # Boosting tops the multiclass ranking (SVM row is a binary surrogate).
    assert study.boosting_wins()
    assert by_name["adaboost"] > by_name["naive_bayes"]


def test_bench_scale_prediction_consistency(benchmark, report):
    """The "consistently accurate" claim: stability across dataset draws."""
    accs = {"adaboost": [], "naive_bayes": [], "mlp": []}
    for seed in (1, 2, 3):
        study = ScalePredictionStudy(n_train=400, n_test=300, seed=seed)
        for name in accs:
            accs[name].append(study.evaluate(name).accuracy)
    benchmark.pedantic(
        ScalePredictionStudy, kwargs={"n_train": 100, "n_test": 50, "seed": 9},
        rounds=1, iterations=1,
    )
    rows = [
        (name, f"{np.mean(v):.3f}", f"{np.std(v):.3f}", f"{min(v):.3f}")
        for name, v in accs.items()
    ]
    report(
        "[21]: consistency across dataset draws (3 seeds)",
        ("model", "mean acc", "std", "worst"),
        rows,
    )
    assert np.mean(accs["adaboost"]) > np.mean(accs["naive_bayes"])
