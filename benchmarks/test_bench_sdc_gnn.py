"""Sec. III-B2 ref [24] — GAT prediction of SDC-prone instructions.

Paper: a graph attention network over the instruction graph (typed edges
for inter-instruction relations) predicts each instruction's fault
outcome (SDC / crash / hang / benign); the inductive variant transfers to
unknown programs without retraining or new injections.
"""

import numpy as np
import pytest

from repro.arch import SDCPredictor
from repro.arch import programs as P
from repro.arch.fault_injection import Outcome
from repro.arch.sdc_prediction import LABEL_INDEX, label_instructions


@pytest.fixture(scope="module")
def predictor():
    train = [P.vector_add(8), P.dot_product(8), P.fibonacci(10), P.bubble_sort(6)]
    return SDCPredictor(
        hidden=16, n_epochs=200, lr=0.05, n_trials_per_instruction=25, seed=0
    ).fit(train)


def test_bench_sdc_gnn_inductive(benchmark, predictor, report):
    test_program = P.checksum(12)
    benchmark.pedantic(predictor.predict, args=(test_program,), rounds=3, iterations=1)

    truth = label_instructions(test_program, n_trials_per_instruction=25, seed=50)
    pred = predictor.predict(test_program)
    acc = float(np.mean(pred == truth))
    chance = float(np.max(np.bincount(truth, minlength=4)) / len(truth))

    names = ["masked", "sdc", "crash", "hang"]
    rows = [
        (i, str(instr.opcode.value), names[int(t)], names[int(g)])
        for i, (instr, t, g) in enumerate(
            zip(test_program.instructions, truth, pred)
        )
    ]
    report(
        "[24]: per-instruction outcome, unseen program (truth vs GAT)",
        ("idx", "opcode", "injected truth", "GAT prediction"),
        rows,
    )
    print(f"accuracy: {acc:.3f} (majority baseline {chance:.3f})")
    assert acc >= 0.4  # clearly above 4-class chance on an unseen program

    # SDC-prone shortlist must overlap the truly SDC-labelled instructions.
    prone = set(predictor.sdc_prone_instructions(test_program, threshold=0.25))
    true_sdc = {i for i, t in enumerate(truth) if t == LABEL_INDEX[Outcome.SDC]}
    if true_sdc:
        assert prone & true_sdc, "shortlist must hit at least one true SDC site"


def test_bench_sdc_gnn_training_cost(benchmark):
    """Cost of the one-off inductive training (injection + GAT epochs)."""
    train = [P.vector_add(6), P.fibonacci(8)]

    def build():
        return SDCPredictor(
            hidden=8, n_epochs=40, n_trials_per_instruction=8, seed=1
        ).fit(train)

    predictor = benchmark.pedantic(build, rounds=1, iterations=1)
    assert predictor.predict(P.checksum(8)).shape[0] == len(P.checksum(8).instructions)
