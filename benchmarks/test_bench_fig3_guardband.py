"""Fig. 3 flow payoff — SHE-aware ML sign-off vs worst-case guardbands.

Paper: replacing the global worst-case corner with per-instance
SHE-aware, ML-characterized corners yields less pessimistic guardbands
("better circuit performance ... while still ensuring full reliability"),
and the ML characterization generates thousands of per-instance cells in
one shot instead of per-cell SPICE runs.
"""

import pytest

from repro.circuit import (
    MLCharacterizer,
    SpiceLikeCharacterizer,
    build_default_library,
    guardband_comparison,
    synthesize_core,
)


@pytest.fixture(scope="module")
def netlist():
    library = build_default_library()
    SpiceLikeCharacterizer().characterize_library(library)
    return synthesize_core(library, n_instances=300, seed=1)


@pytest.fixture(scope="module")
def result(netlist):
    return guardband_comparison(
        netlist, build_default_library, ml_training_samples=3000, seed=0
    )


def test_bench_fig3_guardband_comparison(benchmark, netlist, result, report):
    # Time the dominant kernel: generating the per-instance corner library.
    library = build_default_library()
    oracle = SpiceLikeCharacterizer()
    oracle.characterize_library(library)
    ml = MLCharacterizer(oracle=oracle, seed=0).fit(library, n_samples=1500)
    temps = {name: 70.0 for name in netlist.instance_names()}
    benchmark.pedantic(
        ml.generate_instance_library, args=(netlist, library, temps),
        rounds=1, iterations=1,
    )

    report(
        "Fig. 3: sign-off clock period per flow",
        ("flow", "min period (ps)", "guardband vs nominal (ps)"),
        [
            ("nominal (no SHE)", f"{result.nominal_period:.1f}", "0.0"),
            (
                "worst-case corner",
                f"{result.worst_case_period:.1f}",
                f"{result.guardband_worst_case:.1f}",
            ),
            (
                "SHE-aware ML per-instance",
                f"{result.she_aware_period:.1f}",
                f"{result.guardband_she_aware:.1f}",
            ),
        ],
    )
    print(
        f"guardband reduction: {result.guardband_reduction:.1%}, "
        f"performance gain: {result.performance_gain:.2%}, "
        f"ML validation MAPE: {result.ml_validation_mape:.2%}, "
        f"max SHE dT: {result.max_she_dt:.1f} K"
    )

    assert result.worst_case_period > result.nominal_period
    assert result.she_aware_period < result.worst_case_period
    assert result.guardband_reduction > 0.15
    assert result.ml_validation_mape < 0.03


def test_bench_fig3_ml_vs_spice_cost(benchmark, netlist, report):
    """The scalability claim: ML characterization amortizes SPICE cost."""
    library = build_default_library()
    oracle = SpiceLikeCharacterizer()
    oracle.characterize_library(library)
    spice_points_per_cell = len(oracle.slews) * len(oracle.loads)

    ml = MLCharacterizer(oracle=oracle, seed=0)
    ml.fit(library, n_samples=1500)
    training_cost = ml.training_points_

    # Per-instance SPICE characterization would cost this many points:
    n_arcs = sum(len(library.get(i.cell_name).inputs) for i in netlist)
    spice_cost = n_arcs * spice_points_per_cell
    temps = {name: 70.0 for name in netlist.instance_names()}

    def generate():
        before = oracle.simulated_points
        ml.generate_instance_library(netlist, library, temps)
        return oracle.simulated_points - before

    extra_oracle_calls = benchmark.pedantic(generate, rounds=1, iterations=1)
    report(
        "Fig. 3: characterization cost (SPICE-equivalent sample points)",
        ("approach", "oracle points"),
        [
            ("per-instance SPICE (would-be)", spice_cost),
            ("ML: one-off training", training_cost),
            ("ML: per-instance generation", extra_oracle_calls),
        ],
    )
    assert extra_oracle_calls == 0, "ML generation must not call the oracle"
    assert training_cost < spice_cost / 5, "training amortizes below SPICE cost"
