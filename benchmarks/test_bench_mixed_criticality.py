"""Sec. VI-B / ref [38] — learning-oriented mixed-criticality scheduling.

Paper: mixed-criticality systems must guarantee HI-criticality deadlines
across operational modes while preserving LO-task QoS; ML techniques with
low run-time overhead should identify the workload trend.  The bench
compares the learned admission controller with the pessimistic
(conservative-budget) and optimistic (mode-switch-happy) baselines.
"""

import pytest

from repro.system.mixed_criticality import (
    LearnedController,
    MCWorkload,
    OptimisticController,
    PessimisticController,
    generate_lo_tasks,
    run_mc_simulation,
)

N_EPOCHS = 800


@pytest.fixture(scope="module")
def lo_tasks():
    return generate_lo_tasks(6, seed=0)


@pytest.fixture(scope="module")
def learned():
    return LearnedController(quantile=0.95, seed=0).train(
        lambda: MCWorkload(seed=42), n_epochs=1500
    )


@pytest.fixture(scope="module")
def results(lo_tasks, learned):
    out = {}
    for controller in (
        PessimisticController(MCWorkload()),
        OptimisticController(MCWorkload()),
        learned,
    ):
        out[controller.name] = run_mc_simulation(
            controller, MCWorkload(seed=7), lo_tasks, n_epochs=N_EPOCHS
        )
    return out


def test_bench_mixed_criticality(benchmark, lo_tasks, learned, results, report):
    benchmark.pedantic(
        run_mc_simulation,
        args=(learned, MCWorkload(seed=11), lo_tasks),
        kwargs={"n_epochs": 200},
        rounds=3,
        iterations=1,
    )
    rows = [
        (
            name,
            f"{m.qos:.3f}",
            f"{m.hi_miss_rate:.4f}",
            m.mode_switches,
        )
        for name, m in results.items()
    ]
    report(
        "[38]: mixed-criticality admission control over one mission",
        ("controller", "LO QoS", "HI miss rate", "mode switches"),
        rows,
    )

    learned_m = results["learned"]
    pess = results["pessimistic"]
    opt = results["optimistic"]
    # HI guarantees hold for all safe policies.
    assert learned_m.hi_miss_rate < 0.01
    assert pess.hi_miss_rate < 0.01
    # Learned dominates: more QoS than both baselines, far fewer switches
    # than the optimistic one.
    assert learned_m.qos > pess.qos * 1.3
    assert learned_m.qos > opt.qos
    assert learned_m.mode_switches < 0.5 * opt.mode_switches


def test_bench_mixed_criticality_quantile_ablation(benchmark, lo_tasks, report):
    """DESIGN ablation: the safety quantile trades QoS vs mode switches."""
    rows = []
    qos = {}
    switches = {}
    for quantile in (0.6, 0.9, 0.99):
        ctrl = LearnedController(quantile=quantile, seed=0).train(
            lambda: MCWorkload(seed=42), n_epochs=1000
        )
        m = run_mc_simulation(ctrl, MCWorkload(seed=7), lo_tasks, n_epochs=600)
        qos[quantile] = m.qos
        switches[quantile] = m.mode_switches
        rows.append((f"{quantile:.2f}", f"{m.qos:.3f}", m.mode_switches,
                     f"{m.hi_miss_rate:.4f}"))
    benchmark.pedantic(
        LearnedController(seed=1).train,
        args=(lambda: MCWorkload(seed=8),),
        kwargs={"n_epochs": 300},
        rounds=1,
        iterations=1,
    )
    report(
        "[38] ablation: safety quantile vs QoS and mode switches",
        ("quantile", "LO QoS", "mode switches", "HI miss rate"),
        rows,
    )
    assert switches[0.99] <= switches[0.6]
