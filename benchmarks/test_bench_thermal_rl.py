"""Sec. IV-B1 refs [39],[40],[49] — learning-based thermal management.

Paper: RL-based thermal managers (task allocation + DVFS knobs) reduce
peak temperature and thermal cycling, extending lifetime (MTTF) while
preserving performance, compared to static operation.
"""

import pytest

from repro.system import (
    Core,
    MigrationThermalManager,
    RLThermalManager,
    StaticManager,
    generate_task_set,
    run_managed_simulation,
)

DURATION = 25.0


def _skewed_cores():
    """Four identical cores; the skew comes from the task partition."""
    return [Core(i) for i in range(4)]


@pytest.fixture(scope="module")
def task_set():
    # Heavier utilization concentrates heat under first-fit partitioning.
    return generate_task_set(n_tasks=10, total_utilization=2.4, seed=2)


@pytest.fixture(scope="module")
def results(task_set):
    out = {}
    out["static max V-f"] = run_managed_simulation(
        StaticManager(), task_set, duration=DURATION, seed=0,
        cores_factory=_skewed_cores,
    )
    out["migration only"] = run_managed_simulation(
        MigrationThermalManager(gradient_threshold_k=2.0),
        task_set, duration=DURATION, seed=0, cores_factory=_skewed_cores,
    )
    rl = RLThermalManager(t_limit_c=58.0, seed=0)
    out["RL thermal (DVFS+migration)"] = run_managed_simulation(
        rl, task_set, duration=DURATION, seed=0, training_episodes=8,
        cores_factory=_skewed_cores,
    )
    return out


def test_bench_thermal_rl(benchmark, task_set, results, report):
    benchmark.pedantic(
        run_managed_simulation,
        args=(MigrationThermalManager(), task_set),
        kwargs={"duration": 5.0, "seed": 5, "cores_factory": _skewed_cores},
        rounds=2,
        iterations=1,
    )

    rows = [
        (
            name,
            f"{m.peak_temperature_c:.1f}",
            f"{m.mean_cycle_amplitude_k:.2f}",
            f"{m.deadline_hit_rate:.3f}",
            f"{m.mttf_years:.2f}",
        )
        for name, m in results.items()
    ]
    report(
        "[39],[40],[49]: thermal management over one mission window",
        ("manager", "peak T (C)", "mean dT cycle (K)", "deadline hit", "MTTF (y)"),
        rows,
    )

    static = results["static max V-f"]
    rl = results["RL thermal (DVFS+migration)"]
    migration = results["migration only"]
    assert rl.peak_temperature_c <= static.peak_temperature_c
    assert rl.mttf_years >= static.mttf_years * 0.95
    assert rl.deadline_hit_rate > 0.9
    # Migration alone already flattens gradients without hurting deadlines.
    assert migration.deadline_hit_rate > 0.95


def test_bench_thermal_gradient_flattening(benchmark, task_set, report):
    """Spatial-gradient comparison: migration spreads the hot spots."""
    from repro.system.platform import Platform
    from repro.system.scheduler import first_fit_partition

    def run(manager):
        cores = _skewed_cores()
        platform = Platform(
            cores, task_set, first_fit_partition(task_set, cores), seed=0
        )
        platform.run(10.0, manager=manager)
        return platform.thermal.max_spatial_gradient()

    static_gradient = benchmark.pedantic(
        run, args=(StaticManager(),), rounds=1, iterations=1
    )
    migration_gradient = run(MigrationThermalManager(gradient_threshold_k=2.0))
    report(
        "Spatial thermal gradient (max across-die dT)",
        ("manager", "max gradient (K)"),
        [
            ("static", f"{static_gradient:.2f}"),
            ("migration", f"{migration_gradient:.2f}"),
        ],
    )
    assert migration_gradient <= static_gradient + 0.1
