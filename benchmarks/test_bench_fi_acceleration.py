"""Sec. III-B1 ref [20] — ML-accelerated fault injection.

Paper: simple models (kNN, support vectors) trained on structural
features predict flip-flop vulnerability "with similar accuracy while
using about only 20 % of the data for the training", accelerating the
injection campaign by a considerable factor.
"""

import pytest

from repro.arch import FIAccelerationStudy
from repro.arch import programs as P

FRACTIONS = (0.1, 0.2, 0.4, 0.8)


@pytest.fixture(scope="module")
def study():
    return FIAccelerationStudy(
        [P.checksum(12), P.fibonacci(10), P.vector_add(8), P.dot_product(8)],
        n_trials_per_element=60,
        seed=0,
    )


def test_bench_fi_acceleration(benchmark, study, report):
    benchmark.pedantic(
        study.evaluate, kwargs={"train_fraction": 0.2, "model": "knn"},
        rounds=3, iterations=1,
    )

    rows = []
    for model in ("knn", "svm"):
        curve = study.accuracy_vs_fraction(FRACTIONS, model=model, n_repeats=3)
        for frac, acc in curve:
            result = study.evaluate(frac, model=model)
            rows.append(
                (model, f"{frac:.0%}", f"{acc:.3f}", f"{result.injection_savings:.0%}")
            )
    report(
        "[20]: vulnerability-prediction accuracy vs training fraction",
        ("model", "train fraction", "accuracy", "injections saved"),
        rows,
    )

    knn_curve = dict(study.accuracy_vs_fraction(FRACTIONS, model="knn", n_repeats=3))
    # The 20% point must be close to the 80% point (the paper's claim).
    assert knn_curve[0.2] > 0.8
    assert knn_curve[0.8] - knn_curve[0.2] < 0.15


def test_bench_fi_campaign_throughput(benchmark):
    """Raw injection-campaign cost that [20] is amortizing."""
    from repro.arch import FaultInjector

    injector = FaultInjector(P.checksum(12))
    result = benchmark.pedantic(
        injector.run_campaign, kwargs={"n_trials": 100, "seed": 0},
        rounds=3, iterations=1,
    )
    assert len(result.records) == 100


def test_bench_fi_campaign_parallel(benchmark):
    """The same campaign through the parallel runtime (jobs=2).

    Determinism contract: per-trial seed streams make the fan-out
    bit-identical to the serial run above, whatever the worker count.
    """
    from repro.arch import FaultInjector

    injector = FaultInjector(P.checksum(12))
    result = benchmark.pedantic(
        injector.run_campaign, kwargs={"n_trials": 100, "seed": 0, "jobs": 2},
        rounds=3, iterations=1,
    )
    serial = injector.run_campaign(n_trials=100, seed=0)
    assert result.records == serial.records
