"""Sec. III-B2 refs [22],[23] — mining fault-injection / error logs.

Paper: gradient-boosted decision trees find error patterns in large HPC
logs and predict future error occurrences; supervised and unsupervised
techniques together structure >1M-injection datasets.
"""

import numpy as np
import pytest

from repro.arch import FaultInjector, PatternMiner
from repro.arch import programs as P
from repro.arch.fault_injection import OUTCOME_INDEX


@pytest.fixture(scope="module")
def campaigns():
    return [
        FaultInjector(p).run_campaign(n_trials=400, seed=i)
        for i, p in enumerate([P.checksum(12), P.fibonacci(10), P.vector_add(8)])
    ]


@pytest.fixture(scope="module")
def miner(campaigns):
    return PatternMiner(campaigns, seed=0).fit_outcome_predictor(n_estimators=25)


def test_bench_pattern_mining_prediction(benchmark, campaigns, miner, report):
    unseen = FaultInjector(P.dot_product(8)).run_campaign(n_trials=200, seed=99)
    benchmark.pedantic(miner.predict_outcomes, args=(unseen,), rounds=3, iterations=1)

    pred = miner.predict_outcomes(unseen)
    truth = np.array([OUTCOME_INDEX[r.outcome] for r in unseen.records])
    acc = float(np.mean(pred == truth))
    majority = float(np.max(np.bincount(truth)) / len(truth))
    report(
        "[22]: GBDT outcome prediction on an unseen workload's log",
        ("metric", "value"),
        [
            ("records mined", miner.n_records),
            ("training accuracy", f"{miner.training_accuracy():.3f}"),
            ("unseen-campaign accuracy", f"{acc:.3f}"),
            ("majority-class baseline", f"{majority:.3f}"),
        ],
    )
    assert miner.training_accuracy() > majority
    assert acc > majority - 0.02


def test_bench_pattern_mining_importance(benchmark, miner, report):
    importance = benchmark.pedantic(
        miner.feature_importance, kwargs={"n_permutations": 3}, rounds=1, iterations=1
    )
    ranked = sorted(importance.items(), key=lambda kv: -kv[1])
    report(
        "[22]: permutation importance of log features",
        ("feature", "accuracy drop when shuffled"),
        [(k, f"{v:.4f}") for k, v in ranked],
    )
    # Element identity (register vs pc vs ir) must matter for outcomes.
    element_features = {"is_register", "is_pc", "is_ir", "register_index"}
    assert any(k in element_features for k, _ in ranked[:3])


def test_bench_pattern_mining_clusters(benchmark, miner, report):
    summary = benchmark.pedantic(
        miner.cluster_summary, kwargs={"n_clusters": 3}, rounds=1, iterations=1
    )
    report(
        "[23]: unsupervised failure clusters (PCA + k-means)",
        ("cluster", "size", "dominant element", "mean cycle fraction"),
        [
            (s["cluster"], s["size"], s["dominant_element"], f"{s['mean_cycle_fraction']:.2f}")
            for s in summary
        ],
    )
    assert len(summary) >= 2
