"""Sec. IV-A3 ref [2] — NN-based MWTF-maximizing task mapping.

Paper: a neural network estimates vulnerability factors of heterogeneous
cores per task; mapping tasks with the predicted AVF inside the MWTF
objective executes more work between failures than performance-only
mapping, while balancing performance and vulnerability.
"""

import pytest

from repro.system import MWTFMappingStudy, generate_task_set
from repro.system.mwtf_mapping import make_heterogeneous_cores


@pytest.fixture(scope="module")
def study():
    cores = make_heterogeneous_cores(n_big=2, n_little=2, seed=0)
    s = MWTFMappingStudy(cores, seed=0)
    s.train(generate_task_set(12, total_utilization=2.0, seed=5))
    return s


@pytest.fixture(scope="module")
def mappings(study):
    task_set = generate_task_set(8, total_utilization=1.8, seed=9)
    return (
        task_set,
        study.map_performance_only(task_set),
        study.map_mwtf_nn(task_set),
        study.map_mwtf_oracle(task_set),
    )


def test_bench_mwtf_mapping(benchmark, study, mappings, report):
    task_set, perf, nn, oracle = mappings
    benchmark.pedantic(study.map_mwtf_nn, args=(task_set,), rounds=3, iterations=1)

    report(
        "[2]: task mapping strategies on a heterogeneous (big.LITTLE) platform",
        ("strategy", "true MWTF (jobs/failure)", "max core utilization"),
        [
            (r.strategy, f"{r.mwtf:.3e}", f"{r.makespan_utilization:.2f}")
            for r in (perf, nn, oracle)
        ],
    )
    gain = nn.mwtf / perf.mwtf - 1.0
    capture = (nn.mwtf - perf.mwtf) / max(oracle.mwtf - perf.mwtf, 1e-30)
    print(f"NN-mapping MWTF gain over performance-only: {gain:.1%}; "
          f"fraction of oracle gain captured: {capture:.0%}")

    assert oracle.mwtf > perf.mwtf, "vulnerability-aware mapping must win"
    assert nn.mwtf > perf.mwtf
    assert capture > 0.4


def test_bench_mwtf_avf_estimation(benchmark, study, report):
    """Quality of the NN vulnerability estimator across (task, core) pairs."""
    tasks = generate_task_set(6, total_utilization=1.0, seed=11)
    err = benchmark.pedantic(study.estimation_error, args=(tasks,), rounds=2, iterations=1)
    report(
        "[2]: NN AVF estimation error",
        ("metric", "value"),
        [("mean |predicted - true| AVF", f"{err:.3f}")],
    )
    assert err < 0.25


def test_bench_mwtf_generalizes_across_task_sets(benchmark, study, report):
    """The trained estimator transfers to unseen task sets (different seeds)."""
    rows = []
    gains = []
    for seed in (21, 22, 23):
        ts = generate_task_set(8, total_utilization=1.6, seed=seed)
        perf = study.map_performance_only(ts)
        nn = study.map_mwtf_nn(ts)
        gain = nn.mwtf / perf.mwtf - 1.0
        gains.append(gain)
        rows.append((seed, f"{perf.mwtf:.2e}", f"{nn.mwtf:.2e}", f"{gain:.0%}"))
    benchmark.pedantic(
        study.map_performance_only,
        args=(generate_task_set(8, total_utilization=1.6, seed=24),),
        rounds=2, iterations=1,
    )
    report(
        "[2]: MWTF gain on unseen task sets",
        ("task-set seed", "perf-only MWTF", "NN MWTF", "gain"),
        rows,
    )
    assert sum(g > 0 for g in gains) >= 2, "NN mapping must win on most sets"
