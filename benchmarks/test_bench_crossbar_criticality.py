"""Sec. III-C1 ref [28] — fault criticality in memristor crossbars.

Paper: a small neural network predicts whether a crossbar fault is
critical to DNN accuracy with ~99 % accuracy; protecting only critical
faults cuts the redundancy required for fault tolerance by ~93 %.
"""

import numpy as np
import pytest

from repro.arch import CrossbarFaultStudy
from repro.ml import MLPClassifier, recall_score, train_test_split


def _dataset(n=700, side=8, n_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    X = np.zeros((n, side * side))
    y = np.zeros(n, dtype=int)
    half = side // 2
    for i in range(n):
        img = rng.normal(0.0, 0.35, (side, side))
        cls = int(rng.integers(n_classes))
        r0 = 0 if cls in (0, 1) else half
        c0 = 0 if cls in (0, 2) else half
        rr = r0 + rng.integers(half - 1)
        cc = c0 + rng.integers(half - 1)
        img[rr : rr + 2, cc : cc + 2] += 0.9
        X[i] = img.ravel()
        y[i] = cls
    return X, y


@pytest.fixture(scope="module")
def study():
    X, y = _dataset()
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.4, seed=0)
    model = MLPClassifier(hidden=(12,), n_epochs=120, lr=3e-3, seed=0).fit(Xtr, ytr)
    return CrossbarFaultStudy(model, Xte[:180], yte[:180], criticality_threshold=0.008)


def test_bench_crossbar_criticality(benchmark, study, report):
    descs, labels = study.sample_faults(n_faults=500, seed=1)
    predictor, clf = study.train_criticality_predictor(descs, labels, seed=0)
    d2, l2 = study.sample_faults(n_faults=150, seed=2)

    benchmark.pedantic(predictor, args=(d2,), rounds=3, iterations=1)

    pred = predictor(d2)
    acc = float(np.mean(pred == l2))
    rec = recall_score(l2, pred)
    savings = study.redundancy_savings(pred)
    report(
        "[28]: crossbar fault-criticality prediction and redundancy savings",
        ("metric", "value"),
        [
            ("measured critical fraction (train)", f"{labels.mean():.2f}"),
            ("prediction accuracy", f"{acc:.3f}"),
            ("critical-fault recall", f"{rec:.3f}"),
            ("redundancy reduction", f"{savings:.0%}"),
        ],
    )
    assert acc > 0.85, "paper reports ~99%; shape target is high accuracy"
    assert savings > 0.6, "paper reports ~93% redundancy reduction"


def test_bench_crossbar_protection_effectiveness(benchmark, study, report):
    """End-to-end: protecting predicted-critical faults preserves accuracy."""
    descs, labels = study.sample_faults(n_faults=400, seed=3)
    predictor, _ = study.train_criticality_predictor(descs, labels, seed=0)
    d_eval, _ = study.sample_faults(n_faults=120, seed=4)
    pred = predictor(d_eval)

    def accuracy_with_unprotected_faults(protect_mask):
        # Inject every fault that is NOT protected, measure accuracy.
        for desc, protected in zip(d_eval, protect_mask):
            if not protected:
                study.crossbars[desc.layer].inject_stuck_at(
                    desc.row, desc.col, desc.stuck_on
                )
        try:
            acc, _ = study._metrics_with_faults()
        finally:
            for xbar in study.crossbars:
                xbar.clear_faults()
        return acc

    unprotected = benchmark.pedantic(
        accuracy_with_unprotected_faults, args=(np.zeros(len(d_eval), bool),),
        rounds=1, iterations=1,
    )
    selective = accuracy_with_unprotected_faults(pred.astype(bool))
    report(
        "[28]: DNN accuracy under simultaneous faults",
        ("scenario", "accuracy"),
        [
            ("baseline (no faults)", f"{study.baseline_accuracy:.3f}"),
            ("all faults unprotected", f"{unprotected:.3f}"),
            ("selective protection (predicted critical)", f"{selective:.3f}"),
        ],
    )
    assert selective >= unprotected
    assert selective > study.baseline_accuracy - 0.1
