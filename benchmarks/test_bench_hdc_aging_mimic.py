"""Sec. II ref [18] — HDC mimicry of a confidential physics aging model.

Paper: the foundry trains an HDC model on (gate-voltage waveform ->
delta-Vth) pairs from its confidential physics model; the hypervector
model abstracts the proprietary parameters while giving designers a
non-pessimistic aging estimate for close-to-the-edge guardband design.
"""

import numpy as np
import pytest

from repro.hdc import HDCAgingModel
from repro.transistor import Transistor, combined_delta_vth, waveform_duty_cycle


def _dataset(n, seed, length=24, temperature_c=100.0):
    rng = np.random.default_rng(seed)
    pmos = Transistor(is_pmos=True)
    waves, labels = [], []
    for _ in range(n):
        duty_target = rng.uniform(0.05, 0.95)
        wave = (rng.random(length) > duty_target).astype(float) * 0.8
        labels.append(
            float(
                combined_delta_vth(
                    pmos,
                    stress_time_s=3.15e8,
                    duty_cycle=waveform_duty_cycle(wave),
                    temperature_c=temperature_c,
                )
            )
        )
        waves.append(wave)
    return waves, np.asarray(labels)


@pytest.fixture(scope="module")
def fitted():
    waves, labels = _dataset(300, seed=1)
    model = HDCAgingModel(dim=4096, n_buckets=20, seed=0)
    model.fit(waves[:240], labels[:240])
    return model, waves[240:], labels[240:], labels[:240]


def test_bench_hdc_aging_mimic(benchmark, fitted, report):
    model, test_waves, test_labels, train_labels = fitted
    benchmark.pedantic(model.predict, args=(test_waves[:20],), rounds=2, iterations=1)

    pred = model.predict(test_waves)
    corr = float(np.corrcoef(pred, test_labels)[0, 1])
    mae_mv = float(np.mean(np.abs(pred - test_labels)) * 1000)
    worst_case = float(train_labels.max())
    mean_pred = float(pred.mean())
    report(
        "Sec. II [18]: HDC aging-mimic quality",
        ("metric", "value"),
        [
            ("correlation with physics model", f"{corr:.3f}"),
            ("MAE (mV)", f"{mae_mv:.2f}"),
            ("worst-case dVth designers would assume (mV)", f"{worst_case*1000:.1f}"),
            ("mean HDC-predicted dVth (mV)", f"{mean_pred*1000:.1f}"),
        ],
    )

    assert corr > 0.85, "mimic must track the physics model"
    # The non-pessimism argument: per-waveform prediction sits well below
    # the blanket worst-case assumption for typical stimuli.
    assert mean_pred < 0.8 * worst_case


def test_bench_hdc_aging_guardband_savings(benchmark, fitted, report):
    """Guardband pessimism removed by per-waveform aging prediction."""
    model, test_waves, test_labels, train_labels = fitted
    benchmark.pedantic(model.predict, args=(test_waves[:10],), rounds=2, iterations=1)
    pred = model.predict(test_waves)
    worst_case = float(train_labels.max())
    # Safety-margined prediction: add the 95th-percentile residual.
    residual = np.abs(pred - test_labels)
    margin = float(np.quantile(residual, 0.95))
    guardband_pred = pred + margin
    savings = 1.0 - guardband_pred.mean() / worst_case
    report(
        "Sec. II [18]: aging-guardband pessimism removed",
        ("quantity", "mV"),
        [
            ("worst-case guardband", f"{worst_case*1000:.1f}"),
            ("mean margined HDC guardband", f"{guardband_pred.mean()*1000:.1f}"),
            ("pessimism removed", f"{savings:.1%}"),
        ],
    )
    assert savings > 0.1
    # Reliability preserved: margined prediction covers the true shift for
    # the overwhelming majority of waveforms.
    coverage = float(np.mean(guardband_pred >= test_labels))
    assert coverage > 0.9
