"""Deterministic chaos injection for the campaign harness itself.

This repo studies fault injection into *simulated* hardware; this
module injects faults into the *campaign harness*, so tests and CI can
prove the runner's fault-tolerance machinery (timeouts, retries, pool
respawn, resume) actually works.  :class:`ChaosWorker` wraps any runner
worker and, for a deterministically chosen subset of units, makes the
first ``fail_attempts`` execution attempts misbehave:

``"raise"``
    raise :class:`ChaosError` inside the worker (exercises the retry
    path — the future completes with an exception);
``"exit"``
    kill the worker *process* with ``os._exit`` (exercises
    ``BrokenProcessPool`` recovery; degraded to ``ChaosError`` when not
    running inside a pool worker, so a serial run is never killed);
``"hang"``
    sleep ``hang_s`` seconds (exercises the per-unit timeout path);
``"slow"``
    sleep ``slow_s`` seconds, then succeed (exercises ETA/throughput
    accounting under stragglers).

Determinism has two halves:

* **which units misbehave** is a pure function of ``(spec.seed, unit)``
  — each unit's fate is drawn from
  ``SeedSequence(entropy=spec.seed, spawn_key=(crc32(repr(unit)),))``,
  so the same campaign sees the same chaos on every run, in any
  process, at any ``jobs`` value;
* **when a unit stops misbehaving** is an attempt count persisted under
  ``state_dir`` (one file per unit, one byte appended per attempt), so
  "fail the first attempt, succeed on retry" holds across the process
  boundary — the retried attempt may run in a different worker, or in a
  resumed campaign entirely.

Because the wrapper only intercepts *execution*, cache digests and
workload seed streams are untouched: a chaos-ridden campaign that
survives its injections produces results bit-identical to a clean run.
That equivalence is the acceptance contract enforced by
``scripts/chaos_resume_check.py`` and the ``chaos-resume`` CI job.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np


class ChaosError(RuntimeError):
    """The injected worker failure (never raised by real workloads)."""


@dataclass(frozen=True)
class ChaosSpec:
    """What fraction of units misbehave, and how.

    Rates are interpreted as a partition of ``[0, 1)``: a unit's fate
    draw ``u`` selects ``raise`` if ``u < raise_rate``, ``exit`` if it
    falls in the next ``exit_rate``-wide band, then ``hang``, then
    ``slow``; otherwise the unit is untouched.  The rates must sum to
    at most 1.
    """

    raise_rate: float = 0.0
    exit_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    hang_s: float = 30.0
    slow_s: float = 0.05
    fail_attempts: int = 1
    seed: int = 0

    def __post_init__(self):
        for name in ("raise_rate", "exit_rate", "hang_rate", "slow_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.raise_rate + self.exit_rate + self.hang_rate + self.slow_rate > 1.0:
            raise ValueError("chaos rates must sum to at most 1")
        if self.fail_attempts < 0:
            raise ValueError("fail_attempts must be non-negative")

    def fate(self, unit):
        """``None`` or one of ``"raise"/"exit"/"hang"/"slow"`` for a unit."""
        tag = zlib.crc32(repr(unit).encode())
        stream = np.random.SeedSequence(entropy=self.seed, spawn_key=(tag,))
        u = np.random.default_rng(stream).random()
        for kind in ("raise", "exit", "hang", "slow"):
            band = getattr(self, f"{kind}_rate")
            if u < band:
                return kind
            u -= band
        return None


def _in_pool_worker():
    """Whether this process is a worker (safe to ``os._exit``).

    Pool workers are ``multiprocessing`` children; file-queue workers
    are free-standing processes that mark themselves with the
    ``REPRO_WORKER`` environment flag (set by ``repro worker`` before it
    claims its first task).  Either way, hard-exiting kills only the
    worker — never a scheduler or a test process.
    """
    if multiprocessing.parent_process() is not None:
        return True
    return bool(os.environ.get("REPRO_WORKER"))


class ChaosWorker:
    """Picklable wrapper injecting :class:`ChaosSpec` faults into a worker.

    ``state_dir`` holds one attempt-counter file per unit so injected
    failures stop after ``spec.fail_attempts`` attempts even when
    retries land in fresh processes.  Wrap the real worker *after*
    deciding cache keys — chaos must never reach a digest.
    """

    def __init__(self, worker, spec, state_dir):
        self.worker = worker
        self.spec = spec
        self.state_dir = Path(state_dir)

    def _attempt(self, unit):
        """Record one attempt of ``unit``; returns its 0-based index."""
        tag = zlib.crc32(repr(unit).encode())
        path = self.state_dir / f"{tag:08x}.attempts"
        self.state_dir.mkdir(parents=True, exist_ok=True)
        try:
            seen = path.stat().st_size
        except OSError:
            seen = 0
        with open(path, "ab") as fh:
            fh.write(b".")
        return seen

    def __call__(self, unit):
        fate = self.spec.fate(unit)
        if fate is not None and self._attempt(unit) < self.spec.fail_attempts:
            if fate == "raise":
                raise ChaosError(f"injected failure for {unit!r}")
            if fate == "exit":
                if _in_pool_worker():
                    os._exit(17)  # hard death: parent sees BrokenProcessPool
                raise ChaosError(f"injected (serial-safe) death for {unit!r}")
            if fate == "hang":
                time.sleep(self.spec.hang_s)
                raise ChaosError(f"injected hang outlived its budget: {unit!r}")
            if fate == "slow":
                time.sleep(self.spec.slow_s)
        return self.worker(unit)
