"""Pluggable campaign transports (see :mod:`repro.runtime.transports.base`).

The :func:`create_transport` registry maps the CLI's ``--transport``
names to backends:

========  ==========================================================
name      backend
========  ==========================================================
inline    synchronous in-process execution (the serial reference)
pool      local :class:`~concurrent.futures.ProcessPoolExecutor`
fqueue    shared-filesystem queue claimed by ``repro worker`` processes
========  ==========================================================
"""

from __future__ import annotations

from repro.runtime.transports.base import (
    Task,
    Transport,
    TransportContext,
    UnitOutcome,
    execute_task_units,
)
from repro.runtime.transports.fqueue import FileQueueTransport, worker_main
from repro.runtime.transports.inline import LOCAL_WORKER, InlineTransport
from repro.runtime.transports.pool import PoolTransport

#: Registry of constructable transports by CLI/config name.
TRANSPORTS = {
    "inline": InlineTransport,
    "pool": PoolTransport,
    "fqueue": FileQueueTransport,
}


def create_transport(name, **kwargs):
    """Build a transport by registry name (``inline``/``pool``/``fqueue``).

    ``kwargs`` go to the backend constructor — e.g.
    ``create_transport("fqueue", queue_dir=..., workers=4)``.
    """
    try:
        factory = TRANSPORTS[name]
    except KeyError:
        known = ", ".join(sorted(TRANSPORTS))
        raise ValueError(f"unknown transport {name!r} (choose from: {known})")
    return factory(**kwargs)


__all__ = [
    "Task",
    "Transport",
    "TransportContext",
    "UnitOutcome",
    "execute_task_units",
    "InlineTransport",
    "LOCAL_WORKER",
    "PoolTransport",
    "FileQueueTransport",
    "worker_main",
    "TRANSPORTS",
    "create_transport",
]
