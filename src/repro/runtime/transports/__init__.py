"""Pluggable campaign transports (see :mod:`repro.runtime.transports.base`).

The :func:`create_transport` registry maps the CLI's ``--transport``
names to backends:

========  ==========================================================
name      backend
========  ==========================================================
inline    synchronous in-process execution (the serial reference)
pool      local :class:`~concurrent.futures.ProcessPoolExecutor`
fqueue    shared-filesystem queue claimed by ``repro worker`` processes
tcp       socket stream served to ``repro worker --connect`` processes
========  ==========================================================
"""

from __future__ import annotations

from repro.runtime.transports.base import (
    Task,
    Transport,
    TransportContext,
    UnitOutcome,
    execute_task_units,
)
from repro.runtime.transports.fqueue import FileQueueTransport, worker_main
from repro.runtime.transports.inline import LOCAL_WORKER, InlineTransport
from repro.runtime.transports.pool import PoolTransport
from repro.runtime.transports.tcp import TcpTransport, tcp_worker_main

#: Registry of constructable transports by CLI/config name.
TRANSPORTS = {
    "inline": InlineTransport,
    "pool": PoolTransport,
    "fqueue": FileQueueTransport,
    "tcp": TcpTransport,
}


def create_transport(name, **kwargs):
    """Build a transport by registry name (see :data:`TRANSPORTS`).

    ``kwargs`` go to the backend constructor — e.g.
    ``create_transport("fqueue", queue_dir=..., workers=4)`` or
    ``create_transport("tcp", host="0.0.0.0", port=7777)``.  Options the
    backend does not accept raise :class:`ValueError` naming the backend
    (not a bare ``TypeError``), so a typo in ``transport_options``
    surfaces as a configuration error.
    """
    try:
        factory = TRANSPORTS[name]
    except KeyError:
        known = ", ".join(sorted(TRANSPORTS))
        raise ValueError(f"unknown transport {name!r} (choose from: {known})")
    try:
        return factory(**kwargs)
    except TypeError as exc:
        raise ValueError(
            f"transport {name!r} rejected its options: {exc}"
        ) from exc


__all__ = [
    "Task",
    "Transport",
    "TransportContext",
    "UnitOutcome",
    "execute_task_units",
    "InlineTransport",
    "LOCAL_WORKER",
    "PoolTransport",
    "FileQueueTransport",
    "worker_main",
    "TcpTransport",
    "tcp_worker_main",
    "TRANSPORTS",
    "create_transport",
]
