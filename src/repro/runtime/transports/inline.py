"""Inline transport: synchronous in-process execution (the reference).

Every other backend is validated against this one — same units, same
seeds, bit-identical results.  ``submit`` executes the task immediately
in the scheduler's process and buffers its outcomes for the next
``poll``.  Wall-clock budgets are not enforceable here (there is no
other process to kill), matching the historical serial path.
"""

from __future__ import annotations

from repro.runtime.transports.base import (
    Transport,
    _OutcomeBuffer,
    execute_task_units,
)

#: Worker id reported for in-process execution.
LOCAL_WORKER = "local"


class InlineTransport(Transport):
    """Synchronous single-slot transport running units in-process."""

    name = "inline"
    requires_pickling = False

    def __init__(self):
        self._ctx = None
        self._buffer = _OutcomeBuffer()

    def open(self, ctx):
        """Bind to one campaign run."""
        self._ctx = ctx
        self._buffer = _OutcomeBuffer()

    def slots(self):
        """One task at a time, and only once its outcomes were drained."""
        return 0 if self._buffer else 1

    def submit(self, task):
        """Execute the task right now; outcomes surface on the next poll.

        A ``KeyboardInterrupt`` raised mid-unit propagates to the
        scheduler (which journals the interruption), exactly like the
        historical serial path.
        """
        self._buffer.outcomes.extend(execute_task_units(
            self._ctx.worker, task, self._ctx.collect, LOCAL_WORKER
        ))

    def poll(self, timeout):
        """Return the buffered outcomes of the last submission."""
        return self._buffer.drain()

    def expire(self, task_ids):
        """Nothing to expire: submission and completion are atomic here."""
        return [], []

    def close(self, hard=False):
        """Drop any undrained outcomes."""
        self._buffer = _OutcomeBuffer()
