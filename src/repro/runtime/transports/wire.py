"""Frame codec for stream transports: length-prefixed, versioned, checksummed.

A TCP stream is just bytes — no message boundaries, no integrity, no
version negotiation.  This module supplies all three in one small frame
format shared by the :mod:`~repro.runtime.transports.tcp` scheduler and
worker endpoints (and any future stream transport)::

    MAGIC(2) | VERSION(1) | KIND(1) | LEN(4, big-endian) | payload | CRC32(4)

The CRC32 covers header *and* payload, so a flipped length byte cannot
silently desynchronize the stream: any corruption surfaces as a
:class:`WireError` on the frame where it happened, and the decoder
refuses to continue (a corrupt length makes every later boundary
guesswork — the only safe recovery is dropping the connection).

Three layers:

* **frames** — :func:`encode_frame` / :class:`FrameDecoder` move opaque
  byte payloads with integrity.  ``KIND`` distinguishes a self-contained
  message frame from the header/body frames of a chunked message and
  from the raw handshake frames of the auth layer.
* **authentication** — message payloads are pickles, and
  ``pickle.loads`` on attacker-controlled bytes is arbitrary code
  execution, so no payload may be deserialized before the peer is
  authenticated.  Every connection therefore opens with a mutual
  HMAC-SHA256 challenge/response over a shared secret
  (:func:`encode_auth_challenge` … :func:`client_handshake`, modeled on
  :mod:`multiprocessing.connection`'s authkey handshake): the listener
  sends a nonce, the dialer answers ``HMAC(secret, nonce)`` plus its
  own nonce, and the listener's welcome proves *it* holds the secret
  too before the dialer unpickles a campaign payload.  Handshake frames
  (:data:`KIND_AUTH`) carry raw bytes only — they are compared, never
  unpickled — and :class:`MessageAssembler` refuses them outright, so
  an unauthenticated peer can never reach the pickle layer.
* **messages** — :func:`encode_message` / :class:`MessageAssembler`
  (or the combined :class:`MessageStream`) move pickled dicts.  Small
  messages ride in one frame; large ones (streamed campaign results)
  are split into bounded chunk frames so a multi-megabyte value neither
  forces a giant single allocation nor stalls heartbeat traffic behind
  one unbounded write.

Truncation (EOF mid-frame) is *not* corruption — a half-received frame
simply waits for more bytes — but :meth:`FrameDecoder.check_eof` lets a
connection teardown distinguish "clean boundary" from "the peer died
mid-frame".
"""

from __future__ import annotations

import hashlib
import hmac
import pickle
import secrets
import struct
import zlib

#: First two bytes of every frame ("repro wire").
MAGIC = b"RW"

#: Protocol version; bumped on any incompatible frame/message change.
#: v2 made the auth handshake mandatory.
VERSION = 2

#: Frame kinds: one self-contained message, a chunked message's header
#: and body frames, or a raw (never pickled) auth-handshake frame.
KIND_MSG = 1
KIND_CHUNK_HEAD = 2
KIND_CHUNK = 3
KIND_AUTH = 4

_KNOWN_KINDS = frozenset((KIND_MSG, KIND_CHUNK_HEAD, KIND_CHUNK, KIND_AUTH))

#: Struct layout of the fixed header (magic, version, kind, payload len).
_HEADER = struct.Struct(">2sBBI")

#: CRC32 trailer layout.
_TRAILER = struct.Struct(">I")

#: Hard per-frame payload ceiling.  A corrupt length field would
#: otherwise make the decoder buffer gigabytes waiting for a frame that
#: never completes; anything larger travels as chunked frames.
MAX_FRAME_PAYLOAD = 8 * 1024 * 1024

#: Default chunk size for large messages — big enough to amortize frame
#: overhead, small enough to keep the stream responsive between chunks.
DEFAULT_CHUNK_BYTES = 256 * 1024

#: Refuse to assemble a chunked message larger than this (corruption
#: guard mirroring :data:`MAX_FRAME_PAYLOAD` at the message layer).
MAX_MESSAGE_BYTES = 1024 * 1024 * 1024


class WireError(RuntimeError):
    """A frame or message violated the wire protocol (drop the stream)."""


def encode_frame(kind, payload):
    """Encode one frame: header + payload + CRC32 over both."""
    if kind not in _KNOWN_KINDS:
        raise WireError(f"unknown frame kind {kind!r}")
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise WireError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_PAYLOAD}-byte frame ceiling (chunk it)"
        )
    header = _HEADER.pack(MAGIC, VERSION, kind, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(header)) & 0xFFFFFFFF
    return header + payload + _TRAILER.pack(crc)


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    Feed it whatever ``recv`` returned — single bytes, half frames,
    several frames at once — and it yields every complete
    ``(kind, payload)`` pair while buffering the remainder.  Any
    protocol violation (bad magic, unknown version, oversize length,
    CRC mismatch) raises :class:`WireError` and poisons the decoder:
    once framing is lost there is no trustworthy boundary left, so all
    further feeding raises too and the caller must drop the connection.
    """

    def __init__(self):
        self._buf = bytearray()
        self._broken = False

    def feed(self, data):
        """Consume bytes; return the list of completed ``(kind, payload)``."""
        if self._broken:
            raise WireError("frame stream already desynchronized")
        self._buf += data
        frames = []
        try:
            while True:
                frame = self._next_frame()
                if frame is None:
                    return frames
                frames.append(frame)
        except WireError:
            self._broken = True
            raise

    def _next_frame(self):
        if len(self._buf) < _HEADER.size:
            return None
        magic, version, kind, length = _HEADER.unpack_from(self._buf)
        if magic != MAGIC:
            raise WireError(f"bad frame magic {bytes(magic)!r}")
        if version != VERSION:
            raise WireError(
                f"peer speaks wire protocol v{version}, we speak v{VERSION}"
            )
        if kind not in _KNOWN_KINDS:
            raise WireError(f"unknown frame kind {kind}")
        if length > MAX_FRAME_PAYLOAD:
            raise WireError(
                f"frame announces {length} payload bytes, over the "
                f"{MAX_FRAME_PAYLOAD}-byte ceiling"
            )
        total = _HEADER.size + length + _TRAILER.size
        if len(self._buf) < total:
            return None  # truncated: wait for more bytes
        payload = bytes(self._buf[_HEADER.size:_HEADER.size + length])
        (crc,) = _TRAILER.unpack_from(self._buf, _HEADER.size + length)
        expect = zlib.crc32(
            payload, zlib.crc32(bytes(self._buf[:_HEADER.size]))
        ) & 0xFFFFFFFF
        if crc != expect:
            raise WireError(
                f"frame CRC mismatch (got {crc:#010x}, want {expect:#010x})"
            )
        del self._buf[:total]
        return kind, payload

    @property
    def pending(self):
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)

    def check_eof(self):
        """Raise :class:`WireError` if EOF landed mid-frame."""
        if self._buf:
            raise WireError(
                f"stream ended mid-frame with {len(self._buf)} bytes pending"
            )


def encode_message(obj, chunk_bytes=DEFAULT_CHUNK_BYTES):
    """Pickle ``obj`` and encode it as one frame or a chunked sequence.

    Messages at or under ``chunk_bytes`` travel as a single
    :data:`KIND_MSG` frame.  Larger ones become a :data:`KIND_CHUNK_HEAD`
    frame announcing the chunk count and total size, followed by that
    many :data:`KIND_CHUNK` frames — which is how multi-megabyte result
    values stream over the wire without a cache directory in common.
    Returns the ready-to-send bytes.
    """
    body = pickle.dumps(obj)
    if len(body) <= chunk_bytes:
        return encode_frame(KIND_MSG, body)
    chunks = [
        body[off:off + chunk_bytes] for off in range(0, len(body), chunk_bytes)
    ]
    head = pickle.dumps({"chunks": len(chunks), "size": len(body)})
    parts = [encode_frame(KIND_CHUNK_HEAD, head)]
    parts.extend(encode_frame(KIND_CHUNK, chunk) for chunk in chunks)
    return b"".join(parts)


# -- authentication ------------------------------------------------------

#: Size of each side's random challenge nonce.
AUTH_NONCE_BYTES = 32

#: HMAC-SHA256 digest length.
_MAC_BYTES = 32

# Four-byte payload prefixes naming each handshake step.  The MAC of
# each step is keyed on its own prefix, so a response can never be
# replayed as a welcome (and vice versa) — no reflection attacks.
_AUTH_CHALLENGE = b"CHA2"
_AUTH_RESPONSE = b"RSP2"
_AUTH_WELCOME = b"WEL2"


def _secret_bytes(secret):
    if isinstance(secret, str):
        return secret.encode("utf-8")
    return bytes(secret)


def _auth_mac(secret, step, nonce):
    return hmac.new(_secret_bytes(secret), step + nonce, hashlib.sha256).digest()


def encode_auth_challenge(nonce):
    """Listener's opening frame: prove you know the secret for ``nonce``."""
    if len(nonce) != AUTH_NONCE_BYTES:
        raise WireError("auth nonce has the wrong size")
    return encode_frame(KIND_AUTH, _AUTH_CHALLENGE + nonce)


def encode_auth_response(secret, challenge_nonce, my_nonce):
    """Dialer's answer: the challenge's MAC plus a counter-challenge."""
    return encode_frame(
        KIND_AUTH,
        _AUTH_RESPONSE
        + _auth_mac(secret, _AUTH_RESPONSE, challenge_nonce)
        + my_nonce,
    )


def verify_auth_response(secret, nonce, payload):
    """Check a response against our challenge; return the peer's nonce.

    Raises :class:`WireError` on any mismatch — the caller must drop
    the connection without ever having unpickled a byte from it.
    """
    expected_len = len(_AUTH_RESPONSE) + _MAC_BYTES + AUTH_NONCE_BYTES
    if len(payload) != expected_len or not payload.startswith(_AUTH_RESPONSE):
        raise WireError("malformed auth response")
    mac = payload[len(_AUTH_RESPONSE):len(_AUTH_RESPONSE) + _MAC_BYTES]
    if not hmac.compare_digest(mac, _auth_mac(secret, _AUTH_RESPONSE, nonce)):
        raise WireError("auth response rejected (secret mismatch)")
    return payload[len(_AUTH_RESPONSE) + _MAC_BYTES:]


def encode_auth_welcome(secret, peer_nonce):
    """Listener's final frame: prove we too hold the secret."""
    return encode_frame(
        KIND_AUTH, _AUTH_WELCOME + _auth_mac(secret, _AUTH_WELCOME, peer_nonce)
    )


def verify_auth_welcome(secret, nonce, payload):
    """Check the listener's welcome against our counter-challenge."""
    if (len(payload) != len(_AUTH_WELCOME) + _MAC_BYTES
            or not payload.startswith(_AUTH_WELCOME)):
        raise WireError("malformed auth welcome")
    mac = payload[len(_AUTH_WELCOME):]
    if not hmac.compare_digest(mac, _auth_mac(secret, _AUTH_WELCOME, nonce)):
        raise WireError("auth welcome rejected (secret mismatch)")


def client_handshake(sock, secret, timeout=None):
    """Run the dialing side of the handshake on a blocking socket.

    Waits for the listener's challenge, answers it, counter-challenges,
    and verifies the welcome — only frame-level parsing happens here;
    nothing received is unpickled until the listener has proven it
    holds the secret.  Returns any bytes that arrived after the welcome
    frame (feed them to the connection's :class:`MessageStream`).
    Raises :class:`WireError` if the handshake fails or the peer closes
    mid-handshake (the listener drops unauthenticated peers silently).
    """
    decoder = FrameDecoder()
    pending = []

    def recv_frame():
        while not pending:
            data = sock.recv(65536)
            if not data:
                raise WireError(
                    "connection closed during the auth handshake "
                    "(secret mismatch, or the peer is not a repro scheduler?)"
                )
            pending.extend(decoder.feed(data))
        return pending.pop(0)

    if timeout is not None:
        sock.settimeout(timeout)
    kind, payload = recv_frame()
    if (kind != KIND_AUTH
            or len(payload) != len(_AUTH_CHALLENGE) + AUTH_NONCE_BYTES
            or not payload.startswith(_AUTH_CHALLENGE)):
        raise WireError("peer did not open with an auth challenge")
    my_nonce = secrets.token_bytes(AUTH_NONCE_BYTES)
    sock.sendall(encode_auth_response(
        secret, payload[len(_AUTH_CHALLENGE):], my_nonce
    ))
    kind, payload = recv_frame()
    if kind != KIND_AUTH:
        raise WireError("peer sent a non-auth frame before the welcome")
    verify_auth_welcome(secret, my_nonce, payload)
    # Frames decoded past the welcome re-encode losslessly; tack on the
    # decoder's undecoded remainder so the caller loses nothing.
    return (
        b"".join(encode_frame(k, p) for k, p in pending)
        + bytes(decoder._buf)
    )


class _Pending:
    """Singleton marking "no message completed yet" (see :data:`PENDING`)."""

    def __repr__(self):
        return "PENDING"


#: Returned by :meth:`MessageAssembler.feed` when the frame did not
#: complete a message.  A distinct sentinel — not ``None`` — because
#: ``None`` is itself a perfectly valid picklable message.
PENDING = _Pending()


class MessageAssembler:
    """Rebuild pickled messages from decoded frames (chunked or not)."""

    def __init__(self):
        self._expect = 0  # chunk frames still owed by the current message
        self._size = 0
        self._parts = []

    def feed(self, kind, payload):
        """Absorb one frame; return the message or :data:`PENDING`."""
        if kind == KIND_MSG:
            if self._expect:
                raise WireError("message frame arrived inside a chunk run")
            return self._load(payload)
        if kind == KIND_CHUNK_HEAD:
            if self._expect:
                raise WireError("chunk header arrived inside a chunk run")
            head = self._load(payload)
            chunks, size = head.get("chunks"), head.get("size")
            if (not isinstance(chunks, int) or chunks < 1
                    or not isinstance(size, int) or size < 0
                    or size > MAX_MESSAGE_BYTES):
                raise WireError(f"invalid chunk header {head!r}")
            self._expect, self._size, self._parts = chunks, size, []
            return PENDING
        if kind == KIND_CHUNK:
            if not self._expect:
                raise WireError("chunk frame arrived without a chunk header")
            self._parts.append(payload)
            self._expect -= 1
            if self._expect:
                return PENDING
            body = b"".join(self._parts)
            self._parts = []
            if len(body) != self._size:
                raise WireError(
                    f"chunked message reassembled to {len(body)} bytes, "
                    f"header announced {self._size}"
                )
            return self._load(body)
        if kind == KIND_AUTH:
            # Handshake frames are raw bytes handled before the message
            # layer; one arriving here means the peer restarted the
            # handshake mid-session (or is probing) — drop it.
            raise WireError("auth frame outside the connection handshake")
        raise WireError(f"unknown frame kind {kind}")

    @staticmethod
    def _load(body):
        try:
            return pickle.loads(body)
        except Exception as exc:
            raise WireError(f"message payload failed to unpickle: {exc!r}")


class MessageStream:
    """One peer's receive side: bytes in, whole messages out."""

    def __init__(self):
        self._decoder = FrameDecoder()
        self._assembler = MessageAssembler()

    def feed(self, data):
        """Consume stream bytes; return every message completed by them."""
        messages = []
        for kind, payload in self._decoder.feed(data):
            message = self._assembler.feed(kind, payload)
            if message is not PENDING:
                messages.append(message)
        return messages

    def check_eof(self):
        """Raise :class:`WireError` if the stream ended mid-frame."""
        self._decoder.check_eof()
