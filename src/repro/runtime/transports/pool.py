"""Pool transport: task fan-out over a local ``ProcessPoolExecutor``.

The historical ``CampaignRunner`` pool path, rebuilt behind the
:class:`~repro.runtime.transports.base.Transport` protocol.  All
fault-tolerance *decisions* stay in the scheduler; this backend only
reports facts:

* a worker exception rides back as an ``error`` outcome for its unit
  (the shared worker loop catches per-unit failures, so one bad unit
  never voids its task-mates);
* a :class:`~concurrent.futures.process.BrokenProcessPool` (segfault,
  OOM kill) penalizes the units whose task observed the breakage,
  requeues every other in-flight unit without penalty, and — within the
  policy's respawn budget — signals ``respawn`` so capacity returns;
  past the budget it signals ``degraded`` and the scheduler falls back
  to inline execution;
* a hung task cannot be killed individually (pool workers share their
  queue), so :meth:`PoolTransport.expire` tears the whole pool down,
  requeues the innocent in-flight tasks, and signals a budget-free
  ``respawn`` — the historical hang semantics.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.runtime.transports.base import (
    Transport,
    UnitOutcome,
    _OutcomeBuffer,
    execute_task_units,
)


def _pool_run(worker, task, collect):  # module-level so it pickles by reference
    """Execute one task inside a pool worker process."""
    return execute_task_units(worker, task, collect, f"w{os.getpid()}")


class PoolTransport(Transport):
    """Process-pool backend with respawn-on-breakage semantics."""

    name = "pool"
    requires_pickling = True
    deadline_mode = "submit"

    def __init__(self, max_workers=None):
        self._max_workers = max_workers
        self._ctx = None
        self._pool = None
        self._workers = 1
        self._inflight = {}  # future -> Task
        self._respawns_left = 0
        self._degraded = False
        self._buffer = _OutcomeBuffer()

    def open(self, ctx):
        """Bind to one campaign run; the pool itself spawns lazily."""
        self._ctx = ctx
        self._pool = None
        self._workers = int(self._max_workers or ctx.jobs or 1)
        self._inflight = {}
        self._respawns_left = ctx.policy.max_pool_respawns
        self._degraded = False
        self._buffer = _OutcomeBuffer()

    def slots(self):
        """Free worker slots (0 once degraded: nothing runs here anymore)."""
        if self._degraded:
            return 0
        return max(self._workers - len(self._inflight), 0)

    # -- lifecycle helpers -----------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._workers)
            self._buffer.signals.append(
                {"kind": "spawn", "workers": self._workers}
            )

    def _teardown(self, hard):
        if self._pool is None:
            return
        if hard:
            # A hung or dead worker never drains its queue; terminate
            # the processes outright (private attr, guarded) so a
            # sleeping chaos worker cannot outlive the campaign.
            processes = getattr(self._pool, "_processes", None) or {}
            for proc in list(processes.values()):
                try:
                    proc.terminate()
                except (OSError, ValueError):
                    pass
            self._pool.shutdown(wait=False, cancel_futures=True)
        else:
            self._pool.shutdown(wait=True)
        self._pool = None

    def _requeue_inflight(self):
        """Units in flight when a pool dies are casualties, not causes."""
        for task in self._inflight.values():
            self._buffer.outcomes.extend(
                UnitOutcome(index=i, kind="requeue") for i in task.indices
            )
        self._inflight.clear()

    def _handle_broken(self, bounced=None):
        """Recover from a BrokenProcessPool; may degrade past the budget."""
        if bounced is not None:
            self._buffer.outcomes.extend(
                UnitOutcome(index=i, kind="requeue") for i in bounced.indices
            )
        self._requeue_inflight()
        self._teardown(hard=True)
        self._buffer.signals.append({"kind": "broken"})
        if self._respawns_left <= 0:
            self._degraded = True
            self._buffer.signals.append({"kind": "degraded"})
        else:
            self._respawns_left -= 1
            self._buffer.signals.append({"kind": "respawn"})

    # -- protocol ----------------------------------------------------------
    def submit(self, task):
        """Queue one task on the pool (spawning it on first use)."""
        self._ensure_pool()
        try:
            future = self._pool.submit(
                _pool_run, self._ctx.worker, task, self._ctx.collect
            )
        except BrokenProcessPool:
            # Broke before the task ever ran: bounce it back unpenalized.
            self._handle_broken(bounced=task)
            return
        self._inflight[future] = task

    def poll(self, timeout):
        """Harvest finished futures; translate breakage into outcomes."""
        if self._buffer:
            return self._buffer.drain()
        if not self._inflight:
            return [], []
        done, _ = wait(
            list(self._inflight), timeout=timeout, return_when=FIRST_COMPLETED
        )
        broken = False
        for future in done:
            task = self._inflight.pop(future)
            try:
                self._buffer.outcomes.extend(future.result())
            except BrokenProcessPool as exc:
                # This task's units were in the dying worker: penalized.
                broken = True
                self._buffer.outcomes.extend(
                    UnitOutcome(index=i, kind="error", error=exc)
                    for i in task.indices
                )
            except Exception as exc:
                # Task-level failure (e.g. the payload would not
                # unpickle in the worker): penalize every unit with it.
                self._buffer.outcomes.extend(
                    UnitOutcome(index=i, kind="error", error=exc)
                    for i in task.indices
                )
        if broken:
            self._handle_broken()
        return self._buffer.drain()

    def expire(self, task_ids):
        """Kill hung tasks the only way a pool can: full hard teardown.

        The hung units were already penalized by the scheduler; the
        innocent in-flight tasks come back as ``requeue`` outcomes and
        the mandatory pool recreation is signalled as a ``respawn`` that
        does **not** consume the breakage budget (hangs are workload
        behaviour, not worker death).
        """
        expired = set(task_ids)
        self._inflight = {
            future: task for future, task in self._inflight.items()
            if task.task_id not in expired
        }
        self._requeue_inflight()
        self._teardown(hard=True)
        self._buffer.signals.append({"kind": "respawn"})
        return self._buffer.drain()

    def close(self, hard=False):
        """Shut the pool down (gracefully unless ``hard``)."""
        self._inflight.clear()
        self._teardown(hard=hard)
        self._buffer = _OutcomeBuffer()

    def describe(self):
        """Backend description for run records."""
        return {"transport": self.name, "workers": self._workers}
