"""TCP socket transport: campaign tasks over a stream, no shared disk.

The :class:`~repro.runtime.transports.fqueue.FileQueueTransport` needs a
filesystem in common; this transport needs only a route.  The scheduler
listens on a ``host:port``, independently launched
``python -m repro worker --connect HOST:PORT`` processes dial in, and
everything — tasks, claims, results, heartbeats, stop — travels as
length-prefixed, versioned, CRC-checked pickle frames (see
:mod:`~repro.runtime.transports.wire`).

The claim/lease protocol is the fqueue one, translated from renames to
messages, so the scheduler's fault machinery is reused unchanged:

* **authentication** — the messages are pickles, and unpickling bytes
  from an unauthenticated socket would hand arbitrary code execution to
  anyone who can reach the port.  Every connection therefore starts
  with the wire layer's mutual HMAC challenge/response over a shared
  secret (``--auth`` / ``$REPRO_TCP_AUTH``; auto-generated and passed
  to spawned workers through their environment when not configured):
  the scheduler deserializes nothing from a peer that has not answered
  its challenge, and the worker unpickles no payload from a scheduler
  that has not answered *its* counter-challenge.  The handshake
  authenticates but does not encrypt — on untrusted networks, tunnel
  the port (see ``docs/distributed.md``).
* **hello** — a connecting worker introduces itself; the scheduler
  answers with the campaign payload (the pickled unit callable) and
  counts the worker as capacity (``worker.connect`` event).
* **claim** — the worker announces a task the moment it starts
  executing it; the scheduler arms the same per-unit lease it arms for
  a file-queue claim (``deadline_mode="claim"``).
* **result streaming** — with no shared :class:`ResultCache`, unit
  values ride the wire inside the result message, chunk-framed when
  large.  With ``shared_cache=True`` the fqueue contract applies
  instead: values go ``put``/verify into the cache and the message
  carries only ``stored=True`` digest references.
* **liveness** — each worker heartbeats from a background thread
  (independent of task length).  A dropped connection requeues the
  worker's outstanding tasks immediately — the stream's advantage over
  the queue directory, where only staleness can prove death — while
  heartbeat staleness still covers half-open connections that never
  deliver an EOF.  Staleness is judged by scheduler-local arrival of
  new heartbeat values, never by comparing clocks across hosts.
* **stale-report immunity** — requeued units travel under fresh task
  ids, so a zombie's late result names an unknown task and is dropped.

Workers reconnect with jittered exponential backoff when the scheduler
goes away (a ``--resume`` reuses them), drain gracefully on ``stop``,
and discard their local task queue on disconnect — the scheduler has
already requeued everything they held.
"""

from __future__ import annotations

import os
import pickle
import random
import secrets
import selectors
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path

from repro import obs
from repro.runtime.cache import MISS
from repro.runtime.transports.base import (
    Task,
    Transport,
    UnitOutcome,
    _OutcomeBuffer,
    execute_task_units,
)
from repro.runtime.transports.fqueue import (
    HEARTBEAT_INTERVAL_S,
    HEARTBEAT_STALE_S,
    WORKER_ENV_FLAG,
)
from repro.runtime.transports.wire import (
    AUTH_NONCE_BYTES,
    KIND_AUTH,
    PENDING,
    FrameDecoder,
    MessageAssembler,
    MessageStream,
    WireError,
    client_handshake,
    encode_auth_challenge,
    encode_auth_welcome,
    encode_message,
    verify_auth_response,
)

#: Environment variable carrying the shared handshake secret to workers
#: (spawned workers inherit it automatically; external ones must be
#: given it, via this variable or ``repro worker --auth``).
AUTH_ENV = "REPRO_TCP_AUTH"

#: Ceiling on one blocking send before the peer is presumed gone.
SEND_TIMEOUT_S = 30.0

#: Worker-side connect timeout per dial attempt.
CONNECT_TIMEOUT_S = 5.0

#: Worker reconnect backoff: base * 2**attempt, jittered, capped.
BACKOFF_BASE_S = 0.1
BACKOFF_CAP_S = 5.0

#: Bytes pulled per ``recv`` when a socket is readable.
RECV_BYTES = 65536


def parse_address(address):
    """Split ``"host:port"`` into ``(host, port)`` (port validated)."""
    text = str(address).strip()
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"address {address!r} is not HOST:PORT (e.g. 127.0.0.1:7777)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"address {address!r} has a non-numeric port")
    if not 0 <= port <= 65535:
        raise ValueError(f"address {address!r} port is out of range")
    return host, port


def _worker_env(auth):
    """Environment for a spawned worker: flag, secret, package importable."""
    env = dict(os.environ)
    env[WORKER_ENV_FLAG] = "1"
    env[AUTH_ENV] = auth
    package_root = str(Path(__file__).resolve().parents[3])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root + os.pathsep + existing if existing else package_root
    )
    return env


class _Conn:
    """Scheduler-side state of one worker connection."""

    def __init__(self, sock, addr):
        self.sock = sock
        self.addr = addr
        # Frames and messages are decoded separately: until ``authed``
        # flips, incoming frames get frame-level parsing only (struct +
        # CRC, no pickle) and anything but a valid auth response drops
        # the connection.
        self.decoder = FrameDecoder()
        self.assembler = MessageAssembler()
        self.authed = False
        self.nonce = secrets.token_bytes(AUTH_NONCE_BYTES)
        self.worker_id = None  # set by hello
        self.pid = None  # set by hello
        self.assigned = set()  # task ids sent down this connection
        self.connected_at = time.monotonic()


class TcpTransport(Transport):
    """Scheduler-side endpoint of the socket protocol.

    Parameters
    ----------
    host, port:
        The listen address.  ``port=0`` binds an ephemeral port;
        :meth:`ensure_listening` / :attr:`address` report the bound one
        so externally launched workers know where to dial.
    workers:
        Worker processes to spawn locally and babysit
        (``python -m repro worker --connect``).  ``0`` relies entirely
        on workers launched elsewhere; dead spawned workers are
        respawned, and ``policy.max_requeues`` bounds a workload that
        keeps killing them.
    queue_depth:
        Tasks outstanding per live worker — the same backpressure knob
        as fqueue's.
    poll_s:
        Scheduler-side select granularity while waiting for traffic.
    worker_poll_s:
        Idle receive tick passed to spawned workers.
    stale_s:
        Heartbeat age past which a connection is presumed half-open and
        dropped (its tasks requeue).  Judged from scheduler-local
        arrival of new heartbeat values, exactly as fqueue does.
    shared_cache:
        When true, workers write values into the campaign's shared
        :class:`ResultCache` and results carry ``stored=True`` digest
        references (requires a cache and a filesystem in common); when
        false — the default, and the point of this transport — values
        stream back over the wire.
    auth:
        Shared secret for the connection handshake.  Defaults to
        ``$REPRO_TCP_AUTH``, else a random per-transport secret that
        only spawned workers (who inherit it through their environment)
        can answer — externally launched workers then need the secret
        handed to them (``repro worker --auth`` / ``$REPRO_TCP_AUTH``;
        read it from :attr:`auth`).  A peer that cannot answer the
        challenge is dropped before any of its bytes are deserialized.
    """

    name = "tcp"
    requires_pickling = True
    deadline_mode = "claim"
    needs_poll_tick = True

    def __init__(self, host="127.0.0.1", port=0, workers=0, queue_depth=2,
                 poll_s=0.02, worker_poll_s=0.05, stale_s=HEARTBEAT_STALE_S,
                 shared_cache=False, auth=None):
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        if stale_s <= 0:
            raise ValueError("stale_s must be positive")
        if not 0 <= int(port) <= 65535:
            raise ValueError("port must be in [0, 65535]")
        if auth is None:
            auth = os.environ.get(AUTH_ENV) or secrets.token_hex(32)
        if isinstance(auth, bytes):
            auth = auth.decode("utf-8")
        if not auth:
            raise ValueError("auth secret must be non-empty")
        self.auth = str(auth)
        self._auth_secret = self.auth.encode("utf-8")
        self.host = str(host)
        self.port = int(port)
        self.workers = int(workers)
        self.queue_depth = int(queue_depth)
        self.poll_s = float(poll_s)
        self.worker_poll_s = float(worker_poll_s)
        self.stale_s = float(stale_s)
        self.shared_cache = bool(shared_cache)
        self._ctx = None
        self._selector = None
        self._listener = None
        self._bound = None  # (host, port) actually bound
        self._token = None
        self._payload_msg = None
        self._conns = []
        self._inflight = {}  # task_id -> Task
        self._claims = {}  # task_id -> worker id
        self._pending = deque()  # submitted tasks not yet sent to a worker
        self._procs = []
        self._spawn_seq = 0
        self._hb_seen = {}  # worker id -> last heartbeat value (worker clock)
        self._hb_fresh = {}  # worker id -> local monotonic arrival of that value
        self._buffer = _OutcomeBuffer()

    # -- listening ---------------------------------------------------------
    def ensure_listening(self):
        """Bind and listen (idempotent); returns the bound ``(host, port)``.

        Exposed so launchers can learn an ephemeral port *before* the
        campaign starts and hand it to externally started workers.
        """
        if self._listener is None:
            if self._selector is None:
                self._selector = selectors.DefaultSelector()
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(64)
            listener.settimeout(1.0)
            self._listener = listener
            self._bound = listener.getsockname()[:2]
            self._selector.register(listener, selectors.EVENT_READ, None)
        return self._bound

    @property
    def address(self):
        """The bound ``"host:port"`` string (binds on first use)."""
        host, port = self.ensure_listening()
        return f"{host}:{port}"

    # -- lifecycle ---------------------------------------------------------
    def open(self, ctx):
        """Start (or rejoin) a campaign run: publish payload, bring capacity."""
        if self.shared_cache and ctx.cache is None:
            raise ValueError(
                "shared_cache=True needs a result cache: without one, "
                "leave it off and let values stream over the wire"
            )
        self._ctx = ctx
        self.ensure_listening()
        self._inflight = {}
        self._claims = {}
        self._pending = deque()
        self._buffer = _OutcomeBuffer()
        self._token = f"{os.getpid():x}-{time.time_ns():x}"
        try:
            payload_pickle = pickle.dumps(ctx.worker)
        except Exception:
            # The callable cannot travel; publish an empty payload.  The
            # scheduler's picklability probe hits the same failure before
            # the first submission and swaps to inline, as fqueue does.
            payload_pickle = None
        cache_dir = None
        if self.shared_cache and ctx.cache is not None:
            cache_dir = str(ctx.cache.path)
        self._payload_msg = encode_message({
            "kind": "payload",
            "token": self._token,
            "payload_pickle": payload_pickle,
            "collect": ctx.collect,
            "cache_dir": cache_dir,
        })
        # A reused transport may still hold live connections from the
        # previous run (close() keeps them warm for --resume): hand each
        # the fresh payload so their next tasks run this campaign.
        for conn in list(self._conns):
            if conn.worker_id is not None:
                self._send(conn, self._payload_msg)
        self._reap_procs()
        while len(self._procs) < self.workers:
            self._spawn_worker()
        capacity = len(self._procs) + sum(
            1 for conn in self._conns if conn.worker_id is not None
        )
        if capacity:
            self._buffer.signals.append({"kind": "spawn", "workers": capacity})

    def _spawn_worker(self):
        """Launch one ``python -m repro worker --connect`` child."""
        self._spawn_seq += 1
        worker_id = f"w{os.getpid()}-{self._spawn_seq}"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", self.address, "--id", worker_id,
                "--poll", str(self.worker_poll_s),
            ],
            env=_worker_env(self.auth),
            stdout=subprocess.DEVNULL,
        )
        self._procs.append(proc)
        return proc

    def _reap_procs(self):
        self._procs = [proc for proc in self._procs if proc.poll() is None]

    def worker_pids(self):
        """PIDs of the spawned workers (chaos tooling kills these)."""
        return [proc.pid for proc in self._procs if proc.poll() is None]

    def claim_holders(self):
        """Worker ids currently holding a claimed task (smoke tooling).

        Safe to call from another thread while a campaign drives the
        transport: a concurrent mutation just reads as "no claims yet".
        """
        try:
            return set(self._claims.values())
        except RuntimeError:  # dict mutated mid-iteration by the poll loop
            return set()

    def connected_pids(self):
        """``worker_id -> pid`` for every connection past its hello."""
        return {
            conn.worker_id: conn.pid
            for conn in self._conns
            if conn.worker_id is not None and conn.pid
        }

    # -- capacity ----------------------------------------------------------
    def _live_workers(self):
        connected = sum(1 for conn in self._conns if conn.worker_id is not None)
        alive = sum(1 for proc in self._procs if proc.poll() is None)
        return max(connected, alive, 1)

    def slots(self):
        """Bounded by ``queue_depth`` tasks per live worker."""
        return max(self._live_workers() * self.queue_depth
                   - len(self._inflight), 0)

    # -- sending -----------------------------------------------------------
    def _send(self, conn, data):
        """Send bytes down one connection; drop the peer on failure."""
        try:
            conn.sock.settimeout(SEND_TIMEOUT_S)
            conn.sock.sendall(data)
            conn.sock.settimeout(0.0)
            return True
        except OSError:
            self._drop_conn(conn, reason="send failed")
            return False

    def _pick_conn(self):
        """The least-loaded hello'd connection with queue room, or None."""
        best = None
        for conn in self._conns:
            if conn.worker_id is None:
                continue
            if len(conn.assigned) >= self.queue_depth:
                continue
            if best is None or len(conn.assigned) < len(best.assigned):
                best = conn
        return best

    def _flush_pending(self):
        """Assign parked tasks to connections as capacity allows."""
        while self._pending:
            conn = self._pick_conn()
            if conn is None:
                return
            task = self._pending.popleft()
            if task.task_id not in self._inflight:
                continue  # expired while parked
            spec = encode_message({
                "kind": "task",
                "token": self._token,
                "task": task.task_id,
                "indices": list(task.indices),
                "items": list(task.items),
                "digests": list(task.digests),
            })
            conn.assigned.add(task.task_id)
            # A failed send drops the connection, which requeues this
            # task (and the conn's others) for re-dispatch under fresh
            # ids — never re-park it here, or it would run twice.
            self._send(conn, spec)

    # -- protocol ----------------------------------------------------------
    def submit(self, task):
        """Queue one task; it flows to a worker as soon as one has room."""
        self._inflight[task.task_id] = task
        self._pending.append(task)
        self._flush_pending()

    def poll(self, timeout):
        """Service the sockets; collect outcomes, claims, heartbeats."""
        deadline = time.monotonic() + max(timeout or 0.0, 0.0)
        while True:
            remaining = max(deadline - time.monotonic(), 0.0)
            self._service(min(self.poll_s, remaining))
            self._check_stale()
            self._reap_and_respawn()
            self._flush_pending()
            if self._buffer:
                return self._buffer.drain()
            if time.monotonic() >= deadline:
                return [], []

    def _service(self, wait):
        if self._selector is None:
            time.sleep(wait)
            return
        for key, _ in self._selector.select(wait):
            if key.data is None:
                self._accept()
            else:
                self._read_conn(key.data)

    def _accept(self):
        try:
            sock, addr = self._listener.accept()
        except OSError:
            return
        sock.settimeout(0.0)
        conn = _Conn(sock, addr)
        self._conns.append(conn)
        self._selector.register(sock, selectors.EVENT_READ, conn)
        # Challenge immediately: nothing this peer sends is deserialized
        # until it answers with the right HMAC.
        self._send(conn, encode_auth_challenge(conn.nonce))

    def _read_conn(self, conn):
        try:
            data = conn.sock.recv(RECV_BYTES)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop_conn(conn, reason="read failed")
            return
        if not data:
            self._drop_conn(conn, reason="disconnected")
            return
        try:
            frames = conn.decoder.feed(data)
        except WireError as exc:
            self._drop_conn(conn, reason=f"protocol error: {exc}")
            return
        for kind, payload in frames:
            if conn not in self._conns:
                return  # dropped mid-batch (auth or send failure)
            try:
                if not conn.authed:
                    self._auth_conn(conn, kind, payload)
                    continue
                message = conn.assembler.feed(kind, payload)
                if message is PENDING:
                    continue
                self._handle_message(conn, message)
            except WireError as exc:
                self._drop_conn(conn, reason=f"protocol error: {exc}")
                return
            except Exception as exc:
                # A buggy or version-skewed peer must not take the
                # scheduler down: malformed field shapes are treated
                # exactly like wire corruption — the connection dies and
                # its tasks requeue.
                self._drop_conn(conn, reason=f"malformed message: {exc!r}")
                return

    def _auth_conn(self, conn, kind, payload):
        """Admit a peer that answered the challenge; drop anything else.

        Until this succeeds, a connection's bytes get frame-level
        parsing only — the pickle layer is unreachable, so a port
        scanner (or an attacker with a crafted payload) cannot execute
        anything here.
        """
        if kind != KIND_AUTH:
            raise WireError("frame before authentication")
        peer_nonce = verify_auth_response(
            self._auth_secret, conn.nonce, payload
        )
        conn.authed = True
        self._send(conn, encode_auth_welcome(self._auth_secret, peer_nonce))

    def _handle_message(self, conn, message):
        kind = message.get("kind") if isinstance(message, dict) else None
        if kind == "hello":
            self._on_hello(conn, message)
        elif kind == "claim":
            self._on_claim_msg(conn, message)
        elif kind == "heartbeat":
            self._on_heartbeat_msg(message)
        elif kind == "result":
            self._on_result(conn, message)
        # unknown kinds are ignored (forward compatibility)

    def _on_hello(self, conn, message):
        conn.worker_id = str(message.get("worker") or f"conn{id(conn):x}")
        conn.pid = message.get("pid")
        self._hb_fresh[conn.worker_id] = time.monotonic()
        obs.emit("worker.connect", worker=conn.worker_id,
                 addr=f"{conn.addr[0]}:{conn.addr[1]}")
        if self._payload_msg is not None:
            if not self._send(conn, self._payload_msg):
                return
        self._buffer.signals.append({"kind": "spawn", "workers": 1})
        self._flush_pending()

    def _on_claim_msg(self, conn, message):
        if message.get("token") != self._token:
            return  # claim from a run this transport no longer serves
        task_id = message.get("task")
        if task_id in self._inflight and task_id not in self._claims:
            self._claims[task_id] = conn.worker_id
            self._buffer.signals.append({
                "kind": "claim", "task_id": task_id, "worker": conn.worker_id,
            })

    def _on_heartbeat_msg(self, message):
        worker = message.get("worker")
        if worker is None:
            return
        t = float(message.get("t", 0.0))
        if t <= self._hb_seen.get(worker, 0.0):
            return
        self._hb_seen[worker] = t
        # Staleness is judged by when *we* saw a new value, not by the
        # worker's wall clock (cross-host skew must not void live claims).
        self._hb_fresh[worker] = time.monotonic()
        self._buffer.signals.append({
            "kind": "heartbeat",
            "worker": worker,
            "lag_s": max(time.time() - t, 0.0),
            "pid": message.get("pid"),
            "units_done": message.get("units_done", 0),
        })

    def _on_result(self, conn, message):
        if message.get("token") != self._token:
            return  # zombie report from a prior run: drop it unprocessed
        task_id = message.get("task")
        task = self._inflight.get(task_id)
        if task is None:
            conn.assigned.discard(task_id)
            return  # stale report from a requeued task: ignore
        # Build every outcome before committing anything: a malformed
        # report raises out to _read_conn, which drops the connection —
        # and the task, still inflight and still assigned, requeues like
        # any other loss instead of leaving units forever outstanding.
        outcomes = list(self._report_outcomes(task, message))
        del self._inflight[task_id]
        self._claims.pop(task_id, None)
        conn.assigned.discard(task_id)
        self._buffer.outcomes.extend(outcomes)

    def _report_outcomes(self, task, report):
        digest_of = dict(zip(task.indices, task.digests))
        worker = report.get("worker")
        for entry in report.get("units", ()):
            index = entry["index"]
            if index not in digest_of:
                raise WireError(
                    f"result from worker {worker} names unknown unit "
                    f"index {index!r}"
                )
            if not entry.get("ok"):
                error = entry.get("error") or RuntimeError(
                    f"tcp worker {worker} failed unit {index}"
                )
                yield UnitOutcome(
                    index=index, kind="error", error=error, worker=worker,
                    elapsed_s=entry.get("elapsed_s"),
                )
                continue
            if entry.get("stored"):
                cache = self._ctx.cache if self._ctx is not None else None
                if cache is None:
                    raise WireError(
                        f"worker {worker} reported a stored result but "
                        f"this campaign has no shared cache"
                    )
                value = cache.peek(digest_of[index])
                if value is MISS:
                    yield UnitOutcome(
                        index=index, kind="error", worker=worker,
                        error=RuntimeError(
                            f"tcp worker {worker} reported unit {index} "
                            f"stored but its result never reached the "
                            f"shared cache"
                        ),
                    )
                    continue
            else:
                try:
                    value = pickle.loads(entry["value_pickle"])
                except Exception as exc:
                    yield UnitOutcome(
                        index=index, kind="error", worker=worker,
                        error=RuntimeError(
                            f"unit {index} result from worker {worker} "
                            f"did not survive the wire: {exc!r}"
                        ),
                    )
                    continue
            yield UnitOutcome(
                index=index, kind="ok", value=value, worker=worker,
                elapsed_s=entry.get("elapsed_s"),
                telemetry=entry.get("telemetry"),
                stored=bool(entry.get("stored")),
            )

    # -- failure detection -------------------------------------------------
    def _drop_conn(self, conn, reason):
        """Forget a connection and requeue everything it was holding.

        A closed stream is proof of death the queue directory never
        gets: the tasks come back as ``requeue`` outcomes immediately,
        with no staleness wait, and are re-dispatched under fresh ids —
        so a late result from a zombie (it reconnected, or the kernel
        delivered its last write) names an unknown task and is dropped.
        """
        if conn not in self._conns:
            return
        self._conns.remove(conn)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        if conn.worker_id is not None:
            self._hb_fresh.pop(conn.worker_id, None)
            obs.emit("worker.disconnect", worker=conn.worker_id, reason=reason)
        for task_id in conn.assigned:
            task = self._inflight.pop(task_id, None)
            self._claims.pop(task_id, None)
            if task is None:
                continue
            self._buffer.outcomes.extend(
                UnitOutcome(index=i, kind="requeue") for i in task.indices
            )
        conn.assigned = set()

    def _check_stale(self):
        """Drop half-open connections whose heartbeats went stale.

        SIGKILL closes the socket and arrives as EOF; this guards the
        cases that never EOF (network partition, a wedged peer whose
        kernel keeps the connection open).  Workers heartbeat from a
        background thread, so a long unit cannot look stale.  The same
        horizon reaps connections that never finished the handshake or
        the hello — a port scanner, a half-opened client — so a
        long-lived listener cannot accumulate dead sockets.
        """
        now = time.monotonic()
        for conn in list(self._conns):
            last = conn.connected_at
            if conn.worker_id is not None:
                last = max(self._hb_fresh.get(conn.worker_id, 0.0), last)
            if now - last > self.stale_s:
                reason = ("heartbeat stale" if conn.worker_id is not None
                          else "no hello within the staleness horizon")
                self._drop_conn(conn, reason=reason)

    def _reap_and_respawn(self):
        for proc in list(self._procs):
            if proc.poll() is None:
                continue
            self._procs.remove(proc)
            if len(self._procs) < self.workers:
                self._spawn_worker()
                self._buffer.signals.append({"kind": "respawn"})

    def expire(self, task_ids):
        """Void dead leases: forget the tasks, tell their holders."""
        cancelled = {}
        expired = set(task_ids)
        for task_id in task_ids:
            self._inflight.pop(task_id, None)
            self._claims.pop(task_id, None)
            for conn in self._conns:
                if task_id in conn.assigned:
                    conn.assigned.discard(task_id)
                    cancelled.setdefault(id(conn), (conn, []))[1].append(task_id)
        self._pending = deque(
            task for task in self._pending if task.task_id not in expired
        )
        for conn, ids in cancelled.values():
            self._send(conn, encode_message({"kind": "cancel", "tasks": ids}))
        return self._buffer.drain()

    def close(self, hard=False):
        """End this campaign run; connections stay warm for the next.

        Outstanding tasks are withdrawn (workers get a ``cancel`` for
        anything still queued on their side); dropping the workers and
        the listener is :meth:`shutdown`'s job so a transport instance
        can be reused across runs — including a ``--resume``.
        """
        for conn in list(self._conns):
            if conn.assigned:
                self._send(conn, encode_message({
                    "kind": "cancel", "tasks": sorted(conn.assigned),
                }))
                conn.assigned = set()
        self._inflight.clear()
        self._claims.clear()
        self._pending = deque()
        self._payload_msg = None
        self._buffer = _OutcomeBuffer()

    def shutdown(self):
        """Drain workers (``stop`` message), close sockets, reap children."""
        self.close(hard=True)
        stop = encode_message({"kind": "stop"})
        for conn in list(self._conns):
            self._send(conn, stop)
        for conn in list(self._conns):
            self._drop_conn(conn, reason="shutdown")
        if self._listener is not None:
            try:
                self._selector.unregister(self._listener)
            except (KeyError, ValueError, OSError):
                pass
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
            self._bound = None
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        for proc in self._procs:
            try:
                proc.terminate()
                proc.wait(timeout=5.0)
            except (OSError, subprocess.TimeoutExpired):
                proc.kill()
        self._procs = []

    def describe(self):
        """Backend description for run records."""
        return {
            "transport": self.name,
            "address": f"{self.host}:{self.port}" if self._bound is None
            else f"{self._bound[0]}:{self._bound[1]}",
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "shared_cache": self.shared_cache,
        }


# -- worker side ---------------------------------------------------------
class _WireHeartbeat:
    """Background heartbeat sender: liveness decoupled from task length.

    The mirror of fqueue's heartbeat file thread: a daemon thread sends
    a heartbeat message every :data:`HEARTBEAT_INTERVAL_S` under the
    connection's send lock, so a unit that computes for minutes still
    proves its worker alive, while hard death kills the thread with the
    process and the scheduler sees EOF (or staleness).  The send
    socket's timeout is fixed at connection setup and never mutated, so
    the two threads cannot race each other's deadlines; a send that
    fails anyway may have written a partial frame, after which the
    stream has no trustworthy boundary left — the connection is shut
    down so the main loop reconnects on a clean one.
    """

    def __init__(self, sock, lock, worker_id):
        self._sock = sock
        self._lock = lock
        self._worker_id = worker_id
        self.units_done = 0
        self.tasks_done = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{worker_id}", daemon=True
        )

    def beat(self):
        """Send one heartbeat now (progress counters included)."""
        message = encode_message({
            "kind": "heartbeat",
            "worker": self._worker_id,
            "pid": os.getpid(),
            "t": time.time(),
            "units_done": self.units_done,
            "tasks_done": self.tasks_done,
        })
        try:
            with self._lock:
                self._sock.sendall(message)
        except OSError:
            # A timed-out sendall may have left a partial frame on the
            # stream (silent desync the scheduler would later read as
            # corruption from a healthy worker); tear the connection
            # down so the main loop reconnects on a clean one.
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def _run(self):
        while not self._stop.wait(HEARTBEAT_INTERVAL_S):
            self.beat()

    def __enter__(self):
        self.beat()
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=HEARTBEAT_INTERVAL_S)


class _Campaign:
    """Worker-side view of the currently published campaign payload."""

    def __init__(self, message):
        self.token = message.get("token")
        self.collect = bool(message.get("collect"))
        self.cache = None
        self.worker_fn = None
        self.error = None
        cache_dir = message.get("cache_dir")
        payload_pickle = message.get("payload_pickle")
        if payload_pickle is None:
            self.error = "the campaign payload was withheld (unpicklable)"
            return
        try:
            self.worker_fn = pickle.loads(payload_pickle)
        except Exception as exc:
            # Mirror fqueue: a payload that cannot load here must fail
            # loudly per task, not strand the scheduler.
            self.error = (
                f"worker could not load the campaign payload: {exc!r}"
            )
            return
        if cache_dir is not None:
            from repro.runtime.cache import ResultCache

            self.cache = ResultCache(cache_dir)


def _result_entries(outcomes, digest_of, campaign, worker_id):
    """Build result-message unit entries (cache refs or wire values)."""
    entries = []
    for outcome in outcomes:
        entry = {
            "index": outcome.index,
            "ok": outcome.kind == "ok",
            "elapsed_s": outcome.elapsed_s,
        }
        if outcome.kind != "ok":
            entry["error"] = outcome.error
            entries.append(entry)
            continue
        if campaign.cache is not None:
            digest = digest_of[outcome.index]
            campaign.cache.put(digest, outcome.value)
            if not campaign.cache.contains(digest):
                entry["ok"] = False
                entry["error"] = RuntimeError(
                    f"worker {worker_id} could not persist unit "
                    f"{outcome.index} into the shared cache"
                )
            else:
                entry["stored"] = True
                entry["telemetry"] = outcome.telemetry
            entries.append(entry)
            continue
        try:
            entry["value_pickle"] = pickle.dumps(outcome.value)
        except Exception as exc:
            entry["ok"] = False
            entry["error"] = RuntimeError(
                f"unit {outcome.index} result could not be pickled "
                f"for the wire: {exc!r}"
            )
        else:
            entry["telemetry"] = outcome.telemetry
        entries.append(entry)
    return entries


def _encode_result(token, task_id, worker_id, entries):
    """Encode a result message, sanitizing anything that won't pickle."""
    message = {"kind": "result", "token": token, "task": task_id,
               "worker": worker_id, "units": entries}
    try:
        return encode_message(message)
    except Exception:
        safe = [
            {
                "index": e["index"],
                "ok": bool(e.get("ok")) and "error" not in e,
                "elapsed_s": e.get("elapsed_s"),
                **({"stored": True} if e.get("stored") else {}),
                **({"value_pickle": e["value_pickle"]}
                   if "value_pickle" in e else {}),
                **({"error": RuntimeError(repr(e.get("error")))}
                   if not e.get("ok") else {}),
            }
            for e in entries
        ]
        return encode_message({"kind": "result", "token": token,
                               "task": task_id, "worker": worker_id,
                               "units": safe})


class _ConnectionLost(Exception):
    """The stream to the scheduler broke; reconnect and start over."""


def _locked_send(sock, lock, data):
    """Send under the connection lock; broken stream raises.

    The lock serializes whole frames between the main loop and the
    heartbeat thread; the socket's timeout was fixed at setup and is
    never touched here (mutating it from two threads would race the
    receive deadline on the other handle of the connection).
    """
    try:
        with lock:
            sock.sendall(data)
    except OSError:
        raise _ConnectionLost


def _run_task(sock, lock, spec, campaign, worker_id, hb):
    """Claim, execute, and report one task message."""
    task_id = spec.get("task")
    if campaign is None or spec.get("token") != campaign.token:
        return  # a stale task from a withdrawn run: drop it
    if campaign.error is not None:
        entries = [
            {"index": index, "ok": False, "elapsed_s": 0.0,
             "error": RuntimeError(campaign.error)}
            for index in spec["indices"]
        ]
        _locked_send(sock, lock, _encode_result(
            campaign.token, task_id, worker_id, entries,
        ))
        return
    _locked_send(sock, lock, encode_message({
        "kind": "claim", "token": campaign.token, "task": task_id,
        "worker": worker_id,
    }))
    task = Task(
        task_id=task_id,
        indices=tuple(spec["indices"]),
        items=tuple(spec["items"]),
        digests=tuple(spec["digests"]),
    )
    outcomes = execute_task_units(
        campaign.worker_fn, task, campaign.collect, worker_id
    )
    digest_of = dict(zip(task.indices, task.digests))
    entries = _result_entries(outcomes, digest_of, campaign, worker_id)
    _locked_send(sock, lock, _encode_result(
        campaign.token, task_id, worker_id, entries,
    ))
    hb.units_done += len(task)
    hb.tasks_done += 1
    hb.beat()  # publish fresh counters without waiting for the tick


def _serve_connection(sock, worker_id, poll_s, initial=b""):
    """One authenticated session; returns True on graceful stop.

    ``initial`` is whatever the handshake over-read past the welcome
    frame.  Sends and receives run on independent duplicates of the
    connection (``sock.dup()``), each with a timeout fixed once at
    setup: the heartbeat thread and the main loop never mutate a shared
    deadline, so a heartbeat cannot inherit the short receive tick (a
    partial-frame desync) and a receive cannot inherit the long send
    ceiling (a stalled stop/cancel).
    """
    stream = MessageStream()
    lock = threading.Lock()
    campaign = None
    queue = deque()
    draining = False
    send_sock = None

    def absorb(messages):
        nonlocal campaign, draining
        for message in messages:
            kind = message.get("kind") if isinstance(message, dict) else None
            if kind == "payload":
                campaign = _Campaign(message)
            elif kind == "task":
                queue.append(message)
            elif kind == "cancel":
                dropped = set(message.get("tasks") or ())
                kept = [
                    spec for spec in queue
                    if spec.get("task") not in dropped
                ]
                queue.clear()
                queue.extend(kept)
            elif kind == "stop":
                draining = True

    try:
        send_sock = sock.dup()
        send_sock.settimeout(SEND_TIMEOUT_S)
        sock.settimeout(poll_s)
        _locked_send(send_sock, lock, encode_message({
            "kind": "hello", "worker": worker_id, "pid": os.getpid(),
        }))
        absorb(stream.feed(initial))
        with _WireHeartbeat(send_sock, lock, worker_id) as hb:
            while True:
                if queue:
                    _run_task(send_sock, lock, queue.popleft(), campaign,
                              worker_id, hb)
                    continue
                if draining:
                    return True
                try:
                    data = sock.recv(RECV_BYTES)
                except socket.timeout:
                    continue
                except OSError:
                    return False
                if not data:
                    return False
                try:
                    absorb(stream.feed(data))
                except WireError:
                    return False
    except _ConnectionLost:
        return False
    finally:
        for handle in (send_sock, sock):
            if handle is None:
                continue
            try:
                handle.close()
            except OSError:
                pass


#: Consecutive handshake rejections before the worker hints at a secret
#: mismatch on stderr (it keeps redialing either way — the scheduler may
#: simply be restarting mid-handshake).
_AUTH_WARN_AFTER = 5


def tcp_worker_main(address, worker_id=None, poll_s=0.05, auth=None):
    """Run one socket worker until the scheduler says stop.

    Dials ``address`` (``"host:port"``), authenticates both ways with
    the shared secret (``auth`` or ``$REPRO_TCP_AUTH`` — the campaign
    payload is a pickle, so the worker proves itself to the scheduler
    *and* verifies the scheduler before deserializing anything),
    introduces itself, and serves the claim/execute/report loop.  A
    lost connection — the scheduler restarted, the network hiccuped —
    is retried forever with jittered exponential backoff (the scheduler
    requeued everything this worker held, and discarding the local
    queue on reconnect keeps the two views consistent); a ``stop``
    message drains gracefully and exits.
    """
    host, port = parse_address(address)
    secret = auth if auth is not None else os.environ.get(AUTH_ENV)
    if not secret:
        print(
            f"tcp worker needs the scheduler's shared secret: pass --auth "
            f"or set {AUTH_ENV} (the scheduler side prints nothing — read "
            f"it from its --auth / {AUTH_ENV} / TcpTransport.auth)",
            file=sys.stderr,
        )
        return 2
    worker_id = worker_id or f"w{os.getpid()}"
    prior = os.environ.get(WORKER_ENV_FLAG)
    os.environ[WORKER_ENV_FLAG] = "1"
    rng = random.Random(os.getpid() ^ time.time_ns())
    failures = 0
    auth_failures = 0
    try:
        while True:
            try:
                sock = socket.create_connection(
                    (host, port), timeout=CONNECT_TIMEOUT_S
                )
            except OSError:
                failures += 1
                delay = min(BACKOFF_CAP_S, BACKOFF_BASE_S * 2 ** (failures - 1))
                time.sleep(delay * (0.5 + rng.random() / 2))
                continue
            try:
                leftover = client_handshake(
                    sock, secret, timeout=CONNECT_TIMEOUT_S
                )
            except (WireError, OSError):
                try:
                    sock.close()
                except OSError:
                    pass
                auth_failures += 1
                if auth_failures == _AUTH_WARN_AFTER:
                    print(
                        f"repro worker {worker_id}: the scheduler keeps "
                        f"rejecting the connection handshake — do both "
                        f"sides share the same secret (--auth / "
                        f"{AUTH_ENV})?",
                        file=sys.stderr,
                    )
                failures += 1
                delay = min(BACKOFF_CAP_S, BACKOFF_BASE_S * 2 ** (failures - 1))
                time.sleep(delay * (0.5 + rng.random() / 2))
                continue
            failures = 0
            auth_failures = 0
            if _serve_connection(sock, worker_id, poll_s, initial=leftover):
                return 0
            # Disconnected mid-campaign: brief jittered pause, then dial
            # again — the scheduler may just be restarting for a resume.
            time.sleep(BACKOFF_BASE_S * (0.5 + rng.random() / 2))
    finally:
        # Restore the caller's environment (worker_main parity): a
        # leaked worker flag would let chaos exit fates kill the host.
        if prior is None:
            os.environ.pop(WORKER_ENV_FLAG, None)
        else:
            os.environ[WORKER_ENV_FLAG] = prior
