"""Transport interface: how campaign tasks travel to execution and back.

The :class:`~repro.runtime.scheduler.CampaignScheduler` owns *what* runs
(unit admission, retries, timeouts, the manifest journal, the outcome
histogram); a :class:`Transport` owns *where* it runs.  The split keeps
every fault-tolerance decision in one process — the scheduler — while
execution backends stay swappable:

``inline``
    :class:`~repro.runtime.transports.inline.InlineTransport` — executes
    tasks synchronously in the scheduler's process.  The serial
    reference every other backend must match bit-for-bit.
``pool``
    :class:`~repro.runtime.transports.pool.PoolTransport` — a
    :class:`~concurrent.futures.ProcessPoolExecutor` on the local host.
``fqueue``
    :class:`~repro.runtime.transports.fqueue.FileQueueTransport` — a
    shared-filesystem queue directory claimed by independently spawned
    ``python -m repro worker <queue-dir>`` processes.
``tcp``
    :class:`~repro.runtime.transports.tcp.TcpTransport` — a listening
    socket served to ``python -m repro worker --connect HOST:PORT``
    processes over length-prefixed, checksummed pickle frames; the
    backend for hosts that share no filesystem (results stream over
    the wire unless a shared cache is configured).

The protocol is deliberately small.  A transport accepts
:class:`Task`\\ s (one or more units grouped by the scheduler), reports
per-unit :class:`UnitOutcome`\\ s from :meth:`Transport.poll`, and
raises nothing across the boundary: worker failures come back as
``error`` outcomes, lost work comes back as ``requeue`` outcomes, and
lifecycle facts (pool broken/respawned, task claimed, worker heartbeat)
come back as plain signal dicts the scheduler translates into metrics,
events, and policy decisions.  Transports therefore never touch the
retry budget, the manifest, or the result accounting — kill a backend
mid-run and the scheduler still knows exactly which units are
outstanding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs


@dataclass(frozen=True)
class Task:
    """One transport submission: an ordered group of campaign units.

    ``task_id`` is unique per submission *attempt* — a retried or
    requeued unit travels in a fresh task, so a late result from a
    zombie worker (its lease expired, the unit was re-dispatched) can be
    recognized as stale and dropped.
    """

    task_id: str
    indices: tuple  # unit indices, in campaign order
    items: tuple  # the unit payloads (chunks or mapped items)
    digests: tuple  # per-unit cache digests (None when uncached)

    def __len__(self):
        return len(self.indices)


@dataclass
class UnitOutcome:
    """What happened to one unit of one task.

    ``kind`` is one of:

    ``"ok"``
        ``value`` holds the result; ``telemetry`` the worker's captured
        obs snapshot (``None`` when collection was off or the value was
        produced in-process); ``stored=True`` means the executing worker
        already persisted the value into the shared result cache.
    ``"error"``
        ``error`` holds the exception; counts against the retry budget.
    ``"requeue"``
        The unit was lost through no fault of its own (its pool died
        around it, its queue task was abandoned); the scheduler re-runs
        it without a retry penalty.
    """

    index: int
    kind: str
    value: object = None
    error: BaseException = None
    elapsed_s: float = None  # worker-side wall time (ok outcomes)
    worker: str = None  # executing worker id, for attribution
    telemetry: dict = None
    stored: bool = False


@dataclass
class TransportContext:
    """Everything a transport may need from the scheduler at open time."""

    worker: object  # the unit callable
    collect: bool  # whether obs collection is on in the scheduler
    policy: object  # the campaign FaultPolicy
    cache: object  # shared ResultCache (None when uncached)
    jobs: int  # requested parallelism


class Transport:
    """Base class: lifecycle + submission protocol (see module docstring).

    Subclasses implement :meth:`open`, :meth:`slots`, :meth:`submit`,
    :meth:`poll`, :meth:`expire`, and :meth:`close`.  ``poll`` returns
    ``(outcomes, signals)`` where signals are dicts with a ``kind`` key:

    ``{"kind": "spawn", "workers": n}``
        Execution capacity came up.
    ``{"kind": "broken"}``
        The backend lost its workers (counted, not penalized).
    ``{"kind": "respawn"}``
        The backend replaced lost workers.
    ``{"kind": "degraded"}``
        The backend gave up; the scheduler falls back to inline.
    ``{"kind": "claim", "task_id": t, "worker": w}``
        A queue worker leased a task (starts its lease clock).
    ``{"kind": "heartbeat", "worker": w, "lag_s": s, ...}``
        A worker liveness report, attributed by worker id.
    """

    #: Registry name; also the ``mode`` tag on ``unit.submit`` events.
    name = "base"

    #: Whether tasks cross a process boundary (drives the picklability
    #: probe and its serial fallback in the scheduler).
    requires_pickling = False

    #: When the scheduler arms a task's wall-clock deadline: ``"submit"``
    #: (work starts promptly — process pool), ``"claim"`` (work starts
    #: when a worker leases the task — file queue), or ``None`` (no
    #: enforceable deadline — inline).
    deadline_mode = None

    #: Whether :meth:`poll` must be called on a periodic tick even when
    #: nothing else demands one (backends with out-of-band signals such
    #: as heartbeats and claims).
    needs_poll_tick = False

    def open(self, ctx: TransportContext):
        """Bind to one campaign run; called before any submission."""
        raise NotImplementedError

    def slots(self):
        """How many more tasks may be submitted right now."""
        raise NotImplementedError

    def submit(self, task: Task):
        """Accept one task for execution (must not raise on backend loss)."""
        raise NotImplementedError

    def poll(self, timeout):
        """Collect ``(outcomes, signals)``, waiting at most ``timeout`` s."""
        raise NotImplementedError

    def expire(self, task_ids):
        """Abandon hung/leased-out tasks; returns ``(outcomes, signals)``.

        The given tasks are forgotten — the scheduler has already
        penalized their units — but a backend that must destroy shared
        state to do so (a process pool has no per-task kill) reports the
        innocent bystander units it dropped as ``requeue`` outcomes.
        """
        raise NotImplementedError

    def close(self, hard=False):
        """End the campaign run; ``hard`` kills outstanding work."""
        raise NotImplementedError

    def shutdown(self):
        """Release everything the transport owns (spawned workers, ...).

        Separate from :meth:`close` so a transport instance can be
        reused across several campaign runs (open/close per run) before
        being shut down once at the end.
        """
        self.close(hard=True)

    def describe(self):
        """One JSON-able dict describing the backend (for run records)."""
        return {"transport": self.name}


def execute_task_units(worker, task, collect, worker_id):
    """Run one task's units in order; the shared worker-side loop.

    Used verbatim by every backend (inline in-process, pool workers,
    queue workers), which is what keeps their results bit-identical:
    the unit callable sees exactly the same payloads in the same order
    no matter where it runs.  Each unit is timed (feeding the
    scheduler's adaptive task sizing) and, when ``collect`` is set,
    executed under :func:`repro.obs.capture` so its spans, metrics, and
    events travel back to the scheduler with the outcome.  A unit
    failure never poisons its task: the exception rides back as an
    ``error`` outcome and the remaining units still execute.
    """
    outcomes = []
    for index, item in zip(task.indices, task.items):
        telemetry = None
        started = time.perf_counter()
        if collect:
            obs.enable()
            with obs.capture() as cap:
                obs.emit("worker.heartbeat", worker=worker_id, unit=index)
                try:
                    value, error = worker(item), None
                except Exception as exc:
                    value, error = None, exc
            if error is None:
                telemetry = cap.snapshot
        else:
            try:
                value, error = worker(item), None
            except Exception as exc:
                value, error = None, exc
        outcomes.append(UnitOutcome(
            index=index,
            kind="ok" if error is None else "error",
            value=value,
            error=error,
            elapsed_s=time.perf_counter() - started,
            worker=worker_id,
            telemetry=telemetry,
        ))
    return outcomes


@dataclass
class _OutcomeBuffer:
    """Shared helper: outcomes/signals accumulated between polls."""

    outcomes: list = field(default_factory=list)
    signals: list = field(default_factory=list)

    def drain(self):
        """Return and clear the buffered ``(outcomes, signals)``."""
        out, sig = self.outcomes, self.signals
        self.outcomes, self.signals = [], []
        return out, sig

    def __bool__(self):
        return bool(self.outcomes or self.signals)
