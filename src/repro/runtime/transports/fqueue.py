"""File-queue transport: campaign tasks claimed by independent workers.

A queue directory on a shared filesystem is the whole coordination
fabric — no sockets, no broker.  The scheduler publishes task files;
``python -m repro worker <queue-dir>`` processes (spawned by the
transport, by hand, or by a cluster launcher on another host mounting
the same filesystem) claim them atomically, execute, and write their
results into the shared digest-addressed
:class:`~repro.runtime.cache.ResultCache`.  Layout::

    <queue-dir>/
      todo/<task>.task           published task specs (pickled)
      claimed/<task>@<worker>.task   a worker leased this task
      done/<task>.done           worker report (status; values in cache)
      workers/<worker>.json      per-worker heartbeat files
      payload-<token>.pkl        the campaign payload (worker callable)
      STOP                       workers drain and exit when present

Claim/lease protocol (see ``docs/distributed.md``):

* **claim** — ``os.rename(todo/T.task, claimed/T@W.task)``: atomic on
  POSIX, so exactly one worker wins a task; the loser's rename raises
  and it moves on.
* **lease** — the scheduler starts a lease clock when it observes the
  claim; a worker that dies or hangs never writes ``done/T.done``, the
  lease expires, and the scheduler re-publishes the units under a fresh
  task id.  A zombie's late report is recognized as stale (unknown task
  id) and discarded — and since results are digest-addressed and
  deterministic, even its cache writes are bit-identical to the
  retry's, so a racing winner is harmless.
* **liveness** — each worker refreshes its heartbeat file from a
  background thread, so liveness is decoupled from task length: a unit
  that computes for minutes still heartbeats every second, while a
  killed worker (the thread dies with the process) goes stale within
  ``stale_s`` and its claims are voided.  Staleness is judged by the
  *scheduler-local arrival time* of each new heartbeat value, never by
  comparing the worker's wall clock against the scheduler's — workers
  on another host may disagree with us about what time it is.
* **result** — values travel through the cache (``put`` then verified
  with ``contains``); the ``done`` file carries only per-unit status,
  timing, worker id, and captured telemetry.

The manifest journal stays with the scheduler, which is what makes the
campaign survive worker churn: kill any subset of workers mid-run and
the survivors (or a ``--resume`` after killing the scheduler too)
complete bit-identically to the inline reference.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.runtime.cache import MISS
from repro.runtime.transports.base import (
    Task,
    Transport,
    UnitOutcome,
    _OutcomeBuffer,
    execute_task_units,
)

#: Seconds between a worker's heartbeat-file refreshes.
HEARTBEAT_INTERVAL_S = 1.0

#: A heartbeat older than this no longer counts toward live capacity.
HEARTBEAT_STALE_S = 5.0

#: Environment flag set inside queue workers (``runtime.chaos`` uses it
#: to tell "safe to hard-exit" apart from "would kill the scheduler").
WORKER_ENV_FLAG = "REPRO_WORKER"


def _queue_layout(queue_dir):
    """The queue's subdirectories, created on demand."""
    queue_dir = Path(queue_dir)
    dirs = {
        "todo": queue_dir / "todo",
        "claimed": queue_dir / "claimed",
        "done": queue_dir / "done",
        "workers": queue_dir / "workers",
    }
    for path in dirs.values():
        path.mkdir(parents=True, exist_ok=True)
    return dirs


def _atomic_write(path, data):
    """Write ``data`` bytes to ``path`` via temp file + ``os.replace``."""
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _safe_pickle(obj, fallback_builder):
    """Pickle ``obj``; on failure, pickle ``fallback_builder()`` instead."""
    try:
        return pickle.dumps(obj)
    except Exception:
        return pickle.dumps(fallback_builder())


class FileQueueTransport(Transport):
    """Scheduler-side endpoint of the queue directory protocol.

    Parameters
    ----------
    queue_dir:
        The shared queue directory (created if missing).
    workers:
        Worker processes to spawn and babysit (``python -m repro worker``
        children of this process).  ``0`` relies entirely on externally
        launched workers.  Spawned workers that die are respawned
        (``policy.max_requeues`` bounds a workload that keeps killing
        its workers — past the cap the unit fails loudly instead of
        requeue-respawning forever).
    queue_depth:
        Tasks published per live worker ahead of demand — the
        backpressure knob that keeps workers busy without flooding the
        directory (and what makes single-worker throughput latency-bound
        rather than queue-bound).
    poll_s:
        Scheduler-side sleep granularity while waiting for results.
    worker_poll_s:
        Idle-poll interval passed to spawned workers.
    stale_s:
        Heartbeat age past which a claimant is presumed dead and its
        claimed tasks are requeued (must exceed the workers' heartbeat
        interval; the default is :data:`HEARTBEAT_STALE_S`).  Age is
        measured from the scheduler-local arrival of the last new
        heartbeat value, and workers heartbeat from a background thread,
        so neither cross-host clock skew nor a long-running unit can
        make a live claimant look stale.
    """

    name = "fqueue"
    requires_pickling = True
    deadline_mode = "claim"
    needs_poll_tick = True

    def __init__(self, queue_dir, workers=0, queue_depth=2, poll_s=0.02,
                 worker_poll_s=0.05, stale_s=HEARTBEAT_STALE_S):
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        if stale_s <= 0:
            raise ValueError("stale_s must be positive")
        self.queue_dir = Path(queue_dir)
        self.workers = int(workers)
        self.queue_depth = int(queue_depth)
        self.poll_s = float(poll_s)
        self.worker_poll_s = float(worker_poll_s)
        self.stale_s = float(stale_s)
        self._ctx = None
        self._dirs = None
        self._token = None
        self._payload_path = None
        self._inflight = {}  # task_id -> Task
        self._claims = {}  # task_id -> worker id
        self._claim_t = {}  # task_id -> when the claim was observed
        self._procs = []  # spawned worker Popen handles
        self._spawn_seq = 0
        self._hb_seen = {}  # worker id -> last heartbeat value (worker clock)
        self._hb_fresh = {}  # worker id -> local monotonic arrival of that value
        self._hb_checked = 0.0
        self._buffer = _OutcomeBuffer()

    # -- lifecycle ---------------------------------------------------------
    def open(self, ctx):
        """Publish the campaign payload and bring capacity up."""
        if ctx.cache is None:
            raise ValueError(
                "the fqueue transport requires a result cache: workers "
                "hand results back through the shared cache directory"
            )
        self._ctx = ctx
        self._dirs = _queue_layout(self.queue_dir)
        self._inflight = {}
        self._claims = {}
        self._claim_t = {}
        self._hb_seen = {}
        self._hb_fresh = {}
        self._hb_checked = 0.0
        self._buffer = _OutcomeBuffer()
        self._sweep_stale()
        self._token = f"{os.getpid():x}-{time.time_ns():x}"
        self._payload_path = self.queue_dir / f"payload-{self._token}.pkl"
        try:
            data = pickle.dumps({
                "worker": ctx.worker,
                "collect": ctx.collect,
                "cache_dir": str(ctx.cache.path),
            })
        except Exception:
            # The campaign callable will not pickle at all.  Publish
            # nothing: the scheduler's picklability probe hits the same
            # failure before the first submission and falls back to
            # inline execution, exactly as the pool transport does.
            data = None
        if data is not None:
            _atomic_write(self._payload_path, data)
        while len(self._procs) < self.workers:
            self._spawn_worker()
        if self._procs:
            self._buffer.signals.append(
                {"kind": "spawn", "workers": len(self._procs)}
            )

    def _sweep_stale(self):
        """Drop queue state no live campaign owns (dead scheduler runs).

        ``todo`` and ``done`` files belong to the publishing scheduler —
        a fresh open owns the queue, so leftovers are noise.  ``claimed``
        files are left alone: a live worker may still be executing one,
        and its (stale) report will simply be ignored while its cache
        writes remain valid for the resume scan.  A leftover ``STOP``
        marker (a prior scheduler killed mid-:meth:`shutdown`) is also
        cleared — otherwise every worker this campaign spawns would see
        it, drain, and exit immediately, forever.
        """
        for name in ("todo", "done"):
            for path in self._dirs[name].glob("*"):
                try:
                    path.unlink()
                except OSError:
                    pass
        for path in self.queue_dir.glob("payload-*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass
        try:
            (self.queue_dir / "STOP").unlink()
        except OSError:
            pass

    def _spawn_worker(self):
        """Launch one ``python -m repro worker`` child on this queue."""
        self._spawn_seq += 1
        worker_id = f"w{os.getpid()}-{self._spawn_seq}"
        env = dict(os.environ)
        env[WORKER_ENV_FLAG] = "1"
        # Make the repro package importable in the child no matter how
        # the parent found it (tests, editable installs, bare checkouts).
        package_root = str(Path(__file__).resolve().parents[3])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing else package_root
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker", str(self.queue_dir),
                "--id", worker_id, "--poll", str(self.worker_poll_s),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
        )
        self._procs.append(proc)
        return proc

    def worker_pids(self):
        """PIDs of the spawned workers (chaos tooling kills these)."""
        return [proc.pid for proc in self._procs if proc.poll() is None]

    # -- capacity ----------------------------------------------------------
    def _live_workers(self):
        now = time.monotonic()
        fresh = sum(
            1 for t in self._hb_fresh.values() if now - t <= self.stale_s
        )
        alive = sum(1 for proc in self._procs if proc.poll() is None)
        return max(fresh, alive, 1)

    def slots(self):
        """Bounded by ``queue_depth`` tasks per live worker."""
        return max(self._live_workers() * self.queue_depth
                   - len(self._inflight), 0)

    # -- protocol ----------------------------------------------------------
    def submit(self, task):
        """Publish one task file for any worker to claim."""
        spec = pickle.dumps({
            "token": self._token,
            "task": task.task_id,
            "indices": list(task.indices),
            "items": list(task.items),
            "digests": list(task.digests),
        })
        _atomic_write(self._dirs["todo"] / f"{task.task_id}.task", spec)
        self._inflight[task.task_id] = task

    def poll(self, timeout):
        """Scan for reports, claims, heartbeats, and dead spawned workers."""
        deadline = time.monotonic() + max(timeout or 0.0, 0.0)
        while True:
            self._scan_done()
            self._scan_claims()
            self._scan_heartbeats()
            self._scan_dead_claims()
            self._respawn_dead_workers()
            if self._buffer:
                return self._buffer.drain()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return [], []
            time.sleep(min(self.poll_s, remaining))

    def _scan_done(self):
        for path in sorted(self._dirs["done"].glob("*.done")):
            task_id = path.stem
            task = self._inflight.pop(task_id, None)
            try:
                report = pickle.loads(path.read_bytes())
            except Exception:
                report = None
            try:
                path.unlink()
            except OSError:
                pass
            self._drop_claim_file(task_id)
            self._claims.pop(task_id, None)
            self._claim_t.pop(task_id, None)
            if task is None or report is None:
                continue  # stale zombie report (or torn write): ignore
            self._buffer.outcomes.extend(self._report_outcomes(task, report))

    def _report_outcomes(self, task, report):
        digest_of = dict(zip(task.indices, task.digests))
        worker = report.get("worker")
        for entry in report.get("units", ()):
            index = entry["index"]
            if not entry.get("ok"):
                error = entry.get("error") or RuntimeError(
                    f"queue worker {worker} failed unit {index}"
                )
                yield UnitOutcome(
                    index=index, kind="error", error=error, worker=worker,
                    elapsed_s=entry.get("elapsed_s"),
                )
                continue
            value = self._ctx.cache.peek(digest_of[index])
            if value is MISS:
                yield UnitOutcome(
                    index=index, kind="error", worker=worker,
                    error=RuntimeError(
                        f"queue worker {worker} reported unit {index} done "
                        f"but its result never reached the shared cache"
                    ),
                )
                continue
            yield UnitOutcome(
                index=index, kind="ok", value=value, worker=worker,
                elapsed_s=entry.get("elapsed_s"),
                telemetry=entry.get("telemetry"), stored=True,
            )

    def _scan_claims(self):
        for path in self._dirs["claimed"].glob("*.task"):
            stem = path.stem
            if "@" not in stem:
                continue
            task_id, worker = stem.split("@", 1)
            if task_id in self._inflight and task_id not in self._claims:
                self._claims[task_id] = worker
                self._claim_t[task_id] = time.monotonic()
                self._buffer.signals.append(
                    {"kind": "claim", "task_id": task_id, "worker": worker}
                )

    def _scan_heartbeats(self):
        now = time.time()
        if now - self._hb_checked < HEARTBEAT_INTERVAL_S / 2:
            return
        self._hb_checked = now
        for path in self._dirs["workers"].glob("*.json"):
            try:
                beat = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            worker = beat.get("worker") or path.stem
            t = float(beat.get("t", 0.0))
            if t <= self._hb_seen.get(worker, 0.0):
                continue
            self._hb_seen[worker] = t
            # Staleness is judged by when *we* saw a new value, not by
            # the worker's wall clock: a skewed clock on another host
            # must not make a live claim look dead (or vice versa).
            self._hb_fresh[worker] = time.monotonic()
            self._buffer.signals.append({
                "kind": "heartbeat",
                "worker": worker,
                "lag_s": max(now - t, 0.0),
                "pid": beat.get("pid"),
                "units_done": beat.get("units_done", 0),
            })

    def _scan_dead_claims(self):
        """Requeue tasks whose claimant stopped heartbeating (died).

        A worker that is killed after claiming never writes its ``done``
        report; its background heartbeat thread dies with it, so once
        the heartbeat goes stale the task's units come back as
        ``requeue`` outcomes — no retry penalty, the worker died around
        them — and the scheduler re-publishes them under a fresh task id
        for the survivors.  A claimant that is merely *slow* keeps
        heartbeating from its background thread no matter how long one
        unit takes, so it is never mistaken for dead; a claimant that is
        alive but *wedged* also keeps heartbeating — hangs are the
        scheduler lease's job (``policy.lease_timeout_s``), not ours.
        Staleness compares scheduler-local arrival times only (see
        :meth:`_scan_heartbeats`), so cross-host clock skew cannot void
        a live claim.
        """
        now = time.monotonic()
        for task_id, worker in list(self._claims.items()):
            task = self._inflight.get(task_id)
            if task is None:
                self._claims.pop(task_id, None)
                self._claim_t.pop(task_id, None)
                continue
            last = max(self._hb_fresh.get(worker, 0.0),
                       self._claim_t.get(task_id, 0.0))
            if now - last <= self.stale_s:
                continue
            if (self._dirs["done"] / f"{task_id}.done").exists():
                continue  # report just landed; the next scan collects it
            self._inflight.pop(task_id, None)
            self._claims.pop(task_id, None)
            self._claim_t.pop(task_id, None)
            self._drop_claim_file(task_id)
            self._buffer.outcomes.extend(
                UnitOutcome(index=i, kind="requeue") for i in task.indices
            )

    def _respawn_dead_workers(self):
        for proc in list(self._procs):
            if proc.poll() is None:
                continue
            self._procs.remove(proc)
            if len(self._procs) < self.workers:
                self._spawn_worker()
                self._buffer.signals.append({"kind": "respawn"})

    def expire(self, task_ids):
        """Void dead leases: forget the tasks, drop their queue files."""
        for task_id in task_ids:
            self._inflight.pop(task_id, None)
            self._claims.pop(task_id, None)
            self._claim_t.pop(task_id, None)
            todo = self._dirs["todo"] / f"{task_id}.task"
            try:
                todo.unlink()
            except OSError:
                pass
            self._drop_claim_file(task_id)
        return self._buffer.drain()

    def _drop_claim_file(self, task_id):
        for path in self._dirs["claimed"].glob(f"{task_id}@*.task"):
            try:
                path.unlink()
            except OSError:
                pass

    def close(self, hard=False):
        """End this campaign run; spawned workers stay up for the next.

        Outstanding task files are withdrawn (a worker mid-claim simply
        finds the payload gone and drops the task); killing the workers
        themselves is :meth:`shutdown`'s job so a transport instance can
        be reused across runs — including a ``--resume`` of this one.
        """
        for task_id in list(self._inflight):
            todo = self._dirs["todo"] / f"{task_id}.task"
            try:
                todo.unlink()
            except OSError:
                pass
        self._inflight.clear()
        self._claims.clear()
        self._claim_t.clear()
        if self._payload_path is not None:
            try:
                self._payload_path.unlink()
            except OSError:
                pass
            self._payload_path = None
        self._buffer = _OutcomeBuffer()

    def shutdown(self):
        """Stop spawned workers (STOP marker, then terminate stragglers)."""
        self.close(hard=True)
        if not self._procs:
            return
        try:
            (self.queue_dir / "STOP").write_text("stop\n")
        except OSError:
            pass
        for proc in self._procs:
            try:
                proc.terminate()
                proc.wait(timeout=5.0)
            except (OSError, subprocess.TimeoutExpired):
                proc.kill()
        self._procs = []
        try:
            (self.queue_dir / "STOP").unlink()
        except OSError:
            pass

    def describe(self):
        """Backend description for run records."""
        return {
            "transport": self.name,
            "queue_dir": str(self.queue_dir),
            "workers": self.workers,
            "queue_depth": self.queue_depth,
        }


# -- worker side ---------------------------------------------------------
def _write_heartbeat(dirs, worker_id, units_done, tasks_done):
    payload = json.dumps({
        "worker": worker_id,
        "pid": os.getpid(),
        "t": time.time(),
        "units_done": units_done,
        "tasks_done": tasks_done,
    }).encode()
    try:
        _atomic_write(dirs["workers"] / f"{worker_id}.json", payload)
    except OSError:
        pass


class _Heartbeat:
    """Background heartbeat writer: liveness decoupled from task length.

    Beating only between tasks would make any unit slower than the
    scheduler's ``stale_s`` look dead — its claim voided and requeued,
    re-executed from scratch, voided again, forever.  A daemon thread
    refreshing the heartbeat file every :data:`HEARTBEAT_INTERVAL_S`
    keeps a busy worker visibly alive no matter how long one unit runs,
    while hard death (``SIGKILL``, an ``os._exit`` chaos fate) kills the
    thread with the process so staleness detection still fires.
    """

    def __init__(self, dirs, worker_id):
        self._dirs = dirs
        self._worker_id = worker_id
        self.units_done = 0
        self.tasks_done = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{worker_id}", daemon=True
        )

    def beat(self):
        """Write the heartbeat file now (progress counters included)."""
        _write_heartbeat(
            self._dirs, self._worker_id, self.units_done, self.tasks_done
        )

    def _run(self):
        while not self._stop.wait(HEARTBEAT_INTERVAL_S):
            self.beat()

    def __enter__(self):
        self.beat()
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=HEARTBEAT_INTERVAL_S)
        self.beat()  # final beat publishes the closing counters


def _claim_next(dirs, worker_id):
    """Atomically claim the oldest published task; ``None`` when idle."""
    for path in sorted(dirs["todo"].glob("*.task")):
        target = dirs["claimed"] / f"{path.stem}@{worker_id}.task"
        try:
            os.rename(path, target)
        except OSError:
            continue  # lost the claim race (or the task was withdrawn)
        return target
    return None


def _load_payload(queue_dir, token, cache):
    """Load (and memoize) one campaign payload; ``None`` when withdrawn.

    A payload file that is *present* but will not load (most commonly a
    campaign callable defined in the scheduler's ``__main__``, which
    only exists in that process) raises — the caller reports the units
    as failed instead of silently dropping a claimed task, which would
    strand the scheduler.
    """
    if token in cache:
        return cache[token]
    path = Path(queue_dir) / f"payload-{token}.pkl"
    if not path.exists():
        return None
    payload = pickle.loads(path.read_bytes())
    cache[token] = payload
    return payload


def _report_failure(dirs, spec, worker_id, message):
    """Write a done report failing every unit of ``spec`` with ``message``."""
    data = pickle.dumps({
        "task": spec["task"],
        "worker": worker_id,
        "units": [
            {"index": index, "ok": False, "elapsed_s": 0.0,
             "error": RuntimeError(message)}
            for index in spec["indices"]
        ],
    })
    try:
        _atomic_write(dirs["done"] / f"{spec['task']}.done", data)
    except OSError:
        pass


def worker_main(queue_dir, worker_id=None, poll_s=0.05, once=False):
    """Run one queue worker until STOP (or, with ``once``, until idle).

    The loop: heartbeat, claim, execute, persist values into the shared
    result cache, report status, repeat.  Values are verified to be in
    the cache before the unit is reported ok — the cache *is* the data
    channel, so a worker that cannot write it reports the failure
    honestly instead of acknowledging work it cannot deliver.
    """
    prior = os.environ.get(WORKER_ENV_FLAG)
    os.environ[WORKER_ENV_FLAG] = "1"
    try:
        return _worker_loop(queue_dir, worker_id, poll_s, once)
    finally:
        # Restore the caller's environment: worker_main also runs
        # in-process (``once=True`` drains, tests), where a leaked
        # worker flag would let chaos exit fates kill the host process.
        if prior is None:
            os.environ.pop(WORKER_ENV_FLAG, None)
        else:
            os.environ[WORKER_ENV_FLAG] = prior


def _worker_loop(queue_dir, worker_id, poll_s, once):
    """The claim/execute/report loop behind :func:`worker_main`."""
    worker_id = worker_id or f"w{os.getpid()}"
    queue_dir = Path(queue_dir)
    dirs = _queue_layout(queue_dir)
    payloads = {}
    caches = {}
    with _Heartbeat(dirs, worker_id) as hb:
        _worker_claim_loop(queue_dir, dirs, worker_id, poll_s, once,
                           payloads, caches, hb)
    return 0


def _worker_claim_loop(queue_dir, dirs, worker_id, poll_s, once,
                       payloads, caches, hb):
    """Claim/execute/report until STOP (heartbeats run in background)."""
    from repro.runtime.cache import ResultCache

    while True:
        if (queue_dir / "STOP").exists():
            break
        claim = _claim_next(dirs, worker_id)
        if claim is None:
            if once:
                break
            time.sleep(poll_s)
            continue
        try:
            spec = pickle.loads(claim.read_bytes())
        except Exception:
            claim.unlink(missing_ok=True)
            continue
        try:
            payload = _load_payload(queue_dir, spec["token"], payloads)
        except Exception as exc:
            # The payload exists but cannot be loaded in this process
            # (e.g. the campaign callable lives in the scheduler's
            # ``__main__``).  Report every unit failed so the scheduler
            # surfaces the error instead of waiting on a vanished task.
            _report_failure(
                dirs, spec, worker_id,
                f"worker {worker_id} could not load the campaign "
                f"payload: {exc!r}",
            )
            claim.unlink(missing_ok=True)
            continue
        if payload is None:
            # The campaign was withdrawn under us; drop the orphan task.
            claim.unlink(missing_ok=True)
            continue
        cache_dir = payload["cache_dir"]
        if cache_dir not in caches:
            caches[cache_dir] = ResultCache(cache_dir)
        cache = caches[cache_dir]
        task = Task(
            task_id=spec["task"],
            indices=tuple(spec["indices"]),
            items=tuple(spec["items"]),
            digests=tuple(spec["digests"]),
        )
        outcomes = execute_task_units(
            payload["worker"], task, payload["collect"], worker_id
        )
        digest_of = dict(zip(task.indices, task.digests))
        entries = []
        for outcome in outcomes:
            entry = {
                "index": outcome.index,
                "ok": outcome.kind == "ok",
                "elapsed_s": outcome.elapsed_s,
            }
            if outcome.kind == "ok":
                cache.put(digest_of[outcome.index], outcome.value)
                if not cache.contains(digest_of[outcome.index]):
                    entry["ok"] = False
                    entry["error"] = RuntimeError(
                        f"worker {worker_id} could not persist unit "
                        f"{outcome.index} into the shared cache"
                    )
                else:
                    entry["telemetry"] = outcome.telemetry
            else:
                entry["error"] = outcome.error
            entries.append(entry)
        report = {"task": task.task_id, "worker": worker_id, "units": entries}
        data = _safe_pickle(report, lambda: {
            "task": task.task_id,
            "worker": worker_id,
            "units": [
                {
                    "index": e["index"],
                    "ok": e["ok"],
                    "elapsed_s": e["elapsed_s"],
                    "error": (RuntimeError(repr(e.get("error")))
                              if not e["ok"] else None),
                }
                for e in entries
            ],
        })
        try:
            _atomic_write(dirs["done"] / f"{task.task_id}.done", data)
        except OSError:
            pass  # the lease will expire and the units will be retried
        claim.unlink(missing_ok=True)
        hb.units_done += len(task)
        hb.tasks_done += 1
        hb.beat()  # publish fresh counters without waiting for the tick
