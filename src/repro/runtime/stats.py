"""Confidence-interval math behind sequential campaign stopping.

Pure, dependency-free helpers shared by the steering layer
(:mod:`repro.arch.steering`) and its property tests: a Wilson score
interval for binomial proportions, a Hoeffding bound, and the
post-stratified variance estimate a steered campaign uses to decide
when its AVF estimate is tight enough to stop.

All functions are deterministic and accept float "success" counts so
weighted tallies plug in directly.
"""

from __future__ import annotations

import math

__all__ = [
    "normal_quantile",
    "z_value",
    "wilson_interval",
    "wilson_halfwidth",
    "hoeffding_halfwidth",
    "stratified_estimate",
]


def normal_quantile(p):
    """Inverse standard-normal CDF at ``p`` (0 < p < 1).

    Solved by bisection on the closed form ``Phi(x) = (1 + erf(x/sqrt 2))/2``
    — slower than a rational approximation but exact to float precision
    and with no magic constants to mistype.  Called once per interval,
    so speed is irrelevant.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be strictly between 0 and 1")
    lo, hi = -10.0, 10.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if 0.5 * (1.0 + math.erf(mid / math.sqrt(2.0))) < p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def z_value(confidence):
    """Two-sided critical value for a ``confidence`` (0, 1) level."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be strictly between 0 and 1")
    return normal_quantile(0.5 + confidence / 2.0)


def wilson_interval(successes, n, confidence=0.95):
    """Wilson score interval for a binomial proportion.

    Returns ``(lo, hi)`` with ``0 <= lo <= p_hat <= hi <= 1``.  With no
    observations the interval is vacuous: ``(0, 1)``.  ``successes``
    may be a float (weighted tallies); it must lie in ``[0, n]``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0 <= successes <= n + 1e-9:
        raise ValueError("successes must lie in [0, n]")
    if n == 0:
        return 0.0, 1.0
    z = z_value(confidence)
    p_hat = min(max(successes / n, 0.0), 1.0)
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p_hat + z2 / (2.0 * n)) / denom
    spread = (z / denom) * math.sqrt(
        p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)
    )
    # The min/max against p_hat costs nothing analytically (the Wilson
    # interval always brackets p_hat) but keeps the documented
    # lo <= p_hat <= hi invariant exact under float rounding at the
    # p_hat = 0 and p_hat = 1 endpoints.
    return (
        max(0.0, min(center - spread, p_hat)),
        min(1.0, max(center + spread, p_hat)),
    )


def wilson_halfwidth(successes, n, confidence=0.95):
    """Half the Wilson interval width — the sequential stopping statistic."""
    lo, hi = wilson_interval(successes, n, confidence)
    return 0.5 * (hi - lo)


def hoeffding_halfwidth(n, confidence=0.95):
    """Distribution-free half-width for a mean of ``n`` draws in [0, 1].

    ``sqrt(log(2 / alpha) / (2 n))`` — looser than Wilson for binomial
    data but valid for any bounded outcome; the steering layer reports
    it alongside the Wilson width as a conservative cross-check.
    """
    if n <= 0:
        return 1.0
    alpha = 1.0 - confidence
    if not 0.0 < alpha < 1.0:
        raise ValueError("confidence must be strictly between 0 and 1")
    return min(1.0, math.sqrt(math.log(2.0 / alpha) / (2.0 * n)))


def stratified_estimate(weights, failures, counts, confidence=0.95,
                        variance_rates=None):
    """Post-stratified proportion estimate and its CI half-width.

    ``weights`` are the strata's probabilities under the *uniform*
    campaign measure (must sum to ~1); ``failures``/``counts`` are the
    per-stratum observed tallies.  The estimate
    ``sum_s q_s * f_s / n_s`` is unbiased for the uniform-campaign AVF
    no matter how trials were allocated across strata — allocation only
    moves the variance.  Every stratum with positive weight must have
    at least one observation.

    The variance term ``sum_s q_s^2 p_s (1 - p_s) / n_s`` plugs in
    ``variance_rates`` when given — the steering layer passes its
    surrogate-blended per-stratum rates here, making the stopping
    statistic *model-assisted* (the standard adaptive-stratification
    move; validated empirically against the uniform baseline in
    BENCH_steer.json).  Without them it falls back to the
    Jeffreys-smoothed observed rate ``(f + 1/2) / (n + 1)``, which
    keeps degenerate 0/n and n/n strata from claiming zero variance.

    Returns ``(estimate, halfwidth)``.
    """
    if not (len(weights) == len(failures) == len(counts)):
        raise ValueError("weights, failures, counts must align")
    if variance_rates is not None and len(variance_rates) != len(weights):
        raise ValueError("variance_rates must align with weights")
    total_w = sum(weights)
    if weights and not math.isclose(total_w, 1.0, rel_tol=0, abs_tol=1e-6):
        raise ValueError(f"stratum weights must sum to 1, got {total_w!r}")
    z = z_value(confidence)
    estimate = 0.0
    variance = 0.0
    for s, (q, f, n) in enumerate(zip(weights, failures, counts)):
        if q < 0 or n < 0 or not 0 <= f <= n + 1e-9:
            raise ValueError("invalid stratum tally")
        if q == 0:
            continue
        if n == 0:
            raise ValueError(
                "every stratum with positive weight needs >= 1 observation"
            )
        estimate += q * (f / n)
        if variance_rates is None:
            p_tilde = (f + 0.5) / (n + 1.0)
        else:
            p_tilde = min(max(float(variance_rates[s]), 0.0), 1.0)
        variance += q * q * p_tilde * (1.0 - p_tilde) / n
    estimate = min(max(estimate, 0.0), 1.0)
    return estimate, z * math.sqrt(variance)
