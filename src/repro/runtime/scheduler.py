"""Async campaign scheduler: unit admission, retries, leases, accounting.

:class:`CampaignScheduler` is the single control loop behind
:class:`~repro.runtime.runner.CampaignRunner`.  It owns everything that
must survive worker churn — unit generation, the cache scan, the
manifest journal, retry/backoff state, wall-clock deadlines, the outcome
histogram — and drives a pluggable
:class:`~repro.runtime.transports.base.Transport` that owns only
execution.  The loop:

1. **admit** — pull the next units from a lazy :class:`UnitSource`
   (never materializing a 10M-unit campaign), compute their digests,
   satisfy cache hits, and queue the misses.  Admission is bounded by a
   window proportional to the in-flight capacity, so generation overlaps
   execution instead of preceding it.
2. **dispatch** — group ready units into transport tasks, sized
   adaptively from the observed per-unit latency EMA (target
   ``policy.target_task_s`` per task, capped at
   ``policy.max_units_per_task``; pinned to 1 while per-unit timeouts
   are armed).  Grouping never touches seeds, digests, or result order.
3. **poll** — collect per-unit outcomes plus lifecycle signals and
   translate them into the same metrics, events, and stats the
   monolithic runner produced: retries with deterministic backoff,
   timeout/lease expiry, pool respawn accounting, degraded-serial
   fallback, progress events.

Because the scheduler journals through the manifest and (for the
file-queue backend) reads values back from the shared result cache, a
campaign completes bit-identically to the inline reference no matter
how many workers died along the way — surviving workers alone, or a
``--resume`` after killing everything, finish the same records.
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
import os
import pickle
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.runtime.cache import MISS, stable_digest
from repro.runtime.manifest import CampaignManifest
from repro.runtime.seeding import trial_seed_sequence
from repro.runtime.telemetry import ProgressEvent
from repro.runtime.transports import InlineTransport, TransportContext

#: Trials per chunk.  Fixed (not derived from ``jobs``) so cache entries
#: remain chunk-aligned across different worker counts.
DEFAULT_CHUNK_SIZE = 32

#: Exceptions raised by the picklability probe that mean "this workload
#: cannot travel to a worker process" (CPython raises all three
#: depending on the object).  Anything else the probe raises is a real
#: workload error and propagates.
PICKLING_ERRORS = (pickle.PicklingError, TypeError, AttributeError)

#: Smoothing factor of the per-unit latency EMA behind adaptive task
#: sizing (weight of the newest observation).
LATENCY_EMA_ALPHA = 0.2

#: Floor of the admission window: how many units may be waiting or in
#: flight before unit generation pauses.
MIN_ADMISSION_WINDOW = 256

#: Per-process run counter folded into task ids.  Stale-report immunity
#: rests on task ids never recurring: a worker that outlives one run
#: (tcp connections and fqueue claimants survive a resume) must not see
#: a later run reuse ``<pid>-000001``, or its zombie report would be
#: mistaken for the new task's.
_RUN_SEQ = itertools.count()


class UnitTimeoutError(TimeoutError):
    """A campaign unit exceeded its :class:`FaultPolicy` wall-clock budget."""


@dataclass(frozen=True)
class TrialChunk:
    """A contiguous range of trials of a campaign rooted at ``seed``."""

    seed: int
    start: int
    stop: int

    def __len__(self):
        return self.stop - self.start

    @property
    def indices(self):
        """The trial indices this chunk covers, as a range."""
        return range(self.start, self.stop)

    def seed_sequences(self):
        """One independent seed stream per trial in the chunk."""
        return [trial_seed_sequence(self.seed, i) for i in self.indices]

    def rngs(self):
        """One independent :class:`numpy.random.Generator` per trial."""
        return [np.random.default_rng(ss) for ss in self.seed_sequences()]


def chunk_bounds(n_trials, chunk_size=DEFAULT_CHUNK_SIZE):
    """Split ``range(n_trials)`` into ``[start, stop)`` chunk bounds."""
    if n_trials < 0:
        raise ValueError("n_trials must be non-negative")
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    return [
        (start, min(start + chunk_size, n_trials))
        for start in range(0, n_trials, chunk_size)
    ]


class ChunkSource:
    """Lazy :class:`TrialChunk` unit source — units exist only on demand.

    Nothing about a chunk depends on its neighbours, so unit ``i`` is a
    pure function of ``(seed, chunk_size, n_trials, i)`` and a
     10M-trial campaign costs O(window) memory, not O(n).
    """

    def __init__(self, seed, n_trials, chunk_size):
        if n_trials < 0:
            raise ValueError("n_trials must be non-negative")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.seed = seed
        self.n_trials = int(n_trials)
        self.chunk_size = int(chunk_size)

    def __len__(self):
        return -(-self.n_trials // self.chunk_size)

    def _bounds(self, i):
        start = i * self.chunk_size
        return start, min(start + self.chunk_size, self.n_trials)

    def item(self, i):
        """The :class:`TrialChunk` at unit index ``i``."""
        start, stop = self._bounds(i)
        return TrialChunk(self.seed, start, stop)

    def key(self, i):
        """The unit's cache-key coordinates."""
        start, stop = self._bounds(i)
        return ("trials", self.seed, start, stop)

    def weight(self, i):
        """Trials carried by unit ``i``."""
        start, stop = self._bounds(i)
        return stop - start

    @property
    def total_weight(self):
        """Trials across the whole campaign."""
        return self.n_trials


class ListSource:
    """Materialized unit source for :meth:`CampaignRunner.map` items."""

    def __init__(self, items, item_keys):
        self.items = list(items)
        self.item_keys = list(item_keys)

    def __len__(self):
        return len(self.items)

    def item(self, i):
        """The mapped item at unit index ``i``."""
        return self.items[i]

    def key(self, i):
        """The unit's cache-key coordinates."""
        return self.item_keys[i]

    def weight(self, i):
        """Mapped items count one trial each."""
        return 1

    @property
    def total_weight(self):
        """Trials across the whole campaign (one per item)."""
        return len(self.items)


@dataclass
class _TaskState:
    """Scheduler-side bookkeeping for one in-flight transport task."""

    task: object
    remaining: set = field(default_factory=set)
    deadline: float = None  # monotonic; armed at submit or at claim


class CampaignScheduler:
    """One campaign execution: the control loop described in the module.

    Instantiated per run by :class:`~repro.runtime.runner.CampaignRunner`
    (which owns the public API, validation, and the campaign-level
    events); everything here mutates the runner's :class:`RunStats` in
    place so existing accounting contracts hold unchanged.
    """

    def __init__(self, *, worker, source, base_key, unit_is_batch, jobs,
                 cache, progress, classify, policy, resume, manifest_dir,
                 transport, owns_transport, stats):
        self.worker = worker
        self.source = source
        self.base_key = base_key
        self.unit_is_batch = unit_is_batch
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.classify = classify
        self.policy = policy
        self.resume = resume
        self.manifest_dir = manifest_dir
        self.transport = transport
        self.owns_transport = owns_transport
        self.stats = stats

        n = len(source)
        self._n = n
        self._results = [None] * n
        self._cursor = 0  # next unit index to admit
        # Adaptive-source seams (all optional — static sources are
        # untouched): ``on_result`` receives every committed unit,
        # ``available`` bounds admission to the units the source can
        # generate right now, ``exhausted`` ends the campaign early.
        self._on_result = getattr(source, "on_result", None)
        self._available = getattr(source, "available", None)
        self._ready = []  # (ready_at, seq, unit) min-heap
        self._seq = itertools.count()
        self._attempts = {}  # unit -> failed attempts so far
        self._requeues = {}  # unit -> times its worker was lost around it
        self._items = {}  # unit -> payload, while outstanding
        self._digests = {}  # unit -> cache digest, while outstanding
        self._tasks = {}  # task_id -> _TaskState
        self._unit_task = {}  # unit -> task_id
        self._task_prefix = f"{os.getpid():x}-{next(_RUN_SEQ):x}"
        self._task_seq = 0
        self._ema_unit_s = None
        self._probed = False
        self._workers_seen = {}  # worker id -> last heartbeat payload
        self._done_trials = 0
        self._started = None
        self._manifest = None
        self._degraded_span = None

    # -- small helpers ---------------------------------------------------
    @property
    def _mode(self):
        """The ``unit.submit`` mode tag (inline keeps the legacy name)."""
        return "serial" if self.transport.name == "inline" else self.transport.name

    def _cache_deltas(self):
        if self.cache is None:
            return 0, 0
        return (self.cache.stats.hits - self._hits0,
                self.cache.stats.misses - self._misses0)

    def _observe(self, i, result):
        self._results[i] = result
        self._done_trials += self.source.weight(i)
        if self.classify is not None:
            for r in result if self.unit_is_batch else (result,):
                label = self.classify(r)
                self.stats.histogram[label] = self.stats.histogram.get(label, 0) + 1
        if self._on_result is not None:
            # Commit-time feedback: fires exactly once per unit, for
            # cache hits and fresh executions alike, so an adaptive
            # source sees the same outcome stream on a resume as on the
            # original run.
            self._on_result(i, result)

    def _emit_progress(self):
        stats = self.stats
        stats.elapsed_s = time.perf_counter() - self._started
        stats.cache_hits, stats.cache_misses = self._cache_deltas()
        stats.workers = dict(self._workers_seen)
        if self.progress is not None:
            self.progress(ProgressEvent(
                done=self._done_trials,
                total=stats.total_trials,
                cached=stats.cached_trials,
                elapsed_s=stats.elapsed_s,
                trials_per_sec=stats.trials_per_sec,
                histogram=dict(stats.histogram),
                cache_hits=stats.cache_hits,
                cache_misses=stats.cache_misses,
                retries=stats.retries,
                pool_respawns=stats.pool_respawns,
                workers=dict(self._workers_seen),
            ))

    def _open_manifest(self):
        """The campaign's journal, or ``None`` when no cache is attached."""
        if self.cache is None:
            return None
        directory = self.manifest_dir
        if directory is None:
            directory = self.cache.path / "manifests"
        campaign_digest = stable_digest("campaign", self.base_key, self._n)
        manifest = CampaignManifest.open(directory, campaign_digest, self._n)
        if self.resume and manifest.completed:
            obs.inc("runtime.fault.resumed")
        return manifest

    def _register_failure(self, i, exc):
        """Account one failed attempt; re-raise when retries are spent.

        Returns the backoff delay (seconds) before the next attempt.
        """
        self._attempts[i] = self._attempts.get(i, 0) + 1
        if self._attempts[i] > self.policy.max_retries:
            obs.inc("runtime.fault.exhausted")
            obs.emit("unit.exhausted", unit=i, attempts=self._attempts[i],
                     error=type(exc).__name__)
            raise exc
        self.stats.retries += 1
        obs.inc("runtime.fault.retries")
        delay = self.policy.backoff_s(i, self._attempts[i])
        obs.emit("unit.retry", unit=i, attempt=self._attempts[i],
                 backoff_s=delay, error=type(exc).__name__)
        return delay

    # -- admission -------------------------------------------------------
    def _admission_window(self):
        capacity = max(self.jobs, 1) * self.policy.max_units_per_task
        return max(2 * capacity, MIN_ADMISSION_WINDOW)

    def _outstanding(self):
        return len(self._ready) + len(self._unit_task)

    def _admit_limit(self):
        """Units the source allows admitted so far (adaptive sources cap it)."""
        if self._available is None:
            return self._n
        return min(self._n, int(self._available()))

    def _admit(self):
        """Generate units up to the window; satisfy cache hits in place."""
        stats = self.stats
        window = self._admission_window()
        found_cached = False
        # The limit is re-read every iteration: committing a cache hit
        # below feeds ``on_result``, which may unlock the next round of
        # an adaptive source mid-scan (this is how resume replays an
        # entire steered campaign from the cache in one pass).
        while self._cursor < self._admit_limit() and self._outstanding() < window:
            i = self._cursor
            self._cursor += 1
            w = self.source.weight(i)
            if self.cache is not None:
                digest = self.cache.key(self.base_key, self.source.key(i))
                value = self.cache.get(digest)
                if value is not MISS:
                    journaled = (self._manifest is not None
                                 and digest in self._manifest)
                    obs.emit("cache.hit", unit=i, trials=w, journaled=journaled)
                    self._observe(i, value)
                    stats.cached_trials += w
                    stats.units_cached += 1
                    if journaled:
                        stats.journaled_units += 1
                        stats.journaled_trials += w
                    found_cached = True
                    continue
                obs.emit("cache.miss", unit=i, trials=w)
                self._digests[i] = digest
            self._items[i] = self.source.item(i)
            heapq.heappush(self._ready, (0.0, next(self._seq), i))
        if found_cached:
            self._emit_progress()

    # -- dispatch --------------------------------------------------------
    def _group_size(self):
        if self.policy.unit_timeout_s:
            return 1  # per-unit deadlines need per-unit tasks
        if self._ema_unit_s is None:
            return 1  # no latency sample yet: probe with single units
        est = max(self._ema_unit_s, 1e-6)
        size = int(self.policy.target_task_s / est)
        return max(1, min(size, self.policy.max_units_per_task))

    def _next_task_id(self):
        self._task_seq += 1
        return f"{self._task_prefix}-{self._task_seq:06x}"

    def _probe_picklability(self, task):
        """Decline process transports for workloads that cannot travel.

        Probed once, on the first task, exactly like the monolithic
        runner's upfront probe: pickling errors swap execution to the
        inline transport (recorded as a serial fallback); anything else
        the probe raises is a genuine workload error and propagates.
        """
        if self._probed or not self.transport.requires_pickling:
            return
        self._probed = True
        try:
            pickle.dumps((self.worker, task.items))
        except PICKLING_ERRORS as exc:
            self.stats.fallback_reason = f"{type(exc).__name__}: {exc}"
            self.stats.jobs_used = 1
            obs.inc("runtime.fault.serial_fallback")
            self._swap_transport(InlineTransport())

    def _swap_transport(self, replacement):
        self.transport.close(hard=True)
        if self.owns_transport:
            self.transport.shutdown()
        self.transport = replacement
        self.owns_transport = True
        self.transport.open(self._ctx)

    def _dispatch(self, now):
        """Group ready units into tasks while the transport has slots."""
        from repro.runtime.transports import Task

        while (self._ready and self._ready[0][0] <= now
               and self.transport.slots() > 0):
            batch = []
            limit = self._group_size()
            while (self._ready and self._ready[0][0] <= now
                   and len(batch) < limit):
                _, _, i = heapq.heappop(self._ready)
                batch.append(i)
            task = Task(
                task_id=self._next_task_id(),
                indices=tuple(batch),
                items=tuple(self._items[i] for i in batch),
                digests=tuple(self._digests.get(i) for i in batch),
            )
            self._probe_picklability(task)  # may swap to inline
            mode = self._mode
            for i in batch:
                obs.emit("unit.submit", unit=i, mode=mode)
            state = _TaskState(task=task, remaining=set(batch))
            if (getattr(self.transport, "deadline_mode", None) == "submit"
                    and self.policy.unit_timeout_s):
                state.deadline = now + self.policy.unit_timeout_s * len(batch)
            self._tasks[task.task_id] = state
            for i in batch:
                self._unit_task[i] = task.task_id
            self.transport.submit(task)

    # -- outcome handling ------------------------------------------------
    def _resolve_unit(self, i):
        """Detach unit ``i`` from its task; False for stale outcomes."""
        task_id = self._unit_task.pop(i, None)
        if task_id is None:
            return False
        state = self._tasks.get(task_id)
        if state is not None:
            state.remaining.discard(i)
            if not state.remaining:
                del self._tasks[task_id]
        return True

    def _finish(self, i, outcome):
        """Commit a freshly executed unit: stats, cache, journal."""
        stats = self.stats
        w = self.source.weight(i)
        obs.emit("unit.finish", unit=i, trials=w, worker=outcome.worker)
        if outcome.worker is not None:
            # Attribution survives even on runs too short for a
            # heartbeat scan: the outcome itself names its executor.
            seen = self._workers_seen.setdefault(outcome.worker, {})
            seen["units_done"] = seen.get("units_done", 0) + 1
        self._observe(i, outcome.value)
        stats.executed_trials += w
        stats.units_executed += 1
        digest = self._digests.pop(i, None)
        self._items.pop(i, None)
        if self.cache is not None and digest is not None and not outcome.stored:
            self.cache.put(digest, outcome.value)
        if (self._manifest is not None and digest is not None
                and digest not in self._manifest):
            self._manifest.mark(digest, attempts=self._attempts.get(i, 0))
        self._emit_progress()

    def _handle_outcomes(self, outcomes):
        for outcome in outcomes:
            i = outcome.index
            if not self._resolve_unit(i):
                continue  # stale (task already expired and re-dispatched)
            if outcome.kind == "ok":
                if outcome.elapsed_s is not None:
                    self._note_latency(outcome.elapsed_s)
                obs.absorb(outcome.telemetry)
                self._finish(i, outcome)
            elif outcome.kind == "error":
                delay = self._register_failure(i, outcome.error)
                if self.transport.name == "inline":
                    # The serial path retries depth-first: wait out the
                    # backoff and re-run this unit before any other, as
                    # the monolithic serial loop always did.
                    if delay > 0:
                        time.sleep(delay)
                    heapq.heappush(self._ready, (-1.0, next(self._seq), i))
                else:
                    heapq.heappush(
                        self._ready,
                        (time.monotonic() + delay, next(self._seq), i),
                    )
            else:  # requeue: lost through no fault of its own
                self._requeue(i)

    def _requeue(self, i):
        """Re-dispatch a unit whose worker was lost around it.

        Requeues are innocent and normally free, but they are counted:
        a unit that deterministically kills its worker (OOM, segfault,
        a chaos ``exit`` fate that never stops) produces an unbounded
        requeue/respawn loop, not errors, so past
        ``policy.max_requeues`` the loss is converted into a failure
        and charged against the retry budget.  Repeated requeues of the
        same unit back off like retries do — without consuming retries —
        so a flapping worker cannot hot-loop the scheduler.
        """
        self.stats.requeues += 1
        obs.inc("runtime.fault.requeues")
        count = self._requeues[i] = self._requeues.get(i, 0) + 1
        cap = self.policy.max_requeues
        if cap is not None and count > cap:
            cause = RuntimeError(
                f"unit {i} was requeued {count} times "
                f"(max_requeues={cap}): its workers keep dying around it"
            )
            delay = self._register_failure(i, cause)  # raises when spent
        else:
            delay = self.policy.backoff_s(i, count - 1) if count > 1 else 0.0
            obs.emit("unit.requeue", unit=i, count=count, backoff_s=delay)
        heapq.heappush(
            self._ready, (time.monotonic() + delay, next(self._seq), i)
        )

    def _note_latency(self, elapsed_s):
        if self._ema_unit_s is None:
            self._ema_unit_s = elapsed_s
        else:
            self._ema_unit_s += LATENCY_EMA_ALPHA * (elapsed_s - self._ema_unit_s)

    # -- signal handling -------------------------------------------------
    def _note_respawn(self):
        """Count a pool respawn and keep progress flowing through it."""
        self.stats.pool_respawns += 1
        obs.inc("runtime.fault.pool_respawns")
        obs.emit("worker.respawn", respawns=self.stats.pool_respawns)
        with obs.span("runtime.fault.respawn"):
            self._emit_progress()  # progress still flows during recovery

    def _degrade_to_inline(self):
        """The transport gave up: run the remainder in-process."""
        self.stats.degraded_serial = True
        obs.inc("runtime.fault.degraded_serial")
        remaining = self._outstanding() + (self._n - self._cursor)
        self._swap_transport(InlineTransport())
        self._degraded_span = obs.span(
            "runtime.fault.degraded_serial", units=remaining
        )
        self._degraded_span.__enter__()

    def _lease_per_unit(self):
        if self.policy.lease_timeout_s is not None:
            return self.policy.lease_timeout_s
        return self.policy.unit_timeout_s

    def _on_claim(self, signal, now):
        state = self._tasks.get(signal.get("task_id"))
        if state is None:
            return  # claim of an already-expired task: its report is stale
        worker = signal.get("worker")
        for i in sorted(state.remaining):
            obs.emit("unit.claim", unit=i, worker=worker)
        lease = self._lease_per_unit()
        if lease:
            state.deadline = now + lease * max(len(state.task), 1)

    def _on_heartbeat(self, signal):
        worker = signal.get("worker")
        if worker is None:
            return
        self._workers_seen[worker] = {
            key: signal[key]
            for key in ("lag_s", "units_done", "pid")
            if key in signal
        }
        obs.emit("worker.heartbeat", **{"worker": worker, **{
            key: signal[key]
            for key in ("lag_s", "units_done")
            if key in signal
        }})

    def _handle_signals(self, signals, now):
        for signal in signals:
            kind = signal.get("kind")
            if kind == "spawn":
                obs.emit("worker.spawn", workers=signal.get("workers"))
            elif kind == "broken":
                obs.inc("runtime.fault.broken_pools")
            elif kind == "respawn":
                self._note_respawn()
            elif kind == "degraded":
                self._degrade_to_inline()
            elif kind == "claim":
                self._on_claim(signal, now)
            elif kind == "heartbeat":
                self._on_heartbeat(signal)

    # -- deadlines -------------------------------------------------------
    def _check_deadlines(self, now):
        expired = [
            task_id for task_id, state in self._tasks.items()
            if state.deadline is not None and now > state.deadline
        ]
        if not expired:
            return
        budget = self.policy.unit_timeout_s or self._lease_per_unit()
        for task_id in expired:
            state = self._tasks.pop(task_id)
            for i in sorted(state.remaining):
                self._unit_task.pop(i, None)
                self.stats.timeouts += 1
                obs.inc("runtime.fault.timeouts")
                obs.emit("unit.timeout", unit=i, budget_s=budget)
                cause = UnitTimeoutError(
                    f"unit {i} exceeded its {budget:.3f}s wall-clock budget"
                )
                delay = self._register_failure(i, cause)
                heapq.heappush(
                    self._ready, (now + delay, next(self._seq), i)
                )
        outcomes, signals = self.transport.expire(expired)
        self._handle_outcomes(outcomes)
        self._handle_signals(signals, time.monotonic())

    # -- the loop --------------------------------------------------------
    def _poll_timeout(self, now):
        """How long the transport may block before the next control pass."""
        if self._tasks:
            if (self._ready
                    or getattr(self.transport, "needs_poll_tick", False)
                    or any(s.deadline is not None for s in self._tasks.values())
                    or self._lease_per_unit()):
                return self.policy.poll_interval_s
            return None  # nothing else to watch: block until completion
        if self._ready and self._ready[0][0] > now:
            # Everything is backing off: sleep until the first retry is
            # ready (bounded by the scheduler tick).
            pause = min(max(self._ready[0][0] - now, 0.001),
                        self.policy.poll_interval_s)
            time.sleep(pause)
        return 0.0

    def _close_transport(self, hard):
        self.transport.close(hard=hard)
        if self.owns_transport:
            self.transport.shutdown()

    def run(self):
        """Execute the campaign; returns unit results in campaign order."""
        stats = self.stats
        self._started = time.perf_counter()
        # Cache counter baseline: the attached cache may outlive several
        # runs, so progress events report this run's deltas only.
        self._hits0 = self.cache.stats.hits if self.cache is not None else 0
        self._misses0 = self.cache.stats.misses if self.cache is not None else 0
        self._manifest = self._open_manifest()
        self._ctx = TransportContext(
            worker=self.worker, collect=obs.enabled(), policy=self.policy,
            cache=self.cache, jobs=self.jobs,
        )
        stats.transport = self.transport.name
        try:
            self.transport.open(self._ctx)
            # Described after open so backends report bound resources
            # (e.g. the tcp transport's actual listen port).
            stats.transport_info = self.transport.describe()
            while True:
                self._admit()
                if not self._ready and not self._unit_task:
                    if self._cursor >= self._n:
                        break
                    if getattr(self.source, "exhausted", False):
                        break  # adaptive source stopped early
                    if self._cursor >= self._admit_limit():
                        # Nothing in flight, nothing admissible, source
                        # not done: a deterministic error beats a spin.
                        raise RuntimeError(
                            "unit source stalled: no units available, "
                            "none outstanding, and not exhausted"
                        )
                    continue  # window freed up: admit more
                now = time.monotonic()
                self._dispatch(now)
                timeout = self._poll_timeout(time.monotonic())
                outcomes, signals = self.transport.poll(timeout)
                self._handle_outcomes(outcomes)
                self._handle_signals(signals, time.monotonic())
                self._check_deadlines(time.monotonic())
            self._close_transport(hard=False)
        except BaseException as exc:
            with contextlib.suppress(Exception):
                self._close_transport(hard=True)
            if isinstance(exc, KeyboardInterrupt):
                if self._manifest is not None:
                    self._manifest.note_interrupt()
                obs.inc("runtime.fault.interrupted")
            raise
        finally:
            if self._degraded_span is not None:
                self._degraded_span.__exit__(None, None, None)
                self._degraded_span = None
            if self._manifest is not None:
                self._manifest.close()
            stats.elapsed_s = time.perf_counter() - self._started
            stats.cache_hits, stats.cache_misses = self._cache_deltas()
            stats.workers = dict(self._workers_seen)

        obs.inc("runtime.runner.units_executed", stats.units_executed)
        obs.inc("runtime.runner.units_cached", stats.units_cached)
        obs.inc("runtime.runner.trials_executed", stats.executed_trials)
        obs.inc("runtime.runner.trials_cached", stats.cached_trials)
        if stats.fallback_reason is not None:
            obs.inc("runtime.runner.serial_fallbacks")
        return self._results
