"""Fault-tolerance policy for campaign execution.

The paper's Sec. V argument — checkpoint/rollback so long-running work
survives transient errors — applies to this library's own campaign
harness: a 100k-trial fault-injection run must not die because one
worker crashed, hung, or got OOM-killed.  :class:`FaultPolicy` is the
single knob object describing how :class:`~repro.runtime.runner.
CampaignRunner` reacts to unit failures:

* **bounded retries** — a unit whose worker raises (or whose process
  dies) is re-executed up to ``max_retries`` times before the error
  propagates;
* **per-unit wall-clock timeouts** — on the pool path, a unit running
  longer than ``unit_timeout_s`` is declared hung, its worker pool is
  torn down, and the unit is retried (timeouts cannot preempt the
  serial path — there is nothing to kill — so they apply to pools only);
* **pool respawns** — a :class:`~concurrent.futures.process.
  BrokenProcessPool` (worker segfault, OOM kill) respawns the pool up
  to ``max_pool_respawns`` times, after which execution degrades
  gracefully to the serial path instead of failing;
* **exponential backoff with deterministic jitter** — attempt ``k`` of
  unit ``i`` waits ``backoff_base_s * backoff_factor**(k-1)`` seconds,
  scaled by a jitter factor drawn from the *documented child seed
  stream* below.

Retry determinism contract
--------------------------
Retrying never reseeds the **workload**: trial ``i`` always draws from
``SeedSequence(entropy=seed, spawn_key=(i,))`` (see
:mod:`repro.runtime.seeding`) no matter how many attempts its unit
needed, so a campaign that suffered crashes, hangs, and retries
produces results bit-identical to an undisturbed run.  What *is*
reseeded per attempt is the backoff jitter, from the child stream

    ``SeedSequence(entropy=jitter_seed, spawn_key=(unit_index, attempt))``

which makes the retry *schedule* a pure function of the retry trace
(which units failed, how many times) — reproducible in tests and CI,
uncorrelated across units so retried units do not thundering-herd.
See ``docs/campaigns.md`` ("Fault tolerance & resume").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Spawn-key namespace for retry-jitter streams, disjoint from trial
#: streams (which use ``spawn_key=(i,)``) by arity: jitter streams use
#: ``spawn_key=(unit_index, attempt)`` and therefore can never collide
#: with any trial stream of any campaign.
JITTER_STREAM_DOC = "SeedSequence(entropy=jitter_seed, spawn_key=(unit_index, attempt))"


@dataclass(frozen=True)
class FaultPolicy:
    """How the runner reacts to unit failures, hangs, and dead pools.

    Parameters
    ----------
    unit_timeout_s:
        Wall-clock budget per unit on the pool path; ``None`` (default)
        disables hang detection.  A timed-out unit counts against its
        retry budget.
    max_retries:
        Re-executions of one unit after its first failure before the
        original error is re-raised.  ``0`` fails fast.
    backoff_base_s / backoff_factor / backoff_jitter:
        Attempt ``k`` (1-based) of unit ``i`` is delayed by
        ``backoff_base_s * backoff_factor**(k-1) * u`` where ``u`` is
        uniform in ``[1 - backoff_jitter, 1 + backoff_jitter]`` drawn
        from the documented jitter stream (see module docstring).
    jitter_seed:
        Entropy root of the jitter streams.  Fixed by default so retry
        schedules are reproducible given the retry trace.
    max_pool_respawns:
        BrokenProcessPool recoveries before degrading to serial
        execution for the remaining units.
    max_requeues:
        Times one unit may be *requeued* (lost through no fault of its
        own: its pool died around it, its queue claimant stopped
        heartbeating) before the loss is treated as a failure and
        charged against the retry budget.  Innocent losses normally
        carry no penalty, but a unit that deterministically kills its
        worker produces requeues, not errors — without a cap it would
        requeue-and-respawn forever.  The default is generous (ordinary
        worker churn requeues each unit once or twice); repeated
        requeues of one unit also back off like retries do.  ``None``
        disables the cap.
    poll_interval_s:
        Scheduler tick used to check in-flight units against their
        deadlines; only relevant when ``unit_timeout_s`` is set.
    target_task_s:
        Adaptive task-sizing goal: the scheduler groups units into one
        transport task until the group's estimated wall time (from the
        observed per-unit latency EMA) reaches this budget.  Grouping
        amortizes per-task transport overhead without affecting seeds,
        digests, or results.
    max_units_per_task:
        Hard cap on adaptive grouping; also the scale factor of the
        scheduler's admission window.  When ``unit_timeout_s`` is set,
        grouping is pinned to one unit per task so the per-unit deadline
        stays meaningful.
    lease_timeout_s:
        File-queue lease budget per unit: once a worker claims a task,
        it must report within ``lease_timeout_s * len(task)`` seconds or
        the scheduler voids the lease and re-dispatches the units (the
        timeout counts against each unit's retry budget).  ``None``
        falls back to ``unit_timeout_s``; if both are ``None``, leases
        never expire (a lost worker is then only recovered by
        killing + resuming the campaign).
    """

    unit_timeout_s: float = None
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.1
    jitter_seed: int = 0
    max_pool_respawns: int = 2
    max_requeues: int = 16
    poll_interval_s: float = 0.1
    target_task_s: float = 0.2
    max_units_per_task: int = 64
    lease_timeout_s: float = None

    def __post_init__(self):
        if self.unit_timeout_s is not None and self.unit_timeout_s <= 0:
            raise ValueError("unit_timeout_s must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")
        if self.max_pool_respawns < 0:
            raise ValueError("max_pool_respawns must be non-negative")
        if self.max_requeues is not None and self.max_requeues < 1:
            raise ValueError("max_requeues must be positive (or None)")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if self.target_task_s <= 0:
            raise ValueError("target_task_s must be positive")
        if self.max_units_per_task < 1:
            raise ValueError("max_units_per_task must be positive")
        if self.lease_timeout_s is not None and self.lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive (or None)")

    def jitter_factor(self, unit_index, attempt):
        """The deterministic jitter multiplier for one (unit, attempt)."""
        stream = np.random.SeedSequence(
            entropy=self.jitter_seed, spawn_key=(int(unit_index), int(attempt))
        )
        u = np.random.default_rng(stream).random()
        return 1.0 + self.backoff_jitter * (2.0 * u - 1.0)

    def backoff_s(self, unit_index, attempt):
        """Delay before attempt ``attempt`` (1-based) of unit ``unit_index``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        return base * self.jitter_factor(unit_index, attempt)


#: Policy used when a runner is constructed without one: bounded
#: retries and pool respawns on, hang detection off (timeouts need an
#: explicit budget only the caller can know).
DEFAULT_FAULT_POLICY = FaultPolicy()

#: Fail-fast policy: any unit failure propagates immediately and a
#: broken pool is not respawned.  Useful in tests asserting error paths.
FAIL_FAST_POLICY = FaultPolicy(max_retries=0, max_pool_respawns=0)
