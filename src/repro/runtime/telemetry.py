"""Progress and telemetry hooks for campaign execution.

The runner emits one :class:`ProgressEvent` per completed unit of work
(a trial chunk or a sweep item) to whatever callback it was given.
Events carry the running trial throughput, an ETA estimate, the result
cache's hit/miss counters for this run, and the outcome histogram so
far, so a long fault-injection campaign can be watched live without the
runner knowing anything about outcome taxonomies — callers supply a
``classify`` function that maps one result to a histogram label.

Two ready-made consumers:

* :class:`ProgressLog` — records every event (tests, notebooks);
* :func:`print_progress` — one-line-per-event stderr printer used by the
  CLI's ``--progress`` flag.

Deeper visibility (where time went per layer, metric counters, durable
run records) lives in :mod:`repro.obs`; the runner feeds both.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ProgressEvent:
    """Snapshot of a campaign after one unit of work completed."""

    done: int  # trials finished so far (cached + executed)
    total: int  # trials in the whole campaign
    cached: int  # trials satisfied from the result cache
    elapsed_s: float  # wall time since the runner started
    trials_per_sec: float  # executed-trial throughput (cache hits excluded)
    histogram: dict  # label -> count over all finished trials
    cache_hits: int = 0  # ResultCache unit hits during this run
    cache_misses: int = 0  # ResultCache unit misses during this run
    retries: int = 0  # unit re-executions after failures/timeouts so far
    pool_respawns: int = 0  # worker pools recreated so far
    workers: dict = field(default_factory=dict)  # worker id -> last heartbeat info

    @property
    def fraction(self):
        """Completed fraction in [0, 1]; an empty campaign counts as done."""
        return self.done / self.total if self.total else 1.0

    @property
    def executed(self):
        """Trials that actually ran (everything not served from cache)."""
        return self.done - self.cached

    @property
    def eta_s(self):
        """Estimated seconds to finish the remaining trials.

        ``None`` until at least one trial has executed — when everything
        so far came from the cache there is no throughput to extrapolate
        from.  Cached trials include units journaled by a previous
        (interrupted) run, so a resumed campaign's ETA extrapolates from
        this run's executed-trial throughput only — replayed units never
        inflate the rate.
        """
        if self.trials_per_sec <= 0.0 or self.executed <= 0:
            return None
        return (self.total - self.done) / self.trials_per_sec


@dataclass
class ProgressLog:
    """Callback that stores every event, for tests and offline analysis."""

    events: list = field(default_factory=list)

    def __call__(self, event):
        self.events.append(event)

    @property
    def last(self):
        """The most recent ProgressEvent, or None before the first one."""
        return self.events[-1] if self.events else None


def _format_eta(seconds):
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def print_progress(event, stream=None):
    """Print one progress line per event (the CLI ``--progress`` hook)."""
    stream = stream if stream is not None else sys.stderr
    if event.executed <= 0:
        # Nothing has actually run — a trials/sec figure would be
        # meaningless, so say where the results are coming from instead.
        rate = "all from cache" if event.cached else "starting"
    else:
        rate = f"{event.trials_per_sec:.1f} trials/s"
        if event.done < event.total and event.eta_s is not None:
            rate += f", eta {_format_eta(event.eta_s)}"
    parts = [rate, f"{event.cached} cached"]
    if event.cache_hits or event.cache_misses:
        parts.append(f"cache {event.cache_hits}h/{event.cache_misses}m")
    if event.retries:
        parts.append(f"{event.retries} retries")
    if event.pool_respawns:
        parts.append(f"{event.pool_respawns} respawns")
    if event.workers:
        parts.append(f"{len(event.workers)} workers")
    line = f"[{event.done}/{event.total}] " + ", ".join(parts)
    hist = " ".join(f"{k}={v}" for k, v in sorted(event.histogram.items()))
    if hist:
        line += f" | {hist}"
    print(line, file=stream)
