"""Progress and telemetry hooks for campaign execution.

The runner emits one :class:`ProgressEvent` per completed unit of work
(a trial chunk or a sweep item) to whatever callback it was given.
Events carry the running trial throughput and the outcome histogram so
far, so a long fault-injection campaign can be watched live without the
runner knowing anything about outcome taxonomies — callers supply a
``classify`` function that maps one result to a histogram label.

Two ready-made consumers:

* :class:`ProgressLog` — records every event (tests, notebooks);
* :func:`print_progress` — one-line-per-event stderr printer used by the
  CLI's ``--progress`` flag.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ProgressEvent:
    """Snapshot of a campaign after one unit of work completed."""

    done: int  # trials finished so far (cached + executed)
    total: int  # trials in the whole campaign
    cached: int  # trials satisfied from the result cache
    elapsed_s: float  # wall time since the runner started
    trials_per_sec: float  # executed-trial throughput (cache hits excluded)
    histogram: dict  # label -> count over all finished trials

    @property
    def fraction(self):
        return self.done / self.total if self.total else 1.0


@dataclass
class ProgressLog:
    """Callback that stores every event, for tests and offline analysis."""

    events: list = field(default_factory=list)

    def __call__(self, event):
        self.events.append(event)

    @property
    def last(self):
        return self.events[-1] if self.events else None


def print_progress(event, stream=None):
    """Print one progress line per event (the CLI ``--progress`` hook)."""
    stream = stream if stream is not None else sys.stderr
    hist = " ".join(f"{k}={v}" for k, v in sorted(event.histogram.items()))
    print(
        f"[{event.done}/{event.total}] "
        f"{event.trials_per_sec:.1f} trials/s, {event.cached} cached"
        + (f" | {hist}" if hist else ""),
        file=stream,
    )
