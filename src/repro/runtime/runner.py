"""Parallel campaign execution: chunking, pools, cache, fault tolerance.

:class:`CampaignRunner` is the one execution path for every
embarrassingly parallel study in this library (fault-injection
campaigns, the Fig. 5/6 Monte Carlo sweeps, per-element vulnerability
tables).  It fans units of work out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and guarantees four
properties the studies rely on:

**Determinism** — trial ``i`` draws from the seed stream
``SeedSequence(entropy=seed, spawn_key=(i,))`` (see
:mod:`repro.runtime.seeding`), so results are bit-identical for any
``jobs`` / ``chunk_size`` combination, including the serial path —
and, because retries never reseed the workload (see
:mod:`repro.runtime.policy`), including runs that suffered crashes,
hangs, or resumes.

**Memoization** — with a :class:`~repro.runtime.cache.ResultCache`
attached, each unit (a :class:`TrialChunk` or a mapped item) is keyed by
the campaign fingerprint plus its own coordinates; a re-run executes
only units not cached yet.  Chunk boundaries depend only on
``chunk_size`` (never on ``jobs``), so cached chunks stay valid when the
worker count changes.

**Fault tolerance** — the paper's own checkpoint/rollback discipline,
applied to the harness: unit failures are retried with exponential
backoff under a :class:`~repro.runtime.policy.FaultPolicy`; units
exceeding their wall-clock budget are declared hung, their pool is torn
down and they are retried; a :class:`~concurrent.futures.process.
BrokenProcessPool` (worker segfault/OOM kill) respawns the pool up to a
cap and then degrades gracefully to serial execution.  Completed units
are journaled through the cache plus a
:class:`~repro.runtime.manifest.CampaignManifest`, so an interrupted
campaign resumes where it left off and finishes bit-identical to an
undisturbed run.  All of it surfaces as ``runtime.fault.*`` metrics.

**Graceful degradation** — ``jobs=1`` runs inline with no pool; a
worker or item that cannot be pickled falls back to the serial path
(recorded in :attr:`RunStats.fallback_reason` and counted as
``runtime.fault.serial_fallback``) instead of failing, so closures and
learned policy objects keep working.  Genuine workload errors raised
while probing picklability are **not** swallowed — only pickling
errors trigger the fallback.

Workers receive one whole unit (chunk or item) per call, which keeps
inter-process traffic to one task message per chunk rather than per
trial.
"""

from __future__ import annotations

import heapq
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.runtime.cache import MISS, stable_digest
from repro.runtime.manifest import CampaignManifest
from repro.runtime.policy import DEFAULT_FAULT_POLICY, FaultPolicy
from repro.runtime.seeding import trial_seed_sequence
from repro.runtime.telemetry import ProgressEvent

#: Trials per chunk.  Fixed (not derived from ``jobs``) so cache entries
#: remain chunk-aligned across different worker counts.
DEFAULT_CHUNK_SIZE = 32

#: Exceptions raised by the picklability probe that mean "this workload
#: cannot travel to a pool worker" (CPython raises all three depending
#: on the object).  Anything else the probe raises is a real workload
#: error and propagates.
PICKLING_ERRORS = (pickle.PicklingError, TypeError, AttributeError)


class UnitTimeoutError(TimeoutError):
    """A campaign unit exceeded its :class:`FaultPolicy` wall-clock budget."""


@dataclass(frozen=True)
class TrialChunk:
    """A contiguous range of trials of a campaign rooted at ``seed``."""

    seed: int
    start: int
    stop: int

    def __len__(self):
        return self.stop - self.start

    @property
    def indices(self):
        """The trial indices this chunk covers, as a range."""
        return range(self.start, self.stop)

    def seed_sequences(self):
        """One independent seed stream per trial in the chunk."""
        return [trial_seed_sequence(self.seed, i) for i in self.indices]

    def rngs(self):
        """One independent :class:`numpy.random.Generator` per trial."""
        return [np.random.default_rng(ss) for ss in self.seed_sequences()]


def chunk_bounds(n_trials, chunk_size=DEFAULT_CHUNK_SIZE):
    """Split ``range(n_trials)`` into ``[start, stop)`` chunk bounds."""
    if n_trials < 0:
        raise ValueError("n_trials must be non-negative")
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    return [
        (start, min(start + chunk_size, n_trials))
        for start in range(0, n_trials, chunk_size)
    ]


@dataclass
class RunStats:
    """Accounting for one runner invocation."""

    total_trials: int = 0
    executed_trials: int = 0
    cached_trials: int = 0
    units_total: int = 0
    units_executed: int = 0
    units_cached: int = 0
    elapsed_s: float = 0.0
    jobs_used: int = 1
    fallback_reason: str = None
    histogram: dict = field(default_factory=dict)
    cache_hits: int = 0  # ResultCache unit hits during this run
    cache_misses: int = 0  # ResultCache unit misses during this run
    retries: int = 0  # unit re-executions after failures/timeouts
    timeouts: int = 0  # units declared hung (pool torn down, unit retried)
    pool_respawns: int = 0  # worker pools recreated (broken pool / hang kill)
    degraded_serial: bool = False  # respawn cap hit: remainder ran inline
    resumed: bool = False  # this run was started with resume=True
    journaled_units: int = 0  # units replayed from a prior run's journal
    journaled_trials: int = 0

    @property
    def trials_per_sec(self):
        """Executed-trial throughput; 0.0 before any time has elapsed."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.executed_trials / self.elapsed_s


def _invoke(worker, item, collect=False):  # module-level so it pickles by reference
    """Run one unit; optionally capture its spans/metrics for the parent.

    ``collect`` is baked in at submit time from the parent's
    :mod:`repro.obs` state, so worker processes collect telemetry exactly
    when the parent is collecting — including under spawn-based pools
    where the parent's module globals are not inherited.
    """
    if not collect:
        return worker(item), None
    obs.enable()
    with obs.capture() as cap:
        obs.emit("worker.heartbeat")
        worker_result = worker(item)
    return worker_result, cap.snapshot


class CampaignRunner:
    """Runs campaign units serially or over a process pool.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs inline; ``0`` or ``None``
        means one per CPU.
    chunk_size:
        Trials per :class:`TrialChunk` in :meth:`run_trials`.  Keep it
        constant across runs that should share cache entries.
    cache:
        Optional :class:`~repro.runtime.cache.ResultCache`; ``None``
        disables memoization (and with it the campaign manifest, so
        interrupted runs are not resumable).
    progress:
        Optional callback receiving one
        :class:`~repro.runtime.telemetry.ProgressEvent` per finished unit
        (and one per pool respawn, so a stalled-looking campaign still
        reports what it is recovering from).
    classify:
        Optional ``result -> label`` used to build the running outcome
        histogram exposed through progress events and :attr:`stats`.
    policy:
        :class:`~repro.runtime.policy.FaultPolicy` governing timeouts,
        retries, backoff, and pool respawns.  Defaults to
        :data:`~repro.runtime.policy.DEFAULT_FAULT_POLICY`.
    resume:
        Declare this run a resume of an interrupted campaign: requires
        ``cache``, replays the campaign manifest, and accounts replayed
        units in :attr:`RunStats.journaled_units`.  A resume of a
        campaign that never started (no manifest) simply runs fresh.
    manifest_dir:
        Where campaign manifests live; defaults to
        ``<cache.path>/manifests`` when a cache is attached.
    """

    def __init__(self, jobs=1, chunk_size=DEFAULT_CHUNK_SIZE, cache=None,
                 progress=None, classify=None, policy=None, resume=False,
                 manifest_dir=None):
        if jobs is None or jobs == 0:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError("jobs must be positive (or 0/None for all CPUs)")
        self.jobs = int(jobs)
        self.chunk_size = int(chunk_size)
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.cache = cache
        self.progress = progress
        self.classify = classify
        self.policy = policy if policy is not None else DEFAULT_FAULT_POLICY
        if not isinstance(self.policy, FaultPolicy):
            raise TypeError("policy must be a FaultPolicy")
        self.resume = bool(resume)
        if self.resume and cache is None:
            raise ValueError(
                "resume requires a result cache: the cache holds the "
                "journaled unit results a resumed campaign replays"
            )
        self.manifest_dir = manifest_dir
        self.stats = RunStats()

    # -- public entry points --------------------------------------------
    def run_trials(self, worker, n_trials, seed=0, key=()):
        """Run ``worker(chunk) -> list`` over every trial chunk, in order.

        Returns the flat, trial-ordered concatenation of all chunk
        results.  ``key`` must fingerprint everything (besides seed and
        trial range) that determines a trial's result; it namespaces the
        cache entries.
        """
        chunks = [
            TrialChunk(seed, a, b) for a, b in chunk_bounds(n_trials, self.chunk_size)
        ]
        item_keys = [("trials", chunk.seed, chunk.start, chunk.stop) for chunk in chunks]
        per_chunk = self._execute(
            worker, chunks, key, item_keys,
            weights=[len(c) for c in chunks], unit_is_batch=True,
        )
        return [result for chunk_results in per_chunk for result in chunk_results]

    def map(self, worker, items, key=(), item_keys=None):
        """Run ``worker(item)`` for each item, preserving order.

        ``item_keys`` (one JSON-canonicalizable key per item) addresses
        the cache; it defaults to the items themselves, which then must
        be canonicalizable when a cache is attached.
        """
        items = list(items)
        if item_keys is None:
            item_keys = [("item", it) for it in items]
        elif len(item_keys) != len(items):
            raise ValueError("item_keys must match items one-to-one")
        return self._execute(
            worker, items, key, list(item_keys),
            weights=[1] * len(items), unit_is_batch=False,
        )

    # -- internals -------------------------------------------------------
    def _execute(self, worker, items, base_key, item_keys, weights, unit_is_batch):
        stats = RunStats(
            total_trials=sum(weights), units_total=len(items), jobs_used=self.jobs,
            resumed=self.resume,
        )
        self.stats = stats
        obs.emit(
            "campaign.begin",
            units=len(items), trials=stats.total_trials, jobs=self.jobs,
            resumed=stats.resumed,
        )
        with obs.span(
            "runtime.campaign",
            units=len(items), trials=stats.total_trials, jobs=self.jobs,
        ):
            results = self._execute_units(
                worker, items, base_key, item_keys, weights, unit_is_batch, stats
            )
        obs.emit(
            "campaign.end",
            executed_trials=stats.executed_trials,
            cached_trials=stats.cached_trials,
            elapsed_s=stats.elapsed_s,
            retries=stats.retries,
            timeouts=stats.timeouts,
            pool_respawns=stats.pool_respawns,
            histogram=dict(stats.histogram),
        )
        obs.note_campaign({
            "total_trials": stats.total_trials,
            "executed_trials": stats.executed_trials,
            "cached_trials": stats.cached_trials,
            "units_total": stats.units_total,
            "units_executed": stats.units_executed,
            "units_cached": stats.units_cached,
            "elapsed_s": stats.elapsed_s,
            "trials_per_sec": stats.trials_per_sec,
            "jobs_used": stats.jobs_used,
            "fallback_reason": stats.fallback_reason,
            "histogram": dict(stats.histogram),
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "retries": stats.retries,
            "timeouts": stats.timeouts,
            "pool_respawns": stats.pool_respawns,
            "degraded_serial": stats.degraded_serial,
            "resumed": stats.resumed,
            "journaled_units": stats.journaled_units,
            "journaled_trials": stats.journaled_trials,
        })
        return results

    def _open_manifest(self, base_key, digests):
        """The campaign's journal, or ``None`` when no cache is attached."""
        if self.cache is None:
            return None
        directory = self.manifest_dir
        if directory is None:
            directory = self.cache.path / "manifests"
        campaign_digest = stable_digest("campaign", base_key, len(digests))
        manifest = CampaignManifest.open(directory, campaign_digest, len(digests))
        if self.resume and manifest.completed:
            obs.inc("runtime.fault.resumed")
        return manifest

    def _execute_units(self, worker, items, base_key, item_keys, weights,
                       unit_is_batch, stats):
        started = time.perf_counter()
        results = [None] * len(items)
        done_trials = 0
        attempts = {}  # unit index -> failed attempts so far
        # Cache counter baseline: the attached cache may outlive several
        # runs, so progress events report this run's deltas only.
        cache_hits0 = self.cache.stats.hits if self.cache is not None else 0
        cache_misses0 = self.cache.stats.misses if self.cache is not None else 0

        def cache_deltas():
            """Cache hit/miss counts accumulated by this run alone."""
            if self.cache is None:
                return 0, 0
            return (self.cache.stats.hits - cache_hits0,
                    self.cache.stats.misses - cache_misses0)

        def observe(index, result):
            """Record unit *index*'s result and fold it into the histogram."""
            nonlocal done_trials
            results[index] = result
            done_trials += weights[index]
            if self.classify is not None:
                for r in result if unit_is_batch else (result,):
                    label = self.classify(r)
                    stats.histogram[label] = stats.histogram.get(label, 0) + 1

        def emit():
            """Refresh stats and push a ProgressEvent to the callback."""
            stats.elapsed_s = time.perf_counter() - started
            stats.cache_hits, stats.cache_misses = cache_deltas()
            if self.progress is not None:
                self.progress(ProgressEvent(
                    done=done_trials,
                    total=stats.total_trials,
                    cached=stats.cached_trials,
                    elapsed_s=stats.elapsed_s,
                    trials_per_sec=stats.trials_per_sec,
                    histogram=dict(stats.histogram),
                    cache_hits=stats.cache_hits,
                    cache_misses=stats.cache_misses,
                    retries=stats.retries,
                    pool_respawns=stats.pool_respawns,
                ))

        # Unit digests + campaign journal, then the cache scan: satisfy
        # whatever a previous (possibly interrupted) run already finished.
        digests = [None] * len(items)
        if self.cache is not None:
            for i in range(len(items)):
                digests[i] = self.cache.key(base_key, item_keys[i])
        manifest = self._open_manifest(base_key, digests)
        pending = []
        for i in range(len(items)):
            if self.cache is not None:
                value = self.cache.get(digests[i])
                if value is not MISS:
                    obs.emit("cache.hit", unit=i, trials=weights[i],
                             journaled=bool(manifest is not None
                                            and digests[i] in manifest))
                    observe(i, value)
                    stats.cached_trials += weights[i]
                    stats.units_cached += 1
                    if manifest is not None and digests[i] in manifest:
                        stats.journaled_units += 1
                        stats.journaled_trials += weights[i]
                    continue
                obs.emit("cache.miss", unit=i, trials=weights[i])
            pending.append(i)
        if stats.units_cached:
            emit()

        def finish(i, result):
            """Commit a freshly executed unit: stats, cache, journal."""
            obs.emit("unit.finish", unit=i, trials=weights[i])
            observe(i, result)
            stats.executed_trials += weights[i]
            stats.units_executed += 1
            if self.cache is not None:
                self.cache.put(digests[i], result)
            if manifest is not None and digests[i] not in manifest:
                manifest.mark(digests[i], attempts=attempts.get(i, 0))
            emit()

        try:
            if self._use_pool(worker, [items[i] for i in pending], stats):
                self._run_pool(worker, pending, items, attempts, finish, emit,
                               stats)
            else:
                self._run_serial(worker, pending, items, attempts, finish, stats)
        except KeyboardInterrupt:
            if manifest is not None:
                manifest.note_interrupt()
            obs.inc("runtime.fault.interrupted")
            raise
        finally:
            if manifest is not None:
                manifest.close()
            stats.elapsed_s = time.perf_counter() - started
            stats.cache_hits, stats.cache_misses = cache_deltas()

        obs.inc("runtime.runner.units_executed", stats.units_executed)
        obs.inc("runtime.runner.units_cached", stats.units_cached)
        obs.inc("runtime.runner.trials_executed", stats.executed_trials)
        obs.inc("runtime.runner.trials_cached", stats.cached_trials)
        if stats.fallback_reason is not None:
            obs.inc("runtime.runner.serial_fallbacks")
        return results

    # -- failure bookkeeping --------------------------------------------
    def _register_failure(self, i, exc, attempts, stats):
        """Account one failed attempt; re-raise when retries are spent.

        Returns the backoff delay (seconds) before the next attempt.
        """
        attempts[i] = attempts.get(i, 0) + 1
        if attempts[i] > self.policy.max_retries:
            obs.inc("runtime.fault.exhausted")
            obs.emit("unit.exhausted", unit=i, attempts=attempts[i],
                     error=type(exc).__name__)
            raise exc
        stats.retries += 1
        obs.inc("runtime.fault.retries")
        delay = self.policy.backoff_s(i, attempts[i])
        obs.emit("unit.retry", unit=i, attempt=attempts[i],
                 backoff_s=delay, error=type(exc).__name__)
        return delay

    # -- serial execution ------------------------------------------------
    def _run_serial(self, worker, indices, items, attempts, finish, stats):
        """Inline execution with bounded retries (timeouts not enforceable)."""
        for i in indices:
            while True:
                obs.emit("unit.submit", unit=i, mode="serial")
                try:
                    result = worker(items[i])
                except Exception as exc:
                    delay = self._register_failure(i, exc, attempts, stats)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                finish(i, result)
                break

    # -- pool execution --------------------------------------------------
    def _run_pool(self, worker, pending, items, attempts, finish, emit, stats):
        """Windowed pool scheduler with timeouts, retries, and respawns.

        At most ``jobs`` units are in flight, so a submitted unit starts
        (nearly) immediately and its wall-clock deadline is meaningful.
        Failed units re-enter the ready-queue after their deterministic
        backoff; a hung unit or broken pool tears the pool down, and the
        surviving in-flight units are requeued without penalty.
        """
        policy = self.policy
        collect = obs.enabled()
        max_workers = min(self.jobs, len(pending))
        waiting = [(0.0, i) for i in pending]  # (ready_at, index) min-heap
        heapq.heapify(waiting)
        inflight = {}  # future -> (index, deadline or None)
        respawns_left = policy.max_pool_respawns
        pool = None

        def requeue_inflight(now):
            """Units in flight when a pool dies are casualties, not causes:
            requeue them with no retry penalty and no backoff."""
            for j, _ in inflight.values():
                heapq.heappush(waiting, (now, j))
            inflight.clear()

        def teardown(hard):
            """Shut the pool down; *hard* terminates workers outright."""
            nonlocal pool
            if pool is None:
                return
            if hard:
                # A hung or dead worker never drains its queue; terminate
                # the processes outright (private attr, guarded) so a
                # sleeping chaos worker cannot outlive the campaign.
                processes = getattr(pool, "_processes", None) or {}
                for proc in list(processes.values()):
                    try:
                        proc.terminate()
                    except (OSError, ValueError):
                        pass
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown(wait=True)
            pool = None

        def note_respawn():
            """Count a pool respawn and keep progress flowing through it."""
            stats.pool_respawns += 1
            obs.inc("runtime.fault.pool_respawns")
            obs.emit("worker.respawn", respawns=stats.pool_respawns)
            with obs.span("runtime.fault.respawn"):
                emit()  # progress still flows during recovery

        def recover_broken_pool(now):
            """Respawn after a BrokenProcessPool; True if degraded instead."""
            nonlocal respawns_left
            requeue_inflight(now)
            teardown(hard=True)
            obs.inc("runtime.fault.broken_pools")
            if respawns_left <= 0:
                stats.degraded_serial = True
                obs.inc("runtime.fault.degraded_serial")
                remaining = [i for _, i in sorted(waiting)]
                del waiting[:]
                with obs.span("runtime.fault.degraded_serial",
                              units=len(remaining)):
                    self._run_serial(worker, remaining, items, attempts,
                                     finish, stats)
                return True
            respawns_left -= 1
            note_respawn()
            return False

        try:
            while waiting or inflight:
                now = time.monotonic()
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=max_workers)
                    obs.emit("worker.spawn", workers=max_workers)
                try:
                    while (waiting and waiting[0][0] <= now
                           and len(inflight) < max_workers):
                        _, i = heapq.heappop(waiting)
                        deadline = (now + policy.unit_timeout_s
                                    if policy.unit_timeout_s else None)
                        future = pool.submit(_invoke, worker, items[i], collect)
                        inflight[future] = (i, deadline)
                        obs.emit("unit.submit", unit=i, mode="pool")
                except BrokenProcessPool:
                    heapq.heappush(waiting, (now, i))
                    if recover_broken_pool(now):
                        return
                    continue
                if not inflight:
                    # Everything is backing off: sleep until the first
                    # retry is ready (bounded by the scheduler tick).
                    pause = min(max(waiting[0][0] - now, 0.001),
                                policy.poll_interval_s)
                    time.sleep(pause)
                    continue
                tick = (policy.poll_interval_s
                        if (policy.unit_timeout_s or waiting) else None)
                done, _ = wait(list(inflight), timeout=tick,
                               return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    i, _ = inflight.pop(future)
                    try:
                        result, telemetry = future.result()
                    except BrokenProcessPool as exc:
                        broken = True
                        delay = self._register_failure(i, exc, attempts, stats)
                        heapq.heappush(waiting, (time.monotonic() + delay, i))
                    except Exception as exc:
                        delay = self._register_failure(i, exc, attempts, stats)
                        heapq.heappush(waiting, (time.monotonic() + delay, i))
                    else:
                        # Re-parent the worker's spans/metrics under the
                        # current runtime.campaign span before accounting,
                        # so the merged tree matches a serial run's.
                        obs.absorb(telemetry)
                        finish(i, result)
                if broken:
                    if recover_broken_pool(time.monotonic()):
                        return
                    continue
                if policy.unit_timeout_s:
                    now = time.monotonic()
                    hung = [(future, i) for future, (i, deadline)
                            in inflight.items()
                            if deadline is not None and now > deadline]
                    if hung:
                        # Hung workers cannot be interrupted individually:
                        # tear the whole pool down, penalize the hung
                        # units, requeue the innocent in-flight ones.
                        for future, i in hung:
                            inflight.pop(future)
                            stats.timeouts += 1
                            obs.inc("runtime.fault.timeouts")
                            obs.emit("unit.timeout", unit=i,
                                     budget_s=policy.unit_timeout_s)
                            cause = UnitTimeoutError(
                                f"unit {i} exceeded its "
                                f"{policy.unit_timeout_s:.3f}s wall-clock "
                                f"budget"
                            )
                            delay = self._register_failure(
                                i, cause, attempts, stats
                            )
                            heapq.heappush(waiting, (now + delay, i))
                        requeue_inflight(now)
                        teardown(hard=True)
                        note_respawn()
            teardown(hard=False)
        except BaseException:
            teardown(hard=True)
            raise

    def _use_pool(self, worker, pending_items, stats):
        if self.jobs == 1 or len(pending_items) < 2:
            return False
        try:
            pickle.dumps((worker, pending_items))
        except PICKLING_ERRORS as exc:
            # Non-picklable workload: decline the pool, run serial.
            # Anything *else* the probe raises (a worker __getstate__
            # hitting a real bug, say) is a workload error and propagates.
            stats.fallback_reason = f"{type(exc).__name__}: {exc}"
            stats.jobs_used = 1
            obs.inc("runtime.fault.serial_fallback")
            return False
        return True
