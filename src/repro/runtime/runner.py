"""Parallel campaign execution: chunking, process pools, cache, progress.

:class:`CampaignRunner` is the one execution path for every
embarrassingly parallel study in this library (fault-injection
campaigns, the Fig. 5/6 Monte Carlo sweeps, per-element vulnerability
tables).  It fans units of work out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and guarantees three
properties the studies rely on:

**Determinism** — trial ``i`` draws from the seed stream
``SeedSequence(entropy=seed, spawn_key=(i,))`` (see
:mod:`repro.runtime.seeding`), so results are bit-identical for any
``jobs`` / ``chunk_size`` combination, including the serial path.

**Memoization** — with a :class:`~repro.runtime.cache.ResultCache`
attached, each unit (a :class:`TrialChunk` or a mapped item) is keyed by
the campaign fingerprint plus its own coordinates; a re-run executes
only units not cached yet.  Chunk boundaries depend only on
``chunk_size`` (never on ``jobs``), so cached chunks stay valid when the
worker count changes.

**Graceful degradation** — ``jobs=1`` runs inline with no pool; a
worker or item that cannot be pickled silently falls back to the serial
path (recorded in :attr:`RunStats.fallback_reason`) instead of failing,
so closures and learned policy objects keep working.

Workers receive one whole unit (chunk or item) per call, which keeps
inter-process traffic to one task message per chunk rather than per
trial.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.runtime.cache import MISS
from repro.runtime.seeding import trial_seed_sequence
from repro.runtime.telemetry import ProgressEvent

#: Trials per chunk.  Fixed (not derived from ``jobs``) so cache entries
#: remain chunk-aligned across different worker counts.
DEFAULT_CHUNK_SIZE = 32


@dataclass(frozen=True)
class TrialChunk:
    """A contiguous range of trials of a campaign rooted at ``seed``."""

    seed: int
    start: int
    stop: int

    def __len__(self):
        return self.stop - self.start

    @property
    def indices(self):
        return range(self.start, self.stop)

    def seed_sequences(self):
        """One independent seed stream per trial in the chunk."""
        return [trial_seed_sequence(self.seed, i) for i in self.indices]

    def rngs(self):
        """One independent :class:`numpy.random.Generator` per trial."""
        return [np.random.default_rng(ss) for ss in self.seed_sequences()]


def chunk_bounds(n_trials, chunk_size=DEFAULT_CHUNK_SIZE):
    """Split ``range(n_trials)`` into ``[start, stop)`` chunk bounds."""
    if n_trials < 0:
        raise ValueError("n_trials must be non-negative")
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    return [
        (start, min(start + chunk_size, n_trials))
        for start in range(0, n_trials, chunk_size)
    ]


@dataclass
class RunStats:
    """Accounting for one runner invocation."""

    total_trials: int = 0
    executed_trials: int = 0
    cached_trials: int = 0
    units_total: int = 0
    units_executed: int = 0
    units_cached: int = 0
    elapsed_s: float = 0.0
    jobs_used: int = 1
    fallback_reason: str = None
    histogram: dict = field(default_factory=dict)
    cache_hits: int = 0  # ResultCache unit hits during this run
    cache_misses: int = 0  # ResultCache unit misses during this run

    @property
    def trials_per_sec(self):
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.executed_trials / self.elapsed_s


def _invoke(worker, item, collect=False):  # module-level so it pickles by reference
    """Run one unit; optionally capture its spans/metrics for the parent.

    ``collect`` is baked in at submit time from the parent's
    :mod:`repro.obs` state, so worker processes collect telemetry exactly
    when the parent is collecting — including under spawn-based pools
    where the parent's module globals are not inherited.
    """
    if not collect:
        return worker(item), None
    obs.enable()
    with obs.capture() as cap:
        worker_result = worker(item)
    return worker_result, cap.snapshot


class CampaignRunner:
    """Runs campaign units serially or over a process pool.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs inline; ``0`` or ``None``
        means one per CPU.
    chunk_size:
        Trials per :class:`TrialChunk` in :meth:`run_trials`.  Keep it
        constant across runs that should share cache entries.
    cache:
        Optional :class:`~repro.runtime.cache.ResultCache`; ``None``
        disables memoization.
    progress:
        Optional callback receiving one
        :class:`~repro.runtime.telemetry.ProgressEvent` per finished unit.
    classify:
        Optional ``result -> label`` used to build the running outcome
        histogram exposed through progress events and :attr:`stats`.
    """

    def __init__(self, jobs=1, chunk_size=DEFAULT_CHUNK_SIZE, cache=None,
                 progress=None, classify=None):
        if jobs is None or jobs == 0:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError("jobs must be positive (or 0/None for all CPUs)")
        self.jobs = int(jobs)
        self.chunk_size = int(chunk_size)
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.cache = cache
        self.progress = progress
        self.classify = classify
        self.stats = RunStats()

    # -- public entry points --------------------------------------------
    def run_trials(self, worker, n_trials, seed=0, key=()):
        """Run ``worker(chunk) -> list`` over every trial chunk, in order.

        Returns the flat, trial-ordered concatenation of all chunk
        results.  ``key`` must fingerprint everything (besides seed and
        trial range) that determines a trial's result; it namespaces the
        cache entries.
        """
        chunks = [
            TrialChunk(seed, a, b) for a, b in chunk_bounds(n_trials, self.chunk_size)
        ]
        item_keys = [("trials", chunk.seed, chunk.start, chunk.stop) for chunk in chunks]
        per_chunk = self._execute(
            worker, chunks, key, item_keys,
            weights=[len(c) for c in chunks], unit_is_batch=True,
        )
        return [result for chunk_results in per_chunk for result in chunk_results]

    def map(self, worker, items, key=(), item_keys=None):
        """Run ``worker(item)`` for each item, preserving order.

        ``item_keys`` (one JSON-canonicalizable key per item) addresses
        the cache; it defaults to the items themselves, which then must
        be canonicalizable when a cache is attached.
        """
        items = list(items)
        if item_keys is None:
            item_keys = [("item", it) for it in items]
        elif len(item_keys) != len(items):
            raise ValueError("item_keys must match items one-to-one")
        return self._execute(
            worker, items, key, list(item_keys),
            weights=[1] * len(items), unit_is_batch=False,
        )

    # -- internals -------------------------------------------------------
    def _execute(self, worker, items, base_key, item_keys, weights, unit_is_batch):
        stats = RunStats(
            total_trials=sum(weights), units_total=len(items), jobs_used=self.jobs
        )
        self.stats = stats
        with obs.span(
            "runtime.campaign",
            units=len(items), trials=stats.total_trials, jobs=self.jobs,
        ):
            results = self._execute_units(
                worker, items, base_key, item_keys, weights, unit_is_batch, stats
            )
        obs.note_campaign({
            "total_trials": stats.total_trials,
            "executed_trials": stats.executed_trials,
            "cached_trials": stats.cached_trials,
            "units_total": stats.units_total,
            "units_executed": stats.units_executed,
            "units_cached": stats.units_cached,
            "elapsed_s": stats.elapsed_s,
            "trials_per_sec": stats.trials_per_sec,
            "jobs_used": stats.jobs_used,
            "fallback_reason": stats.fallback_reason,
            "histogram": dict(stats.histogram),
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
        })
        return results

    def _execute_units(self, worker, items, base_key, item_keys, weights,
                       unit_is_batch, stats):
        started = time.perf_counter()
        results = [None] * len(items)
        done_trials = 0
        # Cache counter baseline: the attached cache may outlive several
        # runs, so progress events report this run's deltas only.
        cache_hits0 = self.cache.stats.hits if self.cache is not None else 0
        cache_misses0 = self.cache.stats.misses if self.cache is not None else 0

        def cache_deltas():
            if self.cache is None:
                return 0, 0
            return (self.cache.stats.hits - cache_hits0,
                    self.cache.stats.misses - cache_misses0)

        def observe(index, result):
            nonlocal done_trials
            results[index] = result
            done_trials += weights[index]
            if self.classify is not None:
                for r in result if unit_is_batch else (result,):
                    label = self.classify(r)
                    stats.histogram[label] = stats.histogram.get(label, 0) + 1

        def emit():
            stats.elapsed_s = time.perf_counter() - started
            stats.cache_hits, stats.cache_misses = cache_deltas()
            if self.progress is not None:
                self.progress(ProgressEvent(
                    done=done_trials,
                    total=stats.total_trials,
                    cached=stats.cached_trials,
                    elapsed_s=stats.elapsed_s,
                    trials_per_sec=stats.trials_per_sec,
                    histogram=dict(stats.histogram),
                    cache_hits=stats.cache_hits,
                    cache_misses=stats.cache_misses,
                ))

        # Cache scan: satisfy whatever we can without executing.
        pending = []
        digests = [None] * len(items)
        for i in range(len(items)):
            if self.cache is not None:
                digests[i] = self.cache.key(base_key, item_keys[i])
                value = self.cache.get(digests[i])
                if value is not MISS:
                    observe(i, value)
                    stats.cached_trials += weights[i]
                    stats.units_cached += 1
                    continue
            pending.append(i)
        if stats.units_cached:
            emit()

        def finish(i, result):
            observe(i, result)
            stats.executed_trials += weights[i]
            stats.units_executed += 1
            if self.cache is not None:
                self.cache.put(digests[i], result)
            emit()

        if self._use_pool(worker, [items[i] for i in pending], stats):
            collect = obs.enabled()
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(pending))) as pool:
                futures = {
                    pool.submit(_invoke, worker, items[i], collect): i
                    for i in pending
                }
                for future in as_completed(futures):
                    result, telemetry = future.result()
                    # Re-parent the worker's spans/metrics under the
                    # current runtime.campaign span before accounting, so
                    # the merged tree matches what a serial run records.
                    obs.absorb(telemetry)
                    finish(futures[future], result)
        else:
            for i in pending:
                finish(i, worker(items[i]))

        stats.elapsed_s = time.perf_counter() - started
        stats.cache_hits, stats.cache_misses = cache_deltas()
        obs.inc("runtime.runner.units_executed", stats.units_executed)
        obs.inc("runtime.runner.units_cached", stats.units_cached)
        obs.inc("runtime.runner.trials_executed", stats.executed_trials)
        obs.inc("runtime.runner.trials_cached", stats.cached_trials)
        if stats.fallback_reason is not None:
            obs.inc("runtime.runner.serial_fallbacks")
        return results

    def _use_pool(self, worker, pending_items, stats):
        if self.jobs == 1 or len(pending_items) < 2:
            return False
        try:
            pickle.dumps((worker, pending_items))
        except Exception as exc:  # non-picklable workload: serial fallback
            stats.fallback_reason = f"{type(exc).__name__}: {exc}"
            stats.jobs_used = 1
            return False
        return True
