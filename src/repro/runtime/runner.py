"""Parallel campaign execution: chunking, transports, cache, fault tolerance.

:class:`CampaignRunner` is the one execution path for every
embarrassingly parallel study in this library (fault-injection
campaigns, the Fig. 5/6 Monte Carlo sweeps, per-element vulnerability
tables).  It feeds units of work to a
:class:`~repro.runtime.scheduler.CampaignScheduler` driving a pluggable
:class:`~repro.runtime.transports.base.Transport` (``inline`` serial
reference, ``pool`` process pool, ``fqueue`` shared-filesystem worker
queue, ``tcp`` socket stream for shared-nothing hosts) and guarantees
four properties the studies rely on:

**Determinism** — trial ``i`` draws from the seed stream
``SeedSequence(entropy=seed, spawn_key=(i,))`` (see
:mod:`repro.runtime.seeding`), so results are bit-identical for any
``jobs`` / ``chunk_size`` / transport combination, including the serial
path — and, because retries never reseed the workload (see
:mod:`repro.runtime.policy`), including runs that suffered crashes,
hangs, worker churn, or resumes.

**Memoization** — with a :class:`~repro.runtime.cache.ResultCache`
attached, each unit (a :class:`TrialChunk` or a mapped item) is keyed by
the campaign fingerprint plus its own coordinates; a re-run executes
only units not cached yet.  Chunk boundaries depend only on
``chunk_size`` (never on ``jobs``), so cached chunks stay valid when the
worker count changes.

**Fault tolerance** — the paper's own checkpoint/rollback discipline,
applied to the harness: unit failures are retried with exponential
backoff under a :class:`~repro.runtime.policy.FaultPolicy`; units
exceeding their wall-clock budget (or file-queue lease) are declared
hung and retried; a :class:`~concurrent.futures.process.
BrokenProcessPool` (worker segfault/OOM kill) respawns the pool up to a
cap and then degrades gracefully to inline execution.  Completed units
are journaled through the cache plus a
:class:`~repro.runtime.manifest.CampaignManifest` owned by the
scheduler — the single source of truth — so an interrupted campaign
resumes where it left off and finishes bit-identical to an undisturbed
run, no matter how many workers died underneath it.  All of it surfaces
as ``runtime.fault.*`` metrics.

**Graceful degradation** — ``jobs=1`` runs inline with no pool; a
worker or item that cannot be pickled falls back to the inline path
(recorded in :attr:`RunStats.fallback_reason` and counted as
``runtime.fault.serial_fallback``) instead of failing, so closures and
learned policy objects keep working.  Genuine workload errors raised
while probing picklability are **not** swallowed — only pickling
errors trigger the fallback.

Workers receive one task of whole units (chunks or items) per call —
sized adaptively from observed unit latency — which keeps transport
traffic to one message per task rather than per trial.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro import obs
from repro.runtime.policy import DEFAULT_FAULT_POLICY, FaultPolicy
from repro.runtime.scheduler import (  # noqa: F401  (re-exported API)
    DEFAULT_CHUNK_SIZE,
    PICKLING_ERRORS,
    CampaignScheduler,
    ChunkSource,
    ListSource,
    TrialChunk,
    UnitTimeoutError,
    chunk_bounds,
)
from repro.runtime.transports import (
    InlineTransport,
    PoolTransport,
    Transport,
    create_transport,
)


@dataclass
class RunStats:
    """Accounting for one runner invocation."""

    total_trials: int = 0
    executed_trials: int = 0
    cached_trials: int = 0
    units_total: int = 0
    units_executed: int = 0
    units_cached: int = 0
    elapsed_s: float = 0.0
    jobs_used: int = 1
    fallback_reason: str = None
    histogram: dict = field(default_factory=dict)
    cache_hits: int = 0  # ResultCache unit hits during this run
    cache_misses: int = 0  # ResultCache unit misses during this run
    retries: int = 0  # unit re-executions after failures/timeouts
    timeouts: int = 0  # units declared hung (lease/budget expired, retried)
    requeues: int = 0  # units re-dispatched after a voided claim (dead worker)
    pool_respawns: int = 0  # worker pools/processes recreated
    degraded_serial: bool = False  # respawn cap hit: remainder ran inline
    resumed: bool = False  # this run was started with resume=True
    journaled_units: int = 0  # units replayed from a prior run's journal
    journaled_trials: int = 0
    transport: str = "inline"  # transport backend the run started on
    transport_info: dict = field(default_factory=dict)  # its describe() record
    workers: dict = field(default_factory=dict)  # worker id -> heartbeat info

    @property
    def trials_per_sec(self):
        """Executed-trial throughput; 0.0 before any time has elapsed."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.executed_trials / self.elapsed_s


class CampaignRunner:
    """Runs campaign units over a pluggable execution transport.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs inline; ``0`` or ``None``
        means one per CPU.  Ignored by transports that manage their own
        capacity (``fqueue`` scales with its workers, not ``jobs``).
    chunk_size:
        Trials per :class:`TrialChunk` in :meth:`run_trials`.  Keep it
        constant across runs that should share cache entries.
    cache:
        Optional :class:`~repro.runtime.cache.ResultCache`; ``None``
        disables memoization (and with it the campaign manifest, so
        interrupted runs are not resumable).  The ``fqueue`` transport
        requires a cache — it doubles as the worker→scheduler data
        channel.
    progress:
        Optional callback receiving one
        :class:`~repro.runtime.telemetry.ProgressEvent` per finished unit
        (and one per pool respawn, so a stalled-looking campaign still
        reports what it is recovering from).
    classify:
        Optional ``result -> label`` used to build the running outcome
        histogram exposed through progress events and :attr:`stats`.
    policy:
        :class:`~repro.runtime.policy.FaultPolicy` governing timeouts,
        retries, backoff, leases, task sizing, and pool respawns.
        Defaults to :data:`~repro.runtime.policy.DEFAULT_FAULT_POLICY`.
    resume:
        Declare this run a resume of an interrupted campaign: requires
        ``cache``, replays the campaign manifest, and accounts replayed
        units in :attr:`RunStats.journaled_units`.  A resume of a
        campaign that never started (no manifest) simply runs fresh.
    manifest_dir:
        Where campaign manifests live; defaults to
        ``<cache.path>/manifests`` when a cache is attached.
    transport:
        Execution backend: a registry name (``"inline"``, ``"pool"``,
        ``"fqueue"``, ``"tcp"``), a :class:`~repro.runtime.transports.base.
        Transport` instance (reused across runs; the caller owns its
        :meth:`shutdown`), or ``None`` to pick automatically from
        ``jobs`` (the historical behaviour).
    transport_options:
        Constructor kwargs when ``transport`` is a registry name — e.g.
        ``{"queue_dir": ..., "workers": 4}`` for ``fqueue``.
    """

    def __init__(self, jobs=1, chunk_size=DEFAULT_CHUNK_SIZE, cache=None,
                 progress=None, classify=None, policy=None, resume=False,
                 manifest_dir=None, transport=None, transport_options=None):
        if jobs is None or jobs == 0:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError("jobs must be positive (or 0/None for all CPUs)")
        self.jobs = int(jobs)
        self.chunk_size = int(chunk_size)
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.cache = cache
        self.progress = progress
        self.classify = classify
        self.policy = policy if policy is not None else DEFAULT_FAULT_POLICY
        if not isinstance(self.policy, FaultPolicy):
            raise TypeError("policy must be a FaultPolicy")
        self.resume = bool(resume)
        if self.resume and cache is None:
            raise ValueError(
                "resume requires a result cache: the cache holds the "
                "journaled unit results a resumed campaign replays"
            )
        self.manifest_dir = manifest_dir
        if transport_options and not isinstance(transport, str):
            raise ValueError(
                "transport_options apply only when transport is a registry "
                "name; configure a Transport instance directly instead"
            )
        if (transport is not None and not isinstance(transport, (str, Transport))):
            raise TypeError("transport must be a name, a Transport, or None")
        self.transport = transport
        self.transport_options = dict(transport_options or {})
        self.stats = RunStats()

    # -- public entry points --------------------------------------------
    def run_trials(self, worker, n_trials, seed=0, key=()):
        """Run ``worker(chunk) -> list`` over every trial chunk, in order.

        Returns the flat, trial-ordered concatenation of all chunk
        results.  ``key`` must fingerprint everything (besides seed and
        trial range) that determines a trial's result; it namespaces the
        cache entries.  Chunks are generated lazily — a 10M-trial
        campaign never materializes its unit list.
        """
        source = ChunkSource(seed, n_trials, self.chunk_size)
        per_chunk = self._execute(worker, source, key, unit_is_batch=True)
        return [result for chunk_results in per_chunk for result in chunk_results]

    def map(self, worker, items, key=(), item_keys=None):
        """Run ``worker(item)`` for each item, preserving order.

        ``item_keys`` (one JSON-canonicalizable key per item) addresses
        the cache; it defaults to the items themselves, which then must
        be canonicalizable when a cache is attached.
        """
        items = list(items)
        if item_keys is None:
            item_keys = [("item", it) for it in items]
        elif len(item_keys) != len(items):
            raise ValueError("item_keys must match items one-to-one")
        source = ListSource(items, list(item_keys))
        return self._execute(worker, source, key, unit_is_batch=False)

    def run_units(self, worker, source, key=(), unit_is_batch=True):
        """Run ``worker(unit)`` over a custom :class:`UnitSource`.

        The source supplies the unit protocol (``__len__``, ``item``,
        ``key``, ``weight``, ``total_weight``) and may additionally be
        *adaptive*: an optional ``on_result(unit, outcome)`` hook fires
        at commit time for every unit (cache hits included), an optional
        ``available()`` bounds admission to the units the source can
        generate right now, and an optional ``exhausted`` property ends
        the campaign early.  Returns per-unit results in unit order;
        units never admitted (early stop) are ``None``.
        """
        for name in ("item", "key", "weight", "total_weight"):
            if not hasattr(source, name):
                raise TypeError(f"unit source must define {name!r}")
        return self._execute(worker, source, key, unit_is_batch=unit_is_batch)

    # -- internals -------------------------------------------------------
    def _build_transport(self, source):
        """Resolve the transport for one run; ``owns`` marks ours to stop."""
        if isinstance(self.transport, Transport):
            return self.transport, False
        if isinstance(self.transport, str):
            return create_transport(self.transport, **self.transport_options), True
        # Automatic selection, preserving the historical rule: one job or
        # fewer than two units never pays for a pool.
        if self.jobs == 1 or len(source) < 2:
            return InlineTransport(), True
        return PoolTransport(), True

    def _execute(self, worker, source, base_key, unit_is_batch):
        stats = RunStats(
            total_trials=source.total_weight, units_total=len(source),
            jobs_used=self.jobs, resumed=self.resume,
        )
        self.stats = stats
        transport, owns = self._build_transport(source)
        scheduler = CampaignScheduler(
            worker=worker, source=source, base_key=base_key,
            unit_is_batch=unit_is_batch, jobs=self.jobs, cache=self.cache,
            progress=self.progress, classify=self.classify,
            policy=self.policy, resume=self.resume,
            manifest_dir=self.manifest_dir, transport=transport,
            owns_transport=owns, stats=stats,
        )
        obs.emit(
            "campaign.begin",
            units=len(source), trials=stats.total_trials, jobs=self.jobs,
            resumed=stats.resumed,
        )
        with obs.span(
            "runtime.campaign",
            units=len(source), trials=stats.total_trials, jobs=self.jobs,
        ):
            results = scheduler.run()
        obs.emit(
            "campaign.end",
            executed_trials=stats.executed_trials,
            cached_trials=stats.cached_trials,
            elapsed_s=stats.elapsed_s,
            retries=stats.retries,
            timeouts=stats.timeouts,
            pool_respawns=stats.pool_respawns,
            histogram=dict(stats.histogram),
        )
        obs.note_campaign({
            "total_trials": stats.total_trials,
            "executed_trials": stats.executed_trials,
            "cached_trials": stats.cached_trials,
            "units_total": stats.units_total,
            "units_executed": stats.units_executed,
            "units_cached": stats.units_cached,
            "elapsed_s": stats.elapsed_s,
            "trials_per_sec": stats.trials_per_sec,
            "jobs_used": stats.jobs_used,
            "fallback_reason": stats.fallback_reason,
            "histogram": dict(stats.histogram),
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "retries": stats.retries,
            "timeouts": stats.timeouts,
            "requeues": stats.requeues,
            "pool_respawns": stats.pool_respawns,
            "degraded_serial": stats.degraded_serial,
            "resumed": stats.resumed,
            "journaled_units": stats.journaled_units,
            "journaled_trials": stats.journaled_trials,
            "transport": stats.transport,
            "transport_info": dict(stats.transport_info),
        })
        return results
