"""On-disk result cache for campaign chunks.

Re-running a sweep should only execute *new* points.  The cache maps a
content digest — computed from the campaign's configuration (program
fingerprint, injector settings, policies, ...) plus the unit of work
(seed and trial range, or sweep item) — to the pickled unit result.

Layout: one file per entry, ``<cache_dir>/<digest>.pkl``, written
atomically (temp file + :func:`os.replace`) so a killed run never leaves
a torn entry.  The default directory is ``$REPRO_CACHE_DIR`` if set,
else ``~/.cache/repro``.  Keys are canonicalized JSON hashed with
SHA-256; anything that changes the numbers must be part of the key, so a
stale hit is impossible as long as callers fingerprint their inputs
honestly (see :meth:`ResultCache.key`).

I/O failures degrade gracefully: an unreadable entry is a miss, an
unwritable directory makes ``put`` a no-op.  The cache never makes a run
fail — only slower.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs

#: Bump when the on-disk value format or keying scheme changes; old
#: entries then simply miss instead of deserializing garbage.
CACHE_VERSION = 1

MISS = object()
"""Sentinel returned by :meth:`ResultCache.get` on a miss (results may
legitimately be ``None``)."""


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _canonical(obj):
    """Reduce ``obj`` to JSON-encodable form with deterministic identity."""
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, float):
        # repr round-trips doubles exactly; json's float formatting does
        # too on modern pythons, but be explicit about intent.
        return repr(obj)
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (bytes, bytearray)):
        return hashlib.sha256(bytes(obj)).hexdigest()
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for a cache key")


def stable_digest(*parts):
    """SHA-256 hex digest of canonicalized ``parts`` (order-sensitive)."""
    payload = json.dumps(
        [CACHE_VERSION, _canonical(list(parts))], separators=(",", ":"), sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/write counters for one :class:`ResultCache` lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0

    def as_dict(self):
        """The counters as a plain dict (for run records and tests)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "errors": self.errors,
        }


@dataclass
class ResultCache:
    """Digest-addressed pickle store for campaign unit results."""

    path: Path = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        self.path = Path(self.path) if self.path is not None else default_cache_dir()

    # -- keying ----------------------------------------------------------
    def key(self, *parts):
        """Digest for a unit of work; ``parts`` must pin down its result."""
        return stable_digest(*parts)

    def _entry(self, digest):
        return self.path / f"{digest}.pkl"

    # -- access ----------------------------------------------------------
    def get(self, digest):
        """The stored value, or :data:`MISS`."""
        entry = self._entry(digest)
        try:
            with open(entry, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            obs.inc("runtime.cache.misses")
            return MISS
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            # Torn/stale entry (e.g. written by an incompatible version):
            # treat as a miss; put() will overwrite it.
            self.stats.errors += 1
            self.stats.misses += 1
            obs.inc("runtime.cache.errors")
            obs.inc("runtime.cache.misses")
            return MISS
        self.stats.hits += 1
        obs.inc("runtime.cache.hits")
        return value

    def peek(self, digest):
        """The stored value, or :data:`MISS` — without counting hit/miss.

        The distributed transports use the cache as their data channel
        (a queue worker persists the value, the scheduler reads it
        back); those reads must not inflate the campaign's cache-hit
        accounting, which reports memoization only.
        """
        try:
            with open(self._entry(digest), "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return MISS

    def contains(self, digest):
        """Whether an entry exists on disk, without loading or counting it.

        Used by resume tooling to cross-check a campaign manifest
        against the cache without disturbing the hit/miss statistics.
        """
        return self._entry(digest).exists()

    def put(self, digest, value):
        """Store ``value`` atomically; failures are silent (cache-only).

        Safe under concurrent multi-process writers (the distributed
        transports share one cache directory): each writer stages into
        its own ``mkstemp`` file and publishes with :func:`os.replace`,
        so readers only ever see complete entries.  Entries are
        digest-addressed — two writers racing on one digest are writing
        equivalent values — so losing the race to a winner that already
        published still counts as a successful write.
        """
        entry = self._entry(digest)
        try:
            self.path.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh)
                os.replace(tmp, entry)
            finally:
                try:
                    os.unlink(tmp)
                except FileNotFoundError:
                    pass
        except OSError:
            if entry.exists():
                # A concurrent writer won the race with an equivalent
                # value; the cache holds what we meant to store.
                self.stats.writes += 1
                obs.inc("runtime.cache.writes")
                return
            self.stats.errors += 1
            obs.inc("runtime.cache.errors")
            return
        self.stats.writes += 1
        obs.inc("runtime.cache.writes")

    def clear(self):
        """Delete every entry (directory itself is kept)."""
        if not self.path.is_dir():
            return 0
        n = 0
        for entry in self.path.glob("*.pkl"):
            try:
                entry.unlink()
                n += 1
            except OSError:
                self.stats.errors += 1
        return n

    def __len__(self):
        if not self.path.is_dir():
            return 0
        return sum(1 for _ in self.path.glob("*.pkl"))
