"""Shared parallel-execution layer for campaigns and sweeps.

Every headline experiment in this reproduction — the Sec. III
fault-injection taxonomy, the Fig. 5/6 Monte Carlo study, the
ML-accelerated FI ground-truth tables — is an embarrassingly parallel
sweep of independent trials.  This package provides the one runtime
they all share:

:mod:`repro.runtime.seeding`
    Deterministic per-trial seed streams
    (``SeedSequence(entropy=seed, spawn_key=(i,))``) so parallel and
    serial runs are bit-identical.
:mod:`repro.runtime.cache`
    Digest-addressed on-disk result cache so re-running a sweep only
    executes new points.
:mod:`repro.runtime.runner`
    :class:`CampaignRunner` — the public campaign API: chunked fan-out
    with a serial fallback for ``jobs=1`` and non-picklable workloads.
:mod:`repro.runtime.scheduler`
    :class:`CampaignScheduler` — the async control loop behind the
    runner: lazy unit admission, adaptive task sizing, retries, leases,
    and the manifest journal, over a pluggable transport.
:mod:`repro.runtime.transports`
    The execution backends: ``inline`` (serial reference), ``pool``
    (local process pool), ``fqueue`` (shared-filesystem queue claimed by
    independent ``repro worker`` processes).  See
    ``docs/distributed.md``.
:mod:`repro.runtime.policy`
    :class:`FaultPolicy` — per-unit wall-clock timeouts, bounded retries
    with deterministically jittered exponential backoff, and
    BrokenProcessPool respawn caps, so the harness survives the faults
    this repo exists to study.
:mod:`repro.runtime.manifest`
    :class:`CampaignManifest` — append-only journal of completed units
    on top of the result cache; what makes ``--resume`` a first-class,
    bit-identical continuation of an interrupted campaign.
:mod:`repro.runtime.chaos`
    :class:`ChaosWorker` — deterministic injection of worker crashes,
    deaths, hangs, and slowdowns for tests and the ``chaos-resume`` CI
    job.
:mod:`repro.runtime.telemetry`
    Progress events (trials/sec, ETA, cache hit/miss deltas, retry and
    respawn counts, outcome histogram so far) and ready-made consumers.

The runner is also instrumented against :mod:`repro.obs`: with
collection enabled it opens a ``runtime.campaign`` span per invocation,
captures spans/metrics recorded inside pool workers and re-parents them
onto the parent process's tree, and notes per-campaign accounting for
structured run records (``repro <exp> --record`` / ``repro report``).

See ``docs/campaigns.md`` for the user-facing guide and
``docs/observability.md`` for the observability layer.
"""

from repro.runtime.cache import (
    CACHE_VERSION,
    CacheStats,
    MISS,
    ResultCache,
    default_cache_dir,
    stable_digest,
)
from repro.runtime.chaos import ChaosError, ChaosSpec, ChaosWorker
from repro.runtime.manifest import CampaignManifest
from repro.runtime.policy import (
    DEFAULT_FAULT_POLICY,
    FAIL_FAST_POLICY,
    FaultPolicy,
)
from repro.runtime.runner import (
    DEFAULT_CHUNK_SIZE,
    CampaignRunner,
    RunStats,
    TrialChunk,
    UnitTimeoutError,
    chunk_bounds,
)
from repro.runtime.scheduler import CampaignScheduler, ChunkSource, ListSource
from repro.runtime.seeding import spawn_trial_seeds, trial_rng, trial_seed_sequence
from repro.runtime.stats import (
    hoeffding_halfwidth,
    stratified_estimate,
    wilson_halfwidth,
    wilson_interval,
)
from repro.runtime.telemetry import ProgressEvent, ProgressLog, print_progress
from repro.runtime.transports import (
    FileQueueTransport,
    InlineTransport,
    PoolTransport,
    TcpTransport,
    Transport,
    create_transport,
    tcp_worker_main,
    worker_main,
)

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "MISS",
    "ResultCache",
    "default_cache_dir",
    "stable_digest",
    "ChaosError",
    "ChaosSpec",
    "ChaosWorker",
    "CampaignManifest",
    "DEFAULT_FAULT_POLICY",
    "FAIL_FAST_POLICY",
    "FaultPolicy",
    "DEFAULT_CHUNK_SIZE",
    "CampaignRunner",
    "CampaignScheduler",
    "ChunkSource",
    "ListSource",
    "RunStats",
    "TrialChunk",
    "UnitTimeoutError",
    "chunk_bounds",
    "Transport",
    "InlineTransport",
    "PoolTransport",
    "FileQueueTransport",
    "TcpTransport",
    "create_transport",
    "worker_main",
    "tcp_worker_main",
    "spawn_trial_seeds",
    "trial_rng",
    "trial_seed_sequence",
    "hoeffding_halfwidth",
    "stratified_estimate",
    "wilson_halfwidth",
    "wilson_interval",
    "ProgressEvent",
    "ProgressLog",
    "print_progress",
]
