"""Deterministic per-trial seed streams for parallel campaigns.

Parallel execution must not change results: a campaign chunked over N
worker processes has to produce bit-identical outcomes to the same
campaign run serially.  The classic bug is threading one RNG through the
trial loop — any re-chunking then reorders the stream and changes every
trial after the first chunk boundary.

The fix used here is :class:`numpy.random.SeedSequence` spawning: trial
``i`` of a campaign rooted at ``seed`` always draws from

    ``SeedSequence(entropy=seed, spawn_key=(i,))``

which is exactly the ``i``-th child of ``SeedSequence(seed).spawn(n)``
(verified in ``tests/test_runtime.py``) but can be constructed for any
single index without materializing the first ``i - 1`` siblings.  A
trial's stream therefore depends only on ``(seed, i)`` — never on which
chunk, process, or campaign size it ran under.
"""

from __future__ import annotations

import numpy as np


def trial_seed_sequence(seed, index):
    """The seed stream of trial ``index`` in a campaign rooted at ``seed``."""
    if index < 0:
        raise ValueError("trial index must be non-negative")
    return np.random.SeedSequence(entropy=seed, spawn_key=(int(index),))


def trial_rng(seed, index):
    """A fresh :class:`numpy.random.Generator` for one trial."""
    return np.random.default_rng(trial_seed_sequence(seed, index))


def spawn_trial_seeds(seed, n_trials):
    """Seed streams for trials ``0..n_trials-1`` (convenience batch form)."""
    if n_trials < 0:
        raise ValueError("n_trials must be non-negative")
    return [trial_seed_sequence(seed, i) for i in range(n_trials)]
