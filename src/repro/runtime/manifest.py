"""Campaign manifest: an append-only journal of completed units.

The :class:`~repro.runtime.cache.ResultCache` already persists every
completed unit result under a content digest, which is what makes an
interrupted campaign resumable at all.  The manifest is the lightweight
ledger *on top* of the cache that turns "some digests happen to be on
disk" into a first-class resume story:

* it records, per campaign (identified by the digest of its base key),
  the full ordered unit-digest list, so a resuming run can report how
  many units are already journaled before executing anything;
* it records per-unit completion lines with the attempt count, so the
  retry trace of a faulty run survives the run;
* it records interruption markers (SIGINT / ``KeyboardInterrupt``), so
  tooling can distinguish a cleanly finished campaign from one that
  needs resuming.

Format: JSONL, one self-describing object per line, append-only, at
``<dir>/<campaign_digest>.jsonl``.  Line types:

``{"type": "campaign", "version": 1, "campaign": d, "units": n}``
    Header, written once when the manifest is created.
``{"type": "unit", "digest": d, "attempts": k}``
    One completed unit (``attempts`` counts *failed* attempts before
    the success — 0 for a clean first run).
``{"type": "interrupt"}``
    The campaign was interrupted after the preceding lines.

Readers ignore unknown line types and stop at the first torn line, so a
manifest killed mid-append is still loadable — exactly the discipline
the result cache uses for its entries.  A manifest whose header does
not match the campaign being run (different unit count — e.g. the
campaign was re-keyed or resized) is rotated aside and restarted; the
cache entries themselves remain valid regardless.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

MANIFEST_VERSION = 1


class CampaignManifest:
    """Journal of one campaign's completed units (see module docstring)."""

    def __init__(self, path, campaign_digest, total_units):
        self.path = Path(path)
        self.campaign_digest = campaign_digest
        self.total_units = int(total_units)
        self.completed = {}  # unit digest -> failed-attempt count
        self.interrupted = False
        self._fh = None

    # -- construction ----------------------------------------------------
    @classmethod
    def open(cls, directory, campaign_digest, total_units):
        """Open (or create) the manifest of one campaign under ``directory``.

        Replays any existing journal first, so :attr:`completed` reflects
        every unit a previous (possibly interrupted) run finished.
        """
        directory = Path(directory)
        path = directory / f"{campaign_digest}.jsonl"
        manifest = cls(path, campaign_digest, total_units)
        if path.exists() and not manifest._replay():
            # Header mismatch: the campaign changed shape under the same
            # digest-named file (should not happen — the digest pins the
            # base key — but never trust a journal you cannot parse).
            manifest._rotate()
        return manifest

    def _replay(self):
        """Load existing lines; False if the header does not match."""
        self.completed = {}
        self.interrupted = False
        try:
            raw = self.path.read_text()
        except OSError:
            return True
        header_seen = False
        for line in raw.splitlines():
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail from a killed writer: keep what parsed
            kind = entry.get("type")
            if kind == "campaign":
                if (entry.get("campaign") != self.campaign_digest
                        or entry.get("units") != self.total_units):
                    return False
                header_seen = True
            elif kind == "unit":
                self.completed[entry["digest"]] = int(entry.get("attempts", 0))
                self.interrupted = False
            elif kind == "interrupt":
                self.interrupted = True
            # unknown types: ignored (forward compatibility)
        return header_seen or not raw.strip()

    def _rotate(self):
        try:
            os.replace(self.path, self.path.with_suffix(".jsonl.stale"))
        except OSError:
            pass
        self.completed = {}
        self.interrupted = False

    # -- writing ---------------------------------------------------------
    def _append(self, entry):
        try:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                header_needed = not self.path.exists()
                self._fh = open(self.path, "a")
                if header_needed:
                    json.dump(
                        {
                            "type": "campaign",
                            "version": MANIFEST_VERSION,
                            "campaign": self.campaign_digest,
                            "units": self.total_units,
                        },
                        self._fh,
                    )
                    self._fh.write("\n")
            json.dump(entry, self._fh)
            self._fh.write("\n")
            self._fh.flush()
        except OSError:
            # Journal I/O must never fail a campaign: the cache still
            # holds the results; only the ledger is degraded.
            self._fh = None

    def mark(self, digest, attempts=0):
        """Journal one completed unit."""
        self.completed[digest] = int(attempts)
        self.interrupted = False
        self._append({"type": "unit", "digest": digest, "attempts": int(attempts)})

    def note_interrupt(self):
        """Journal that the campaign was interrupted here."""
        self.interrupted = True
        self._append({"type": "interrupt"})

    def close(self):
        """Close the journal file handle; safe to call more than once."""
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    # -- queries ---------------------------------------------------------
    def journaled(self, digests):
        """How many of ``digests`` this manifest has journaled complete."""
        return sum(1 for d in digests if d in self.completed)

    @property
    def complete(self):
        """Whether every unit of the campaign has been journaled done."""
        return len(self.completed) >= self.total_units

    def __contains__(self, digest):
        return digest in self.completed

    def __len__(self):
        return len(self.completed)
