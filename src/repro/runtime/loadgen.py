"""Synthetic latency-bound campaign workloads for fabric benchmarks.

The distributed-fabric benchmark (``benchmarks/perf_smoke.py``,
``BENCH_dist.json``) measures how campaign throughput scales with
*worker count*, which is a property of the scheduler/transport fabric,
not of the CPU: on a one-core CI runner a CPU-bound unit cannot go
faster with more processes, but a latency-bound unit — one dominated by
I/O-style waiting, like a device measurement or an RPC — pipelines
across workers exactly as queueing theory predicts (throughput ≈
workers / unit latency, until the core saturates).

:class:`LatencyWorker` models such a unit: a fixed sleep followed by a
deterministic per-trial draw, so runs stay bit-identical across
transports while the timing is dominated by the wait.  It lives here,
in an importable module, because benchmark scripts run as ``__main__``
— whose attributes a spawned ``python -m repro worker`` process can
never resolve when unpickling a file-queue payload (see
``docs/distributed.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyWorker:
    """Chunk worker that waits ``latency_s``, then draws one value per trial.

    With ``latency_s=0`` the draw is all that remains (a few
    microseconds), which makes an inline run of many one-trial chunks a
    direct measurement of the scheduler's own per-unit overhead.
    """

    latency_s: float = 0.02

    def __call__(self, chunk):
        """Simulate one latency-bound unit: sleep, then draw per trial."""
        if self.latency_s > 0:
            time.sleep(self.latency_s)
        return [float(rng.random()) for rng in chunk.rngs()]
