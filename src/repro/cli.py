"""Command-line interface: run paper experiments by name.

Usage::

    python -m repro list                     # available experiments
    python -m repro fig5 --jobs 4            # Fig. 5 sweep over 4 processes
    python -m repro fig6 --runs 50           # Fig. 6 with 50 MC runs/point
    python -m repro fi --trials 2000         # fault-injection campaign
    python -m repro fig2 fig3 hdc            # several in sequence
    python -m repro fi --record runs         # record telemetry to runs/<id>/
    python -m repro report runs/<id>         # render a recorded run
    python -m repro report runs --list       # one summary line per run
    python -m repro report --diff A B        # compare two run records
    python -m repro report runs/<id> --trace-out t.json --prom-out m.prom
    python -m repro watch runs/<id>          # live view of a running campaign
    python -m repro worker /shared/q         # file-queue campaign worker
    python -m repro fi --transport fqueue --queue-dir /shared/q --workers 4

Campaign experiments (``fig5``/``fig6``/``wall``/``fi``) execute
through :mod:`repro.runtime`: ``--jobs N`` fans trial chunks out over N
processes (results identical to serial), completed chunks are memoized
on disk so re-runs only execute new points (``--no-cache`` disables,
``--cache-dir`` relocates), and ``--progress`` streams trials/sec, an
ETA, and the outcome histogram to stderr.  Campaigns are fault
tolerant: failed units retry with backoff (``--max-retries``), hung
units are detected and retried (``--unit-timeout``), dead worker pools
respawn, and an interrupted campaign — SIGINT, OOM-killed worker,
reboot — resumes with ``--resume`` to a bit-identical result (see
``docs/campaigns.md``, "Fault tolerance & resume").  ``--record DIR`` wraps each
experiment in a :class:`repro.obs.RunRecorder`: spans, metrics, and
campaign accounting land in a JSONL run record that ``python -m repro
report <run-dir>`` renders (see ``docs/observability.md``).
``--transport`` selects the execution backend (``inline``/``pool``/
``fqueue``/``tcp``); with ``fqueue``, ``python -m repro worker
<queue-dir>`` processes — spawned by ``--workers N`` or launched by
hand on any host sharing the filesystem — claim and execute the
campaign's tasks; with ``tcp``, the scheduler listens on ``--listen
HOST:PORT`` and ``python -m repro worker --connect HOST:PORT``
processes dial in from anywhere with a route (no shared filesystem
needed — see ``docs/distributed.md``).  The CLI
prints the same series the benchmark harness checks; the full
statistical versions live under ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys


def _runtime_kwargs(args):
    """jobs/cache/progress/policy keywords shared by campaign experiments."""
    from repro.runtime import FaultPolicy, ResultCache, print_progress

    if args.resume and args.no_cache:
        raise SystemExit(
            "--resume needs the result cache (it replays journaled units); "
            "drop --no-cache"
        )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    policy = None
    if args.unit_timeout is not None or args.max_retries is not None:
        defaults = FaultPolicy()
        policy = FaultPolicy(
            unit_timeout_s=args.unit_timeout,
            max_retries=(args.max_retries if args.max_retries is not None
                         else defaults.max_retries),
        )
    kwargs = {
        "jobs": args.jobs,
        "cache": cache,
        "progress": print_progress if args.progress else None,
        "policy": policy,
        "resume": args.resume,
    }
    transport = getattr(args, "transport", "auto")
    if transport == "fqueue":
        if args.queue_dir is None:
            raise SystemExit("--transport fqueue needs --queue-dir")
        if args.no_cache:
            raise SystemExit(
                "the fqueue transport needs the result cache (workers hand "
                "results back through it); drop --no-cache"
            )
        kwargs["transport"] = "fqueue"
        kwargs["transport_options"] = {
            "queue_dir": args.queue_dir,
            "workers": args.workers,
        }
    elif transport == "tcp":
        from repro.runtime.transports.tcp import parse_address

        try:
            host, port = parse_address(args.listen or "127.0.0.1:0")
        except ValueError as exc:
            raise SystemExit(f"--listen: {exc}") from None
        kwargs["transport"] = "tcp"
        kwargs["transport_options"] = {
            "host": host,
            "port": port,
            "workers": args.workers,
            "auth": args.auth,
        }
    elif transport != "auto":
        kwargs["transport"] = transport
    return kwargs


def _print_table(title, header, rows):
    print(f"\n== {title} ==")
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(header)
    ]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))


def _mc_kernel(args):
    """Kernel selection for Monte Carlo experiments (fig5/fig6/wall)."""
    return "scalar" if getattr(args, "reference_kernel", False) else "auto"


def _fi_engine(args):
    """Trial-engine selection for the fault-injection experiment (fi)."""
    if getattr(args, "reference_engine", False):
        return "reference"  # back-compat alias; wins over --engine
    return getattr(args, "engine", "auto")


def run_fig5(args):
    """Fig. 5: rollbacks per segment vs error probability."""
    from repro.core import MonteCarloStudy, adpcm_like_workload

    study = MonteCarloStudy(
        adpcm_like_workload(n_segments=12, seed=0), n_runs=args.runs, seed=0,
        kernel=_mc_kernel(args),
    )
    probs = [1e-8, 1e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4]
    analytic = study.analytic_rollbacks(probs)
    points = study.sweep(probs, **_runtime_kwargs(args))
    rows = [
        (f"{p:.0e}", f"{point.mean_rollbacks_per_segment:.3f}",
         f"{a:.3f}" if a < 1e6 else ">1e6")
        for p, a, point in zip(probs, analytic, points)
    ]
    _print_table("Fig. 5: rollbacks per segment", ("p", "simulated", "analytic"), rows)
    _print_runtime_stats(study.last_sweep_stats, unit="levels")


def run_fig6(args):
    """Fig. 6: deadline hit rate per policy vs error probability."""
    from repro.core import ALL_POLICIES, MonteCarloStudy, adpcm_like_workload

    study = MonteCarloStudy(
        adpcm_like_workload(n_segments=12, seed=0), n_runs=args.runs, seed=0,
        kernel=_mc_kernel(args),
    )
    probs = [1e-8, 1e-7, 1e-6, 3e-6, 1e-5, 3e-5]
    names = [p.name for p in ALL_POLICIES]
    points = study.sweep(probs, **_runtime_kwargs(args))
    rows = [
        (f"{pt.error_probability:.0e}", *(f"{pt.hit_rate[n]:.2f}" for n in names))
        for pt in points
    ]
    _print_table("Fig. 6: deadline hit rate", ("p", *names), rows)
    _print_runtime_stats(study.last_sweep_stats, unit="levels")


def run_fi(args):
    """Sec. III: fault-injection campaign with outcome taxonomy."""
    from repro.arch import FaultInjector
    from repro.arch import programs as P

    injector = FaultInjector(P.checksum(12), engine=_fi_engine(args))
    steering = None
    if getattr(args, "steer", False):
        from repro.arch import SteeringConfig

        config = SteeringConfig(
            target_ci=args.target_ci,
            early_stop=not args.no_early_stop,
        )
        campaign = injector.run_steered_campaign(
            budget=args.trials, seed=0, config=config, **_runtime_kwargs(args)
        )
        steering = campaign.steering
    else:
        campaign = injector.run_campaign(
            n_trials=args.trials, seed=0, **_runtime_kwargs(args)
        )
    counts = campaign.counts()
    rows = [
        (outcome.value, counts[outcome], f"{rate:.3f}")
        for outcome, rate in campaign.rates().items()
    ]
    executed = len(campaign.records)
    _print_table(
        f"Sec. III: {executed}-trial campaign on '{campaign.program}'",
        ("outcome", "trials", "rate"),
        rows,
    )
    _print_runtime_stats(injector.last_run_stats, unit="trials")
    if steering is not None:
        print(
            f"steering: AVF {steering['avf_estimate']:.4f} "
            f"± {steering['ci_halfwidth']:.4f} "
            f"(target ±{steering['target_ci']}, "
            f"{int(steering['confidence'] * 100)}% confidence), "
            f"{steering['trials_executed']}/{steering['budget']} trials "
            f"({steering['trials_saved']} saved), "
            f"{steering['rounds']} rounds, {steering['refits']} refits, "
            f"stopped on {steering['stop_reason']}"
        )
    stats = injector.engine_stats()
    print(
        f"engine: {stats['engine']} (requested {stats['requested_engine']}), "
        f"{stats['snapshots']} snapshots @ interval "
        f"{stats['snapshot_interval']}, golden {stats['golden_cycles']} "
        f"cycles (budget {stats['max_cycles']})"
    )
    resolved = {"fi_engine": stats}
    if steering is not None:
        resolved["steering"] = steering
    return resolved


def _print_runtime_stats(stats, unit):
    if stats is None:
        return
    line = (
        f"runtime: {stats.executed_trials} {unit} executed, "
        f"{stats.cached_trials} cached, "
        f"{stats.trials_per_sec:.1f} {unit}/s, jobs={stats.jobs_used}"
    )
    if stats.resumed:
        line += f", resumed ({stats.journaled_units} units journaled)"
    if stats.retries:
        line += f", {stats.retries} retries"
    if stats.pool_respawns:
        line += f", {stats.pool_respawns} pool respawns"
    if stats.degraded_serial:
        line += ", degraded to serial"
    print(line)


def run_fig2(args):
    """Fig. 2: per-instance SHE spread over a synthesized core."""
    from repro.circuit import (
        SheFlow,
        SpiceLikeCharacterizer,
        build_default_library,
        synthesize_core,
    )

    library = build_default_library(temperature_c=45.0)
    characterizer = SpiceLikeCharacterizer()
    characterizer.characterize_library(library)
    netlist = synthesize_core(library, n_instances=args.instances, seed=0)
    report = SheFlow(characterizer).run(netlist, library)
    lo, mean, hi = report.spread()
    counts, edges = report.histogram(bins=8)
    rows = [(f"{edges[i]:.1f}-{edges[i+1]:.1f}", int(c)) for i, c in enumerate(counts)]
    _print_table(
        f"Fig. 2: SHE dT over {len(netlist)} instances "
        f"(min {lo:.1f} / mean {mean:.1f} / max {hi:.1f} K)",
        ("dT bin (K)", "#instances"),
        rows,
    )


def run_fig3(args):
    """Fig. 3: guardband comparison (worst-case vs SHE-aware ML)."""
    from repro.circuit import (
        SpiceLikeCharacterizer,
        build_default_library,
        guardband_comparison,
        synthesize_core,
    )

    library = build_default_library()
    SpiceLikeCharacterizer().characterize_library(library)
    netlist = synthesize_core(library, n_instances=args.instances, seed=1)
    result = guardband_comparison(
        netlist, build_default_library, ml_training_samples=3000, seed=0
    )
    _print_table(
        "Fig. 3: sign-off clock period per flow",
        ("flow", "period (ps)"),
        [
            ("nominal", f"{result.nominal_period:.1f}"),
            ("worst-case", f"{result.worst_case_period:.1f}"),
            ("SHE-aware ML", f"{result.she_aware_period:.1f}"),
        ],
    )
    print(
        f"guardband reduction {result.guardband_reduction:.0%}, "
        f"ML MAPE {result.ml_validation_mape:.2%}"
    )


def run_hdc(args):
    """HDC robustness: accuracy vs component error rate."""
    import numpy as np

    from repro.hdc import HDCClassifier
    from repro.ml import train_test_split

    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(c, 0.7, size=(80, 6)) for c in (0.0, 2.0, 4.0, 6.0)])
    y = np.repeat([0, 1, 2, 3], 80)
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.3, seed=1)
    clf = HDCClassifier(dim=4096, retrain_epochs=3, seed=0).fit(Xtr, ytr)
    rates = (0.0, 0.2, 0.4)
    accs = clf.accuracy_under_errors(Xte, yte, rates, n_repeats=3)
    _print_table(
        "Sec. II: HDC accuracy under hardware errors",
        ("error rate", "accuracy"),
        [(f"{r:.1f}", f"{a:.3f}") for r, a in zip(rates, accs)],
    )


def run_managers(args):
    """Sec. IV: RL-DVFS manager vs baselines."""
    from repro.system import (
        RLDVFSManager,
        StaticManager,
        RandomManager,
        generate_task_set,
        run_managed_simulation,
    )

    tasks = generate_task_set(n_tasks=8, total_utilization=2.0, seed=0)
    rows = []
    for name, manager, train in (
        ("static", StaticManager(), 0),
        ("random", RandomManager(seed=1), 0),
        ("RL-DVFS", RLDVFSManager(seed=0), 6),
    ):
        metrics = run_managed_simulation(
            manager, tasks, n_cores=4, duration=15.0, seed=0,
            training_episodes=train,
        )
        rows.append(
            (name, f"{metrics.deadline_hit_rate:.3f}", f"{metrics.energy_j:.1f}",
             f"{metrics.mttf_years:.2f}")
        )
    _print_table(
        "Sec. IV: dynamic reliability managers",
        ("manager", "deadline hit", "energy (J)", "MTTF (y)"),
        rows,
    )


def run_wall(args):
    """Sec. V-D: locate the error-rate wall per policy."""
    from repro.core import ALL_POLICIES, MonteCarloStudy, adpcm_like_workload

    study = MonteCarloStudy(
        adpcm_like_workload(n_segments=12, seed=0), n_runs=args.runs, seed=0,
        kernel=_mc_kernel(args),
    )
    points = study.sweep(
        [1e-8, 1e-7, 3e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4], **_runtime_kwargs(args)
    )
    rows = []
    for policy in ALL_POLICIES:
        wall = study.find_wall(points, policy.name)
        rows.append(
            (policy.name, f"{wall.last_safe_p:.0e}", f"{wall.first_failed_p:.0e}")
        )
    _print_table(
        "Sec. V-D: error-rate wall per policy",
        ("policy", "safe up to", "collapsed by"),
        rows,
    )


EXPERIMENTS = {
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fi": run_fi,
    "hdc": run_hdc,
    "managers": run_managers,
    "wall": run_wall,
}


def _positive_int(value):
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def _jobs_count(value):
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0 (0 = all CPUs), got {jobs}")
    return jobs


def _retries_count(value):
    retries = int(value)
    if retries < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {retries}")
    return retries


def _timeout_seconds(value):
    timeout = float(value)
    if timeout <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0 seconds, got {timeout}")
    return timeout


def _target_ci(value):
    width = float(value)
    if not 0.0 < width < 0.5:
        raise argparse.ArgumentTypeError(
            f"must be a half-width in (0, 0.5), got {width}"
        )
    return width


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run reproduced experiments from the DATE 2023 paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (or 'list' to enumerate them)",
    )
    parser.add_argument(
        "--runs", type=_positive_int, default=100, help="Monte Carlo runs/point"
    )
    parser.add_argument(
        "--instances", type=_positive_int, default=300,
        help="netlist size for circuit flows",
    )
    parser.add_argument(
        "--trials", type=_positive_int, default=500,
        help="fault-injection trials for 'fi'",
    )
    runtime = parser.add_argument_group(
        "campaign runtime (fig5/fig6/wall/fi; see docs/campaigns.md)"
    )
    runtime.add_argument(
        "--jobs", type=_jobs_count, default=1,
        help="worker processes for campaigns (0 = one per CPU; default 1)",
    )
    runtime.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache (re-execute everything)",
    )
    runtime.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory (default $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    runtime.add_argument(
        "--progress", action="store_true",
        help="stream trials/sec, ETA, and the outcome histogram to stderr",
    )
    runtime.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted campaign from its journal + result cache "
             "(bit-identical to an uninterrupted run; needs the cache on)",
    )
    runtime.add_argument(
        "--unit-timeout", type=_timeout_seconds, default=None, metavar="SECONDS",
        help="wall-clock budget per unit of work on the pool path; a hung "
             "unit's pool is torn down and the unit retried",
    )
    runtime.add_argument(
        "--max-retries", type=_retries_count, default=None, metavar="N",
        help="re-executions of a failed unit before its error propagates "
             "(default 2)",
    )
    runtime.add_argument(
        "--transport", choices=("auto", "inline", "pool", "fqueue", "tcp"),
        default="auto",
        help="campaign execution backend (default auto: inline for --jobs 1, "
             "process pool otherwise; fqueue needs --queue-dir and the "
             "result cache; tcp listens on --listen for 'repro worker "
             "--connect' processes — see docs/distributed.md)",
    )
    runtime.add_argument(
        "--queue-dir", default=None, metavar="DIR",
        help="shared queue directory for --transport fqueue ('python -m "
             "repro worker DIR' processes claim tasks from it)",
    )
    runtime.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="listen address for --transport tcp ('python -m repro worker "
             "--connect HOST:PORT' processes dial in; default 127.0.0.1:0, "
             "an ephemeral localhost port)",
    )
    runtime.add_argument(
        "--auth", default=None, metavar="SECRET",
        help="shared secret for --transport tcp's connection handshake "
             "(default: $REPRO_TCP_AUTH, else a random secret only "
             "spawned workers inherit); externally launched workers must "
             "be given the same secret — see docs/distributed.md",
    )
    runtime.add_argument(
        "--workers", type=_jobs_count, default=1, metavar="N",
        help="fqueue/tcp workers to spawn and babysit (0 = rely on "
             "externally launched 'repro worker' processes; default 1)",
    )
    runtime.add_argument(
        "--record", default=None, metavar="DIR",
        help="record spans/metrics/outcomes to DIR/<run-id>/record.jsonl "
             "(render with 'python -m repro report DIR/<run-id>')",
    )
    kernels = parser.add_argument_group(
        "Monte Carlo kernels (fig5/fig6/wall; see docs/performance.md)"
    )
    kernels.add_argument(
        "--reference-kernel", action="store_true",
        help="force the scalar reference Monte Carlo kernel instead of the "
             "batched numpy kernels (debugging / equivalence checks)",
    )
    engines = parser.add_argument_group(
        "fault-injection engine (fi; see docs/performance.md)"
    )
    engines.add_argument(
        "--engine", choices=("auto", "batched", "forked", "reference"),
        default="auto",
        help="fault-injection trial engine (default: auto, which resolves "
             "to the trial-vectorized batched engine; forked = scalar "
             "checkpoint-and-replay, reference = full rerun; records are "
             "bit-identical on every engine — see docs/fi-engine.md)",
    )
    engines.add_argument(
        "--reference-engine", action="store_true",
        help="alias for --engine reference (wins if both are given); kept "
             "for compatibility with pre-batched-engine run configs",
    )
    steering = parser.add_argument_group(
        "campaign steering (fi; see docs/steering.md)"
    )
    steering.add_argument(
        "--steer", action="store_true",
        help="adaptively allocate fi trials by surrogate-guided stratified "
             "importance sampling and stop early at --target-ci; --trials "
             "becomes the trial budget and unspent trials are reported as "
             "trials_saved (estimates stay unbiased for the uniform AVF)",
    )
    steering.add_argument(
        "--target-ci", type=_target_ci, default=0.02, metavar="HALFWIDTH",
        help="AVF confidence-interval half-width at which a steered "
             "campaign stops (default 0.02 at 95%% confidence)",
    )
    steering.add_argument(
        "--no-early-stop", action="store_true",
        help="spend the full --trials budget even after --target-ci is "
             "reached (still steered; useful for calibration runs)",
    )
    return parser


def build_report_parser():
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Render, list, diff, or export recorded runs "
                    "(see 'python -m repro <exp> --record').",
    )
    parser.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="run record: a record.jsonl file, a run directory, or a base "
             "directory of runs (newest record wins — the resolved record "
             "is printed to stderr); exactly two paths with --diff",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_runs",
        help="list every run record under PATH (one summary line each) "
             "instead of rendering one",
    )
    parser.add_argument(
        "--diff", action="store_true",
        help="compare two run records: outcome-histogram deltas with a "
             "chi-square homogeneity flag, per-layer time deltas, counter "
             "deltas, and the config diff",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="also export a Chrome trace-event JSON file (open it in "
             "Perfetto or chrome://tracing); includes the flight-recorder "
             "events when the run has an events.jsonl",
    )
    parser.add_argument(
        "--prom-out", default=None, metavar="FILE",
        help="also export the run's metrics in Prometheus text format",
    )
    return parser


def _load_record(path):
    """Resolve + load one record, noting base-dir resolution on stderr."""
    from repro.obs import load_run_record, resolve_record_path

    record_path, how = resolve_record_path(path)
    if how == "base-dir":
        print(
            f"resolved newest run record under {path}: {record_path} "
            f"(use --list to see all runs)",
            file=sys.stderr,
        )
    return load_run_record(record_path)


def run_report(argv):
    """``python -m repro report``: render/list/diff/export run records."""
    from repro.obs import diff_records, list_runs, render_diff, render_report

    args = build_report_parser().parse_args(argv)
    try:
        if args.list_runs:
            if len(args.paths) != 1:
                print("--list takes exactly one base directory",
                      file=sys.stderr)
                return 2
            runs = list_runs(args.paths[0])
            _print_table(
                f"runs under {args.paths[0]}",
                ("run id", "experiment", "started", "elapsed", "status",
                 "trials"),
                [
                    (r["run_id"], r["name"], r["started"],
                     f"{r['elapsed_s']:.2f} s", r["status"], r["trials"])
                    for r in runs
                ],
            )
            return 0
        if args.diff:
            if len(args.paths) != 2:
                print("--diff takes exactly two run records (A B)",
                      file=sys.stderr)
                return 2
            record_a = _load_record(args.paths[0])
            record_b = _load_record(args.paths[1])
            print(render_diff(diff_records(record_a, record_b)), end="")
            return 0
        if len(args.paths) != 1:
            print("report takes exactly one path (or two with --diff)",
                  file=sys.stderr)
            return 2
        record = _load_record(args.paths[0])
    except (FileNotFoundError, ValueError) as exc:
        print(f"cannot load run record: {exc}", file=sys.stderr)
        return 2
    print(render_report(record), end="")
    _export_record(record, args)
    return 0


def _export_record(record, args):
    """Write the --trace-out / --prom-out artifacts for a loaded record."""
    from pathlib import Path

    from repro.obs import EVENTS_FILENAME, read_events
    from repro.obs.export import write_chrome_trace, write_prometheus_text

    if args.trace_out:
        events_path = Path(record["path"]).parent / EVENTS_FILENAME
        events = read_events(events_path) if events_path.is_file() else []
        write_chrome_trace(record, args.trace_out, events=events)
        print(f"chrome trace: {args.trace_out}")
    if args.prom_out:
        write_prometheus_text(record, args.prom_out)
        print(f"prometheus metrics: {args.prom_out}")


def build_worker_parser():
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="Run one campaign worker: either claim task files from "
                    "a shared queue directory (QUEUE_DIR) or dial a tcp "
                    "scheduler (--connect HOST:PORT) and execute the tasks "
                    "it streams down (see docs/distributed.md).",
    )
    parser.add_argument(
        "queue_dir", nargs="?", default=None, metavar="QUEUE_DIR",
        help="the shared queue directory a scheduler publishes tasks into "
             "(--transport fqueue --queue-dir QUEUE_DIR); omit when using "
             "--connect",
    )
    parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="dial a tcp-transport scheduler instead of claiming from a "
             "queue directory (--transport tcp --listen HOST:PORT side)",
    )
    parser.add_argument(
        "--id", default=None, metavar="WORKER_ID",
        help="stable worker id used in claims, heartbeats, and straggler "
             "attribution (default: w<pid>)",
    )
    parser.add_argument(
        "--poll", type=_timeout_seconds, default=0.05, metavar="SECONDS",
        help="idle-poll interval while there is no work (default 0.05s)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="drain the queue and exit instead of waiting for more work "
             "(queue-directory mode only)",
    )
    parser.add_argument(
        "--auth", default=None, metavar="SECRET",
        help="shared handshake secret of the scheduler being dialed "
             "(--connect mode only; default $REPRO_TCP_AUTH)",
    )
    return parser


def run_worker(argv):
    """``python -m repro worker``: file-queue or tcp campaign worker."""
    args = build_worker_parser().parse_args(argv)
    if (args.queue_dir is None) == (args.connect is None):
        print("worker needs exactly one of QUEUE_DIR or --connect HOST:PORT",
              file=sys.stderr)
        return 2
    if args.connect is not None:
        if args.once:
            print("--once applies only to queue-directory workers",
                  file=sys.stderr)
            return 2
        from repro.runtime.transports.tcp import parse_address, tcp_worker_main

        try:
            parse_address(args.connect)
        except ValueError as exc:
            print(f"--connect: {exc}", file=sys.stderr)
            return 2
        return tcp_worker_main(
            args.connect, worker_id=args.id, poll_s=args.poll,
            auth=args.auth,
        )
    if args.auth is not None:
        print("--auth applies only to --connect workers", file=sys.stderr)
        return 2
    from repro.runtime import worker_main

    return worker_main(
        args.queue_dir, worker_id=args.id, poll_s=args.poll, once=args.once
    )


def build_watch_parser():
    parser = argparse.ArgumentParser(
        prog="repro watch",
        description="Tail a recorded run's events.jsonl for a live "
                    "campaign view (progress, throughput, ETA, stragglers).",
    )
    parser.add_argument(
        "path",
        help="run directory (or the events.jsonl itself) of a recorded run",
    )
    parser.add_argument(
        "--poll", type=_timeout_seconds, default=0.5, metavar="SECONDS",
        help="poll interval while following (default 0.5s)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="read what exists, print one status line, and exit "
             "(works on finished runs)",
    )
    return parser


def run_watch(argv):
    """``python -m repro watch <run-dir>``: live campaign view."""
    from pathlib import Path

    from repro.obs import EVENTS_FILENAME
    from repro.obs.watch import watch

    args = build_watch_parser().parse_args(argv)
    path = Path(args.path)
    events_path = path if path.is_file() else path / EVENTS_FILENAME
    if not events_path.is_file() and not args.once:
        # A live run may not have flushed its first events yet; only a
        # --once read of a missing file is a definite error.
        print(f"waiting for {events_path} ...", file=sys.stderr)
    if args.once and not events_path.is_file():
        print(f"no {EVENTS_FILENAME} at {events_path}", file=sys.stderr)
        return 2
    watch(events_path, follow=not args.once, poll_s=args.poll)
    return 0


def _describe(fn):
    """First docstring line of an experiment runner (its one-line summary)."""
    doc = (fn.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else "(no description)"


def run_list(args):
    print("available experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name:<10} {_describe(EXPERIMENTS[name])}")
    print("  report     Render/list/diff/export recorded runs "
          "(python -m repro report <run-dir>)")
    print("  watch      Tail a recorded run's event stream live "
          "(python -m repro watch <run-dir>)")
    print("  worker     Run a campaign worker (python -m repro worker "
          "<queue-dir> | --connect HOST:PORT)")
    print(
        "fig5/fig6/wall run on batched numpy Monte Carlo kernels; pass "
        "--reference-kernel\nto force the scalar reference path "
        "(see docs/performance.md)"
    )
    print(
        "fi runs on the trial-vectorized batched engine; pass "
        "--engine forked|reference\nto force the scalar replay or "
        "full-rerun paths (see docs/fi-engine.md)"
    )
    print(
        "fi --steer --target-ci HW adaptively allocates trials and stops "
        "early at the target\nAVF half-width; --no-early-stop spends the "
        "full budget (see docs/steering.md)"
    )
    return 0


def _run_recorded(name, args):
    """Run one experiment under a RunRecorder writing to ``args.record``."""
    from repro import obs
    from repro.obs import RunRecorder

    config = {
        "experiment": name,
        "runs": args.runs,
        "instances": args.instances,
        "trials": args.trials,
        "jobs": args.jobs,
        "cache": not args.no_cache,
        "reference_kernel": args.reference_kernel,
        "engine": args.engine,
        "reference_engine": args.reference_engine,
        "resume": args.resume,
        "unit_timeout": args.unit_timeout,
        "max_retries": args.max_retries,
        "transport": args.transport,
        "queue_dir": args.queue_dir,
        "listen": args.listen,
        "workers": args.workers,
        "steer": args.steer,
        "target_ci": args.target_ci,
        "no_early_stop": args.no_early_stop,
    }
    # Every CLI experiment roots its seed streams at 0 (reproducibility).
    with RunRecorder(args.record, name=name, config=config, seed=0) as recorder:
        with obs.span(f"cli.{name}"):
            resolved = EXPERIMENTS[name](args)
        if isinstance(resolved, dict):
            # Resolved runtime choices (e.g. which fi engine "auto"
            # picked, snapshot-ladder shape) so `report` can explain
            # where a campaign's time went.
            recorder.config["resolved"] = resolved
    print(f"run record: {recorder.path}")


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "report":
        return run_report(argv[1:])
    if argv and argv[0] == "watch":
        return run_watch(argv[1:])
    if argv and argv[0] == "worker":
        return run_worker(argv[1:])
    args = build_parser().parse_args(argv)
    if "list" in args.experiments:
        return run_list(args)
    unknown = [e for e in args.experiments if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print("run 'python -m repro list' to see the menu", file=sys.stderr)
        return 2
    for name in args.experiments:
        if args.record:
            _run_recorded(name, args)
        else:
            EXPERIMENTS[name](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
