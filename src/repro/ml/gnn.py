"""Graph attention network for per-node classification on program graphs.

Reproduces the model family of [24] (Sec. III-B2): a program is a
heterogeneous graph whose nodes are instructions and whose typed edges are
relations between instructions (data dependence, control flow, ...).  A
graph attention layer aggregates neighbor features weighted by a learned
self-attention score, and a per-node softmax predicts the fault outcome
(SDC / crash / hang / benign).  The model is *inductive*: it is trained on
a set of graphs and applied to unseen programs without retraining.

Design notes
------------
Attention logits are computed from the layer *input* features with learned
source/destination vectors plus a learned per-edge-type bias, i.e. a
GAT-style static attention.  This keeps the from-scratch backward pass
exact and compact while preserving the mechanism the paper describes
(neighbor aggregation weighted by attention that depends on both endpoint
features and the relation type).
"""

from __future__ import annotations

import numpy as np


def _leaky_relu(x, slope=0.2):
    return np.where(x > 0, x, slope * x)


def _leaky_relu_grad(x, slope=0.2):
    return np.where(x > 0, 1.0, slope)


def _softmax_rows(z):
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class Graph:
    """A node-attributed graph with typed directed edges.

    Parameters
    ----------
    X:
        ``(n_nodes, n_features)`` node feature matrix.
    edges:
        iterable of ``(src, dst)`` pairs; message flows src -> dst.
    edge_types:
        iterable of integer type ids parallel to ``edges``.
    y:
        optional ``(n_nodes,)`` integer labels.
    """

    def __init__(self, X, edges, edge_types=None, y=None):
        self.X = np.asarray(X, dtype=float)
        self.edges = [(int(s), int(d)) for s, d in edges]
        n = len(self.X)
        for s, d in self.edges:
            if not (0 <= s < n and 0 <= d < n):
                raise ValueError(f"edge ({s}, {d}) out of range for {n} nodes")
        if edge_types is None:
            edge_types = [0] * len(self.edges)
        self.edge_types = list(int(t) for t in edge_types)
        if len(self.edge_types) != len(self.edges):
            raise ValueError("edge_types length must match edges")
        self.y = None if y is None else np.asarray(y, dtype=int)

    @property
    def n_nodes(self):
        return len(self.X)


class _AttentionLayer:
    """One static-attention aggregation layer."""

    def __init__(self, n_in, n_out, n_edge_types, rng):
        self.W = rng.normal(0.0, np.sqrt(2.0 / n_in), (n_in, n_out))
        self.u = rng.normal(0.0, 0.1, n_in)  # source attention vector
        self.v = rng.normal(0.0, 0.1, n_in)  # destination attention vector
        self.b_type = np.zeros(n_edge_types)

    def attention_matrix(self, X, graph):
        """Row-stochastic aggregation matrix ``P`` with ``P[d, s]`` weights.

        Every node receives a self-loop so isolated nodes keep their own
        features.  Returns ``(P, cache)`` where the cache carries what the
        backward pass needs.
        """
        n = graph.n_nodes
        logits = np.full((n, n), -np.inf)
        raw = np.zeros((n, n))
        mask = np.zeros((n, n), dtype=bool)
        su = X @ self.u
        sv = X @ self.v
        for (s, d), t in zip(graph.edges, graph.edge_types):
            raw_val = su[s] + sv[d] + self.b_type[t]
            raw[d, s] = raw_val
            logits[d, s] = _leaky_relu(raw_val)
            mask[d, s] = True
        for i in range(n):  # self loops
            raw_val = su[i] + sv[i]
            raw[i, i] = raw_val
            logits[i, i] = _leaky_relu(raw_val)
            mask[i, i] = True
        P = np.zeros((n, n))
        for i in range(n):
            row = logits[i, mask[i]]
            row = row - row.max()
            e = np.exp(row)
            P[i, mask[i]] = e / e.sum()
        return P, {"raw": raw, "mask": mask, "X": X}


class GraphAttentionClassifier:
    """Two-layer graph attention network with a per-node softmax head."""

    def __init__(self, hidden=16, n_classes=4, n_edge_types=3, lr=0.01, n_epochs=100, seed=0):
        self.hidden = hidden
        self.n_classes = n_classes
        self.n_edge_types = n_edge_types
        self.lr = lr
        self.n_epochs = n_epochs
        self.seed = seed
        self._layers = None
        self._W_out = None
        self._b_out = None
        self.loss_curve_ = []

    def _init(self, n_features):
        rng = np.random.default_rng(self.seed)
        self._layers = [
            _AttentionLayer(n_features, self.hidden, self.n_edge_types, rng),
            _AttentionLayer(self.hidden, self.hidden, self.n_edge_types, rng),
        ]
        self._W_out = rng.normal(0.0, np.sqrt(2.0 / self.hidden), (self.hidden, self.n_classes))
        self._b_out = np.zeros(self.n_classes)

    def _forward(self, graph):
        layer1, layer2 = self._layers
        P1, c1 = layer1.attention_matrix(graph.X, graph)
        H1_pre = P1 @ graph.X @ layer1.W
        H1 = np.maximum(H1_pre, 0.0)
        P2, c2 = layer2.attention_matrix(H1, graph)
        H2_pre = P2 @ H1 @ layer2.W
        H2 = np.maximum(H2_pre, 0.0)
        logits = H2 @ self._W_out + self._b_out
        probs = _softmax_rows(logits)
        return {
            "P1": P1, "c1": c1, "H1_pre": H1_pre, "H1": H1,
            "P2": P2, "c2": c2, "H2_pre": H2_pre, "H2": H2,
            "probs": probs,
        }

    @staticmethod
    def _attention_grads(dP, P, cache, layer):
        """Backprop a gradient on the aggregation matrix into (u, v, b_type)."""
        mask = cache["mask"]
        raw = cache["raw"]
        X = cache["X"]
        du = np.zeros_like(layer.u)
        dv = np.zeros_like(layer.v)
        n = P.shape[0]
        # Per-row softmax Jacobian: de = P * (dP - sum(dP * P))
        for i in range(n):
            cols = np.where(mask[i])[0]
            p = P[i, cols]
            g = dP[i, cols]
            de = p * (g - float(np.dot(g, p)))
            de = de * _leaky_relu_grad(raw[i, cols])
            for e_val, j in zip(de, cols):
                du += e_val * X[j]
                dv += e_val * X[i]
        return du, dv

    def fit(self, graphs):
        """Train on a list of labeled :class:`Graph` objects."""
        graphs = list(graphs)
        if not graphs:
            raise ValueError("need at least one training graph")
        for g in graphs:
            if g.y is None:
                raise ValueError("training graphs must carry labels")
        self._init(graphs[0].X.shape[1])
        self.loss_curve_ = []
        for _ in range(self.n_epochs):
            total_loss = 0.0
            total_nodes = 0
            for g in graphs:
                total_loss += self._train_step(g) * g.n_nodes
                total_nodes += g.n_nodes
            self.loss_curve_.append(total_loss / total_nodes)
        return self

    def _train_step(self, graph):
        layer1, layer2 = self._layers
        f = self._forward(graph)
        n = graph.n_nodes
        T = np.zeros((n, self.n_classes))
        T[np.arange(n), graph.y] = 1.0
        probs = f["probs"]
        loss = float(-np.mean(np.sum(T * np.log(np.clip(probs, 1e-12, None)), axis=1)))

        d_logits = (probs - T) / n
        dW_out = f["H2"].T @ d_logits
        db_out = d_logits.sum(axis=0)
        dH2 = d_logits @ self._W_out.T
        dH2_pre = dH2 * (f["H2_pre"] > 0)

        # layer 2: H2_pre = P2 @ H1 @ W2
        M2 = f["H1"] @ layer2.W
        dP2 = dH2_pre @ M2.T
        dM2 = f["P2"].T @ dH2_pre
        dW2 = f["H1"].T @ dM2
        dH1_from_vals = dM2 @ layer2.W.T
        du2, dv2 = self._attention_grads(dP2, f["P2"], f["c2"], layer2)
        # attention of layer 2 also depends on H1 (through su/sv); propagate:
        dH1_from_attn = self._attention_input_grad(dP2, f["P2"], f["c2"], layer2)
        dH1 = dH1_from_vals + dH1_from_attn
        dH1_pre = dH1 * (f["H1_pre"] > 0)

        # layer 1: H1_pre = P1 @ X @ W1
        M1 = graph.X @ layer1.W
        dP1 = dH1_pre @ M1.T
        dM1 = f["P1"].T @ dH1_pre
        dW1 = graph.X.T @ dM1
        du1, dv1 = self._attention_grads(dP1, f["P1"], f["c1"], layer1)
        db1_t = self._edge_type_grads(dP1, f, graph, which=1)
        db2_t = self._edge_type_grads(dP2, f, graph, which=2)

        lr = self.lr
        self._W_out -= lr * dW_out
        self._b_out -= lr * db_out
        layer2.W -= lr * dW2
        layer2.u -= lr * du2
        layer2.v -= lr * dv2
        layer2.b_type -= lr * db2_t
        layer1.W -= lr * dW1
        layer1.u -= lr * du1
        layer1.v -= lr * dv1
        layer1.b_type -= lr * db1_t
        return loss

    def _edge_type_grads(self, dP, f, graph, which):
        """Gradient of the loss w.r.t. per-edge-type biases of one layer."""
        P = f["P1"] if which == 1 else f["P2"]
        cache = f["c1"] if which == 1 else f["c2"]
        mask = cache["mask"]
        raw = cache["raw"]
        db = np.zeros(self.n_edge_types)
        n = P.shape[0]
        de_full = np.zeros_like(P)
        for i in range(n):
            cols = np.where(mask[i])[0]
            p = P[i, cols]
            g = dP[i, cols]
            de = p * (g - float(np.dot(g, p)))
            de_full[i, cols] = de * _leaky_relu_grad(raw[i, cols])
        for (s, d), t in zip(graph.edges, graph.edge_types):
            db[t] += de_full[d, s]
        return db

    def _attention_input_grad(self, dP, P, cache, layer):
        """Gradient flowing into the layer-input features through attention."""
        mask = cache["mask"]
        raw = cache["raw"]
        X = cache["X"]
        dX = np.zeros_like(X)
        n = P.shape[0]
        for i in range(n):
            cols = np.where(mask[i])[0]
            p = P[i, cols]
            g = dP[i, cols]
            de = p * (g - float(np.dot(g, p)))
            de = de * _leaky_relu_grad(raw[i, cols])
            for e_val, j in zip(de, cols):
                dX[j] += e_val * layer.u
                dX[i] += e_val * layer.v
        return dX

    def predict_proba(self, graph):
        """Per-node class probabilities for a (possibly unseen) graph."""
        if self._layers is None:
            raise RuntimeError("model is not fitted")
        return self._forward(graph)["probs"]

    def predict(self, graph):
        return np.argmax(self.predict_proba(graph), axis=1)
