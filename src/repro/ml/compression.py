"""Model compression: magnitude pruning and uniform quantization of MLPs.

Sec. III-C2 (ref [31]) argues that resiliency models can be compressed by
orders of magnitude while keeping prediction accuracy, so that on-line
symptom detectors stay cheap.  These helpers implement the two standard
mechanisms on :class:`repro.ml.mlp.MLPClassifier`/``MLPRegressor`` weights.
"""

from __future__ import annotations

import copy

import numpy as np


def prune_mlp(model, sparsity=0.5):
    """Return a copy of ``model`` with the smallest-magnitude weights zeroed.

    Parameters
    ----------
    model:
        A fitted MLP (classifier or regressor).
    sparsity:
        Fraction of weights (per layer) set to zero, in ``[0, 1)``.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError("sparsity must be in [0, 1)")
    if model.weights_ is None:
        raise RuntimeError("model is not fitted")
    pruned = copy.deepcopy(model)
    for layer, W in enumerate(pruned.weights_):
        flat = np.abs(W).ravel()
        k = int(sparsity * flat.size)
        if k == 0:
            continue
        threshold = np.partition(flat, k - 1)[k - 1]
        pruned.weights_[layer] = np.where(np.abs(W) <= threshold, 0.0, W)
    return pruned


def quantize_mlp(model, n_bits=8):
    """Return a copy of ``model`` with weights uniformly quantized.

    Each layer is quantized symmetrically to ``2**n_bits - 1`` levels over
    its own dynamic range, then de-quantized back to float (simulated
    quantization, as used when estimating accuracy loss before deployment).
    """
    if n_bits < 1:
        raise ValueError("n_bits must be at least 1")
    if model.weights_ is None:
        raise RuntimeError("model is not fitted")
    quantized = copy.deepcopy(model)
    levels = 2**n_bits - 1
    for layer, W in enumerate(quantized.weights_):
        w_max = np.abs(W).max()
        if w_max == 0:
            continue
        step = 2.0 * w_max / levels
        quantized.weights_[layer] = np.round(W / step) * step
    return quantized


def sparsity_of(model):
    """Fraction of exactly-zero weights across all layers of a fitted MLP."""
    if model.weights_ is None:
        raise RuntimeError("model is not fitted")
    zeros = sum(int((W == 0.0).sum()) for W in model.weights_)
    total = sum(W.size for W in model.weights_)
    return zeros / total


def compression_ratio(model, sparsity=None, n_bits=32):
    """Approximate storage compression vs dense float32 weights.

    ``sparsity`` defaults to the model's measured sparsity; sparse weights
    are assumed stored in COO form (index + value).
    """
    if sparsity is None:
        sparsity = sparsity_of(model)
    dense_bits = 32.0
    kept = 1.0 - sparsity
    # value bits + ~16-bit index per kept weight when sparse
    stored = kept * (n_bits + (16.0 if sparsity > 0 else 0.0))
    if stored == 0:
        return float("inf")
    return dense_bits / stored
