"""From-scratch machine-learning substrate used across all reliability layers.

The paper surveys reliability techniques built on classical ML models
(kNN, SVM, naive Bayes, decision trees, boosting, MLPs, graph attention
networks, clustering).  This subpackage implements those models on top of
numpy only, with a small sklearn-like ``fit``/``predict`` API so the
higher layers (:mod:`repro.circuit`, :mod:`repro.arch`, :mod:`repro.system`)
can mix and match model families.
"""

from repro.ml.preprocessing import (
    StandardScaler,
    MinMaxScaler,
    train_test_split,
    one_hot,
    KFold,
)
from repro.ml.metrics import (
    accuracy_score,
    precision_score,
    recall_score,
    f1_score,
    confusion_matrix,
    mean_squared_error,
    mean_absolute_error,
    r2_score,
)
from repro.ml.linear import LinearRegression, RidgeRegression, LogisticRegression
from repro.ml.knn import KNeighborsClassifier, KNeighborsRegressor
from repro.ml.naive_bayes import GaussianNB
from repro.ml.svm import LinearSVC
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml.ensemble import (
    RandomForestClassifier,
    AdaBoostClassifier,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
)
from repro.ml.mlp import MLPClassifier, MLPRegressor
from repro.ml.cluster import KMeans
from repro.ml.decomposition import PCA
from repro.ml.gnn import GraphAttentionClassifier
from repro.ml.compression import prune_mlp, quantize_mlp
from repro.ml.persistence import save_mlp, load_mlp, save_ensemble, load_ensemble
from repro.ml.metrics import roc_auc_score

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "train_test_split",
    "one_hot",
    "KFold",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "mean_squared_error",
    "mean_absolute_error",
    "r2_score",
    "LinearRegression",
    "RidgeRegression",
    "LogisticRegression",
    "KNeighborsClassifier",
    "KNeighborsRegressor",
    "GaussianNB",
    "LinearSVC",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "AdaBoostClassifier",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "MLPClassifier",
    "MLPRegressor",
    "KMeans",
    "PCA",
    "GraphAttentionClassifier",
    "prune_mlp",
    "quantize_mlp",
    "save_mlp",
    "save_ensemble",
    "load_ensemble",
    "load_mlp",
    "roc_auc_score",
]
