"""Ensemble models: random forest, AdaBoost, gradient boosting.

The survey singles out AdaBoost and stochastic gradient boosting as the
models that "continuously learn from mispredicted samples" and stay
accurate on scale-dependent soft-error prediction ([21]) and GPU error
prediction in HPC logs ([22]).
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class RandomForestClassifier:
    """Bagged CART trees with feature subsampling and majority vote."""

    def __init__(self, n_estimators=20, max_depth=8, max_features="sqrt", seed=0):
        if n_estimators < 1:
            raise ValueError("n_estimators must be positive")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.seed = seed
        self.trees_ = []
        self.classes_ = None

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        n, d = X.shape
        if self.max_features == "sqrt":
            max_features = max(1, int(np.sqrt(d)))
        else:
            max_features = self.max_features
        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        for i in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                max_features=max_features,
                seed=self.seed + i + 1,
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict(self, X):
        if not self.trees_:
            raise RuntimeError("model is not fitted")
        votes = np.stack([tree.predict(X) for tree in self.trees_])
        out = np.empty(votes.shape[1], dtype=self.classes_.dtype)
        for j in range(votes.shape[1]):
            values, counts = np.unique(votes[:, j], return_counts=True)
            out[j] = values[np.argmax(counts)]
        return out

    def predict_proba(self, X):
        votes = np.stack([tree.predict(X) for tree in self.trees_])
        probs = np.zeros((votes.shape[1], len(self.classes_)))
        for j, c in enumerate(self.classes_):
            probs[:, j] = np.mean(votes == c, axis=0)
        return probs


class AdaBoostClassifier:
    """SAMME AdaBoost over depth-limited CART stumps (binary or multiclass)."""

    def __init__(self, n_estimators=30, max_depth=2, seed=0):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed
        self.estimators_ = []
        self.alphas_ = []
        self.classes_ = None

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        k = len(self.classes_)
        n = len(X)
        w = np.full(n, 1.0 / n)
        self.estimators_ = []
        self.alphas_ = []
        for i in range(self.n_estimators):
            tree = DecisionTreeClassifier(max_depth=self.max_depth, seed=self.seed + i)
            tree.fit(X, y, sample_weight=w)
            pred = tree.predict(X)
            miss = pred != y
            err = float(np.sum(w[miss]) / np.sum(w))
            err = min(max(err, 1e-10), 1.0 - 1e-10)
            alpha = np.log((1.0 - err) / err) + np.log(k - 1.0)
            if alpha <= 0:
                # Weak learner no better than chance; stop early.
                if not self.estimators_:
                    self.estimators_.append(tree)
                    self.alphas_.append(1.0)
                break
            self.estimators_.append(tree)
            self.alphas_.append(alpha)
            w = w * np.exp(alpha * miss)
            w = w / w.sum()
        return self

    def predict(self, X):
        if not self.estimators_:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        scores = np.zeros((len(X), len(self.classes_)))
        for alpha, tree in zip(self.alphas_, self.estimators_):
            pred = tree.predict(X)
            for j, c in enumerate(self.classes_):
                scores[:, j] += alpha * (pred == c)
        return self.classes_[np.argmax(scores, axis=1)]


class GradientBoostingRegressor:
    """Least-squares gradient boosting with CART regression trees."""

    def __init__(self, n_estimators=50, learning_rate=0.1, max_depth=3, subsample=1.0, seed=0):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.seed = seed
        self.init_ = None
        self.trees_ = []

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y, dtype=float)
        rng = np.random.default_rng(self.seed)
        self.init_ = float(y.mean())
        pred = np.full(len(y), self.init_)
        self.trees_ = []
        n = len(X)
        for i in range(self.n_estimators):
            residual = y - pred
            if self.subsample < 1.0:
                idx = rng.choice(n, size=max(2, int(self.subsample * n)), replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(max_depth=self.max_depth, seed=self.seed + i)
            tree.fit(X[idx], residual[idx])
            update = tree.predict(X)
            pred = pred + self.learning_rate * update
            self.trees_.append(tree)
        return self

    def predict(self, X):
        if self.init_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        pred = np.full(len(X), self.init_)
        for tree in self.trees_:
            pred = pred + self.learning_rate * tree.predict(X)
        return pred


class GradientBoostingClassifier:
    """Binary/multiclass gradient boosting via one-vs-rest logistic boosting.

    Each class gets its own additive model of regression trees fitted to the
    logistic gradient; predictions take the argmax of class scores.
    """

    def __init__(self, n_estimators=40, learning_rate=0.2, max_depth=3, subsample=1.0, seed=0):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.seed = seed
        self.classes_ = None
        self.trees_ = []  # list over rounds of list over classes
        self.init_ = None

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        k = len(self.classes_)
        n = len(X)
        Y = np.zeros((n, k))
        for j, c in enumerate(self.classes_):
            Y[:, j] = (y == c).astype(float)
        rng = np.random.default_rng(self.seed)
        F = np.zeros((n, k))
        self.init_ = np.log(np.clip(Y.mean(axis=0), 1e-9, None))
        F += self.init_
        self.trees_ = []
        for i in range(self.n_estimators):
            P = _softmax(F)
            round_trees = []
            if self.subsample < 1.0:
                idx = rng.choice(n, size=max(2, int(self.subsample * n)), replace=False)
            else:
                idx = np.arange(n)
            for j in range(k):
                residual = Y[:, j] - P[:, j]
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth, seed=self.seed + i * k + j
                )
                tree.fit(X[idx], residual[idx])
                F[:, j] += self.learning_rate * tree.predict(X)
                round_trees.append(tree)
            self.trees_.append(round_trees)
        return self

    def _scores(self, X):
        if self.classes_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        F = np.zeros((len(X), len(self.classes_)))
        F += self.init_
        for round_trees in self.trees_:
            for j, tree in enumerate(round_trees):
                F[:, j] += self.learning_rate * tree.predict(X)
        return F

    def predict(self, X):
        return self.classes_[np.argmax(self._scores(X), axis=1)]

    def predict_proba(self, X):
        return _softmax(self._scores(X))


def _softmax(z):
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)
