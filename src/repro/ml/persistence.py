"""Saving and loading fitted MLP models (npz-based).

Deployed reliability monitors (symptom detectors, WarningNets,
characterization models) are trained at design time and shipped to the
target; this module persists the numpy-MLP family without pickle.
"""

from __future__ import annotations

import numpy as np

from repro.ml.mlp import MLPClassifier, MLPRegressor

_KIND_CLASSIFIER = "classifier"
_KIND_REGRESSOR = "regressor"


def save_mlp(model, path):
    """Serialize a fitted MLP (classifier or regressor) to an ``.npz`` file."""
    if model.weights_ is None:
        raise ValueError("model must be fitted before saving")
    payload = {
        "n_layers": np.array(len(model.weights_)),
        "hidden": np.asarray(model.hidden, dtype=int),
    }
    for i, (W, b) in enumerate(zip(model.weights_, model.biases_)):
        payload[f"W{i}"] = W
        payload[f"b{i}"] = b
    if isinstance(model, MLPClassifier):
        payload["kind"] = np.array(_KIND_CLASSIFIER)
        payload["classes"] = np.asarray(model.classes_)
    elif isinstance(model, MLPRegressor):
        payload["kind"] = np.array(_KIND_REGRESSOR)
        payload["n_outputs"] = np.array(model._n_outputs)
    else:
        raise TypeError(f"unsupported model type {type(model).__name__}")
    np.savez(path, **payload)


def load_mlp(path):
    """Load an MLP saved by :func:`save_mlp`; returns a ready-to-predict model."""
    with np.load(path, allow_pickle=False) as data:
        kind = str(data["kind"])
        hidden = tuple(int(h) for h in data["hidden"])
        n_layers = int(data["n_layers"])
        weights = [data[f"W{i}"] for i in range(n_layers)]
        biases = [data[f"b{i}"] for i in range(n_layers)]
        if kind == _KIND_CLASSIFIER:
            model = MLPClassifier(hidden=hidden)
            model.classes_ = data["classes"]
        elif kind == _KIND_REGRESSOR:
            model = MLPRegressor(hidden=hidden)
            model._n_outputs = int(data["n_outputs"])
        else:
            raise ValueError(f"unknown model kind {kind!r}")
    model.weights_ = weights
    model.biases_ = biases
    return model
