"""Saving and loading fitted models (npz-based, pickle-free).

Deployed reliability monitors (symptom detectors, WarningNets,
characterization models, campaign-steering surrogates) are trained at
design time and shipped to the target; this module persists the
numpy-MLP family and the CART tree ensembles without pickle.
"""

from __future__ import annotations

import json

import numpy as np

from repro.ml.ensemble import GradientBoostingClassifier, RandomForestClassifier
from repro.ml.mlp import MLPClassifier, MLPRegressor
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor, _Node

_KIND_CLASSIFIER = "classifier"
_KIND_REGRESSOR = "regressor"
_KIND_FOREST = "random_forest_classifier"
_KIND_GBDT = "gradient_boosting_classifier"


def save_mlp(model, path):
    """Serialize a fitted MLP (classifier or regressor) to an ``.npz`` file."""
    if model.weights_ is None:
        raise ValueError("model must be fitted before saving")
    payload = {
        "n_layers": np.array(len(model.weights_)),
        "hidden": np.asarray(model.hidden, dtype=int),
    }
    for i, (W, b) in enumerate(zip(model.weights_, model.biases_)):
        payload[f"W{i}"] = W
        payload[f"b{i}"] = b
    if isinstance(model, MLPClassifier):
        payload["kind"] = np.array(_KIND_CLASSIFIER)
        payload["classes"] = np.asarray(model.classes_)
    elif isinstance(model, MLPRegressor):
        payload["kind"] = np.array(_KIND_REGRESSOR)
        payload["n_outputs"] = np.array(model._n_outputs)
    else:
        raise TypeError(f"unsupported model type {type(model).__name__}")
    np.savez(path, **payload)


def load_mlp(path):
    """Load an MLP saved by :func:`save_mlp`; returns a ready-to-predict model."""
    with np.load(path, allow_pickle=False) as data:
        kind = str(data["kind"])
        hidden = tuple(int(h) for h in data["hidden"])
        n_layers = int(data["n_layers"])
        weights = [data[f"W{i}"] for i in range(n_layers)]
        biases = [data[f"b{i}"] for i in range(n_layers)]
        if kind == _KIND_CLASSIFIER:
            model = MLPClassifier(hidden=hidden)
            model.classes_ = data["classes"]
        elif kind == _KIND_REGRESSOR:
            model = MLPRegressor(hidden=hidden)
            model._n_outputs = int(data["n_outputs"])
        else:
            raise ValueError(f"unknown model kind {kind!r}")
    model.weights_ = weights
    model.biases_ = biases
    return model


def _flatten_tree(root):
    """Preorder arrays for one CART tree: (feature, threshold, left, right, values).

    ``feature`` is ``-1`` at leaves; ``left``/``right`` are node indices
    (``-1`` at leaves); ``values`` keeps every node's value (internal
    nodes carry one too), in the value's natural dtype so classifier
    labels survive without pickle.
    """
    feature, threshold, left, right, values = [], [], [], [], []

    def walk(node):
        idx = len(feature)
        feature.append(-1 if node.is_leaf else int(node.feature))
        threshold.append(0.0 if node.is_leaf else float(node.threshold))
        left.append(-1)
        right.append(-1)
        values.append(node.value)
        if not node.is_leaf:
            left[idx] = walk(node.left)
            right[idx] = walk(node.right)
        return idx

    walk(root)
    return (
        np.asarray(feature, dtype=np.int64),
        np.asarray(threshold, dtype=float),
        np.asarray(left, dtype=np.int64),
        np.asarray(right, dtype=np.int64),
        np.asarray(values),
    )


def _rebuild_tree(feature, threshold, left, right, values):
    """Inverse of :func:`_flatten_tree`; returns the root ``_Node``."""
    nodes = [_Node(value=values[i]) for i in range(len(feature))]
    for i in range(len(feature)):
        if left[i] >= 0:
            nodes[i].feature = int(feature[i])
            nodes[i].threshold = float(threshold[i])
            nodes[i].left = nodes[left[i]]
            nodes[i].right = nodes[right[i]]
    return nodes[0] if nodes else _Node()


def _tree_payload(payload, prefix, tree):
    f, t, lo, hi, v = _flatten_tree(tree._root)
    payload[f"{prefix}f"] = f
    payload[f"{prefix}t"] = t
    payload[f"{prefix}l"] = lo
    payload[f"{prefix}r"] = hi
    payload[f"{prefix}v"] = v


def _tree_from_payload(data, prefix, tree):
    tree._root = _rebuild_tree(
        data[f"{prefix}f"], data[f"{prefix}t"],
        data[f"{prefix}l"], data[f"{prefix}r"], data[f"{prefix}v"],
    )
    return tree


def save_ensemble(model, path):
    """Serialize a fitted tree ensemble to an ``.npz`` file.

    Supports :class:`~repro.ml.ensemble.RandomForestClassifier` and
    :class:`~repro.ml.ensemble.GradientBoostingClassifier` — the model
    families the campaign-steering surrogate uses.  Every tree is
    flattened to plain arrays; nothing is pickled.
    """
    if isinstance(model, RandomForestClassifier):
        if not model.trees_:
            raise ValueError("model must be fitted before saving")
        payload = {
            "kind": np.array(_KIND_FOREST),
            "classes": np.asarray(model.classes_),
            "n_trees": np.array(len(model.trees_)),
            "params": np.array(json.dumps({
                "n_estimators": model.n_estimators,
                "max_depth": model.max_depth,
                "max_features": model.max_features,
                "seed": model.seed,
            })),
        }
        for i, tree in enumerate(model.trees_):
            _tree_payload(payload, f"t{i}_", tree)
            payload[f"t{i}_classes"] = np.asarray(tree.classes_)
    elif isinstance(model, GradientBoostingClassifier):
        if not model.trees_:
            raise ValueError("model must be fitted before saving")
        payload = {
            "kind": np.array(_KIND_GBDT),
            "classes": np.asarray(model.classes_),
            "init": np.asarray(model.init_, dtype=float),
            "n_rounds": np.array(len(model.trees_)),
            "params": np.array(json.dumps({
                "n_estimators": model.n_estimators,
                "learning_rate": model.learning_rate,
                "max_depth": model.max_depth,
                "subsample": model.subsample,
                "seed": model.seed,
            })),
        }
        for r, round_trees in enumerate(model.trees_):
            for j, tree in enumerate(round_trees):
                _tree_payload(payload, f"t{r}_{j}_", tree)
    else:
        raise TypeError(f"unsupported model type {type(model).__name__}")
    np.savez(path, **payload)


def load_ensemble(path):
    """Load an ensemble saved by :func:`save_ensemble`, ready to predict."""
    with np.load(path, allow_pickle=False) as data:
        kind = str(data["kind"])
        params = json.loads(str(data["params"]))
        if kind == _KIND_FOREST:
            model = RandomForestClassifier(
                n_estimators=params["n_estimators"],
                max_depth=params["max_depth"],
                max_features=params["max_features"],
                seed=params["seed"],
            )
            model.classes_ = data["classes"]
            model.trees_ = []
            for i in range(int(data["n_trees"])):
                tree = DecisionTreeClassifier(max_depth=params["max_depth"])
                tree.classes_ = data[f"t{i}_classes"]
                tree._class_index = {
                    c: k for k, c in enumerate(tree.classes_)
                }
                model.trees_.append(_tree_from_payload(data, f"t{i}_", tree))
        elif kind == _KIND_GBDT:
            model = GradientBoostingClassifier(
                n_estimators=params["n_estimators"],
                learning_rate=params["learning_rate"],
                max_depth=params["max_depth"],
                subsample=params["subsample"],
                seed=params["seed"],
            )
            model.classes_ = data["classes"]
            model.init_ = data["init"]
            model.trees_ = []
            k = len(model.classes_)
            for r in range(int(data["n_rounds"])):
                model.trees_.append([
                    _tree_from_payload(
                        data, f"t{r}_{j}_",
                        DecisionTreeRegressor(max_depth=params["max_depth"]),
                    )
                    for j in range(k)
                ])
        else:
            raise ValueError(f"unknown model kind {kind!r}")
    return model
