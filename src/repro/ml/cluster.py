"""Clustering: k-means with k-means++ seeding.

Unsupervised mining of fault-injection outcome logs ([23]) uses clustering
to surface recurring error patterns without labels.
"""

from __future__ import annotations

import numpy as np


class KMeans:
    """Lloyd's algorithm with k-means++ initialization."""

    def __init__(self, n_clusters=3, n_iter=100, tol=1e-6, seed=0):
        if n_clusters < 1:
            raise ValueError("n_clusters must be positive")
        self.n_clusters = n_clusters
        self.n_iter = n_iter
        self.tol = tol
        self.seed = seed
        self.centers_ = None
        self.labels_ = None
        self.inertia_ = None

    def _init_centers(self, X, rng):
        n = len(X)
        centers = [X[rng.integers(n)]]
        for _ in range(1, self.n_clusters):
            d2 = np.min(
                ((X[:, None, :] - np.asarray(centers)[None, :, :]) ** 2).sum(axis=2),
                axis=1,
            )
            total = d2.sum()
            if total <= 0:
                centers.append(X[rng.integers(n)])
                continue
            probs = d2 / total
            centers.append(X[rng.choice(n, p=probs)])
        return np.asarray(centers, dtype=float)

    def fit(self, X):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if len(X) < self.n_clusters:
            raise ValueError("fewer samples than clusters")
        rng = np.random.default_rng(self.seed)
        centers = self._init_centers(X, rng)
        for _ in range(self.n_iter):
            d2 = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            labels = np.argmin(d2, axis=1)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                members = X[labels == k]
                if len(members) > 0:
                    new_centers[k] = members.mean(axis=0)
            shift = float(np.abs(new_centers - centers).max())
            centers = new_centers
            if shift < self.tol:
                break
        self.centers_ = centers
        d2 = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        self.labels_ = np.argmin(d2, axis=1)
        self.inertia_ = float(d2[np.arange(len(X)), self.labels_].sum())
        return self

    def predict(self, X):
        if self.centers_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        d2 = ((X[:, None, :] - self.centers_[None, :, :]) ** 2).sum(axis=2)
        return np.argmin(d2, axis=1)

    def fit_predict(self, X):
        return self.fit(X).labels_
