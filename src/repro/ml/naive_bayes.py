"""Gaussian naive Bayes classifier."""

from __future__ import annotations

import numpy as np


class GaussianNB:
    """Gaussian naive Bayes with per-class feature means and variances."""

    def __init__(self, var_smoothing=1e-9):
        self.var_smoothing = var_smoothing
        self.classes_ = None
        self.theta_ = None  # (n_classes, n_features) means
        self.var_ = None  # (n_classes, n_features) variances
        self.priors_ = None

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.priors_ = np.zeros(n_classes)
        max_var = X.var(axis=0).max() if len(X) > 1 else 1.0
        eps = self.var_smoothing * max(max_var, 1e-12)
        for i, c in enumerate(self.classes_):
            Xc = X[y == c]
            self.theta_[i] = Xc.mean(axis=0)
            self.var_[i] = Xc.var(axis=0) + eps
            self.priors_[i] = len(Xc) / len(X)
        return self

    def _joint_log_likelihood(self, X):
        if self.classes_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        jll = np.zeros((len(X), len(self.classes_)))
        for i in range(len(self.classes_)):
            log_prob = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[i])
                + (X - self.theta_[i]) ** 2 / self.var_[i],
                axis=1,
            )
            jll[:, i] = log_prob + np.log(self.priors_[i])
        return jll

    def predict(self, X):
        return self.classes_[np.argmax(self._joint_log_likelihood(X), axis=1)]

    def predict_proba(self, X):
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        p = np.exp(jll)
        return p / p.sum(axis=1, keepdims=True)
