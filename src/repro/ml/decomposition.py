"""Dimensionality reduction: principal component analysis.

The paper's open-challenge section (VI-C) calls for dimensionality
reduction as resiliency feature sets grow; PCA is the workhorse used by
:mod:`repro.arch.pattern_mining`.
"""

from __future__ import annotations

import numpy as np


class PCA:
    """PCA via singular value decomposition of the centered data."""

    def __init__(self, n_components=2):
        if n_components < 1:
            raise ValueError("n_components must be positive")
        self.n_components = n_components
        self.mean_ = None
        self.components_ = None
        self.explained_variance_ = None
        self.explained_variance_ratio_ = None

    def fit(self, X):
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("PCA expects a 2-D array")
        if self.n_components > min(X.shape):
            raise ValueError("n_components exceeds data rank bound")
        self.mean_ = X.mean(axis=0)
        Xc = X - self.mean_
        _, s, vt = np.linalg.svd(Xc, full_matrices=False)
        var = (s**2) / max(len(X) - 1, 1)
        self.components_ = vt[: self.n_components]
        self.explained_variance_ = var[: self.n_components]
        total = var.sum()
        self.explained_variance_ratio_ = (
            self.explained_variance_ / total if total > 0 else np.zeros_like(var[: self.n_components])
        )
        return self

    def transform(self, X):
        if self.components_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X):
        return self.fit(X).transform(X)

    def inverse_transform(self, Z):
        if self.components_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(Z, dtype=float) @ self.components_ + self.mean_
