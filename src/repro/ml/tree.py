"""CART decision trees (classification and regression).

Decision trees are the base learners for the boosting/forest models in
:mod:`repro.ml.ensemble`; gradient-boosted trees are the model family the
survey reports as most consistently accurate for scale-dependent error
prediction ([21]) and HPC error-pattern mining ([22]).
"""

from __future__ import annotations

import numpy as np


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value=None):
        self.feature = None
        self.threshold = None
        self.left = None
        self.right = None
        self.value = value

    @property
    def is_leaf(self):
        return self.left is None


def _gini(counts):
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return 1.0 - float(np.sum(p * p))


class _TreeBase:
    def __init__(self, max_depth=8, min_samples_split=2, max_features=None, seed=0):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.max_features = max_features
        self.seed = seed
        self._root = None
        self._rng = None

    def _feature_candidates(self, n_features):
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        return self._rng.choice(n_features, size=self.max_features, replace=False)

    def fit(self, X, y, sample_weight=None):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y)
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        if sample_weight is None:
            sample_weight = np.ones(len(X))
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)
        self._rng = np.random.default_rng(self.seed)
        self._prepare(y)
        self._root = self._build(X, y, sample_weight, depth=0)
        return self

    def _build(self, X, y, w, depth):
        node = _Node(value=self._leaf_value(y, w))
        if depth >= self.max_depth or len(X) < self.min_samples_split or self._pure(y):
            return node
        best = self._best_split(X, y, w)
        if best is None:
            return node
        feature, threshold = best
        mask = X[:, feature] <= threshold
        if mask.all() or not mask.any():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], w[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], w[~mask], depth + 1)
        return node

    def _best_split(self, X, y, w):
        best_score = np.inf
        best = None
        for feature in self._feature_candidates(X.shape[1]):
            col = X[:, feature]
            values = np.unique(col)
            if len(values) < 2:
                continue
            # Candidate thresholds between consecutive unique values; cap the
            # number of candidates to keep large fits tractable.
            mids = (values[:-1] + values[1:]) / 2.0
            if len(mids) > 32:
                mids = np.quantile(col, np.linspace(0.02, 0.98, 32))
            for threshold in np.unique(mids):
                mask = col <= threshold
                if not mask.any() or mask.all():
                    continue
                score = self._split_score(y, w, mask)
                if score < best_score:
                    best_score = score
                    best = (int(feature), float(threshold))
        return best

    def _predict_one(self, x):
        node = self._root
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.value

    def predict(self, X):
        if self._root is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return np.array([self._predict_one(x) for x in X])

    # hooks -----------------------------------------------------------------
    def _prepare(self, y):
        raise NotImplementedError

    def _leaf_value(self, y, w):
        raise NotImplementedError

    def _pure(self, y):
        raise NotImplementedError

    def _split_score(self, y, w, mask):
        raise NotImplementedError


class DecisionTreeClassifier(_TreeBase):
    """Gini-impurity CART classifier with optional sample weights."""

    def _prepare(self, y):
        self.classes_ = np.unique(y)
        self._class_index = {c: i for i, c in enumerate(self.classes_)}

    def _weighted_counts(self, y, w):
        counts = np.zeros(len(self.classes_))
        for c, i in self._class_index.items():
            counts[i] = w[y == c].sum()
        return counts

    def _leaf_value(self, y, w):
        counts = self._weighted_counts(y, w)
        return self.classes_[int(np.argmax(counts))]

    def _pure(self, y):
        return len(np.unique(y)) == 1

    def _split_score(self, y, w, mask):
        left = self._weighted_counts(y[mask], w[mask])
        right = self._weighted_counts(y[~mask], w[~mask])
        n_l, n_r = left.sum(), right.sum()
        total = n_l + n_r
        return (n_l * _gini(left) + n_r * _gini(right)) / total

    def predict_proba(self, X):
        """Empirical class distribution at the reached leaf.

        Implemented by re-descending and reporting a one-hot distribution of
        the leaf's majority class (leaves store only the argmax); adequate
        for the ensemble use-cases in this library.
        """
        preds = self.predict(X)
        probs = np.zeros((len(preds), len(self.classes_)))
        for i, p in enumerate(preds):
            probs[i, self._class_index[p]] = 1.0
        return probs


class DecisionTreeRegressor(_TreeBase):
    """Variance-reduction CART regressor with optional sample weights."""

    def _prepare(self, y):
        if not np.issubdtype(np.asarray(y).dtype, np.number):
            raise ValueError("regression targets must be numeric")

    def _leaf_value(self, y, w):
        total = w.sum()
        if total == 0:
            return float(np.mean(y))
        return float(np.sum(np.asarray(y, dtype=float) * w) / total)

    def _pure(self, y):
        return float(np.ptp(np.asarray(y, dtype=float))) == 0.0

    def _split_score(self, y, w, mask):
        y = np.asarray(y, dtype=float)

        def wvar(yy, ww):
            total = ww.sum()
            if total == 0:
                return 0.0
            mu = np.sum(yy * ww) / total
            return float(np.sum(ww * (yy - mu) ** 2))

        return wvar(y[mask], w[mask]) + wvar(y[~mask], w[~mask])
