"""Linear models: least-squares, ridge, and logistic regression."""

from __future__ import annotations

import numpy as np


def _add_bias(X):
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    return np.hstack([X, np.ones((len(X), 1))])


class LinearRegression:
    """Ordinary least-squares regression solved via the pseudo-inverse."""

    def __init__(self):
        self.coef_ = None
        self.intercept_ = None

    def fit(self, X, y):
        Xb = _add_bias(X)
        y = np.asarray(y, dtype=float)
        w, *_ = np.linalg.lstsq(Xb, y, rcond=None)
        self.coef_ = w[:-1]
        self.intercept_ = float(w[-1])
        return self

    def predict(self, X):
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return X @ self.coef_ + self.intercept_


class RidgeRegression:
    """L2-regularized least squares (closed form).

    The bias term is not regularized.
    """

    def __init__(self, alpha=1.0):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.coef_ = None
        self.intercept_ = None

    def fit(self, X, y):
        Xb = _add_bias(X)
        y = np.asarray(y, dtype=float)
        n_features = Xb.shape[1]
        reg = self.alpha * np.eye(n_features)
        reg[-1, -1] = 0.0  # do not penalize the bias
        w = np.linalg.solve(Xb.T @ Xb + reg, Xb.T @ y)
        self.coef_ = w[:-1]
        self.intercept_ = float(w[-1])
        return self

    def predict(self, X):
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return X @ self.coef_ + self.intercept_


def _sigmoid(z):
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression:
    """Binary logistic regression trained by full-batch gradient descent."""

    def __init__(self, lr=0.1, n_iter=500, l2=0.0, seed=0):
        self.lr = lr
        self.n_iter = n_iter
        self.l2 = l2
        self.seed = seed
        self.coef_ = None
        self.intercept_ = None
        self.classes_ = None

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ValueError("LogisticRegression supports exactly 2 classes")
        t = (y == self.classes_[1]).astype(float)
        rng = np.random.default_rng(self.seed)
        w = rng.normal(0, 0.01, X.shape[1])
        b = 0.0
        n = len(X)
        for _ in range(self.n_iter):
            p = _sigmoid(X @ w + b)
            err = p - t
            grad_w = X.T @ err / n + self.l2 * w
            grad_b = err.mean()
            w -= self.lr * grad_w
            b -= self.lr * grad_b
        self.coef_ = w
        self.intercept_ = float(b)
        return self

    def predict_proba(self, X):
        """Probability of the second class (``classes_[1]``)."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return _sigmoid(X @ self.coef_ + self.intercept_)

    def predict(self, X):
        p = self.predict_proba(X)
        return np.where(p >= 0.5, self.classes_[1], self.classes_[0])
