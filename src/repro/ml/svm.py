"""Linear support vector machine trained with SGD on the hinge loss.

SVMs appear throughout the paper's survey: IPAS [27] uses one to classify
vulnerable instructions, and [20] uses support vectors to predict flip-flop
vulnerability.
"""

from __future__ import annotations

import numpy as np


class LinearSVC:
    """Linear SVM via stochastic subgradient descent (Pegasos-style).

    Parameters
    ----------
    C:
        Inverse regularization strength; larger C fits the data harder.
    n_epochs:
        Passes over the shuffled training set.
    lr:
        Base learning rate, decayed as ``lr / (1 + epoch)``.
    """

    def __init__(self, C=1.0, n_epochs=50, lr=0.05, seed=0):
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = C
        self.n_epochs = n_epochs
        self.lr = lr
        self.seed = seed
        self.coef_ = None
        self.intercept_ = None
        self.classes_ = None

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ValueError("LinearSVC supports exactly 2 classes")
        t = np.where(y == self.classes_[1], 1.0, -1.0)
        rng = np.random.default_rng(self.seed)
        w = np.zeros(X.shape[1])
        b = 0.0
        lam = 1.0 / (self.C * len(X))
        for epoch in range(self.n_epochs):
            lr = self.lr / (1.0 + epoch)
            order = rng.permutation(len(X))
            for i in order:
                margin = t[i] * (X[i] @ w + b)
                if margin < 1.0:
                    w -= lr * (lam * w - t[i] * X[i])
                    b += lr * t[i]
                else:
                    w -= lr * lam * w
        self.coef_ = w
        self.intercept_ = float(b)
        return self

    def decision_function(self, X):
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return X @ self.coef_ + self.intercept_

    def predict(self, X):
        score = self.decision_function(X)
        return np.where(score >= 0.0, self.classes_[1], self.classes_[0])
