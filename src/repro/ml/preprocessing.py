"""Data preprocessing utilities: scaling, splitting, encoding, folding."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Standardize features to zero mean and unit variance.

    Constant features (zero variance) are left unscaled so the transform
    never divides by zero.
    """

    def __init__(self):
        self.mean_ = None
        self.scale_ = None

    def fit(self, X):
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X):
        if self.mean_ is None:
            raise RuntimeError("StandardScaler must be fitted before transform")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X):
        return self.fit(X).transform(X)

    def inverse_transform(self, X):
        if self.mean_ is None:
            raise RuntimeError("StandardScaler must be fitted before inverse_transform")
        return np.asarray(X, dtype=float) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features into ``[0, 1]`` based on the training range."""

    def __init__(self):
        self.min_ = None
        self.range_ = None

    def fit(self, X):
        X = np.asarray(X, dtype=float)
        self.min_ = X.min(axis=0)
        rng = X.max(axis=0) - self.min_
        rng[rng == 0.0] = 1.0
        self.range_ = rng
        return self

    def transform(self, X):
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler must be fitted before transform")
        return (np.asarray(X, dtype=float) - self.min_) / self.range_

    def fit_transform(self, X):
        return self.fit(X).transform(X)


def train_test_split(X, y, test_size=0.25, seed=0, shuffle=True):
    """Split arrays into random train and test subsets.

    Parameters
    ----------
    X, y:
        Arrays with matching first dimension.
    test_size:
        Fraction of samples placed in the test split.
    seed:
        Seed for the shuffling RNG.
    shuffle:
        If False, take the tail of the data as the test split.

    Returns
    -------
    tuple of ``(X_train, X_test, y_train, y_test)``.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError(f"X and y have mismatched lengths: {len(X)} vs {len(y)}")
    n = len(X)
    n_test = max(1, int(round(n * test_size)))
    if n_test >= n:
        raise ValueError("test_size leaves no training samples")
    idx = np.arange(n)
    if shuffle:
        rng = np.random.default_rng(seed)
        rng.shuffle(idx)
    test_idx = idx[:n_test]
    train_idx = idx[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def one_hot(y, n_classes=None):
    """Encode an integer label vector as a one-hot matrix."""
    y = np.asarray(y, dtype=int)
    if y.ndim != 1:
        raise ValueError("one_hot expects a 1-D label vector")
    if n_classes is None:
        n_classes = int(y.max()) + 1
    out = np.zeros((len(y), n_classes))
    out[np.arange(len(y)), y] = 1.0
    return out


class KFold:
    """K-fold cross-validation index generator."""

    def __init__(self, n_splits=5, shuffle=True, seed=0):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, X):
        """Yield ``(train_idx, test_idx)`` pairs covering all samples."""
        n = len(X)
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        idx = np.arange(n)
        if self.shuffle:
            rng = np.random.default_rng(self.seed)
            rng.shuffle(idx)
        folds = np.array_split(idx, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train_idx, test_idx


def cross_val_score(model_factory, X, y, metric, n_splits=5, seed=0):
    """Run k-fold cross validation and return the per-fold metric values.

    ``model_factory`` is a zero-argument callable producing a fresh model
    with ``fit``/``predict``; ``metric(y_true, y_pred)`` scores one fold.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    scores = []
    for train_idx, test_idx in KFold(n_splits=n_splits, seed=seed).split(X):
        model = model_factory()
        model.fit(X[train_idx], y[train_idx])
        scores.append(metric(y[test_idx], model.predict(X[test_idx])))
    return np.array(scores)
