"""k-nearest-neighbor classifier and regressor.

The paper (Sec. III-B1, ref [20]) highlights kNN as one of the simple
models that predict flip-flop vulnerability from structural features.
"""

from __future__ import annotations

import numpy as np


class _KNNBase:
    def __init__(self, n_neighbors=5):
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be positive")
        self.n_neighbors = n_neighbors
        self._X = None
        self._y = None

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        self._X = X
        self._y = y
        return self

    def _neighbor_indices(self, X):
        if self._X is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        # Pairwise squared distances via the expansion trick.
        d2 = (
            (X**2).sum(axis=1)[:, None]
            + (self._X**2).sum(axis=1)[None, :]
            - 2.0 * X @ self._X.T
        )
        k = min(self.n_neighbors, len(self._X))
        return np.argsort(d2, axis=1)[:, :k]


class KNeighborsClassifier(_KNNBase):
    """Majority-vote kNN classification."""

    def predict(self, X):
        idx = self._neighbor_indices(X)
        labels = self._y[idx]
        out = np.empty(len(labels), dtype=self._y.dtype)
        for i, row in enumerate(labels):
            values, counts = np.unique(row, return_counts=True)
            out[i] = values[np.argmax(counts)]
        return out

    def predict_proba(self, X):
        """Fraction of neighbors per class, columns ordered by sorted class label."""
        idx = self._neighbor_indices(X)
        classes = np.unique(self._y)
        probs = np.zeros((len(idx), len(classes)))
        for i, row in enumerate(idx):
            neigh = self._y[row]
            for j, c in enumerate(classes):
                probs[i, j] = np.mean(neigh == c)
        return probs


class KNeighborsRegressor(_KNNBase):
    """Mean-of-neighbors kNN regression."""

    def predict(self, X):
        idx = self._neighbor_indices(X)
        return self._y[idx].astype(float).mean(axis=1)
