"""Multi-layer perceptrons (classifier and regressor).

MLPs appear across the survey: SER estimation [43], DNN anomaly/symptom
detection [30], WarningNet input-perturbation detection [32], crossbar
fault-criticality prediction [28], and vulnerability-factor estimation [2].
This implementation uses ReLU hidden layers, softmax/identity outputs, and
mini-batch Adam.
"""

from __future__ import annotations

import numpy as np

from repro.ml.preprocessing import one_hot


def _relu(z):
    return np.maximum(z, 0.0)


def _softmax(z):
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class _MLPBase:
    def __init__(
        self,
        hidden=(32,),
        lr=1e-3,
        n_epochs=200,
        batch_size=32,
        l2=0.0,
        seed=0,
    ):
        self.hidden = tuple(hidden)
        self.lr = lr
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self.weights_ = None
        self.biases_ = None
        self.loss_curve_ = []

    # -- architecture -------------------------------------------------------
    def _init_params(self, n_in, n_out):
        rng = np.random.default_rng(self.seed)
        sizes = [n_in, *self.hidden, n_out]
        self.weights_ = []
        self.biases_ = []
        for a, b in zip(sizes[:-1], sizes[1:]):
            # He initialization for ReLU layers.
            self.weights_.append(rng.normal(0.0, np.sqrt(2.0 / a), (a, b)))
            self.biases_.append(np.zeros(b))

    def _forward(self, X):
        """Return per-layer activations; last entry is the pre-output linear map."""
        activations = [X]
        h = X
        for W, b in zip(self.weights_[:-1], self.biases_[:-1]):
            h = _relu(h @ W + b)
            activations.append(h)
        z = h @ self.weights_[-1] + self.biases_[-1]
        activations.append(z)
        return activations

    def _fit_loop(self, X, T):
        n = len(X)
        self._init_params(X.shape[1], T.shape[1])
        rng = np.random.default_rng(self.seed + 1)
        # Adam state
        m_w = [np.zeros_like(W) for W in self.weights_]
        v_w = [np.zeros_like(W) for W in self.weights_]
        m_b = [np.zeros_like(b) for b in self.biases_]
        v_b = [np.zeros_like(b) for b in self.biases_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        self.loss_curve_ = []
        batch = min(self.batch_size, n)
        for epoch in range(self.n_epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                acts = self._forward(X[idx])
                delta, loss = self._output_grad(acts[-1], T[idx])
                epoch_loss += loss * len(idx)
                grads_w = []
                grads_b = []
                for layer in range(len(self.weights_) - 1, -1, -1):
                    a_prev = acts[layer]
                    grads_w.append(a_prev.T @ delta / len(idx) + self.l2 * self.weights_[layer])
                    grads_b.append(delta.mean(axis=0))
                    if layer > 0:
                        delta = (delta @ self.weights_[layer].T) * (acts[layer] > 0)
                grads_w.reverse()
                grads_b.reverse()
                step += 1
                for layer in range(len(self.weights_)):
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * grads_w[layer]
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * grads_w[layer] ** 2
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * grads_b[layer]
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * grads_b[layer] ** 2
                    mw_hat = m_w[layer] / (1 - beta1**step)
                    vw_hat = v_w[layer] / (1 - beta2**step)
                    mb_hat = m_b[layer] / (1 - beta1**step)
                    vb_hat = v_b[layer] / (1 - beta2**step)
                    self.weights_[layer] -= self.lr * mw_hat / (np.sqrt(vw_hat) + eps)
                    self.biases_[layer] -= self.lr * mb_hat / (np.sqrt(vb_hat) + eps)
            self.loss_curve_.append(epoch_loss / n)

    @staticmethod
    def _prep_X(X):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return X

    def n_parameters(self):
        """Total trainable parameter count (used for overhead accounting)."""
        if self.weights_ is None:
            raise RuntimeError("model is not fitted")
        return int(
            sum(W.size for W in self.weights_) + sum(b.size for b in self.biases_)
        )

    def _output_grad(self, z, T):
        raise NotImplementedError


class MLPClassifier(_MLPBase):
    """Softmax-output MLP trained with cross-entropy."""

    def fit(self, X, y):
        X = self._prep_X(X)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        idx = {c: i for i, c in enumerate(self.classes_)}
        labels = np.array([idx[v] for v in y])
        T = one_hot(labels, n_classes=len(self.classes_))
        self._fit_loop(X, T)
        return self

    def _output_grad(self, z, T):
        P = _softmax(z)
        loss = float(-np.mean(np.sum(T * np.log(np.clip(P, 1e-12, None)), axis=1)))
        return P - T, loss

    def predict_proba(self, X):
        if self.weights_ is None:
            raise RuntimeError("model is not fitted")
        X = self._prep_X(X)
        return _softmax(self._forward(X)[-1])

    def predict(self, X):
        probs = self.predict_proba(X)  # raises RuntimeError when unfitted
        return self.classes_[np.argmax(probs, axis=1)]


class MLPRegressor(_MLPBase):
    """Identity-output MLP trained with mean squared error."""

    def fit(self, X, y):
        X = self._prep_X(X)
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y.reshape(-1, 1)
        self._n_outputs = y.shape[1]
        self._fit_loop(X, y)
        return self

    def _output_grad(self, z, T):
        loss = float(np.mean((z - T) ** 2))
        return 2.0 * (z - T) / T.shape[1], loss

    def predict(self, X):
        if self.weights_ is None:
            raise RuntimeError("model is not fitted")
        X = self._prep_X(X)
        out = self._forward(X)[-1]
        if self._n_outputs == 1:
            return out.ravel()
        return out
