"""Classification and regression metrics."""

from __future__ import annotations

import numpy as np


def _as_1d(y):
    y = np.asarray(y)
    if y.ndim != 1:
        y = y.ravel()
    return y


def accuracy_score(y_true, y_pred):
    """Fraction of exactly-matching labels."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    if len(y_true) != len(y_pred):
        raise ValueError("length mismatch between y_true and y_pred")
    if len(y_true) == 0:
        raise ValueError("cannot score empty arrays")
    return float(np.mean(y_true == y_pred))


def precision_score(y_true, y_pred, positive=1):
    """Precision for the ``positive`` class; 0.0 when nothing is predicted positive."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    pred_pos = y_pred == positive
    if not pred_pos.any():
        return 0.0
    return float(np.mean(y_true[pred_pos] == positive))


def recall_score(y_true, y_pred, positive=1):
    """Recall for the ``positive`` class; 0.0 when the class is absent."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    actual_pos = y_true == positive
    if not actual_pos.any():
        return 0.0
    return float(np.mean(y_pred[actual_pos] == positive))


def f1_score(y_true, y_pred, positive=1):
    """Harmonic mean of precision and recall for the ``positive`` class."""
    p = precision_score(y_true, y_pred, positive)
    r = recall_score(y_true, y_pred, positive)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


def confusion_matrix(y_true, y_pred, n_classes=None):
    """Confusion matrix ``C`` with ``C[i, j]`` = count of true ``i`` predicted ``j``."""
    y_true = _as_1d(y_true).astype(int)
    y_pred = _as_1d(y_pred).astype(int)
    if n_classes is None:
        n_classes = int(max(y_true.max(), y_pred.max())) + 1
    cm = np.zeros((n_classes, n_classes), dtype=int)
    for t, p in zip(y_true, y_pred):
        cm[t, p] += 1
    return cm


def mean_squared_error(y_true, y_pred):
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def mean_absolute_error(y_true, y_pred):
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true, y_pred):
    """Coefficient of determination; 0.0 for a constant target."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0
    return 1.0 - ss_res / ss_tot


def mean_absolute_percentage_error(y_true, y_pred, eps=1e-12):
    """MAPE with an epsilon floor on the denominator."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    denom = np.maximum(np.abs(y_true), eps)
    return float(np.mean(np.abs((y_true - y_pred) / denom)))


def roc_auc_score(y_true, scores):
    """Area under the ROC curve for binary labels and continuous scores.

    Computed via the rank (Mann-Whitney U) formulation with midrank tie
    handling.  Raises when only one class is present.
    """
    y_true = _as_1d(y_true).astype(int)
    scores = _as_1d(scores).astype(float)
    if len(y_true) != len(scores):
        raise ValueError("length mismatch between labels and scores")
    n_pos = int(np.sum(y_true == 1))
    n_neg = int(np.sum(y_true == 0))
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc_score needs both classes present")
    order = np.argsort(scores)
    ranks = np.empty(len(scores))
    sorted_scores = scores[order]
    i = 0
    rank = 1
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        midrank = (rank + rank + (j - i)) / 2.0
        ranks[order[i : j + 1]] = midrank
        rank += j - i + 1
        i = j + 1
    rank_sum_pos = float(np.sum(ranks[y_true == 1]))
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)
