"""Campaign flight recorder: a bounded-overhead structured event stream.

Where spans and metrics are *aggregated* telemetry (one node per span
name, one counter per metric), the event log is the *sequential* record
of a run: one JSON object per noteworthy occurrence, appended to
``events.jsonl`` beside the run record.  It is what makes a campaign
observable **while it runs** (``python -m repro watch <run-dir>`` tails
it) and what later analysis trains on — a fault-injection campaign
streams one row per trial with its ``(cycle, element, bit)`` coordinate
and outcome classification, exactly the supervision a learned
injection-steering surrogate needs.

Event grammar
-------------

Every event is one JSON object with three standard fields plus
type-specific payload fields:

``ev``
    The event type, dot-namespaced (``"unit.finish"``, ``"fi.trials"``).
``t``
    Unix wall-clock seconds (``time.time()``) at emission.
``pid``
    The emitting process (campaign workers emit from their own pid; the
    parent re-parents their events into the stream on absorb, preserving
    ``t``/``pid``).

Emitted event types (see ``docs/observability.md`` for the full table):

========================  ====================================================
``stream.open/close``     written by the binding :class:`~repro.obs.record.
                          RunRecorder` around the run (``schema``, ``run_id``)
``campaign.begin/end``    one campaign invocation (units, trials, jobs;
                          executed/cached splits and histogram at the end)
``unit.submit/finish``    one unit of work entered / left execution
                          (``finish`` carries ``worker``, the executing
                          worker id, for straggler attribution)
``unit.claim``            a file-queue worker leased a unit (``worker``
                          names the claimant; starts its lease clock)
``unit.retry/timeout``    fault-tolerance activity on a unit
``cache.hit/miss``        unit-level result-cache traffic during the scan
``worker.spawn/respawn``  execution-backend lifecycle (pool or queue)
``worker.heartbeat``      worker liveness, attributed by ``worker`` id —
                          emitted per executed unit in-process, and
                          relayed from queue workers' heartbeat files
                          with their reporting lag (``lag_s``)
``fi.ladder``             snapshot-ladder stats of a FI engine build
``fi.trials``             per-trial FI rows: ``items`` is a list of
                          ``[cycle, element, bit, outcome]`` coordinates +
                          classifications (one row per trial, framed per
                          chunk so emission cost amortizes)
========================  ====================================================

Bounded overhead is the design contract: events are only built while
collection is enabled (one flag check otherwise), high-rate per-trial
data rides in per-chunk ``fi.trials`` frames instead of per-trial
objects, sink writes are flushed every :data:`FLUSH_EVERY` lines (so a
``watch`` tail stays live without an fsync per event), and a sink-less
log (worker processes, ad-hoc ``obs.enable()`` sessions) buffers at most
:data:`MAX_BUFFERED_EVENTS` events, counting — not accumulating — the
overflow in :attr:`EventLog.dropped`.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

#: Filename of the event stream inside a run directory.
EVENTS_FILENAME = "events.jsonl"

#: Bump when an event's standard fields change incompatibly.
EVENTS_SCHEMA = 1

#: Sink-bound logs flush after this many buffered lines, bounding both
#: the syscall rate and how stale a live ``watch`` tail can be.
FLUSH_EVERY = 64

#: Cap on a sink-less log's in-memory buffer (worker processes hold at
#: most one unit's events; this cap only guards ad-hoc enabled sessions).
MAX_BUFFERED_EVENTS = 65536


class EventLog:
    """One process's event stream: buffered, optionally bound to a file.

    The parent process of a recorded run binds the log to
    ``<run-dir>/events.jsonl`` (write-through with batched flushes);
    worker processes run unbound and hand their buffered events back to
    the parent through the :func:`repro.obs.capture` snapshot.
    """

    def __init__(self):
        self.enabled = False
        self.emitted = 0  # events accepted since the last reset
        self.dropped = 0  # events discarded by the sink-less buffer cap
        self._buffer = []
        self._sink = None
        self._unflushed = 0

    # -- emission --------------------------------------------------------
    def emit(self, ev, **fields):
        """Append one event (no-op while disabled)."""
        if not self.enabled:
            return
        event = {"ev": ev, "t": time.time(), "pid": os.getpid()}
        event.update(fields)
        self._append(event)

    def _append(self, event):
        self.emitted += 1
        if self._sink is not None:
            self._sink.write(json.dumps(event, default=repr) + "\n")
            self._unflushed += 1
            if self._unflushed >= FLUSH_EVERY:
                self.flush()
        elif len(self._buffer) < MAX_BUFFERED_EVENTS:
            self._buffer.append(event)
        else:
            self.dropped += 1

    def absorb(self, events):
        """Fold a worker's buffered events into this log, in their order.

        Events keep their original ``t``/``pid`` — the stream records
        when and where work happened, not when the parent heard about it.
        """
        for event in events:
            self._append(event)

    # -- sink binding ----------------------------------------------------
    def bind(self, path):
        """Write-through to ``path`` (append mode), draining the buffer."""
        self.unbind()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._sink = open(path, "a")
        if self._buffer:
            buffered, self._buffer = self._buffer, []
            for event in buffered:
                self._sink.write(json.dumps(event, default=repr) + "\n")
        self.flush()

    def detach_sink(self):
        """Stop writing through without closing; returns the handle.

        :func:`repro.obs.capture` detaches for its duration so captured
        events travel home in the snapshot — crucial in *forked* pool
        workers, which inherit the parent's open sink and would
        otherwise write into it from the wrong process.
        """
        sink, self._sink = self._sink, None
        return sink

    def reattach_sink(self, sink):
        """Restore a handle from :meth:`detach_sink` (no-op when rebound)."""
        if self._sink is None:
            self._sink = sink

    def unbind(self):
        """Flush and close the sink; the log keeps collecting in memory."""
        if self._sink is not None:
            try:
                self.flush()
                self._sink.close()
            except OSError:
                pass
            self._sink = None

    def flush(self):
        """Push buffered sink writes to the OS (``watch`` reads from here)."""
        if self._sink is not None:
            try:
                self._sink.flush()
            except OSError:
                pass
        self._unflushed = 0

    @property
    def bound(self):
        """Whether the log is currently writing through to a file."""
        return self._sink is not None

    # -- lifecycle -------------------------------------------------------
    def drain(self):
        """Detach and return the buffered events (worker capture path)."""
        events, self._buffer = self._buffer, []
        return events

    def reset(self):
        """Drop buffered events and counters; an open sink stays open."""
        self._buffer = []
        self.emitted = 0
        self.dropped = 0


# -- reading -------------------------------------------------------------
def iter_events(path):
    """Yield parsed events from an ``events.jsonl`` file, oldest first.

    Tolerates a torn tail (a truncated final line from a killed writer)
    by stopping at the first unparsable line — the manifest journal's
    rule, applied to the event stream.
    """
    with open(path) as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                yield json.loads(raw)
            except json.JSONDecodeError:
                return


def read_events(path):
    """All events of one stream as a list (see :func:`iter_events`)."""
    return list(iter_events(path))


def trial_rows(events):
    """Flatten ``fi.trials`` frames into per-trial rows.

    Returns ``[(cycle, element, bit, outcome), ...]`` in emission order —
    the training-ready view of a recorded fault-injection campaign.
    """
    rows = []
    for event in events:
        if event.get("ev") == "fi.trials":
            rows.extend(tuple(item) for item in event.get("items", ()))
    return rows
