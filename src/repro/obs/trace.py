"""Hierarchical tracing spans aggregated into a per-run span tree.

A *span* names one region of work with a dotted ``layer.component[.detail]``
path (``"circuit.sta.run"``, ``"arch.fault_injection.chunk"``).  Spans nest:
whatever span is active when a new one opens becomes its parent, across
module and layer boundaries, via :mod:`contextvars`.  That is how one
recorded campaign shows runtime → architecture → circuit time without any
of those layers knowing about each other.

Spans are **aggregated, not logged**: all occurrences of the same name
under the same parent share one :class:`SpanNode` that accumulates wall
time and a call count.  A 10⁵-trial campaign therefore produces a span
tree of a few dozen nodes, the tree *shape* is identical for serial and
parallel execution of the same campaign, and memory stays bounded no
matter how hot the instrumented path is.

When tracing is disabled (the default) :meth:`Tracer.span` returns a
shared no-op context manager — the cost of an instrumented call site is
one attribute check.
"""

from __future__ import annotations

import time
from contextvars import ContextVar


class SpanNode:
    """One aggregated node of the span tree.

    ``count`` occurrences of this span name under this parent were
    observed, spending ``total_s`` wall seconds in total (children
    included — subtract their totals for exclusive self-time).
    """

    __slots__ = ("name", "count", "total_s", "attrs", "children")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.attrs = {}
        self.children = {}

    def child(self, name):
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    @property
    def self_s(self):
        """Wall time not attributed to any child span."""
        return max(self.total_s - sum(c.total_s for c in self.children.values()), 0.0)

    def to_dict(self):
        """JSON-ready form; children sorted by name for determinism."""
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "attrs": dict(self.attrs),
            "children": [
                self.children[k].to_dict() for k in sorted(self.children)
            ],
        }

    def absorb(self, node_dict):
        """Merge a serialized subtree (same name) into this node.

        This is how spans recorded inside a worker process are
        re-parented onto the parent process's tree: counts and wall times
        add, attributes take the newest value, children merge by name.
        """
        self.count += node_dict.get("count", 0)
        self.total_s += node_dict.get("total_s", 0.0)
        self.attrs.update(node_dict.get("attrs") or {})
        for child in node_dict.get("children", ()):
            self.child(child["name"]).absorb(child)


def span_shape(node_dict):
    """Reduce a serialized span (sub)tree to its shape: names + counts.

    Two runs of the same campaign — serial or fanned out over any number
    of worker processes — must produce equal shapes; wall times are the
    only thing allowed to differ.
    """
    return {
        "name": node_dict["name"],
        "count": node_dict["count"],
        "children": [span_shape(c) for c in node_dict.get("children", ())],
    }


class _NullSpan:
    """Reusable no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span: binds a :class:`SpanNode`, times the enclosed block."""

    __slots__ = ("_tracer", "_name", "_attrs", "_node", "_token", "_t0")

    def __init__(self, tracer, name, attrs):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self):
        parent = self._tracer.current()
        self._node = parent.child(self._name)
        if self._attrs:
            self._node.attrs.update(self._attrs)
        self._token = self._tracer._active.set(self._node)
        self._t0 = time.perf_counter()
        return self._node

    def __exit__(self, exc_type, exc, tb):
        self._node.count += 1
        self._node.total_s += time.perf_counter() - self._t0
        self._tracer._active.reset(self._token)
        return False


class Tracer:
    """Holds the span tree of the current run and the active-span stack."""

    #: Name of the implicit root every recorded run hangs off.
    ROOT_NAME = "run"

    def __init__(self):
        self.enabled = False
        self.root = SpanNode(self.ROOT_NAME)
        self._active = ContextVar("repro_obs_active_span", default=None)

    def span(self, name, **attrs):
        """Context manager opening one span; no-op while disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def current(self):
        """The innermost active :class:`SpanNode` (the root when idle)."""
        return self._active.get() or self.root

    def reset(self):
        """Drop all recorded spans (a new root tree)."""
        self.root = SpanNode(self.ROOT_NAME)
        self._active.set(None)

    def snapshot(self):
        """The whole tree as a JSON-ready dict."""
        return self.root.to_dict()

    def absorb_children(self, children):
        """Graft serialized worker subtrees under the currently active span."""
        node = self.current()
        for child in children:
            node.child(child["name"]).absorb(child)
