"""Structured run records: one JSONL file per recorded campaign.

A *run record* is the durable artifact of one observed run: what was
run (config + digest, seed root, package version), what happened
(outcome histogram, campaign/cache accounting), and where time went
(the span tree and metrics snapshot).  It is written as JSONL — one
self-describing object per line, each with a ``"type"`` field — so the
schema can grow without breaking old readers and a truncated file still
parses line by line:

.. code-block:: text

    {"type": "meta",      "schema": 1, "run_id": ..., "config_digest": ..., ...}
    {"type": "spans",     "root": {...span tree...}}
    {"type": "metrics",   "counters": {...}, "gauges": {...}, "histograms": {...}}
    {"type": "campaigns", "campaigns": [{...runner accounting...}, ...]}
    {"type": "outcomes",  "histogram": {...label -> count...}}

:class:`RunRecorder` is the writer (and the switch: entering it enables
collection); :func:`load_run_record` is the reader the ``repro report``
CLI uses.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

import repro.obs as obs

#: Bump when a record line's fields change incompatibly.
RUN_RECORD_SCHEMA = 1

RECORD_FILENAME = "record.jsonl"


def config_digest(config):
    """Short content digest of a run's configuration mapping.

    Permissive on value types (falls back to ``repr``) — unlike cache
    keys, a run record digest only needs to *identify* a configuration,
    never to guarantee collision-free addressing.
    """
    payload = json.dumps(config, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class RunRecorder:
    """Record one run's telemetry to ``<base_dir>/<run_id>/record.jsonl``.

    Entering the recorder resets and enables :mod:`repro.obs` collection;
    leaving it writes the record and restores the previous on/off state.

    Parameters
    ----------
    base_dir:
        Directory that holds run directories (created on demand).
    name:
        Experiment/campaign name; becomes part of the run id.
    config:
        Mapping describing the run (CLI args, study parameters); digested
        into ``config_digest``.
    seed:
        The root seed the run's deterministic streams derive from.
    run_id:
        Override the generated ``<name>-<timestamp>-<pid>`` id.
    """

    def __init__(self, base_dir, name, config=None, seed=None, run_id=None):
        self.name = name
        self.config = dict(config or {})
        self.seed = seed
        if run_id is None:
            stamp = time.strftime("%Y%m%d-%H%M%S")
            run_id = f"{name}-{stamp}-{os.getpid()}"
        self.run_id = run_id
        self.run_dir = Path(base_dir) / run_id
        self.path = self.run_dir / RECORD_FILENAME
        self._was_enabled = False
        self._t0 = None
        self._started = None

    # -- context manager -------------------------------------------------
    def __enter__(self):
        self._was_enabled = obs.enabled()
        obs.reset()
        obs.enable()
        self._started = time.strftime("%Y-%m-%dT%H:%M:%S")
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        try:
            status = "ok" if exc_type is None else f"error: {exc_type.__name__}"
            self.write(elapsed_s=time.perf_counter() - self._t0, status=status)
        finally:
            if not self._was_enabled:
                obs.disable()
        return False

    # -- writing ---------------------------------------------------------
    def _lines(self, elapsed_s, status):
        import repro

        campaigns = obs.campaign_notes()
        outcomes = {}
        for campaign in campaigns:
            for label, count in campaign.get("histogram", {}).items():
                outcomes[label] = outcomes.get(label, 0) + count
        yield {
            "type": "meta",
            "schema": RUN_RECORD_SCHEMA,
            "run_id": self.run_id,
            "name": self.name,
            "version": repro.__version__,
            "config": self.config,
            "config_digest": config_digest(self.config),
            "seed_root": self.seed,
            "started": self._started,
            "elapsed_s": elapsed_s,
            "status": status,
        }
        yield {"type": "spans", "root": obs.span_tree()}
        yield {"type": "metrics", **obs.metrics_snapshot()}
        yield {"type": "campaigns", "campaigns": campaigns}
        yield {"type": "outcomes", "histogram": outcomes}

    def write(self, elapsed_s=0.0, status="ok"):
        """Serialize the current telemetry state; returns the record path."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            for line in self._lines(elapsed_s, status):
                fh.write(json.dumps(line, sort_keys=True, default=repr) + "\n")
        os.replace(tmp, self.path)
        return self.path


def _resolve_record_path(path):
    """Accept a record file, a run dir, or a base dir of run dirs."""
    path = Path(path)
    if path.is_file():
        return path
    direct = path / RECORD_FILENAME
    if direct.is_file():
        return direct
    candidates = sorted(
        path.glob(f"*/{RECORD_FILENAME}"), key=lambda p: p.stat().st_mtime
    )
    if candidates:
        return candidates[-1]  # newest run under a base directory
    raise FileNotFoundError(f"no {RECORD_FILENAME} found under {path}")


def load_run_record(path):
    """Parse a run record into ``{"meta": ..., "spans": ..., ...}``.

    ``path`` may be the ``record.jsonl`` file itself, a run directory, or
    a base directory holding several run directories (the newest record
    wins — handy for ``repro report runs/`` right after a recorded run).
    """
    record_path = _resolve_record_path(path)
    record = {"path": str(record_path)}
    with open(record_path) as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            line = json.loads(raw)
            kind = line.pop("type", None)
            if kind:
                record[kind] = line
    return record
