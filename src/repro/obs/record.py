"""Structured run records: one JSONL file per recorded campaign.

A *run record* is the durable artifact of one observed run: what was
run (config + digest, seed root, package version), what happened
(outcome histogram, campaign/cache accounting), and where time went
(the span tree and metrics snapshot).  It is written as JSONL — one
self-describing object per line, each with a ``"type"`` field — so the
schema can grow without breaking old readers and a truncated file still
parses line by line:

.. code-block:: text

    {"type": "meta",      "schema": 1, "run_id": ..., "config_digest": ..., ...}
    {"type": "spans",     "root": {...span tree...}}
    {"type": "metrics",   "counters": {...}, "gauges": {...}, "histograms": {...}}
    {"type": "campaigns", "campaigns": [{...runner accounting...}, ...]}
    {"type": "outcomes",  "histogram": {...label -> count...}}

:class:`RunRecorder` is the writer (and the switch: entering it enables
collection); :func:`load_run_record` is the reader the ``repro report``
CLI uses.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from pathlib import Path

import repro.obs as obs
from repro.obs.events import EVENTS_FILENAME, EVENTS_SCHEMA

#: Bump when a record line's fields change incompatibly.
RUN_RECORD_SCHEMA = 1

RECORD_FILENAME = "record.jsonl"


def config_digest(config):
    """Short content digest of a run's configuration mapping.

    Permissive on value types (falls back to ``repr``) — unlike cache
    keys, a run record digest only needs to *identify* a configuration,
    never to guarantee collision-free addressing.
    """
    payload = json.dumps(config, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class RunRecorder:
    """Record one run's telemetry to ``<base_dir>/<run_id>/record.jsonl``.

    Entering the recorder resets and enables :mod:`repro.obs` collection
    and binds the flight-recorder event stream to ``events.jsonl`` in the
    same run directory (so events land on disk *while* the run executes —
    ``python -m repro watch <run-dir>`` tails them); leaving it writes
    the record and restores the previous on/off state.

    Parameters
    ----------
    base_dir:
        Directory that holds run directories (created on demand).
    name:
        Experiment/campaign name; becomes part of the run id.
    config:
        Mapping describing the run (CLI args, study parameters); digested
        into ``config_digest``.
    seed:
        The root seed the run's deterministic streams derive from.
    run_id:
        Override the generated ``<name>-<timestamp>-<pid>`` id.
    """

    def __init__(self, base_dir, name, config=None, seed=None, run_id=None):
        self.name = name
        self.config = dict(config or {})
        self.seed = seed
        if run_id is None:
            stamp = time.strftime("%Y%m%d-%H%M%S")
            run_id = f"{name}-{stamp}-{os.getpid()}"
            # Back-to-back runs in the same second (and process) would
            # collide and append into one run directory; uniquify.
            base = run_id
            n = 2
            while (Path(base_dir) / run_id).exists():
                run_id = f"{base}-{n}"
                n += 1
        self.run_id = run_id
        self.run_dir = Path(base_dir) / run_id
        self.path = self.run_dir / RECORD_FILENAME
        self.events_path = self.run_dir / EVENTS_FILENAME
        self._was_enabled = False
        self._t0 = None
        self._started = None

    # -- context manager -------------------------------------------------
    def __enter__(self):
        self._was_enabled = obs.enabled()
        obs.reset()
        obs.enable()
        self._started = time.strftime("%Y-%m-%dT%H:%M:%S")
        self._t0 = time.perf_counter()
        self.run_dir.mkdir(parents=True, exist_ok=True)
        obs.EVENTS.bind(self.events_path)
        obs.emit("stream.open", schema=EVENTS_SCHEMA, run_id=self.run_id,
                 name=self.name)
        return self

    def __exit__(self, exc_type, exc, tb):
        try:
            status = "ok" if exc_type is None else f"error: {exc_type.__name__}"
            obs.emit("stream.close", status=status)
            obs.EVENTS.unbind()
            self.write(elapsed_s=time.perf_counter() - self._t0, status=status)
        finally:
            if not self._was_enabled:
                obs.disable()
        return False

    # -- writing ---------------------------------------------------------
    def _lines(self, elapsed_s, status):
        import repro

        campaigns = obs.campaign_notes()
        outcomes = {}
        for campaign in campaigns:
            for label, count in campaign.get("histogram", {}).items():
                outcomes[label] = outcomes.get(label, 0) + count
        yield {
            "type": "meta",
            "schema": RUN_RECORD_SCHEMA,
            "run_id": self.run_id,
            "name": self.name,
            "version": repro.__version__,
            "config": self.config,
            "config_digest": config_digest(self.config),
            "seed_root": self.seed,
            "started": self._started,
            "elapsed_s": elapsed_s,
            "status": status,
            "events_file": EVENTS_FILENAME,
            "events_emitted": obs.EVENTS.emitted,
            "events_dropped": obs.EVENTS.dropped,
        }
        yield {"type": "spans", "root": obs.span_tree()}
        yield {"type": "metrics", **obs.metrics_snapshot()}
        yield {"type": "campaigns", "campaigns": campaigns}
        yield {"type": "outcomes", "histogram": outcomes}

    def write(self, elapsed_s=0.0, status="ok"):
        """Serialize the current telemetry state; returns the record path."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            for line in self._lines(elapsed_s, status):
                fh.write(json.dumps(line, sort_keys=True, default=repr) + "\n")
        os.replace(tmp, self.path)
        return self.path


def resolve_record_path(path):
    """Resolve a record file, run dir, or base dir to ``(path, how)``.

    ``how`` says what kind of argument was given: ``"file"`` (the
    ``record.jsonl`` itself), ``"run-dir"`` (a directory holding one),
    or ``"base-dir"`` (a directory of run directories — the newest
    record wins, so callers should tell the user which one was picked).
    """
    path = Path(path)
    if path.is_file():
        return path, "file"
    direct = path / RECORD_FILENAME
    if direct.is_file():
        return direct, "run-dir"
    candidates = sorted(
        path.glob(f"*/{RECORD_FILENAME}"), key=lambda p: p.stat().st_mtime
    )
    if candidates:
        return candidates[-1], "base-dir"  # newest run under the base
    raise FileNotFoundError(f"no {RECORD_FILENAME} found under {path}")


def load_run_record(path):
    """Parse a run record into ``{"meta": ..., "spans": ..., ...}``.

    ``path`` may be the ``record.jsonl`` file itself, a run directory, or
    a base directory holding several run directories (the newest record
    wins — handy for ``repro report runs/`` right after a recorded run).

    A torn tail — a truncated final JSONL line left by a killed or
    out-of-disk writer — is tolerated with a warning, mirroring the
    campaign manifest's rule: every line that parsed is kept, reading
    stops at the first line that does not.
    """
    record_path, _ = resolve_record_path(path)
    record = {"path": str(record_path)}
    with open(record_path) as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                line = json.loads(raw)
            except json.JSONDecodeError:
                warnings.warn(
                    f"{record_path}: torn trailing line (killed writer?); "
                    f"keeping the {len(record) - 1} sections that parsed",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            kind = line.pop("type", None)
            if kind:
                record[kind] = line
    return record


def list_runs(base_dir):
    """One summary dict per run record under ``base_dir``, oldest first.

    Accepts a base directory of run directories (the layout ``--record``
    produces) or a single run directory.  Each summary carries the keys
    the ``repro report --list`` table prints: ``run_id``, ``name``,
    ``started``, ``elapsed_s``, ``status``, ``trials`` (total outcome
    count), and ``path``.
    """
    base = Path(base_dir)
    candidates = sorted(
        base.glob(f"*/{RECORD_FILENAME}"), key=lambda p: p.stat().st_mtime
    )
    direct = base / RECORD_FILENAME
    if direct.is_file():
        candidates.insert(0, direct)
    if not candidates:
        raise FileNotFoundError(f"no {RECORD_FILENAME} found under {base}")
    summaries = []
    for path in candidates:
        record = load_run_record(path)
        meta = record.get("meta", {})
        outcomes = record.get("outcomes", {}).get("histogram", {})
        summaries.append({
            "run_id": meta.get("run_id", path.parent.name),
            "name": meta.get("name", "?"),
            "started": meta.get("started", "?"),
            "elapsed_s": meta.get("elapsed_s", 0.0),
            "status": meta.get("status", "?"),
            "trials": sum(outcomes.values()),
            "path": str(path),
        })
    return summaries
