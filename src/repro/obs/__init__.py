"""Cross-layer observability: tracing spans, metrics, structured run records.

Every layer of this library — transistor aging models, circuit STA,
architecture fault injection, system managers, the shared campaign
runtime — is instrumented against this package, so one recorded run
shows *where* time and work went across abstraction layers instead of
reporting a single final number.

Four pillars (see ``docs/observability.md`` for the guide):

:mod:`repro.obs.trace`
    Hierarchical :func:`span`\\ s built on :mod:`contextvars`; aggregated
    into a bounded per-run span tree that nests across layer boundaries
    and is re-parented onto the parent tree when campaign workers run in
    separate processes.
:mod:`repro.obs.metrics`
    Process-global counters/gauges/histograms named
    ``layer.component.metric`` (:func:`inc`, :func:`set_gauge`,
    :func:`observe`), merged across worker processes.
:mod:`repro.obs.events`
    The flight recorder: a sequential structured event stream
    (:func:`emit`) appended to ``events.jsonl`` beside the run record —
    per-unit scheduling/fault-tolerance events, per-trial FI
    coordinate/classification rows, worker heartbeats.  ``python -m
    repro watch <run-dir>`` tails it live (:mod:`repro.obs.watch`).
:mod:`repro.obs.record`
    :class:`RunRecorder` writes one JSONL run record per campaign
    (config digest, seed root, span tree, metrics snapshot, outcome
    histogram, cache stats, package version); ``python -m repro report
    <run-dir>`` renders it (:mod:`repro.obs.report`), exports it as a
    Chrome trace / Prometheus text (:mod:`repro.obs.export`), and
    compares two runs (:mod:`repro.obs.diff`).

Everything is **off by default**: an instrumented call site costs one
flag check until :func:`enable` (or a :class:`RunRecorder`) turns
collection on, which is what keeps the instrumented hot paths within the
library's performance budget.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.events import EventLog
from repro.obs.metrics import HistogramStat, MetricsRegistry, layer_of
from repro.obs.trace import SpanNode, Tracer, span_shape

#: Process-global collectors.  One tracer + one registry + one event log
#: per process; worker processes get fresh state through :func:`capture`.
TRACER = Tracer()
METRICS = MetricsRegistry()
EVENTS = EventLog()

#: Campaign summaries noted by the runtime layer during the current run
#: (one dict per `CampaignRunner` invocation; see ``note_campaign``).
_CAMPAIGNS = []


# -- switch -------------------------------------------------------------
def enable():
    """Turn span/metric/event collection on (idempotent)."""
    TRACER.enabled = True
    METRICS.enabled = True
    EVENTS.enabled = True


def disable():
    """Turn collection off; instrumented call sites go back to no-ops."""
    TRACER.enabled = False
    METRICS.enabled = False
    EVENTS.enabled = False


def enabled():
    """Whether collection is currently on."""
    return TRACER.enabled


def reset():
    """Drop all collected spans, metrics, events, and campaign notes."""
    TRACER.reset()
    METRICS.reset()
    EVENTS.reset()
    del _CAMPAIGNS[:]


@contextmanager
def collecting():
    """Enable collection for a ``with`` block, restoring the prior state."""
    was = enabled()
    reset()
    enable()
    try:
        yield
    finally:
        if not was:
            disable()


# -- bound instruments --------------------------------------------------
def span(name, **attrs):
    """Open a trace span ``layer.component[.detail]`` as a context manager."""
    return TRACER.span(name, **attrs)


def inc(name, amount=1):
    """Increment counter ``name`` by ``amount``."""
    METRICS.inc(name, amount)


def set_gauge(name, value):
    """Set gauge ``name``."""
    METRICS.set_gauge(name, value)


def observe(name, value):
    """Feed ``value`` into histogram ``name``."""
    METRICS.observe(name, value)


def emit(ev, **fields):
    """Append one structured event to the flight-recorder stream."""
    EVENTS.emit(ev, **fields)


def span_tree():
    """JSON-ready snapshot of the current span tree (root included)."""
    return TRACER.snapshot()


def metrics_snapshot():
    """JSON-ready snapshot of all metrics."""
    return METRICS.snapshot()


def note_campaign(info):
    """Record one campaign/runner summary dict into the current run."""
    if enabled():
        _CAMPAIGNS.append(dict(info))


def campaign_notes():
    """Campaign summaries noted since the last :func:`reset`."""
    return [dict(c) for c in _CAMPAIGNS]


# -- worker propagation -------------------------------------------------
class Capture:
    """Holds the telemetry a :func:`capture` block collected."""

    def __init__(self):
        self.snapshot = None


@contextmanager
def capture():
    """Collect spans/metrics of a block into a detached snapshot.

    Used by the campaign runtime inside worker processes: the worker
    executes its unit of work under a fresh tree/registry, and the
    resulting snapshot travels back with the unit result so the parent
    process can :func:`absorb` it.  Collection must already be enabled
    (the runner bakes the parent's flag into the worker call).
    """
    cap = Capture()
    prev_root = TRACER.root
    prev_token = TRACER._active.set(None)
    prev_metrics = (METRICS.counters, METRICS.gauges, METRICS.histograms)
    prev_campaigns = list(_CAMPAIGNS)
    prev_events = EVENTS.drain()
    prev_sink = EVENTS.detach_sink()  # forked workers inherit the parent's
    TRACER.root = SpanNode(Tracer.ROOT_NAME)
    METRICS.reset()
    del _CAMPAIGNS[:]
    try:
        yield cap
    finally:
        cap.snapshot = {
            "spans": TRACER.snapshot()["children"],
            "metrics": METRICS.snapshot(),
            "campaigns": campaign_notes(),
            "events": EVENTS.drain(),
        }
        TRACER.root = prev_root
        TRACER._active.reset(prev_token)
        METRICS.counters, METRICS.gauges, METRICS.histograms = prev_metrics
        _CAMPAIGNS[:] = prev_campaigns
        EVENTS.reattach_sink(prev_sink)
        EVENTS._buffer[:0] = prev_events  # restore, don't re-account


def absorb(snapshot):
    """Merge a worker's :func:`capture` snapshot into this process.

    Worker span subtrees are re-parented under the *currently active*
    span (e.g. the runner's ``runtime.campaign``), so the merged tree has
    the same shape a serial run would have produced.
    """
    if snapshot is None:
        return
    TRACER.absorb_children(snapshot.get("spans", ()))
    METRICS.merge(snapshot.get("metrics", {}))
    _CAMPAIGNS.extend(dict(c) for c in snapshot.get("campaigns", ()))
    EVENTS.absorb(snapshot.get("events", ()))


from repro.obs.record import (  # noqa: E402  (needs the state above)
    RUN_RECORD_SCHEMA,
    RunRecorder,
    config_digest,
    list_runs,
    load_run_record,
    resolve_record_path,
)
from repro.obs.report import layer_breakdown, render_report  # noqa: E402
from repro.obs.diff import diff_records, render_diff  # noqa: E402
from repro.obs.export import chrome_trace, prometheus_text  # noqa: E402
from repro.obs.events import (  # noqa: E402
    EVENTS_FILENAME,
    iter_events,
    read_events,
    trial_rows,
)

__all__ = [
    "TRACER",
    "METRICS",
    "EVENTS",
    "EVENTS_FILENAME",
    "EventLog",
    "emit",
    "iter_events",
    "read_events",
    "trial_rows",
    "chrome_trace",
    "prometheus_text",
    "diff_records",
    "render_diff",
    "list_runs",
    "resolve_record_path",
    "enable",
    "disable",
    "enabled",
    "reset",
    "collecting",
    "span",
    "inc",
    "set_gauge",
    "observe",
    "span_tree",
    "metrics_snapshot",
    "note_campaign",
    "campaign_notes",
    "capture",
    "absorb",
    "Capture",
    "SpanNode",
    "Tracer",
    "span_shape",
    "HistogramStat",
    "MetricsRegistry",
    "layer_of",
    "RUN_RECORD_SCHEMA",
    "RunRecorder",
    "config_digest",
    "load_run_record",
    "layer_breakdown",
    "render_report",
]
