"""Render a run record into a human-readable report.

Backs the ``python -m repro report <run-dir>`` command: a summary table
(what ran, for how long, with what outcome mix), campaign/cache
accounting, a **per-layer time breakdown** (exclusive span self-time
aggregated by the first dotted segment of each span name), and the
indented span tree itself.
"""

from __future__ import annotations

from repro.obs.metrics import layer_of


def _walk(node, visit, depth=0):
    visit(node, depth)
    for child in node.get("children", ()):
        _walk(child, visit, depth + 1)


def _self_s(node):
    return max(
        node.get("total_s", 0.0)
        - sum(c.get("total_s", 0.0) for c in node.get("children", ())),
        0.0,
    )


def layer_breakdown(spans_root):
    """Aggregate exclusive span time by abstraction layer.

    Returns ``{layer: {"spans": n_nodes, "calls": total_count,
    "self_s": exclusive_seconds}}``, skipping the synthetic root.  A
    span's *exclusive* time (total minus children) is what its own layer
    actually spent, so layers sum to (at most) the recorded wall time
    instead of double-counting nested work.
    """
    layers = {}

    def visit(node, depth):
        if depth == 0:  # synthetic "run" root
            return
        layer = layer_of(node["name"])
        entry = layers.setdefault(layer, {"spans": 0, "calls": 0, "self_s": 0.0})
        entry["spans"] += 1
        entry["calls"] += node.get("count", 0)
        entry["self_s"] += _self_s(node)

    _walk(spans_root, visit)
    return layers


def _table(header, rows):
    if not rows:
        return []
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) for i, h in enumerate(header)
    ]
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(header, widths)).rstrip()]
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)).rstrip())
    return lines


def format_span_tree(spans_root, max_depth=8):
    """Indented one-line-per-node rendering of the span tree."""
    lines = []

    def visit(node, depth):
        if depth > max_depth:
            return
        indent = "  " * depth
        lines.append(
            f"{indent}{node['name']}  x{node.get('count', 0)}  "
            f"{node.get('total_s', 0.0):.3f}s"
        )

    _walk(spans_root, visit)
    return lines


def render_report(record):
    """Full multi-section report text for one loaded run record."""
    meta = record.get("meta", {})
    spans = record.get("spans", {}).get("root", {"name": "run", "children": []})
    metrics = record.get("metrics", {})
    campaigns = record.get("campaigns", {}).get("campaigns", [])
    outcomes = record.get("outcomes", {}).get("histogram", {})

    lines = [f"== run record: {meta.get('run_id', '?')} =="]
    lines += _table(
        ("field", "value"),
        [
            ("experiment", meta.get("name", "?")),
            ("version", meta.get("version", "?")),
            ("started", meta.get("started", "?")),
            ("elapsed", f"{meta.get('elapsed_s', 0.0):.2f} s"),
            ("status", meta.get("status", "?")),
            ("seed root", meta.get("seed_root")),
            ("config digest", meta.get("config_digest", "?")),
        ],
    )

    if campaigns:
        lines += ["", "== campaigns =="]
        rows = []
        for i, c in enumerate(campaigns):
            rows.append(
                (
                    i,
                    c.get("total_trials", 0),
                    c.get("executed_trials", 0),
                    c.get("cached_trials", 0),
                    f"{c.get('trials_per_sec', 0.0):.1f}",
                    c.get("jobs_used", 1),
                    f"{c.get('cache_hits', 0)}/{c.get('cache_misses', 0)}",
                )
            )
        lines += _table(
            ("#", "trials", "executed", "cached", "trials/s", "jobs", "cache h/m"),
            rows,
        )

    if outcomes:
        total = sum(outcomes.values()) or 1
        lines += ["", "== outcomes =="]
        lines += _table(
            ("outcome", "count", "rate"),
            [
                (label, count, f"{count / total:.3f}")
                for label, count in sorted(outcomes.items())
            ],
        )

    layers = layer_breakdown(spans)
    if layers:
        wall = meta.get("elapsed_s") or sum(v["self_s"] for v in layers.values()) or 1.0
        lines += ["", "== per-layer time =="]
        rows = [
            (
                layer,
                entry["spans"],
                entry["calls"],
                f"{entry['self_s']:.3f}",
                f"{100.0 * entry['self_s'] / wall:.1f}%",
            )
            for layer, entry in sorted(
                layers.items(), key=lambda kv: -kv[1]["self_s"]
            )
        ]
        lines += _table(("layer", "spans", "calls", "self time (s)", "of wall"), rows)

    if spans.get("children"):
        lines += ["", "== span tree =="]
        lines += format_span_tree(spans)

    counters = metrics.get("counters", {})
    if counters:
        lines += ["", "== counters =="]
        lines += _table(
            ("counter", "value"), [(k, v) for k, v in sorted(counters.items())]
        )

    histograms = metrics.get("histograms", {})
    if histograms:
        def _q(stat, key):
            value = stat.get(key)
            return f"{value:.6g}" if value is not None else "-"

        lines += ["", "== histograms =="]
        lines += _table(
            ("histogram", "count", "mean", "p50", "p95", "p99", "max"),
            [
                (
                    name,
                    stat.get("count", 0),
                    f"{stat.get('mean', 0.0):.6g}",
                    _q(stat, "p50"), _q(stat, "p95"), _q(stat, "p99"),
                    f"{stat.get('max', 0.0):.6g}",
                )
                for name, stat in sorted(histograms.items())
            ],
        )

    return "\n".join(lines) + "\n"
