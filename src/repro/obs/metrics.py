"""Process-global metrics registry: counters, gauges, histograms.

Metric names follow the ``layer.component.metric`` convention
(``"runtime.cache.hits"``, ``"transistor.aging.nbti_evals"``) so run
records can be broken down by abstraction layer — the first dotted
segment is the layer.

Three instrument kinds, chosen to stay cheap on hot paths and mergeable
across process boundaries:

* **counter** — monotonically increasing total (:meth:`MetricsRegistry.inc`);
* **gauge** — last-written value (:meth:`MetricsRegistry.set_gauge`);
* **histogram** — running ``count/total/min/max`` summary of observed
  values (:meth:`MetricsRegistry.observe`) plus p50/p95/p99 quantiles
  that are exact while the stream fits the bounded reservoir
  (:data:`RESERVOIR_SIZE` values) and reservoir-approximate beyond it,
  so memory stays O(1) per metric and worker snapshots still merge.

While disabled (the default) every instrument call is a single flag
check — instrumented library code pays effectively nothing.
"""

from __future__ import annotations


#: Values retained per histogram for quantile estimation.  Quantiles are
#: exact up to this many observations; beyond it the first
#: ``RESERVOIR_SIZE`` values stand in for the stream (deterministic, and
#: good enough for the skew questions a report answers).
RESERVOIR_SIZE = 512

#: Quantiles surfaced by :meth:`HistogramStat.to_dict` and the report.
QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


class HistogramStat:
    """Bounded summary of an observed value stream."""

    __slots__ = ("count", "total", "min", "max", "reservoir")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.reservoir = []

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self.reservoir) < RESERVOIR_SIZE:
            self.reservoir.append(value)

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def quantile(self, q):
        """Nearest-rank quantile over the reservoir (None when empty)."""
        if not self.reservoir:
            return None
        ordered = sorted(self.reservoir)
        rank = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[rank]

    def to_dict(self):
        d = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "reservoir": list(self.reservoir),
        }
        for name, q in QUANTILES:
            d[name] = self.quantile(q)
        return d

    def absorb(self, d):
        if not d.get("count"):
            return
        self.count += d["count"]
        self.total += d["total"]
        self.min = d["min"] if self.min is None else min(self.min, d["min"])
        self.max = d["max"] if self.max is None else max(self.max, d["max"])
        space = RESERVOIR_SIZE - len(self.reservoir)
        if space > 0:
            self.reservoir.extend(d.get("reservoir", ())[:space])


class MetricsRegistry:
    """One process's metric state; snapshot/merge make it cross-process."""

    def __init__(self):
        self.enabled = False
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    # -- instruments -----------------------------------------------------
    def inc(self, name, amount=1):
        """Add ``amount`` to counter ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name, value):
        """Record the current value of gauge ``name``."""
        if not self.enabled:
            return
        self.gauges[name] = value

    def observe(self, name, value):
        """Feed one value into histogram ``name``."""
        if not self.enabled:
            return
        stat = self.histograms.get(name)
        if stat is None:
            stat = self.histograms[name] = HistogramStat()
        stat.observe(value)

    # -- lifecycle -------------------------------------------------------
    def reset(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def snapshot(self):
        """JSON-ready dump of every metric (sorted for determinism)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict() for k in sorted(self.histograms)
            },
        }

    def merge(self, snapshot):
        """Fold a worker's snapshot into this registry.

        Counters and histogram summaries add; gauges take the incoming
        value (last writer wins, matching in-process semantics).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauges[name] = value
        for name, d in snapshot.get("histograms", {}).items():
            stat = self.histograms.get(name)
            if stat is None:
                stat = self.histograms[name] = HistogramStat()
            stat.absorb(d)


def layer_of(metric_or_span_name):
    """The abstraction layer a dotted name belongs to (first segment)."""
    return metric_or_span_name.split(".", 1)[0]
