"""Live campaign view: tail a run's ``events.jsonl`` while it executes.

``python -m repro watch <run-dir>`` follows the flight-recorder stream
a :class:`~repro.obs.record.RunRecorder` writes and keeps one status
line per update: progress, executed-trial throughput, ETA, cache and
fault-tolerance activity, the outcome histogram so far, and stragglers
(units in flight far longer than the finished median, named with the
worker executing them when claim/heartbeat events identify it).  The math is the
runner's own :class:`~repro.runtime.telemetry.ProgressEvent` — the
watcher just reconstructs the runner's accounting from the event stream
instead of a callback, which is what makes it work from *any* process,
on a live run or a finished one (``--once``).

The tailer is torn-line safe (a partially appended line is retried on
the next poll, never mis-parsed) and stops on the recorder's
``stream.close`` event.
"""

from __future__ import annotations

import json
import sys
import time

from repro.runtime.telemetry import ProgressEvent, _format_eta

#: A unit in flight this many times longer than the median finished
#: unit is reported as a straggler.
STRAGGLER_FACTOR = 4.0


class EventTail:
    """Incremental reader of an append-only JSONL file.

    Keeps a byte offset and a partial-line buffer, so each :meth:`poll`
    returns only the complete events appended since the previous one —
    a torn tail (the writer mid-append) stays buffered until its
    newline arrives.
    """

    def __init__(self, path):
        self.path = path
        self._offset = 0
        self._partial = ""

    def poll(self):
        """Parse and return the events appended since the last poll."""
        try:
            with open(self.path) as fh:
                fh.seek(self._offset)
                chunk = fh.read()
                self._offset = fh.tell()
        except OSError:
            return []
        if not chunk:
            return []
        data = self._partial + chunk
        lines = data.split("\n")
        self._partial = lines.pop()  # "" on a clean trailing newline
        events = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # corrupt line: skip, keep tailing
        return events


class WatchState:
    """Runner accounting reconstructed from the flight-recorder stream."""

    def __init__(self):
        self.total_trials = 0
        self.done_trials = 0
        self.cached_trials = 0
        self.executed_trials = 0
        self.retries = 0
        self.timeouts = 0
        self.respawns = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.histogram = {}
        self.closed = False
        self.run_id = None
        self.t_first = None
        self.t_last = None
        self.workers = {}  # worker id -> {"last_t": t, "units_done": n}
        self._inflight = {}  # unit index -> submit time
        self._unit_worker = {}  # unit index -> executing worker id
        self._unit_durations = []

    def consume(self, events):
        """Fold a batch of events into the running accounting."""
        for event in events:
            self._consume_one(event)

    def _consume_one(self, event):
        ev = event.get("ev")
        t = event.get("t")
        if t is not None:
            if self.t_first is None:
                self.t_first = t
            self.t_last = t
        if ev == "stream.open":
            self.run_id = event.get("run_id")
        elif ev == "stream.close":
            self.closed = True
        elif ev == "campaign.begin":
            self.total_trials += event.get("trials", 0)
        elif ev == "unit.submit":
            self._inflight[event.get("unit")] = t
        elif ev == "unit.claim":
            self._attribute(event.get("unit"), event.get("worker"), t)
        elif ev == "unit.finish":
            unit = event.get("unit")
            started = self._inflight.pop(unit, None)
            if started is not None and t is not None:
                self._unit_durations.append(t - started)
            self._attribute(unit, event.get("worker"), t, finished=True)
            self._unit_worker.pop(unit, None)
            self.done_trials += event.get("trials", 0)
            self.executed_trials += event.get("trials", 0)
        elif ev == "cache.hit":
            self.cache_hits += 1
            self.done_trials += event.get("trials", 0)
            self.cached_trials += event.get("trials", 0)
        elif ev == "cache.miss":
            self.cache_misses += 1
        elif ev == "unit.retry":
            self.retries += 1
        elif ev == "unit.timeout":
            self.timeouts += 1
        elif ev == "worker.respawn":
            self.respawns += 1
        elif ev == "worker.heartbeat":
            self._attribute(event.get("unit"), event.get("worker"), t)
        elif ev == "fi.trials":
            for item in event.get("items", ()):
                label = item[3] if len(item) > 3 else "?"
                self.histogram[label] = self.histogram.get(label, 0) + 1

    def _attribute(self, unit, worker, t, finished=False):
        """Record which worker touched which unit (straggler naming)."""
        if worker is None:
            return
        info = self.workers.setdefault(worker, {"last_t": t, "units_done": 0})
        if t is not None:
            info["last_t"] = t
        if finished:
            info["units_done"] += 1
        elif unit is not None:
            self._unit_worker[unit] = worker

    @property
    def elapsed_s(self):
        if self.t_first is None or self.t_last is None:
            return 0.0
        return max(self.t_last - self.t_first, 0.0)

    def progress_event(self):
        """The stream's accounting as a runner :class:`ProgressEvent`."""
        elapsed = self.elapsed_s
        rate = self.executed_trials / elapsed if elapsed > 0 else 0.0
        return ProgressEvent(
            done=self.done_trials,
            total=max(self.total_trials, self.done_trials),
            cached=self.cached_trials,
            elapsed_s=elapsed,
            trials_per_sec=rate,
            histogram=dict(self.histogram),
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            retries=self.retries,
            pool_respawns=self.respawns,
            workers={w: dict(info) for w, info in self.workers.items()},
        )

    def stragglers(self, now=None):
        """Unit indices in flight > STRAGGLER_FACTOR x the finished median."""
        if not self._inflight or not self._unit_durations:
            return []
        now = self.t_last if now is None else now
        ordered = sorted(self._unit_durations)
        median = ordered[len(ordered) // 2]
        limit = max(median * STRAGGLER_FACTOR, 1e-3)
        return sorted(
            unit for unit, started in self._inflight.items()
            if started is not None and now - started > limit
        )

    def straggler_label(self, unit):
        """``"<unit>@<worker>"`` when the executing worker is known."""
        worker = self._unit_worker.get(unit)
        return f"{unit}@{worker}" if worker is not None else str(unit)

    def status_line(self, now=None):
        """One human-readable status line for the current state."""
        event = self.progress_event()
        parts = [f"[{event.done}/{event.total}]"]
        if event.executed > 0:
            parts.append(f"{event.trials_per_sec:.1f} trials/s")
            if event.done < event.total and event.eta_s is not None:
                parts.append(f"eta {_format_eta(event.eta_s)}")
        elif event.cached:
            parts.append("all from cache")
        if event.cached:
            parts.append(f"{event.cached} cached")
        if event.retries:
            parts.append(f"{event.retries} retries")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeouts")
        if event.pool_respawns:
            parts.append(f"{event.pool_respawns} respawns")
        if len(self.workers) > 1:
            parts.append(f"{len(self.workers)} workers")
        stragglers = self.stragglers(now)
        if stragglers:
            shown = ",".join(self.straggler_label(u) for u in stragglers[:4])
            parts.append(f"stragglers: unit {shown}")
        line = " ".join(parts)
        hist = " ".join(f"{k}={v}" for k, v in sorted(self.histogram.items()))
        if hist:
            line += f" | {hist}"
        if self.closed:
            line += " | run finished"
        return line


def watch(events_path, follow=True, poll_s=0.5, stream=None, max_polls=None):
    """Tail ``events_path`` and print a live status line per update.

    Stops when the recorder closes the stream (``stream.close``), on
    ``--once`` semantics (``follow=False``: read what exists, print one
    line), after ``max_polls`` polls (tests), or on Ctrl-C.  Returns
    the final :class:`WatchState`.
    """
    stream = stream if stream is not None else sys.stderr
    tail = EventTail(events_path)
    state = WatchState()
    polls = 0
    try:
        while True:
            events = tail.poll()
            if events:
                state.consume(events)
                print(state.status_line(now=time.time()), file=stream)
            polls += 1
            if state.closed or not follow:
                break
            if max_polls is not None and polls >= max_polls:
                break
            time.sleep(poll_s)
    except KeyboardInterrupt:
        pass
    return state
