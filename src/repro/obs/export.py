"""Standard-format exporters for run records: Chrome trace + Prometheus.

Two industry formats, so a recorded campaign drops into existing
tooling instead of demanding bespoke viewers:

:func:`chrome_trace`
    Chrome trace-event JSON (the format Perfetto / ``chrome://tracing``
    load).  The span tree is *aggregated* — one node per span name with
    a call count and a wall-time total, no per-call timestamps — so the
    exporter synthesizes a serialized timeline: every node becomes one
    complete (``"ph": "X"``) slice whose duration is its aggregated
    total, children laid out back-to-back inside their parent.  Because
    worker subtrees are re-parented sums, a parent is widened to contain
    its children when their totals exceed its own wall time (parallel
    work rendered serially); the slice ``args`` carry the honest
    numbers.  Flight-recorder events ride along as instant
    (``"ph": "i"``) events on a second track with *real* relative
    timestamps.

:func:`prometheus_text`
    Prometheus text exposition format (one scrape's worth): counters as
    ``*_total``, gauges verbatim, histograms as summaries with
    ``quantile`` labels from the bounded reservoir, plus a ``run_info``
    gauge carrying the run id / experiment / version labels.  Feed it to
    ``promtool``, node-exporter's textfile collector, or a pushgateway.

Both are pure functions of a loaded run record (plus, optionally, the
event list), wired to ``python -m repro report <run> --trace-out /
--prom-out`` and validated in CI by ``scripts/check_obs_exports.py``.
"""

from __future__ import annotations

import json
import re

from repro.obs.metrics import QUANTILES

#: Synthetic pid/tid layout of the Chrome trace: aggregated span slices
#: on one track, flight-recorder instants on another.
SPAN_PID, EVENT_PID = 1, 2

_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def _effective_s(node):
    """Slice duration: a node's total, widened to contain its children.

    Re-parented worker subtrees sum wall time across processes, so a
    ``runtime.campaign`` of 1 s can hold 4 s of per-worker chunk spans;
    a timeline slice must still nest them.
    """
    child_sum = sum(_effective_s(c) for c in node.get("children", ()))
    return max(node.get("total_s", 0.0), child_sum)


def _span_slices(node, start_s, out):
    out.append({
        "name": node.get("name", "?"),
        "ph": "X",
        "ts": round(start_s * 1e6, 3),
        "dur": round(_effective_s(node) * 1e6, 3),
        "pid": SPAN_PID,
        "tid": 1,
        "cat": "span",
        "args": {
            "count": node.get("count", 0),
            "total_s": node.get("total_s", 0.0),
            **(node.get("attrs") or {}),
        },
    })
    cursor = start_s
    for child in node.get("children", ()):
        _span_slices(child, cursor, out)
        cursor += _effective_s(child)


def chrome_trace(record, events=None):
    """Build a Chrome trace-event document from a loaded run record.

    ``events`` (an iterable of flight-recorder events, e.g. from
    :func:`repro.obs.events.read_events`) is optional; when given, each
    event becomes an instant on its own track, timed relative to the
    first event.  Returns a JSON-ready dict — ``json.dump`` it into a
    file Perfetto can open directly.
    """
    meta = record.get("meta", {})
    run_id = meta.get("run_id", "?")
    trace_events = [
        {"name": "process_name", "ph": "M", "pid": SPAN_PID, "tid": 1,
         "args": {"name": f"spans (aggregated): {run_id}"}},
        {"name": "thread_name", "ph": "M", "pid": SPAN_PID, "tid": 1,
         "args": {"name": "serialized span tree"}},
    ]
    root = record.get("spans", {}).get("root")
    if root:
        # The synthetic "run" root carries no time of its own; lay its
        # children out back-to-back from t=0.
        cursor = 0.0
        for child in root.get("children", ()):
            _span_slices(child, cursor, trace_events)
            cursor += _effective_s(child)
    events = list(events or ())
    if events:
        trace_events.append(
            {"name": "process_name", "ph": "M", "pid": EVENT_PID, "tid": 1,
             "args": {"name": f"flight recorder: {run_id}"}}
        )
        t0 = events[0].get("t", 0.0)
        for event in events:
            trace_events.append({
                "name": event.get("ev", "?"),
                "ph": "i",
                "s": "t",
                "ts": round((event.get("t", t0) - t0) * 1e6, 3),
                "pid": EVENT_PID,
                "tid": 1,
                "cat": "event",
                "args": {
                    k: v for k, v in event.items()
                    if k not in ("ev", "t") and not isinstance(v, (list, dict))
                },
            })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "run_id": run_id,
            "experiment": meta.get("name", "?"),
            "elapsed_s": meta.get("elapsed_s", 0.0),
        },
    }


def write_chrome_trace(record, path, events=None):
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(record, events=events), fh)
        fh.write("\n")
    return path


# -- Prometheus ----------------------------------------------------------
def _metric_name(name, suffix=""):
    """``layer.component.metric`` -> ``repro_layer_component_metric``."""
    return "repro_" + _METRIC_CHARS.sub("_", name) + suffix


def _escape_label(value):
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _format_value(value):
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(float(value)) if isinstance(value, float) else str(value)
    return "NaN"  # non-numeric gauge: exposed as present-but-unknown


def prometheus_text(record):
    """Render a run record's metrics in Prometheus text format.

    One scrape's worth of samples: every counter (``*_total``), gauge,
    and histogram summary in the record's metrics snapshot, plus
    ``repro_run_info`` / ``repro_run_elapsed_seconds`` derived from the
    meta line.  Passes ``scripts/check_obs_exports.py``'s line grammar
    (a subset of the official exposition format).
    """
    meta = record.get("meta", {})
    metrics = record.get("metrics", {})
    lines = [
        "# HELP repro_run_info Run identity (value is always 1).",
        "# TYPE repro_run_info gauge",
        'repro_run_info{{run_id="{}",experiment="{}",version="{}"}} 1'.format(
            _escape_label(meta.get("run_id", "?")),
            _escape_label(meta.get("name", "?")),
            _escape_label(meta.get("version", "?")),
        ),
        "# HELP repro_run_elapsed_seconds Recorded wall time of the run.",
        "# TYPE repro_run_elapsed_seconds gauge",
        f"repro_run_elapsed_seconds {_format_value(meta.get('elapsed_s', 0.0))}",
    ]
    for name, value in sorted(metrics.get("counters", {}).items()):
        base = _metric_name(name, "_total")
        lines.append(f"# HELP {base} Counter {name} from the run record.")
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{base} {_format_value(value)}")
    for name, value in sorted(metrics.get("gauges", {}).items()):
        base = _metric_name(name)
        lines.append(f"# HELP {base} Gauge {name} from the run record.")
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base} {_format_value(value)}")
    for name, stat in sorted(metrics.get("histograms", {}).items()):
        base = _metric_name(name)
        lines.append(f"# HELP {base} Histogram {name} from the run record.")
        lines.append(f"# TYPE {base} summary")
        for label, q in QUANTILES:
            if stat.get(label) is not None:
                lines.append(
                    f'{base}{{quantile="{q}"}} {_format_value(stat[label])}'
                )
        lines.append(f"{base}_sum {_format_value(stat.get('total', 0.0))}")
        lines.append(f"{base}_count {_format_value(stat.get('count', 0))}")
    return "\n".join(lines) + "\n"


def write_prometheus_text(record, path):
    """Serialize :func:`prometheus_text` to ``path``; returns the path."""
    with open(path, "w") as fh:
        fh.write(prometheus_text(record))
    return path
