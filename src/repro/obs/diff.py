"""Run-record diff analytics: what changed between run A and run B.

The "compare two corners" shape from the roadmap, applied to recorded
runs: load two run records and render where they diverge —

* **outcome histograms**, with a chi-square-style homogeneity flag so a
  shifted outcome mix (e.g. a new FI engine changing the SDC rate) is
  called out instead of eyeballed;
* **metrics** (counter deltas, largest relative movers first);
* **per-layer time breakdown** deltas (where the wall time moved);
* **config** differences (what was actually run differently).

Backed by plain dict math over :func:`repro.obs.load_run_record`
output; rendered by :func:`render_diff` for ``python -m repro report
--diff A B``.
"""

from __future__ import annotations

from repro.obs.report import _table, layer_breakdown

#: Upper-tail chi-square critical values at alpha = 0.05, by degrees of
#: freedom.  Hard-coded so the flag needs no scipy at report time; df
#: beyond the table falls back to the Wilson-Hilferty approximation.
CHI2_CRIT_05 = {
    1: 3.841, 2: 5.991, 3: 7.815, 4: 9.488, 5: 11.070,
    6: 12.592, 7: 14.067, 8: 15.507, 9: 16.919, 10: 18.307,
}


def chi2_critical(df, alpha=0.05):
    """Approximate chi-square critical value at ``alpha`` (upper tail)."""
    if df in CHI2_CRIT_05 and alpha == 0.05:
        return CHI2_CRIT_05[df]
    # Wilson-Hilferty: chi2_q(df) ~ df * (1 - 2/(9 df) + z_q sqrt(2/(9 df)))^3
    z = 1.645 if alpha == 0.05 else 2.326  # 95% / 99% normal quantiles
    h = 2.0 / (9.0 * df)
    return df * (1.0 - h + z * (h ** 0.5)) ** 3


def outcome_chi2(hist_a, hist_b):
    """Chi-square homogeneity statistic over two outcome histograms.

    Treats the two runs as rows of a 2xK contingency table (K = union of
    outcome labels) and returns ``(statistic, df, critical, flagged)``
    where ``flagged`` means the outcome mixes differ at the 5% level.
    Degenerate tables (an empty run, a single shared label) return a
    zero statistic and no flag.
    """
    labels = sorted(set(hist_a) | set(hist_b))
    n_a = sum(hist_a.values())
    n_b = sum(hist_b.values())
    total = n_a + n_b
    df = max(len(labels) - 1, 0)
    if not n_a or not n_b or df == 0:
        return 0.0, df, 0.0, False
    stat = 0.0
    for label in labels:
        pooled = (hist_a.get(label, 0) + hist_b.get(label, 0)) / total
        for hist, n in ((hist_a, n_a), (hist_b, n_b)):
            expected = n * pooled
            if expected > 0:
                stat += (hist.get(label, 0) - expected) ** 2 / expected
    critical = chi2_critical(df)
    return stat, df, critical, stat > critical


def _config_diff(config_a, config_b):
    """Flat config comparison: changed / only-in-A / only-in-B keys."""
    changed = {}
    for key in sorted(set(config_a) | set(config_b)):
        in_a, in_b = key in config_a, key in config_b
        if in_a and in_b:
            if config_a[key] != config_b[key]:
                changed[key] = (config_a[key], config_b[key])
        elif in_a:
            changed[key] = (config_a[key], "<absent>")
        else:
            changed[key] = ("<absent>", config_b[key])
    return changed


def diff_records(record_a, record_b):
    """Structured comparison of two loaded run records.

    Returns a dict with ``runs`` (identity of both sides), ``outcomes``
    (per-label counts/rates/deltas + the chi-square flag), ``counters``
    (value deltas over the union of counter names), ``layers``
    (per-layer exclusive-time deltas), and ``config`` (changed keys).
    """
    meta_a = record_a.get("meta", {})
    meta_b = record_b.get("meta", {})
    hist_a = record_a.get("outcomes", {}).get("histogram", {})
    hist_b = record_b.get("outcomes", {}).get("histogram", {})
    n_a = sum(hist_a.values()) or 1
    n_b = sum(hist_b.values()) or 1
    stat, df, critical, flagged = outcome_chi2(hist_a, hist_b)
    outcomes = {
        label: {
            "count_a": hist_a.get(label, 0),
            "count_b": hist_b.get(label, 0),
            "rate_a": hist_a.get(label, 0) / n_a,
            "rate_b": hist_b.get(label, 0) / n_b,
            "rate_delta": hist_b.get(label, 0) / n_b - hist_a.get(label, 0) / n_a,
        }
        for label in sorted(set(hist_a) | set(hist_b))
    }
    counters_a = record_a.get("metrics", {}).get("counters", {})
    counters_b = record_b.get("metrics", {}).get("counters", {})
    counters = {
        name: {
            "a": counters_a.get(name, 0),
            "b": counters_b.get(name, 0),
            "delta": counters_b.get(name, 0) - counters_a.get(name, 0),
        }
        for name in sorted(set(counters_a) | set(counters_b))
        if counters_a.get(name, 0) != counters_b.get(name, 0)
    }
    layers_a = layer_breakdown(
        record_a.get("spans", {}).get("root", {"name": "run", "children": []})
    )
    layers_b = layer_breakdown(
        record_b.get("spans", {}).get("root", {"name": "run", "children": []})
    )
    layers = {
        layer: {
            "self_s_a": layers_a.get(layer, {}).get("self_s", 0.0),
            "self_s_b": layers_b.get(layer, {}).get("self_s", 0.0),
            "delta_s": (layers_b.get(layer, {}).get("self_s", 0.0)
                        - layers_a.get(layer, {}).get("self_s", 0.0)),
        }
        for layer in sorted(set(layers_a) | set(layers_b))
    }
    return {
        "runs": {
            "a": {"run_id": meta_a.get("run_id", "?"),
                  "name": meta_a.get("name", "?"),
                  "elapsed_s": meta_a.get("elapsed_s", 0.0),
                  "trials": sum(hist_a.values())},
            "b": {"run_id": meta_b.get("run_id", "?"),
                  "name": meta_b.get("name", "?"),
                  "elapsed_s": meta_b.get("elapsed_s", 0.0),
                  "trials": sum(hist_b.values())},
        },
        "outcomes": outcomes,
        "outcome_chi2": {
            "statistic": stat, "df": df, "critical_05": critical,
            "flagged": flagged,
        },
        "counters": counters,
        "layers": layers,
        "config": _config_diff(meta_a.get("config", {}),
                               meta_b.get("config", {})),
    }


def render_diff(diff):
    """Multi-section text rendering of a :func:`diff_records` result."""
    runs = diff["runs"]
    lines = [
        f"== run diff: {runs['a']['run_id']} (A) vs {runs['b']['run_id']} (B) =="
    ]
    lines += _table(
        ("side", "experiment", "trials", "elapsed"),
        [
            ("A", runs["a"]["name"], runs["a"]["trials"],
             f"{runs['a']['elapsed_s']:.2f} s"),
            ("B", runs["b"]["name"], runs["b"]["trials"],
             f"{runs['b']['elapsed_s']:.2f} s"),
        ],
    )

    if diff["outcomes"]:
        lines += ["", "== outcome deltas =="]
        lines += _table(
            ("outcome", "A", "B", "rate A", "rate B", "delta"),
            [
                (label, o["count_a"], o["count_b"], f"{o['rate_a']:.3f}",
                 f"{o['rate_b']:.3f}", f"{o['rate_delta']:+.3f}")
                for label, o in diff["outcomes"].items()
            ],
        )
        chi2 = diff["outcome_chi2"]
        verdict = (
            "DIFFERENT outcome mixes" if chi2["flagged"]
            else "no significant outcome shift"
        )
        lines.append(
            f"chi-square {chi2['statistic']:.2f} (df={chi2['df']}, "
            f"5% critical {chi2['critical_05']:.2f}): {verdict}"
        )

    if diff["layers"]:
        lines += ["", "== per-layer time deltas =="]
        lines += _table(
            ("layer", "A self (s)", "B self (s)", "delta (s)"),
            [
                (layer, f"{e['self_s_a']:.3f}", f"{e['self_s_b']:.3f}",
                 f"{e['delta_s']:+.3f}")
                for layer, e in sorted(
                    diff["layers"].items(),
                    key=lambda kv: -abs(kv[1]["delta_s"]),
                )
            ],
        )

    if diff["counters"]:
        lines += ["", "== counter deltas (changed only) =="]
        lines += _table(
            ("counter", "A", "B", "delta"),
            [
                (name, c["a"], c["b"], f"{c['delta']:+}")
                for name, c in sorted(
                    diff["counters"].items(),
                    key=lambda kv: -abs(kv[1]["delta"]),
                )
            ],
        )

    lines += ["", "== config diff =="]
    if diff["config"]:
        lines += _table(
            ("key", "A", "B"),
            [(key, a, b) for key, (a, b) in diff["config"].items()],
        )
    else:
        lines.append("(identical configs)")
    return "\n".join(lines) + "\n"
