"""HDC wafer-map defect-pattern classification (Sec. II, ref [17]).

Semiconductor fabs classify wafer-map defect patterns (center blobs,
edge rings, scratches, donuts, random sprinkle) to localize process
excursions.  Ref [17] showed brain-inspired hyperdimensional computing
handles this robustly.  This module provides a synthetic wafer-map
generator with the canonical pattern classes and a spatial HDC encoder:
each defective die binds an (x, y) position hypervector pair, and the
map is their superposition.
"""

from __future__ import annotations

import numpy as np

from repro.hdc.encoder import LevelEncoder
from repro.hdc.hypervector import bind, cosine_similarity

PATTERN_CLASSES = ("none", "center", "edge_ring", "scratch", "donut", "random")


class WaferMapGenerator:
    """Synthetic wafer maps with canonical defect patterns.

    Maps are ``side x side`` binary arrays masked to the wafer disc; a
    base random yield loss is sprinkled everywhere, and each class adds
    its structured signature.
    """

    def __init__(self, side=20, base_defect_rate=0.02, seed=0):
        if side < 8:
            raise ValueError("side must be at least 8")
        self.side = side
        self.base_defect_rate = base_defect_rate
        self.rng = np.random.default_rng(seed)
        center = (side - 1) / 2.0
        yy, xx = np.mgrid[0:side, 0:side]
        self._radius = np.sqrt((xx - center) ** 2 + (yy - center) ** 2)
        self.disc_mask = self._radius <= side / 2.0

    def generate(self, pattern):
        """One wafer map of the given pattern class."""
        if pattern not in PATTERN_CLASSES:
            raise ValueError(f"unknown pattern {pattern!r}")
        side = self.side
        wafer = self.rng.random((side, side)) < self.base_defect_rate
        r_max = side / 2.0
        if pattern == "center":
            wafer |= (self._radius < 0.3 * r_max) & (
                self.rng.random((side, side)) < 0.8
            )
        elif pattern == "edge_ring":
            ring = (self._radius > 0.8 * r_max) & (self._radius <= r_max)
            wafer |= ring & (self.rng.random((side, side)) < 0.7)
        elif pattern == "scratch":
            # A random chord across the wafer.
            angle = self.rng.uniform(0, np.pi)
            offset = self.rng.uniform(-0.4, 0.4) * r_max
            center = (side - 1) / 2.0
            yy, xx = np.mgrid[0:side, 0:side]
            dist = np.abs(
                (xx - center) * np.sin(angle) - (yy - center) * np.cos(angle) - offset
            )
            wafer |= (dist < 1.0) & (self.rng.random((side, side)) < 0.85)
        elif pattern == "donut":
            band = (self._radius > 0.4 * r_max) & (self._radius < 0.65 * r_max)
            wafer |= band & (self.rng.random((side, side)) < 0.7)
        elif pattern == "random":
            wafer |= self.rng.random((side, side)) < 0.18
        wafer &= self.disc_mask
        return wafer

    def dataset(self, n_per_class=40, classes=PATTERN_CLASSES):
        """(maps, labels) with ``n_per_class`` samples per pattern class."""
        maps = []
        labels = []
        for label, pattern in enumerate(classes):
            for _ in range(n_per_class):
                maps.append(self.generate(pattern))
                labels.append(label)
        return np.asarray(maps), np.asarray(labels)


class WaferHDCEncoder:
    """Spatial hypervector encoder: bundle of bound (x, y) position HVs.

    Nearby dies get correlated position encodings (level encoders along
    each axis), so spatially coherent patterns (rings, blobs, scratches)
    produce class-distinctive hypervectors.  A bound *density* term keeps
    defect counts distinguishable after cosine normalization (separating
    e.g. sparse "none" maps from dense "random" ones).
    """

    def __init__(self, side=20, dim=4096, n_levels=None, seed=0):
        self.side = side
        self.dim = dim
        n_levels = n_levels or side
        self._x_enc = LevelEncoder(0, side - 1, n_levels=n_levels, dim=dim, seed=seed)
        self._y_enc = LevelEncoder(
            0, side - 1, n_levels=n_levels, dim=dim, seed=seed + 1
        )
        self._density_enc = LevelEncoder(0.0, 0.35, n_levels=16, dim=dim, seed=seed + 2)

    def encode(self, wafer):
        """Normalized superposition hypervector of one wafer map."""
        wafer = np.asarray(wafer, dtype=bool)
        if wafer.shape != (self.side, self.side):
            raise ValueError(f"expected {(self.side, self.side)} map")
        total = np.zeros(self.dim, dtype=np.float64)
        ys, xs = np.nonzero(wafer)
        for y, x in zip(ys, xs):
            total += bind(self._x_enc.encode(float(x)), self._y_enc.encode(float(y)))
        n_defects = max(len(xs), 1)
        total /= n_defects  # shape vector: where the defects are
        density = len(xs) / (self.side * self.side)
        total += self._density_enc.encode(density)  # how many there are
        return total


class WaferHDCClassifier:
    """Prototype classifier over spatially-encoded wafer maps with
    perceptron-style retraining (the standard HDC accuracy refinement)."""

    def __init__(self, side=20, dim=4096, retrain_epochs=3, seed=0):
        self.encoder = WaferHDCEncoder(side=side, dim=dim, seed=seed)
        self.retrain_epochs = retrain_epochs
        self.classes_ = None
        self.prototypes_ = None

    def fit(self, maps, labels):
        labels = np.asarray(labels)
        self.classes_ = np.unique(labels)
        encoded = [self.encoder.encode(w) for w in maps]
        self.prototypes_ = np.zeros((len(self.classes_), self.encoder.dim))
        counts = np.zeros(len(self.classes_))
        class_index = {c: i for i, c in enumerate(self.classes_)}
        for hv, label in zip(encoded, labels):
            idx = class_index[label]
            self.prototypes_[idx] += hv
            counts[idx] += 1
        if np.any(counts == 0):
            raise ValueError("every class needs at least one training map")
        for _ in range(self.retrain_epochs):
            changed = 0
            for hv, label in zip(encoded, labels):
                sims = [cosine_similarity(hv, p) for p in self.prototypes_]
                pred = self.classes_[int(np.argmax(sims))]
                if pred != label:
                    self.prototypes_[class_index[label]] += hv
                    self.prototypes_[class_index[pred]] -= hv
                    changed += 1
            if changed == 0:
                break
        return self

    def predict(self, maps, error_rate=0.0, rng=None):
        """Predict classes; optionally flip encoded-component signs."""
        if self.prototypes_ is None:
            raise RuntimeError("classifier is not fitted")
        rng = rng or np.random.default_rng(0)
        out = []
        for wafer in maps:
            hv = self.encoder.encode(wafer).astype(float)
            if error_rate > 0.0:
                flips = rng.random(hv.shape) < error_rate
                hv[flips] = -hv[flips]
            sims = [cosine_similarity(hv, p) for p in self.prototypes_]
            out.append(self.classes_[int(np.argmax(sims))])
        return np.asarray(out)
