"""HDC language identification with n-gram hypervectors (Sec. II, ref [13]).

The classic HDC demonstration: encode text as bundled character-trigram
hypervectors and classify the language by prototype similarity.  Without
bundled corpora, :func:`synthetic_language` builds Markov text sources
with language-specific character statistics — what trigram profiles
actually capture — so the study exercises the same pipeline as [13].
"""

from __future__ import annotations

import numpy as np

from repro.hdc.encoder import NGramEncoder
from repro.hdc.hypervector import cosine_similarity, flip_components

ALPHABET = "abcdefghijklmnopqrstuvwxyz "


def synthetic_language(seed, sharpness=6.0):
    """A Markov character source with its own transition structure.

    ``sharpness`` controls how peaked the per-language transition rows
    are (real languages have strongly preferred digraphs).
    """
    rng = np.random.default_rng(seed)
    n = len(ALPHABET)
    logits = rng.normal(0.0, 1.0, (n, n)) * sharpness
    rows = np.exp(logits - logits.max(axis=1, keepdims=True))
    rows /= rows.sum(axis=1, keepdims=True)
    initial = np.full(n, 1.0 / n)
    return {"transitions": rows, "initial": initial}


def sample_text(language, length, rng):
    """Sample a text string from a synthetic language model."""
    n = len(ALPHABET)
    out = [int(rng.choice(n, p=language["initial"]))]
    for _ in range(length - 1):
        out.append(int(rng.choice(n, p=language["transitions"][out[-1]])))
    return "".join(ALPHABET[i] for i in out)


class LanguageHDCClassifier:
    """Trigram-hypervector language identifier.

    Prototypes are integer superpositions of training-text encodings;
    inference compares a query text's encoding by cosine similarity.
    """

    def __init__(self, n=3, dim=4096, seed=0):
        self.encoder = NGramEncoder(n=n, dim=dim, seed=seed)
        self.dim = dim
        self.classes_ = None
        self.prototypes_ = None

    def fit(self, texts, labels):
        labels = np.asarray(labels)
        if len(texts) != len(labels):
            raise ValueError("texts and labels length mismatch")
        self.classes_ = np.unique(labels)
        self.prototypes_ = np.zeros((len(self.classes_), self.dim))
        index = {c: i for i, c in enumerate(self.classes_)}
        for text, label in zip(texts, labels):
            self.prototypes_[index[label]] += self.encoder.encode(text)
        return self

    def predict(self, texts, error_rate=0.0, rng=None):
        """Classify texts; optionally under component errors."""
        if self.prototypes_ is None:
            raise RuntimeError("classifier is not fitted")
        rng = rng or np.random.default_rng(0)
        out = []
        for text in texts:
            hv = self.encoder.encode(text)
            if error_rate > 0.0:
                hv = flip_components(hv, error_rate, rng)
            sims = [cosine_similarity(hv, p) for p in self.prototypes_]
            out.append(self.classes_[int(np.argmax(sims))])
        return np.asarray(out)


def language_identification_study(
    n_languages=5,
    n_train=20,
    n_test=15,
    text_length=200,
    dim=4096,
    seed=0,
):
    """Train/test the identifier on synthetic languages.

    Returns (classifier, test_texts, test_labels, accuracy).
    """
    rng = np.random.default_rng(seed)
    languages = [synthetic_language(seed + 100 + k) for k in range(n_languages)]
    train_texts, train_labels = [], []
    test_texts, test_labels = [], []
    for k, lang in enumerate(languages):
        for _ in range(n_train):
            train_texts.append(sample_text(lang, text_length, rng))
            train_labels.append(k)
        for _ in range(n_test):
            test_texts.append(sample_text(lang, text_length, rng))
            test_labels.append(k)
    clf = LanguageHDCClassifier(dim=dim, seed=seed).fit(train_texts, train_labels)
    pred = clf.predict(test_texts)
    accuracy = float(np.mean(pred == np.asarray(test_labels)))
    return clf, test_texts, np.asarray(test_labels), accuracy
