"""Associative HDC classifier with hardware-error robustness evaluation."""

from __future__ import annotations

import numpy as np

from repro.hdc.encoder import RecordEncoder
from repro.hdc.hypervector import cosine_similarity, flip_components


class HDCClassifier:
    """Prototype-based hyperdimensional classifier.

    Training bundles the encoded samples of each class into an integer
    class prototype (accumulator); prediction returns the class whose
    prototype is most similar to the encoded query.  Optional
    perceptron-style retraining passes subtract mispredicted samples from
    the wrong prototype and add them to the right one, which is the
    standard accuracy refinement in the HDC literature.

    Parameters
    ----------
    dim:
        Hypervector dimensionality (thousands of components).
    n_levels:
        Quantization levels of the per-feature level encoder.
    retrain_epochs:
        Perceptron-style refinement passes over the training set.
    """

    def __init__(self, dim=4096, n_levels=32, retrain_epochs=3, seed=0):
        self.dim = dim
        self.n_levels = n_levels
        self.retrain_epochs = retrain_epochs
        self.seed = seed
        self.encoder_ = None
        self.classes_ = None
        self.prototypes_ = None  # integer accumulators, one row per class

    def fit(self, X, y):
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        low = X.min(axis=0)
        high = X.max(axis=0)
        # Guard degenerate constant features
        span = high - low
        high = np.where(span == 0, low + 1.0, high)
        self.encoder_ = RecordEncoder(
            n_features=X.shape[1],
            low=low,
            high=high,
            n_levels=self.n_levels,
            dim=self.dim,
            seed=self.seed,
        )
        encoded = self.encoder_.encode_batch(X).astype(np.int32)
        class_index = {c: i for i, c in enumerate(self.classes_)}
        self.prototypes_ = np.zeros((len(self.classes_), self.dim), dtype=np.int32)
        for hv, label in zip(encoded, y):
            self.prototypes_[class_index[label]] += hv
        for _ in range(self.retrain_epochs):
            changed = 0
            for hv, label in zip(encoded, y):
                pred = self._predict_encoded(hv)
                if pred != label:
                    self.prototypes_[class_index[label]] += hv
                    self.prototypes_[class_index[pred]] -= hv
                    changed += 1
            if changed == 0:
                break
        return self

    def _similarities(self, hv, prototypes=None):
        if prototypes is None:
            prototypes = self.prototypes_
        return np.array([cosine_similarity(hv, p) for p in prototypes])

    def _predict_encoded(self, hv, prototypes=None):
        sims = self._similarities(hv, prototypes)
        return self.classes_[int(np.argmax(sims))]

    def predict(self, X, error_rate=0.0, rng=None, corrupt_prototypes=False):
        """Predict labels, optionally under injected hardware errors.

        ``error_rate`` flips each component of the encoded *query*
        hypervector independently — the unreliable-hardware model of
        Sec. II, where a fraction of HDC operations produce a wrong
        component but the thousands of remaining i.i.d. components carry
        the classification.  With ``corrupt_prototypes=True`` the stored
        class prototypes are additionally bipolarized and flipped at the
        same rate (a strictly harsher memory-error model).
        """
        if self.prototypes_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if rng is None:
            rng = np.random.default_rng(self.seed + 99)
        out = []
        for row in X:
            hv = self.encoder_.encode(row)
            prototypes = self.prototypes_
            if error_rate > 0.0:
                hv = flip_components(hv, error_rate, rng)
                if corrupt_prototypes:
                    noisy = []
                    for p in prototypes:
                        bip = np.sign(p).astype(np.int8)
                        bip[bip == 0] = 1
                        noisy.append(flip_components(bip, error_rate, rng))
                    prototypes = np.stack(noisy)
            out.append(self._predict_encoded(hv, prototypes))
        return np.array(out)

    def accuracy_under_errors(self, X, y, error_rates, n_repeats=3, seed=123):
        """Mean accuracy at each error rate (the Sec. II robustness sweep)."""
        y = np.asarray(y)
        results = []
        for er in error_rates:
            accs = []
            for r in range(n_repeats):
                rng = np.random.default_rng(seed + r)
                pred = self.predict(X, error_rate=er, rng=rng)
                accs.append(float(np.mean(pred == y)))
            results.append(float(np.mean(accs)))
        return np.array(results)
