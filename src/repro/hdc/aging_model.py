"""HDC mimicry of a confidential physics-based transistor aging model.

Reproduces the approach of ref [18] (Sec. II): the foundry trains an HDC
model on (gate-voltage waveform -> delta-Vth) pairs produced by its
confidential physics model.  Because the learned model consists only of
high-dimensional prototypes, it abstracts away the proprietary physics
parameters while giving designers a non-pessimistic aging estimate.

The regression is realized as similarity-weighted interpolation over
quantized delta-Vth "bucket" prototypes: waveforms are encoded as n-gram
hypervectors of their quantized voltage levels, each target bucket bundles
its training waveforms, and prediction blends bucket centers by softmax of
prototype similarity.
"""

from __future__ import annotations

import numpy as np

from repro.hdc.encoder import LevelEncoder
from repro.hdc.hypervector import (
    bind,
    bundle,
    cosine_similarity,
    permute,
    random_hypervector,
)


class HDCAgingModel:
    """Waveform-to-aging regression with hypervector prototypes.

    Parameters
    ----------
    dim:
        Hypervector dimensionality.
    n_voltage_levels:
        Quantization levels for waveform samples.
    n_buckets:
        Number of delta-Vth quantization buckets (regression resolution).
    ngram:
        Temporal n-gram length used when encoding waveforms.
    temperature:
        Softmax temperature of the similarity blend; smaller is sharper.
    """

    def __init__(
        self,
        dim=4096,
        n_voltage_levels=16,
        n_buckets=24,
        ngram=3,
        temperature=0.05,
        seed=0,
    ):
        self.dim = dim
        self.n_voltage_levels = n_voltage_levels
        self.n_buckets = n_buckets
        self.ngram = ngram
        self.temperature = temperature
        self.seed = seed
        self._level_encoder = None
        self._bucket_centers = None
        self._prototypes = None
        self._tie_break = random_hypervector(dim, np.random.default_rng(seed + 7))

    def _encode_waveform(self, waveform):
        """n-gram hypervector of a quantized voltage waveform."""
        levels = [self._level_encoder.encode(v) for v in waveform]
        if len(levels) < self.ngram:
            raise ValueError("waveform shorter than the n-gram length")
        total = np.zeros(self.dim, dtype=np.int32)
        for start in range(len(levels) - self.ngram + 1):
            hv = permute(levels[start], self.ngram - 1)
            for off in range(1, self.ngram):
                hv = bind(hv, permute(levels[start + off], self.ngram - 1 - off))
            total += hv
        # Integer superposition (no majority binarization): the *frequency*
        # of each n-gram carries the duty-cycle information the aging label
        # depends on, and cosine similarity preserves it.
        return total

    def fit(self, waveforms, delta_vth):
        """Train on waveforms (list of 1-D arrays) and aging labels."""
        delta_vth = np.asarray(delta_vth, dtype=float)
        if len(waveforms) != len(delta_vth):
            raise ValueError("waveforms and labels length mismatch")
        if len(waveforms) == 0:
            raise ValueError("need at least one training waveform")
        v_all = np.concatenate([np.asarray(w, dtype=float) for w in waveforms])
        v_low, v_high = float(v_all.min()), float(v_all.max())
        if v_high == v_low:
            v_high = v_low + 1.0
        self._level_encoder = LevelEncoder(
            v_low, v_high, n_levels=self.n_voltage_levels, dim=self.dim, seed=self.seed
        )
        lo, hi = float(delta_vth.min()), float(delta_vth.max())
        if hi == lo:
            hi = lo + 1e-9
        edges = np.linspace(lo, hi, self.n_buckets + 1)
        self._bucket_centers = 0.5 * (edges[:-1] + edges[1:])
        accumulators = np.zeros((self.n_buckets, self.dim), dtype=np.int64)
        counts = np.zeros(self.n_buckets, dtype=int)
        for w, target in zip(waveforms, delta_vth):
            hv = self._encode_waveform(np.asarray(w, dtype=float))
            bucket = min(int(np.searchsorted(edges, target, side="right")) - 1, self.n_buckets - 1)
            bucket = max(bucket, 0)
            accumulators[bucket] += hv
            counts[bucket] += 1
        # Drop empty buckets so similarity scores are meaningful.
        used = counts > 0
        self._prototypes = accumulators[used]
        self._bucket_centers = self._bucket_centers[used]
        return self

    def predict(self, waveforms):
        """Predicted delta-Vth for each waveform."""
        if self._prototypes is None:
            raise RuntimeError("model is not fitted")
        out = []
        for w in waveforms:
            hv = self._encode_waveform(np.asarray(w, dtype=float))
            sims = np.array([cosine_similarity(hv, p) for p in self._prototypes])
            weights = np.exp((sims - sims.max()) / self.temperature)
            weights /= weights.sum()
            out.append(float(weights @ self._bucket_centers))
        return np.array(out)
