"""Encoders mapping symbols, scalars, feature vectors, and sequences to HVs."""

from __future__ import annotations

import numpy as np

from repro.hdc.hypervector import bind, bundle, permute, random_hypervector


class ItemMemory:
    """Maps discrete symbols to fixed random hypervectors (an "item memory")."""

    def __init__(self, dim=4096, seed=0):
        self.dim = dim
        self._rng = np.random.default_rng(seed)
        self._memory = {}

    def get(self, symbol):
        """Return the hypervector for ``symbol``, creating it on first use."""
        if symbol not in self._memory:
            self._memory[symbol] = random_hypervector(self.dim, self._rng)
        return self._memory[symbol]

    def __len__(self):
        return len(self._memory)

    def __contains__(self, symbol):
        return symbol in self._memory


class LevelEncoder:
    """Thermometer-style encoder for scalars.

    Quantizes ``[low, high]`` into ``n_levels`` hypervectors where adjacent
    levels are highly similar and the extremes are (nearly) orthogonal:
    the standard "level hypervector" construction obtained by flipping a
    progressive slice of components.
    """

    def __init__(self, low, high, n_levels=32, dim=4096, seed=0):
        if high <= low:
            raise ValueError("high must exceed low")
        if n_levels < 2:
            raise ValueError("need at least 2 levels")
        self.low = low
        self.high = high
        self.n_levels = n_levels
        self.dim = dim
        rng = np.random.default_rng(seed)
        base = random_hypervector(dim, rng)
        flip_order = rng.permutation(dim)
        self._levels = np.empty((n_levels, dim), dtype=np.int8)
        self._levels[0] = base
        # Flip half the dimensions in total from the lowest to the highest
        # level, so the extremes end up (near-)orthogonal — flipping all
        # dimensions would make them antipodal and collapse level encodings
        # of two-valued signals onto a single axis.
        flip_total = dim // 2
        per_level = flip_total // (n_levels - 1)
        current = base.copy()
        for lvl in range(1, n_levels):
            start = (lvl - 1) * per_level
            stop = lvl * per_level if lvl < n_levels - 1 else flip_total
            idx = flip_order[start:stop]
            current = current.copy()
            current[idx] = -current[idx]
            self._levels[lvl] = current

    def level_of(self, value):
        """Quantized level index of a scalar, clipped to the encoder range."""
        frac = (value - self.low) / (self.high - self.low)
        frac = min(max(frac, 0.0), 1.0)
        return int(round(frac * (self.n_levels - 1)))

    def encode(self, value):
        """Hypervector for a scalar value."""
        return self._levels[self.level_of(value)]

    def level_vector(self, level):
        if not 0 <= level < self.n_levels:
            raise ValueError("level out of range")
        return self._levels[level]


class RecordEncoder:
    """Record-based encoding of fixed-length feature vectors.

    Each feature position gets an ID hypervector; each feature value is
    level-encoded; the record is the bundle of ``bind(id_i, level(x_i))``.
    This is the encoding used for tabular reliability features throughout
    the HDC literature the paper cites.
    """

    def __init__(self, n_features, low, high, n_levels=32, dim=4096, seed=0):
        self.n_features = n_features
        self.dim = dim
        rng = np.random.default_rng(seed)
        self._ids = [random_hypervector(dim, rng) for _ in range(n_features)]
        lows = np.broadcast_to(np.asarray(low, dtype=float), (n_features,))
        highs = np.broadcast_to(np.asarray(high, dtype=float), (n_features,))
        self._levels = [
            LevelEncoder(lo, hi, n_levels=n_levels, dim=dim, seed=seed + 1 + i)
            for i, (lo, hi) in enumerate(zip(lows, highs))
        ]
        self._tie_break = random_hypervector(dim, np.random.default_rng(seed + 10_000))

    def encode(self, x):
        """Hypervector for one feature vector of length ``n_features``."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n_features,):
            raise ValueError(f"expected {self.n_features} features, got {x.shape}")
        bound = [
            bind(self._ids[i], self._levels[i].encode(x[i]))
            for i in range(self.n_features)
        ]
        return bundle(bound, tie_break=self._tie_break)

    def encode_batch(self, X):
        X = np.asarray(X, dtype=float)
        return np.stack([self.encode(row) for row in X])


class NGramEncoder:
    """n-gram sequence encoder (permute-and-bind), as in language HDC.

    A sequence ``s_0 s_1 ... s_k`` is encoded by bundling all n-grams,
    each n-gram being ``bind(permute^{n-1}(HV(s_0)), ..., HV(s_{n-1}))``.
    """

    def __init__(self, n=3, dim=4096, seed=0):
        if n < 1:
            raise ValueError("n must be positive")
        self.n = n
        self.dim = dim
        self.items = ItemMemory(dim=dim, seed=seed)
        self._tie_break = random_hypervector(dim, np.random.default_rng(seed + 20_000))

    def encode(self, sequence):
        sequence = list(sequence)
        if len(sequence) < self.n:
            raise ValueError(f"sequence shorter than n={self.n}")
        grams = []
        for start in range(len(sequence) - self.n + 1):
            hv = self.items.get(sequence[start])
            hv = permute(hv, self.n - 1)
            for offset in range(1, self.n):
                nxt = permute(self.items.get(sequence[start + offset]), self.n - 1 - offset)
                hv = bind(hv, nxt)
            grams.append(hv)
        return bundle(grams, tie_break=self._tie_break)
