"""Hyperdimensional computing (Sec. II of the paper).

HDC computes with large (thousands of components) random vectors instead
of floating-point weights.  Because hypervector components are i.i.d. by
design, classification by similarity is inherently robust to hardware
errors: the paper's headline claim is that ~40 % component error rate
costs only ~0.5 % inference accuracy.

Modules
-------
``hypervector``
    Bipolar hypervector operations: bind, bundle, permute, similarity.
``encoder``
    Item memories, level (thermometer) encoders, record-based and n-gram
    encoders for feature vectors and sequences.
``classifier``
    Associative prototype classifier with optional perceptron-style
    retraining and hardware-error injection.
``aging_model``
    HDC regression model that mimics a confidential physics-based
    transistor-aging model (ref [18]): waveform in, delta-Vth out.
"""

from repro.hdc.hypervector import (
    random_hypervector,
    bind,
    bundle,
    permute,
    cosine_similarity,
    hamming_similarity,
    flip_components,
)
from repro.hdc.encoder import ItemMemory, LevelEncoder, RecordEncoder, NGramEncoder
from repro.hdc.classifier import HDCClassifier
from repro.hdc.aging_model import HDCAgingModel
from repro.hdc.wafer import (
    PATTERN_CLASSES,
    WaferMapGenerator,
    WaferHDCEncoder,
    WaferHDCClassifier,
)
from repro.hdc.language import (
    LanguageHDCClassifier,
    language_identification_study,
    sample_text,
    synthetic_language,
)

__all__ = [
    "random_hypervector",
    "bind",
    "bundle",
    "permute",
    "cosine_similarity",
    "hamming_similarity",
    "flip_components",
    "ItemMemory",
    "LevelEncoder",
    "RecordEncoder",
    "NGramEncoder",
    "HDCClassifier",
    "HDCAgingModel",
    "PATTERN_CLASSES",
    "WaferMapGenerator",
    "WaferHDCEncoder",
    "WaferHDCClassifier",
    "LanguageHDCClassifier",
    "language_identification_study",
    "sample_text",
    "synthetic_language",
]
