"""Bipolar hypervector primitives.

Hypervectors are dense vectors in ``{-1, +1}^D`` with D in the thousands.
Their components are independent and identically distributed, which is the
property that makes similarity-based computation robust to component
errors (Sec. II of the paper, refs [13], [14]).
"""

from __future__ import annotations

import numpy as np


def random_hypervector(dim, rng=None):
    """Draw a random bipolar hypervector of dimensionality ``dim``."""
    if dim < 1:
        raise ValueError("dim must be positive")
    if rng is None:
        rng = np.random.default_rng()
    return rng.choice(np.array([-1, 1], dtype=np.int8), size=dim)


def bind(a, b):
    """Bind two hypervectors (component-wise multiplication).

    Binding is its own inverse: ``bind(bind(a, b), b) == a``.  The result
    is dissimilar to both operands.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError("hypervector shapes must match")
    return (a * b).astype(np.int8)


def bundle(vectors, rng=None, tie_break=None):
    """Bundle (superpose) hypervectors by component-wise majority.

    Ties (possible for an even number of inputs) are broken by
    ``tie_break`` — a fixed bipolar vector — so bundling is deterministic
    for a given encoder; a ``rng`` may be supplied instead for one-off
    random tie-breaking.
    """
    vectors = [np.asarray(v) for v in vectors]
    if not vectors:
        raise ValueError("cannot bundle zero hypervectors")
    total = np.sum(np.stack(vectors).astype(np.int32), axis=0)
    out = np.sign(total).astype(np.int8)
    zeros = out == 0
    if zeros.any():
        if tie_break is not None:
            out[zeros] = np.asarray(tie_break, dtype=np.int8)[zeros]
        else:
            if rng is None:
                rng = np.random.default_rng(0)
            out[zeros] = rng.choice(
                np.array([-1, 1], dtype=np.int8), size=int(zeros.sum())
            )
    return out


def permute(v, shift=1):
    """Permute a hypervector by a cyclic shift (used for sequence encoding)."""
    return np.roll(np.asarray(v), shift)


def cosine_similarity(a, b):
    """Cosine similarity between two hypervectors, in ``[-1, 1]``."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 0.0
    return float(a @ b / denom)


def hamming_similarity(a, b):
    """Fraction of matching components, in ``[0, 1]``."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError("hypervector shapes must match")
    return float(np.mean(a == b))


def flip_components(v, error_rate, rng=None):
    """Simulate unreliable hardware by flipping a fraction of components.

    Each component independently flips sign with probability
    ``error_rate`` — the hardware-error model used for the robustness
    experiments in Sec. II.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError("error_rate must be in [0, 1]")
    if rng is None:
        rng = np.random.default_rng()
    v = np.asarray(v).copy()
    flips = rng.random(v.shape) < error_rate
    v[flips] = -v[flips]
    return v
