"""The Fig. 1 learning-based reliability-management loop.

Fig. 1 abstracts every manager in this library into one workflow: an
*agent* observes the system's **state**, applies an **action** through
optimization knobs, and receives a **reward** computed from resiliency
models (MTTF, SER, deadline statistics).  This module provides that
abstraction as a reusable loop so new managers only supply three
callables; :class:`repro.system.managers.RLDVFSManager` is the
hand-specialized equivalent.

Unlike the trial campaigns that run through :mod:`repro.runtime`'s
parallel :class:`~repro.runtime.CampaignRunner`, an episode is a
*sequential* learning process — each epoch's action depends on the
Q-table updated by the previous one — so this loop is deliberately not
fanned out.  Independent episodes (e.g. seed sweeps over fresh agents)
can still be parallelized by mapping them with the runtime layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs


@dataclass
class LoopHistory:
    """Trace of one management episode."""

    states: list = field(default_factory=list)
    actions: list = field(default_factory=list)
    rewards: list = field(default_factory=list)

    @property
    def total_reward(self):
        return float(sum(self.rewards))


class ReliabilityManagementLoop:
    """Generic observe-act-reward loop around a Q-learning agent.

    Parameters
    ----------
    agent:
        A :class:`repro.system.rl.QLearningAgent` (or any object with
        ``act``/``update``).
    observe:
        ``observe(system) -> state tuple`` — the Fig. 1 "states" arrow,
        built from monitors (temperature, utilization, error counters).
    apply_action:
        ``apply_action(system, action) -> None`` — the "actions" arrow,
        turning the agent's choice into knob settings (V-f, mapping, DPM).
    reward:
        ``reward(system) -> float`` — the "reward" arrow, evaluated from
        resiliency models after the system ran under the chosen action.
    step_system:
        ``step_system(system) -> None`` — advances the managed system one
        control epoch.
    """

    def __init__(self, agent, observe, apply_action, reward, step_system):
        self.agent = agent
        self.observe = observe
        self.apply_action = apply_action
        self.reward = reward
        self.step_system = step_system

    def run_episode(self, system, n_epochs, learn=True):
        """Run one management episode; returns its :class:`LoopHistory`."""
        if n_epochs < 1:
            raise ValueError("need at least one epoch")
        history = LoopHistory()
        with obs.span("core.framework.episode", epochs=n_epochs, learn=learn):
            state = self.observe(system)
            for _ in range(n_epochs):
                action = self.agent.act(state, explore=learn)
                self.apply_action(system, action)
                self.step_system(system)
                next_state = self.observe(system)
                r = self.reward(system)
                if learn:
                    self.agent.update(state, action, r, next_state)
                history.states.append(state)
                history.actions.append(action)
                history.rewards.append(r)
                state = next_state
        obs.inc("core.framework.epochs", n_epochs)
        return history
