"""Learning-based cycle-noise budgeting (Sec. V's suggested optimization).

The paper notes the "cycle-noise mitigation system can be optimized by
learning-based approaches to improve its prediction accuracy of execution
time".  Two learners are provided:

* :class:`AdaptiveBudgetPolicy` — an on-line estimator: it tracks the
  observed rollback statistics, maintains a per-cycle error-probability
  estimate ``p_hat``, and budgets each segment at a chosen quantile of
  its predicted rollback distribution (Eq. (2) with ``p_hat``).  Below
  the wall it converges to DS-like tight budgets; as errors appear it
  automatically grows budgets toward (and past) WCET's.
* :class:`MLExecutionTimePredictor` — an off-line supervised model
  mapping (segment length, error-probability estimate) to a cycle-budget
  quantile, trained on simulated history; it generalizes across segment
  lengths without storing per-segment state.
"""

from __future__ import annotations

import numpy as np

from repro.core.error_model import prob_no_error


def quantile_rollbacks(p, n_cycles, quantile=0.95):
    """Smallest r with ``P(N_rb <= r) >= quantile`` under Eq. (2).

    Returns a large cap when the segment is hopeless (q ~ 0).
    """
    if not 0.0 <= quantile < 1.0:
        raise ValueError("quantile must be in [0, 1)")
    q = prob_no_error(p, n_cycles)
    if q <= 1e-12:
        return 10_000
    if q >= 1.0:
        return 0
    # Geometric CDF: P(N <= r) = 1 - (1-q)^(r+1)
    r = int(np.ceil(np.log(1.0 - quantile) / np.log(1.0 - q)) - 1)
    return max(r, 0)


class AdaptiveBudgetPolicy:
    """On-line learned budget policy for the cycle-noise mitigation system.

    Parameters
    ----------
    quantile:
        Coverage target for the per-segment budget; higher is more
        conservative.
    prior_errors / prior_cycles:
        Beta-like smoothing of the error-probability estimate, so the
        cold-start budget is mildly conservative instead of zero-margin.
    """

    name = "Learned"

    def __init__(self, quantile=0.98, prior_errors=0.5, prior_cycles=5e6):
        if prior_cycles <= 0:
            raise ValueError("prior_cycles must be positive")
        self.quantile = quantile
        self.prior_errors = prior_errors
        self.prior_cycles = prior_cycles
        self.observed_rollbacks = 0.0
        self.observed_cycles = 0.0

    @property
    def p_hat(self):
        """Current per-cycle error-probability estimate.

        For small p, E[rollbacks] ~ p * n_c per segment attempt, so the
        ratio of total rollbacks to total clean cycles executed is a
        consistent estimator; the prior keeps it finite and non-zero.
        """
        return (self.observed_rollbacks + self.prior_errors) / (
            self.observed_cycles + self.prior_cycles
        )

    def observe(self, segment_cycles, n_rollbacks):
        """Feed one executed segment's outcome back into the estimator."""
        if segment_cycles <= 0 or n_rollbacks < 0:
            raise ValueError("invalid observation")
        # Every attempt (first run + each re-computation) exposes n_c cycles.
        self.observed_cycles += segment_cycles * (n_rollbacks + 1)
        self.observed_rollbacks += n_rollbacks

    def budget_cycles(self, segment_cycles, checkpoint_cycles, rollback_cycles):
        """Quantile budget under the current error-probability estimate."""
        clean = segment_cycles + checkpoint_cycles
        per_retry = rollback_cycles + segment_cycles + checkpoint_cycles
        r = quantile_rollbacks(self.p_hat, segment_cycles, self.quantile)
        r = min(r, 50)  # budgets beyond ~50 retries exceed any speed anyway
        return clean + r * per_retry


class MLExecutionTimePredictor:
    """Supervised execution-time (cycle-budget) predictor.

    Trains a gradient-boosted regressor on simulated segment executions:
    features are (segment cycles, log10 of the error-probability estimate)
    and the target is the empirical ``quantile`` of total executed cycles.
    Deployment wraps it in the same ``budget_cycles`` interface the
    mitigation runtime consumes.
    """

    name = "ML-predictor"

    def __init__(self, quantile=0.98, seed=0):
        from repro.ml.ensemble import GradientBoostingRegressor

        self.quantile = quantile
        self.seed = seed
        self._model = GradientBoostingRegressor(
            n_estimators=40, learning_rate=0.15, max_depth=3, seed=seed
        )
        self._fitted = False
        self._p_assumed = None

    def fit(self, error_probs, segment_range=(40_000, 270_000), n_samples=400,
            samples_per_point=60):
        """Sample (segment, p) -> quantile-cycles pairs and fit the model."""
        from repro.core.checkpoint import CheckpointSystem

        rng = np.random.default_rng(self.seed)
        X = []
        y = []
        for _ in range(n_samples):
            p = float(rng.choice(error_probs))
            n_c = int(rng.integers(segment_range[0], segment_range[1] + 1))
            cp = CheckpointSystem(p)
            totals = [
                cp.sample_segment(n_c, rng)[1] for _ in range(samples_per_point)
            ]
            X.append([n_c, np.log10(p)])
            y.append(float(np.quantile(totals, self.quantile)))
        X = np.asarray(X)
        y = np.asarray(y)
        self._model.fit(X, np.log(y))
        self._fitted = True
        return self

    def assume_error_probability(self, p):
        """Set the error-probability estimate used at budgeting time."""
        if not 0.0 < p < 1.0:
            raise ValueError("p must be in (0, 1)")
        self._p_assumed = p

    def budget_cycles(self, segment_cycles, checkpoint_cycles, rollback_cycles):
        if not self._fitted:
            raise RuntimeError("predictor is not fitted")
        if self._p_assumed is None:
            raise RuntimeError("call assume_error_probability first")
        x = np.asarray([[segment_cycles, np.log10(self._p_assumed)]])
        predicted = float(np.exp(self._model.predict(x)[0]))
        # Never budget below the clean execution.
        return max(predicted, segment_cycles + checkpoint_cycles)
