"""Segmented workloads for the Sec. V analysis.

The paper benchmarks the lower sub-band quantization block of
ADPCM-encoding (TACLeBench) on the Ariane RISC-V core RTL and segments it
into units of 40k-270k cycles.  Without that RTL, the workload generator
draws segment lengths from the same range with a mix-of-sizes profile
(signal-processing blocks alternate short control segments with long
filter loops).
"""

from __future__ import annotations

import numpy as np

SEGMENT_MIN_CYCLES = 40_000
SEGMENT_MAX_CYCLES = 270_000


class SegmentedWorkload:
    """An application as an ordered list of segment cycle counts."""

    def __init__(self, name, segment_cycles, deadline_slack=0.15):
        self.name = name
        self.segment_cycles = [int(c) for c in segment_cycles]
        if not self.segment_cycles:
            raise ValueError("workload needs at least one segment")
        if any(c <= 0 for c in self.segment_cycles):
            raise ValueError("segment cycles must be positive")
        if deadline_slack < 0:
            raise ValueError("deadline slack must be non-negative")
        self.deadline_slack = deadline_slack

    def __len__(self):
        return len(self.segment_cycles)

    def __iter__(self):
        return iter(self.segment_cycles)

    def clean_cycles(self, checkpoint_cycles=100):
        """Total error-free cycles including per-segment checkpoints."""
        return sum(c + checkpoint_cycles for c in self.segment_cycles)

    def deadline(self, nominal_speed=1.0, checkpoint_cycles=100):
        """Application deadline (time units): clean time plus the slack."""
        return self.clean_cycles(checkpoint_cycles) / nominal_speed * (
            1.0 + self.deadline_slack
        )


def adpcm_like_workload(n_segments=12, seed=0, deadline_slack=0.15):
    """Workload with ADPCM-like segment statistics (40k-270k cycles).

    Mixes short control-ish segments (lower third of the range) with long
    filter-loop segments (upper half), as sub-band coding blocks do.
    """
    rng = np.random.default_rng(seed)
    segments = []
    for _ in range(n_segments):
        if rng.random() < 0.4:
            c = rng.integers(SEGMENT_MIN_CYCLES, 120_000)
        else:
            c = rng.integers(120_000, SEGMENT_MAX_CYCLES + 1)
        segments.append(int(c))
    return SegmentedWorkload(
        name=f"adpcm_like_{n_segments}seg", segment_cycles=segments,
        deadline_slack=deadline_slack,
    )
