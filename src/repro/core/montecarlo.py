"""Monte Carlo study regenerating Fig. 5 and Fig. 6 (Sec. V-D).

For each error-probability level the study performs ``n_runs`` Monte
Carlo simulations (the paper uses 100) of the segmented workload under
the checkpoint/rollback system and each budget policy, and averages

* the number of rollbacks per segment (Fig. 5), and
* the deadline hit rate per policy (Fig. 6).

The *error-rate wall* — the narrow band of error probability where hit
rates collapse from ~1 to ~0 — is located by
:meth:`MonteCarloStudy.find_wall`.

Each error-probability level is an independent, internally seeded unit
of work, so :meth:`MonteCarloStudy.sweep` can fan levels out over the
shared runtime layer (:mod:`repro.runtime`) with ``jobs``/``cache``
arguments while staying bit-identical to the serial sweep.  See
``docs/campaigns.md``.

Within a level, studies whose policies are all frozen (stateless)
budget policies dispatch to the batched numpy kernels
(:func:`~repro.core.cycle_noise.simulate_runs_batch` and friends),
which replace the ``n_runs x n_segments`` nest of scalar RNG calls
with a handful of matrix operations; stateful learned policies keep
the scalar reference path, which observes segments in order.  The
``kernel`` argument (``"auto"``/``"batched"``/``"scalar"``) and the
CLI's ``--reference-kernel`` control the dispatch; see
``docs/performance.md`` for the design and the equivalence contract.
"""

from __future__ import annotations

import functools
import zlib
from dataclasses import dataclass, field, is_dataclass, asdict

import numpy as np

from repro import obs
from repro.core.checkpoint import CheckpointSystem
from repro.core.cycle_noise import ALL_POLICIES, simulate_run, simulate_runs_batch
from repro.runtime import CampaignRunner

DEFAULT_ERROR_PROBS = tuple(float(p) for p in np.logspace(-8, -3, 11))

#: Kernel selection for :class:`MonteCarloStudy`: ``"auto"`` dispatches
#: each level to the batched numpy kernels when every policy is a frozen
#: (stateless) dataclass and falls back to the scalar reference path
#: otherwise; ``"scalar"`` forces the reference path (the CLI's
#: ``--reference-kernel``); ``"batched"`` demands the batched path and
#: errors on stateful policies.  See ``docs/performance.md``.
KERNELS = ("auto", "batched", "scalar")


@dataclass
class SweepPoint:
    """Aggregated results at one error-probability level."""

    error_probability: float
    mean_rollbacks_per_segment: float
    hit_rate: dict = field(default_factory=dict)  # policy name -> rate
    mean_energy: dict = field(default_factory=dict)  # policy name -> energy


@dataclass
class ErrorRateWall:
    """The located error-rate wall for one policy."""

    policy: str
    last_safe_p: float  # highest p with hit rate >= hi_threshold
    first_failed_p: float  # lowest p with hit rate <= lo_threshold


class MonteCarloStudy:
    """Sweep error probability with Monte Carlo runs (Figs. 5-6)."""

    def __init__(
        self,
        workload,
        policies=ALL_POLICIES,
        n_runs=100,
        seed=0,
        checkpoint_cycles=100,
        rollback_cycles=48,
        include_routine_errors=False,
        kernel="auto",
    ):
        if n_runs < 1:
            raise ValueError("need at least one run")
        if kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        self.workload = workload
        self.policies = tuple(policies)
        self.n_runs = n_runs
        self.seed = seed
        self.checkpoint_cycles = checkpoint_cycles
        self.rollback_cycles = rollback_cycles
        self.include_routine_errors = include_routine_errors
        self.kernel = kernel
        self.last_sweep_stats = None  # RunStats of the most recent sweep

    def _checkpoint_system(self, error_probability):
        """The study's fully configured checkpoint/rollback system at ``p``."""
        return CheckpointSystem(
            error_probability,
            checkpoint_cycles=self.checkpoint_cycles,
            rollback_cycles=self.rollback_cycles,
            include_routine_errors=self.include_routine_errors,
        )

    def _policies_batchable(self):
        """Whether every policy qualifies for the batched kernels.

        Frozen :class:`~repro.core.cycle_noise.BudgetPolicy`-style
        dataclasses budget a whole segment vector deterministically;
        anything stateful (an ``observe`` hook) or non-frozen must
        observe segments in execution order and takes the scalar path.
        """
        return all(
            is_dataclass(policy)
            and getattr(policy, "__dataclass_params__").frozen
            and not hasattr(policy, "observe")
            for policy in self.policies
        )

    def _resolved_kernel(self):
        """The kernel a level will actually run: ``"batched"``/``"scalar"``."""
        if self.kernel == "scalar":
            return "scalar"
        if self._policies_batchable():
            return "batched"
        if self.kernel == "batched":
            raise ValueError(
                "kernel='batched' requires stateless frozen budget policies; "
                "this study's policies need the scalar path"
            )
        return "scalar"

    def run_level(self, error_probability):
        """Monte Carlo at one error-probability level."""
        with obs.span("core.montecarlo.level", p=error_probability):
            return self._run_level(error_probability)

    def _run_level(self, error_probability):
        kernel = self._resolved_kernel()
        # Bulk, O(1)-per-level accounting: one increment per counter per
        # level, never per MC run or per segment sample.  segment_samples
        # is the full rollback-matrix size; the scalar path may draw
        # fewer when runs early-exit past the wall.
        obs.inc("core.montecarlo.levels")
        obs.inc(f"core.montecarlo.kernel.{kernel}")
        obs.inc("core.montecarlo.mc_runs", self.n_runs * (1 + len(self.policies)))
        obs.inc(
            "core.montecarlo.segment_samples",
            self.n_runs * len(self.workload) * (1 + len(self.policies)),
        )
        cp = self._checkpoint_system(error_probability)
        if kernel == "batched":
            return self._run_level_batched(cp, error_probability)
        return self._run_level_scalar(cp, error_probability)

    def _run_level_scalar(self, cp, error_probability):
        """Scalar reference kernel: one RNG draw per segment execution."""
        # Fig. 5 statistic: sampled directly (runs may early-exit past the
        # wall, which would truncate their rollback counts).
        rb_rng = np.random.default_rng(self.seed + 1)
        rollbacks = []
        for _ in range(self.n_runs):
            total = sum(
                cp.sample_segment(c, rb_rng)[0] for c in self.workload
            )
            rollbacks.append(total / len(self.workload))
        hits = {policy.name: 0 for policy in self.policies}
        energies = {policy.name: [] for policy in self.policies}
        for policy in self.policies:
            rng = np.random.default_rng(self.seed + _policy_tag(policy))
            for _ in range(self.n_runs):
                run = simulate_run(self.workload, cp, policy, rng)
                hits[policy.name] += int(run.deadline_met)
                energies[policy.name].append(run.energy)
        return SweepPoint(
            error_probability=error_probability,
            mean_rollbacks_per_segment=float(np.mean(rollbacks)),
            hit_rate={k: v / self.n_runs for k, v in hits.items()},
            mean_energy={k: float(np.mean(v)) for k, v in energies.items()},
        )

    def _run_level_batched(self, cp, error_probability):
        """Batched kernel: one rollback matrix per statistic/policy.

        Seeding matches the scalar path (``seed + 1`` for the Fig. 5
        matrix, ``seed + crc32(policy)`` per policy), and each matrix is
        drawn run-major, so the Fig. 5 stream is draw-for-draw the
        scalar one; the per-policy streams assign the same draws to
        different runs once any scalar run early-exits (equivalent in
        distribution, not bit-identical — see ``docs/performance.md``).
        """
        rb_rng = np.random.default_rng(self.seed + 1)
        n_rb, _ = cp.sample_segments_batch(
            self.workload.segment_cycles, rb_rng, self.n_runs
        )
        mean_rollbacks = float(np.mean(n_rb.sum(axis=1) / len(self.workload)))
        hit_rate = {}
        mean_energy = {}
        for policy in self.policies:
            rng = np.random.default_rng(self.seed + _policy_tag(policy))
            batch = simulate_runs_batch(
                self.workload, cp, policy, rng, self.n_runs
            )
            hit_rate[policy.name] = float(np.mean(batch.deadline_met))
            mean_energy[policy.name] = float(np.mean(batch.energies))
        return SweepPoint(
            error_probability=error_probability,
            mean_rollbacks_per_segment=mean_rollbacks,
            hit_rate=hit_rate,
            mean_energy=mean_energy,
        )

    def _fingerprint(self):
        """Cache key for sweep levels, or ``None`` if the study is stateful.

        Learned/stateful policy objects (anything that is not a frozen
        :class:`~repro.core.cycle_noise.BudgetPolicy` dataclass) carry
        state a content digest cannot see — and they *learn in place*
        across levels, so their sweeps are order-dependent.  Such studies
        are neither memoized nor parallelized.
        """
        policies = []
        for policy in self.policies:
            if not (is_dataclass(policy) and getattr(policy, "__dataclass_params__").frozen):
                return None
            policies.append({"type": type(policy).__name__, **asdict(policy)})
        return {
            "workload": {
                "name": self.workload.name,
                "segment_cycles": list(self.workload.segment_cycles),
                "deadline_slack": self.workload.deadline_slack,
            },
            "policies": policies,
            "n_runs": self.n_runs,
            "seed": self.seed,
            "checkpoint_cycles": self.checkpoint_cycles,
            "rollback_cycles": self.rollback_cycles,
            "include_routine_errors": self.include_routine_errors,
            # Sampled statistics differ (in distribution-equivalent ways)
            # between kernels, so cached levels must not cross kernels.
            "kernel": self._resolved_kernel(),
        }

    def sweep(self, error_probabilities=DEFAULT_ERROR_PROBS, jobs=1, cache=None,
              progress=None, policy=None, resume=False, transport=None,
              transport_options=None):
        """Fig. 5 + Fig. 6 data: one :class:`SweepPoint` per level.

        Levels are independent and internally seeded, so ``jobs > 1``
        fans them out over a process pool with results bit-identical to
        the serial sweep.  ``cache`` memoizes per-level results keyed by
        the study configuration.  Studies with stateful learned policies
        run serial and uncached (see :meth:`_fingerprint`).  ``policy``
        (a :class:`repro.runtime.FaultPolicy`) governs per-level
        timeouts, retries, and pool respawns; ``resume=True`` replays an
        interrupted sweep's journaled levels from the cache.
        ``transport``/``transport_options`` select the execution backend
        (see ``docs/distributed.md``); every backend yields bit-identical
        points.  Runner accounting is left in ``self.last_sweep_stats``.
        """
        fingerprint = self._fingerprint()
        if fingerprint is None:
            # Stateful studies are order-dependent: no fan-out, no cache,
            # and no distributed backend either.
            jobs, cache, resume = 1, None, False
            transport, transport_options = None, None
        runner = CampaignRunner(jobs=jobs, cache=cache, progress=progress,
                                policy=policy, resume=resume,
                                transport=transport,
                                transport_options=transport_options)
        probs = [float(p) for p in error_probabilities]
        points = runner.map(
            functools.partial(_run_level_worker, self), probs,
            key=("mc-sweep", fingerprint),
            item_keys=[("level", p) for p in probs],
        )
        self.last_sweep_stats = runner.stats
        return points

    def analytic_rollbacks(self, error_probabilities=DEFAULT_ERROR_PROBS):
        """Closed-form Fig. 5 curve from Eq. (2)'s mean (no sampling).

        Uses the study's configured checkpoint/rollback system — routine
        costs and the ``include_routine_errors`` ablation flag — not the
        defaults, so the analytic curve describes the same system the
        sampled sweep simulates.
        """
        out = []
        for p in error_probabilities:
            cp = self._checkpoint_system(float(p))
            means = [
                cp.expected_segment_rollbacks(c) for c in self.workload
            ]
            out.append(float(np.mean(means)))
        return np.asarray(out)

    def find_wall(self, points, policy_name, hi=0.95, lo=0.05):
        """Locate the error-rate wall for one policy from sweep points."""
        last_safe = None
        first_failed = None
        for point in points:
            rate = point.hit_rate[policy_name]
            if rate >= hi:
                last_safe = point.error_probability
            if rate <= lo and first_failed is None:
                first_failed = point.error_probability
        if last_safe is None:
            last_safe = points[0].error_probability
        if first_failed is None:
            first_failed = points[-1].error_probability
        return ErrorRateWall(
            policy=policy_name, last_safe_p=last_safe, first_failed_p=first_failed
        )


def _policy_tag(policy):
    """Stable per-policy RNG offset.

    zlib.crc32, not hash(): str hashing is salted per process and would
    break cross-run reproducibility.
    """
    return zlib.crc32(policy.name.encode()) % 10_000


def _run_level_worker(study, error_probability):
    """One sweep level (module-level so the process pool can pickle it)."""
    return study.run_level(error_probability)
