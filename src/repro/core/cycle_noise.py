"""Cycle-noise mitigation via per-segment budgets and speeds (Sec. V-C).

The multi-timescale mitigation approach ([53]) allots every segment a
*cycle budget* and a share of the application deadline; the processor
speed for the segment is set so the budget fits its time slot.  Budgets
larger than the clean cycle count absorb rollback-induced cycle noise at
the price of a higher speed (more energy).  The four policies analyzed:

* ``DS``      — dynamic-scenario based, tight budget (clean cycles);
* ``DS 1.5x`` — DS budgets scaled by 1.5;
* ``DS 2x``   — DS budgets scaled by 2;
* ``WCET``    — worst-case budget (clean cycles for the segment plus a
  conservative static rollback allowance), the most conservative.

Speeds are capped at the processor's maximum; beyond the error-rate wall
even the maximum speed cannot absorb the rollback storm and deadlines
fall (Sec. V-D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

MAX_SPEED = 4.0
NOMINAL_SPEED = 1.0
WCET_ROLLBACK_ALLOWANCE = 3  # statically budgeted re-computations per segment


@dataclass(frozen=True)
class BudgetPolicy:
    """A budget policy: clean-cycle scale factor or static WCET allowance."""

    name: str
    scale: float = 1.0
    rollback_allowance: int = 0

    def budget_cycles(self, segment_cycles, checkpoint_cycles, rollback_cycles):
        """Cycle budget allotted to one segment."""
        clean = segment_cycles + checkpoint_cycles
        per_retry = rollback_cycles + segment_cycles + checkpoint_cycles
        return self.scale * clean + self.rollback_allowance * per_retry


DS = BudgetPolicy(name="DS", scale=1.0)
DS_1_5X = BudgetPolicy(name="DS 1.5x", scale=1.5)
DS_2X = BudgetPolicy(name="DS 2x", scale=2.0)
WCET = BudgetPolicy(name="WCET", scale=1.0, rollback_allowance=WCET_ROLLBACK_ALLOWANCE)

ALL_POLICIES = (DS, DS_1_5X, DS_2X, WCET)


@dataclass
class MitigatedRun:
    """Result of one application run under a policy."""

    policy: str
    deadline: float
    finish_time: float
    rollbacks_per_segment: float
    mean_speed: float
    energy: float  # sum cycles * speed^2 (dynamic-energy proxy)

    @property
    def deadline_met(self):
        return self.finish_time <= self.deadline + 1e-9


def simulate_run(
    workload,
    checkpoint_system,
    policy,
    rng,
    max_speed=MAX_SPEED,
    min_speed=NOMINAL_SPEED,
):
    """Execute one run of ``workload`` under ``policy``.

    Each segment gets a time slot proportional to its clean cycles; the
    planned speed executes the policy's cycle budget within the slot
    (capped at ``max_speed``).  Rollback cycles beyond the budget overrun
    the slot and consume downstream slack; the run misses when the final
    finish time exceeds the application deadline.

    Early exit: once the accumulated time cannot be recovered even by
    running every remaining cycle at maximum speed, the run is a miss
    (keeps deep-past-the-wall simulations cheap).
    """
    cp = checkpoint_system
    clean_total = workload.clean_cycles(cp.checkpoint_cycles)
    deadline = workload.deadline(NOMINAL_SPEED, cp.checkpoint_cycles)

    time_used = 0.0
    total_rollbacks = 0
    total_cycles = 0
    energy = 0.0
    speeds = []
    for segment_cycles in workload:
        clean = cp.clean_segment_cycles(segment_cycles)
        slot = deadline * clean / clean_total
        budget = policy.budget_cycles(
            segment_cycles, cp.checkpoint_cycles, cp.rollback_cycles
        )
        speed = float(np.clip(budget / slot, min_speed, max_speed))
        n_rb, actual_cycles = cp.sample_segment(segment_cycles, rng)
        if hasattr(policy, "observe"):
            # Learning policies feed executed-segment outcomes back into
            # their execution-time estimator (Sec. V's suggested extension).
            policy.observe(segment_cycles, n_rb)
        total_rollbacks += n_rb
        total_cycles += actual_cycles
        time_used += actual_cycles / speed
        energy += actual_cycles * speed**2
        speeds.append(speed)
        if (time_used - deadline) > 0 and (
            time_used - deadline
        ) * max_speed > clean_total:
            # Hopelessly late: no remaining-speed headroom can recover.
            break

    return MitigatedRun(
        policy=policy.name,
        deadline=deadline,
        finish_time=time_used,
        rollbacks_per_segment=total_rollbacks / len(workload),
        mean_speed=float(np.mean(speeds)),
        energy=energy,
    )


@dataclass
class BatchRunResult:
    """Per-run result arrays for a batch of runs under one policy.

    Each array has one entry per Monte Carlo run; the fields mirror
    :class:`MitigatedRun` (``finish_times[i]`` is run ``i``'s
    ``finish_time``, and so on).
    """

    policy: str
    deadline: float
    finish_times: np.ndarray
    rollbacks_per_segment: np.ndarray
    mean_speeds: np.ndarray
    energies: np.ndarray

    @property
    def deadline_met(self):
        """Boolean array: which runs met the application deadline."""
        return self.finish_times <= self.deadline + 1e-9

    def __len__(self):
        return self.finish_times.size


def simulate_runs_batch(
    workload,
    checkpoint_system,
    policy,
    rng,
    n_runs,
    max_speed=MAX_SPEED,
    min_speed=NOMINAL_SPEED,
):
    """Vectorized :func:`simulate_run`: ``n_runs`` independent executions.

    The per-segment plan — budgets, time slots, speeds — is a pure
    function of the (stateless) policy and the workload, so it is
    computed once; the full ``(n_runs, n_segments)`` rollback matrix is
    then drawn in one RNG call
    (:meth:`~repro.core.checkpoint.CheckpointSystem.sample_segments_batch`)
    and finish times, rollback counts, speeds, and energies fall out of
    cumulative sums.  The scalar path's "hopelessly late" break is
    reproduced as a mask: each run's statistics are read at the first
    segment where the lateness test trips (or the last segment when it
    never does), so a batched run is segment-for-segment identical to
    the scalar run that sees the same rollback draws.

    Only stateless policies qualify: a policy with an ``observe`` hook
    (the learned policies) must see segments in execution order and is
    rejected — use :func:`simulate_run` for those.
    """
    if hasattr(policy, "observe"):
        raise TypeError(
            f"policy {policy.name!r} learns from observed segments and must "
            "run through the scalar simulate_run path"
        )
    if n_runs < 1:
        raise ValueError("need at least one run")
    cp = checkpoint_system
    seg = np.asarray(workload.segment_cycles, dtype=float)
    clean = seg + cp.checkpoint_cycles
    clean_total = float(workload.clean_cycles(cp.checkpoint_cycles))
    deadline = workload.deadline(NOMINAL_SPEED, cp.checkpoint_cycles)

    slots = deadline * clean / clean_total
    budgets = np.asarray(
        policy.budget_cycles(seg, cp.checkpoint_cycles, cp.rollback_cycles),
        dtype=float,
    )
    if budgets.shape != seg.shape:
        raise TypeError(
            f"policy {policy.name!r} does not budget segment vectors; "
            "use the scalar simulate_run path"
        )
    speeds = np.clip(budgets / slots, min_speed, max_speed)

    n_rb, actual = cp.sample_segments_batch(seg, rng, n_runs)
    times = np.cumsum(actual / speeds, axis=1)

    # Scalar break condition, evaluated after every segment of every run.
    lateness = times - deadline
    hopeless = (lateness > 0) & (lateness * max_speed > clean_total)
    stopped = hopeless.any(axis=1)
    last = np.where(stopped, np.argmax(hopeless, axis=1), seg.size - 1)

    rows = np.arange(n_runs)
    rollback_totals = np.cumsum(n_rb, axis=1)[rows, last]
    energies = np.cumsum(actual * speeds**2, axis=1)[rows, last]
    # Mean speed over executed segments depends only on where the run
    # stopped, so prefix means of the (shared) speed vector suffice.
    speed_prefix_means = np.cumsum(speeds) / np.arange(1, seg.size + 1)

    return BatchRunResult(
        policy=policy.name,
        deadline=deadline,
        finish_times=times[rows, last],
        rollbacks_per_segment=rollback_totals / len(workload),
        mean_speeds=speed_prefix_means[last],
        energies=energies,
    )
