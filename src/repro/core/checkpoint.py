"""Checkpointing and rollback-recovery timing model (Sec. V-B).

Each application is segmented into atomic units.  A checkpoint routine of
100 cycles ends every segment; when an error occurred during the segment,
a rollback routine of 48 cycles is inserted and the segment is recomputed
— followed by another checkpoint, and possibly further rollbacks, with no
bound on the re-computation count (costs follow [51]).
"""

from __future__ import annotations

import numpy as np

from repro.core.error_model import (
    expected_rollbacks,
    sample_rollbacks,
    sample_rollbacks_batch,
)

CHECKPOINT_CYCLES = 100
ROLLBACK_CYCLES = 48


class CheckpointSystem:
    """Timing of segments under checkpointing and rollback-recovery.

    Parameters
    ----------
    error_probability:
        Per-cycle error probability ``p`` of the Sec. V-A model.
    checkpoint_cycles / rollback_cycles:
        Routine costs; defaults follow the paper ([51]).
    """

    def __init__(
        self,
        error_probability,
        checkpoint_cycles=CHECKPOINT_CYCLES,
        rollback_cycles=ROLLBACK_CYCLES,
        include_routine_errors=False,
    ):
        if not 0.0 <= error_probability < 1.0:
            raise ValueError("error probability must be in [0, 1)")
        if checkpoint_cycles < 0 or rollback_cycles < 0:
            raise ValueError("routine costs must be non-negative")
        self.p = error_probability
        self.checkpoint_cycles = checkpoint_cycles
        self.rollback_cycles = rollback_cycles
        # The paper's Eq. (2) exposes only the segment's n_c cycles to
        # errors; with this flag the checkpoint (and, on retries, the
        # rollback) routines are also exposed — an ablation quantifying
        # how much the exclusion matters.
        self.include_routine_errors = include_routine_errors

    def _exposed_cycles(self, segment_cycles, is_retry=False):
        if not self.include_routine_errors:
            return segment_cycles
        extra = self.checkpoint_cycles + (self.rollback_cycles if is_retry else 0)
        return segment_cycles + extra

    def clean_segment_cycles(self, segment_cycles):
        """Cycles of a segment plus its mandatory checkpoint (no errors)."""
        return segment_cycles + self.checkpoint_cycles

    def segment_cycles_with_rollbacks(self, segment_cycles, n_rollbacks):
        """Total cycles when the segment needed ``n_rollbacks`` re-computations.

        Every re-computation pays the rollback routine, repeats the
        segment, and ends with another checkpoint.
        """
        if n_rollbacks < 0:
            raise ValueError("rollback count must be non-negative")
        clean = self.clean_segment_cycles(segment_cycles)
        per_retry = self.rollback_cycles + segment_cycles + self.checkpoint_cycles
        return clean + n_rollbacks * per_retry

    def sample_segment(self, segment_cycles, rng):
        """Sample ``(n_rollbacks, total_cycles)`` for one segment execution."""
        n_rb = sample_rollbacks(
            self.p, self._exposed_cycles(segment_cycles), rng
        )
        return n_rb, self.segment_cycles_with_rollbacks(segment_cycles, n_rb)

    def sample_segments_batch(self, segment_cycles, rng, n_runs):
        """Sample rollback and total-cycle matrices for a whole MC batch.

        ``segment_cycles`` is the per-segment cycle vector; the result is
        a pair of ``(n_runs, n_segments)`` arrays ``(n_rollbacks,
        total_cycles)``, row ``i`` being run ``i``.  One
        :func:`~repro.core.error_model.sample_rollbacks_batch` call draws
        the whole rollback matrix (run-major; see its draw-order
        contract), and the cycle totals follow from
        :meth:`segment_cycles_with_rollbacks`'s formula vectorized over
        the matrix.
        """
        seg = np.atleast_1d(np.asarray(segment_cycles, dtype=float))
        n_rb = sample_rollbacks_batch(
            self.p, self._exposed_cycles(seg), rng, n_runs
        )
        clean = seg + self.checkpoint_cycles
        per_retry = self.rollback_cycles + seg + self.checkpoint_cycles
        return n_rb, clean + n_rb * per_retry

    def expected_segment_rollbacks(self, segment_cycles):
        """Analytic mean rollback count for a segment (Fig. 5's quantity)."""
        return expected_rollbacks(self.p, self._exposed_cycles(segment_cycles))

    def expected_overhead_factor(self, segment_cycles):
        """Expected total cycles divided by clean cycles for one segment."""
        mean_rb = self.expected_segment_rollbacks(segment_cycles)
        if np.isinf(mean_rb):
            return np.inf
        clean = self.clean_segment_cycles(segment_cycles)
        per_retry = self.rollback_cycles + segment_cycles + self.checkpoint_cycles
        return (clean + mean_rb * per_retry) / clean

    def expected_total_cycles(self, total_work_cycles, n_segments):
        """Expected cycles to run ``total_work_cycles`` split into
        ``n_segments`` equal segments, including checkpoints and expected
        re-computations."""
        if n_segments < 1:
            raise ValueError("need at least one segment")
        segment = total_work_cycles / n_segments
        mean_rb = self.expected_segment_rollbacks(segment)
        if np.isinf(mean_rb):
            return np.inf
        clean = segment + self.checkpoint_cycles
        per_retry = self.rollback_cycles + segment + self.checkpoint_cycles
        return n_segments * (clean + mean_rb * per_retry)

    def optimal_segment_count(self, total_work_cycles, n_max=10_000):
        """Checkpoint-count optimization ([51]): the segment count that
        minimizes expected total cycles.

        More segments cost more checkpoint routines but make every
        re-computation cheaper; the optimum balances the two (the cycle
        analogue of the Young/Daly checkpoint-interval formula).  Found
        by ternary search over the (unimodal) expected-cycles curve.
        """
        if total_work_cycles <= 0:
            raise ValueError("total work must be positive")
        lo, hi = 1, max(2, min(n_max, int(total_work_cycles)))
        while hi - lo > 2:
            m1 = lo + (hi - lo) // 3
            m2 = hi - (hi - lo) // 3
            if self.expected_total_cycles(total_work_cycles, m1) <= (
                self.expected_total_cycles(total_work_cycles, m2)
            ):
                hi = m2
            else:
                lo = m1
        candidates = range(lo, hi + 1)
        return min(
            candidates, key=lambda n: self.expected_total_cycles(total_work_cycles, n)
        )
