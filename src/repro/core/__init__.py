"""The paper's own contribution (Sec. V and Fig. 1).

Sec. V analyzes a fault-tolerant, timing-guaranteed system where

* register-level errors strike with a static per-cycle probability
  (:mod:`repro.core.error_model`, Eqs. (1)-(2)),
* a checkpointing and rollback-recovery mechanism corrects them at a
  cycle cost (:mod:`repro.core.checkpoint`),
* a cycle-noise mitigation mechanism (budget policies DS / DS 1.5x /
  DS 2x / WCET over per-segment processor speeds) keeps deadlines
  (:mod:`repro.core.cycle_noise`),
* an ADPCM-like segmented workload exercises it
  (:mod:`repro.core.workload`), and
* Monte Carlo sweeps over error probability regenerate Fig. 5 (rollbacks
  per segment) and Fig. 6 (deadline hit rate)
  (:mod:`repro.core.montecarlo`).

:mod:`repro.core.framework` provides the Fig. 1 learning-based
reliability-management loop shared with :mod:`repro.system`.
"""

from repro.core.error_model import (
    prob_no_error,
    rollback_pmf,
    expected_rollbacks,
    sample_rollbacks,
    sample_rollbacks_batch,
)
from repro.core.checkpoint import CheckpointSystem, CHECKPOINT_CYCLES, ROLLBACK_CYCLES
from repro.core.workload import SegmentedWorkload, adpcm_like_workload
from repro.core.cycle_noise import (
    BudgetPolicy,
    DS,
    DS_1_5X,
    DS_2X,
    WCET,
    ALL_POLICIES,
    MitigatedRun,
    BatchRunResult,
    simulate_run,
    simulate_runs_batch,
)
from repro.core.montecarlo import KERNELS, MonteCarloStudy, ErrorRateWall
from repro.core.framework import ReliabilityManagementLoop
from repro.core.learned_policy import (
    AdaptiveBudgetPolicy,
    MLExecutionTimePredictor,
    quantile_rollbacks,
)
from repro.core.cross_layer import (
    AgingAwareSystem,
    MissionLog,
    compare_strategies,
    run_mission,
)

__all__ = [
    "prob_no_error",
    "rollback_pmf",
    "expected_rollbacks",
    "sample_rollbacks",
    "sample_rollbacks_batch",
    "CheckpointSystem",
    "CHECKPOINT_CYCLES",
    "ROLLBACK_CYCLES",
    "SegmentedWorkload",
    "adpcm_like_workload",
    "BudgetPolicy",
    "DS",
    "DS_1_5X",
    "DS_2X",
    "WCET",
    "ALL_POLICIES",
    "MitigatedRun",
    "BatchRunResult",
    "simulate_run",
    "simulate_runs_batch",
    "KERNELS",
    "MonteCarloStudy",
    "ErrorRateWall",
    "ReliabilityManagementLoop",
    "AdaptiveBudgetPolicy",
    "MLExecutionTimePredictor",
    "quantile_rollbacks",
    "AgingAwareSystem",
    "MissionLog",
    "compare_strategies",
    "run_mission",
]
