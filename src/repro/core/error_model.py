"""Register-level error model (Sec. V-A, Eqs. (1) and (2)).

A cycle is erroneous when any pipeline-stage register holds a wrong
value; the per-cycle error probability ``p`` is static over time.  For an
interval of ``n_c`` cycles,

    Pr(N_e = 0) = (1 - p)^n_c                                  (1)

and the number of rollbacks a segment needs follows the geometric
distribution

    Pr(N_rb = n) = (1 - (1-p)^n_c)^n * (1-p)^n_c               (2)

with *no bound* on the number of re-computations — the property prior
work lacked (Sec. V-A).
"""

from __future__ import annotations

import numpy as np


def _validate(p, n_cycles):
    if not 0.0 <= p < 1.0:
        raise ValueError("error probability must be in [0, 1)")
    if np.any(np.asarray(n_cycles) < 0):
        raise ValueError("cycle count must be non-negative")


def prob_no_error(p, n_cycles):
    """Eq. (1): probability an interval of ``n_cycles`` is error-free.

    Computed in log space so huge cycle counts do not underflow to a
    hard zero prematurely.
    """
    _validate(p, n_cycles)
    n_cycles = np.asarray(n_cycles, dtype=float)
    if p == 0.0:
        return np.ones_like(n_cycles) if n_cycles.ndim else 1.0
    out = np.exp(n_cycles * np.log1p(-p))
    return float(out) if out.ndim == 0 else out


def rollback_pmf(p, n_cycles, n_rollbacks):
    """Eq. (2): probability of exactly ``n_rollbacks`` for one segment."""
    _validate(p, n_cycles)
    if np.any(np.asarray(n_rollbacks) < 0):
        raise ValueError("rollback count must be non-negative")
    q = prob_no_error(p, n_cycles)
    n_rollbacks = np.asarray(n_rollbacks, dtype=float)
    out = (1.0 - q) ** n_rollbacks * q
    return float(out) if out.ndim == 0 else out


def expected_rollbacks(p, n_cycles):
    """Mean of the geometric distribution of Eq. (2): ``(1-q)/q``."""
    _validate(p, n_cycles)
    q = prob_no_error(p, n_cycles)
    if np.any(np.asarray(q) <= 0.0):
        return np.inf
    out = (1.0 - q) / q
    return float(out) if np.ndim(out) == 0 else out


def sample_rollbacks(p, n_cycles, rng, cap=1_000_000):
    """Draw one rollback count from Eq. (2).

    ``cap`` guards the simulation against astronomically long runs deep
    past the error-rate wall (a capped sample only ever *understates*
    rollbacks, which is conservative for deadline-miss detection).
    """
    _validate(p, n_cycles)
    q = prob_no_error(p, n_cycles)
    if q <= 0.0:
        return cap
    if q >= 1.0:
        return 0
    # Geometric with success probability q; numpy counts trials, we count
    # failures before the first success.
    sample = int(rng.geometric(q)) - 1
    return min(sample, cap)


#: Substitute success probability for segments whose ``q`` underflowed
#: to zero (``rng.geometric`` rejects 0).  Small enough to stay on
#: numpy's inversion sampling path — which consumes exactly one uniform
#: per draw, like every other segment — yet the draw always saturates
#: far past any practical ``cap``, so the substituted value never shows.
_Q_UNDERFLOW_SUB = 1e-12


def sample_rollbacks_batch(p, n_cycles, rng, n_runs, cap=1_000_000):
    """Draw an ``(n_runs, n_segments)`` matrix of rollback counts, Eq. (2).

    Vectorized counterpart of :func:`sample_rollbacks` for Monte Carlo
    batches: ``n_cycles`` is the per-segment cycle vector and every row
    of the result is one independent run.

    **RNG draw-order contract**: the whole matrix comes from a *single*
    ``rng.geometric`` call filled in C (run-major) order — run 0's
    segments first, then run 1's, and so on.  For segments with a
    representable success probability this consumes the generator's
    stream exactly like the equivalent nest of scalar
    :func:`sample_rollbacks` calls in run-major order, so batched and
    scalar sampling are draw-for-draw identical there; segments where
    ``q`` underflows (the scalar path returns ``cap`` without drawing)
    still consume one draw per matrix entry on the batched path, which
    is where the two streams may diverge.  See ``docs/performance.md``.
    """
    _validate(p, n_cycles)
    if n_runs < 1:
        raise ValueError("need at least one run")
    n_cycles = np.atleast_1d(np.asarray(n_cycles, dtype=float))
    q = np.atleast_1d(np.asarray(prob_no_error(p, n_cycles), dtype=float))
    # rng.geometric rejects q == 0; hopeless columns draw (and discard) a
    # substituted tiny-q sample so every matrix entry consumes exactly
    # one uniform, then get pinned to the cap.  Representable tiny q
    # saturates at int64 max and is clipped to the cap like the scalar
    # sampler.
    hopeless = q <= 0.0
    q_safe = np.where(hopeless, _Q_UNDERFLOW_SUB, q)
    draws = np.clip(rng.geometric(q_safe, size=(n_runs, q.size)) - 1, 0, cap)
    if hopeless.any():
        draws[:, hopeless] = cap
    return draws
