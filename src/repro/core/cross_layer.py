"""Run-time cross-layer reliability management (Sec. VI-A).

The paper's first open challenge: faults and degradation propagate across
layers, and static per-layer margins compound into heavy pessimism.  This
module implements the canonical cross-layer loop for *aging*:

* **device layer** — NBTI shifts the threshold voltage over the mission
  (:mod:`repro.transistor.aging`), which
* **circuit layer** — stretches the critical-path delay (alpha-power law),
  which
* **system layer** — erodes the timing margin of the clock the system
  chose at design time.

Three management strategies are compared over a mission:

* ``static worst-case`` — clock at the end-of-life safe frequency from
  day one (the conventional guardband; always safe, always slow);
* ``static nominal`` — clock at the fresh-silicon frequency forever
  (fast until aging silently breaks timing);
* ``adaptive cross-layer`` — track the predicted threshold shift (from
  the physics model, or its HDC mimic for confidentiality) and re-clock
  each epoch just under the current safe frequency.

The adaptive loop may also scale voltage: raising VDD restores speed but
accelerates further aging — the cross-layer feedback that makes the
problem non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.transistor.aging import nbti_delta_vth
from repro.transistor.device import ALPHA

YEAR_S = 3.154e7


@dataclass
class MissionLog:
    """Per-epoch trace of one managed mission."""

    strategy: str
    times_y: list = field(default_factory=list)
    frequencies: list = field(default_factory=list)
    delays: list = field(default_factory=list)
    violations: int = 0
    work: float = 0.0  # accumulated cycles (GHz * seconds)

    @property
    def mean_frequency(self):
        return float(np.mean(self.frequencies)) if self.frequencies else 0.0


class AgingAwareSystem:
    """A clocked core whose critical path ages under NBTI.

    Parameters
    ----------
    nominal_delay_ps:
        Fresh-silicon critical-path delay at the nominal corner.
    vdd / vth0:
        Supply and fresh threshold voltage.
    duty_cycle / temperature_c:
        Stress conditions driving NBTI over the mission.
    """

    def __init__(
        self,
        nominal_delay_ps=500.0,
        vdd=0.8,
        vth0=0.30,
        duty_cycle=0.5,
        temperature_c=85.0,
    ):
        if nominal_delay_ps <= 0:
            raise ValueError("nominal delay must be positive")
        self.nominal_delay_ps = nominal_delay_ps
        self.vdd = vdd
        self.vth0 = vth0
        self.duty_cycle = duty_cycle
        self.temperature_c = temperature_c

    def delta_vth_at(self, t_seconds):
        """Threshold shift after ``t_seconds`` of mission stress."""
        if t_seconds <= 0:
            return 0.0
        return float(
            nbti_delta_vth(
                t_seconds, self.duty_cycle, self.temperature_c, vdd=self.vdd
            )
        )

    def delay_at(self, t_seconds, vdd=None):
        """Critical-path delay (ps) after aging, alpha-power scaled."""
        vdd = vdd if vdd is not None else self.vdd
        dvth = self.delta_vth_at(t_seconds)
        fresh_overdrive = self.vdd - self.vth0
        overdrive = vdd - (self.vth0 + dvth)
        if overdrive <= 0.02:
            return float("inf")
        return self.nominal_delay_ps * (fresh_overdrive / overdrive) ** ALPHA * (
            self.vdd / vdd
        )

    def safe_frequency_at(self, t_seconds, margin=0.02, vdd=None):
        """Maximum safe clock (GHz) with a small margin, given true aging."""
        delay = self.delay_at(t_seconds, vdd=vdd)
        if not np.isfinite(delay):
            return 0.0
        return 1000.0 / delay * (1.0 - margin)

    def nominal_frequency(self, margin=0.02):
        return 1000.0 / self.nominal_delay_ps * (1.0 - margin)


def run_mission(
    system,
    strategy,
    mission_years=10.0,
    epochs_per_year=12,
    aging_predictor=None,
    margin=0.02,
):
    """Simulate a mission under one clocking strategy.

    Parameters
    ----------
    strategy:
        ``"static_worst_case"``, ``"static_nominal"``, or ``"adaptive"``.
    aging_predictor:
        For the adaptive strategy: callable ``t_seconds -> delta_vth``
        used by the manager (the true physics model by default, or an
        HDC mimic for the confidentiality scenario).  Prediction error
        translates directly into violations or lost work.
    """
    if strategy not in ("static_worst_case", "static_nominal", "adaptive"):
        raise ValueError(f"unknown strategy {strategy!r}")
    n_epochs = int(mission_years * epochs_per_year)
    dt_s = mission_years * YEAR_S / n_epochs
    log = MissionLog(strategy=strategy)

    eol_s = mission_years * YEAR_S
    if strategy == "static_worst_case":
        fixed_freq = system.safe_frequency_at(eol_s, margin=margin)
    elif strategy == "static_nominal":
        fixed_freq = system.nominal_frequency(margin=margin)
    else:
        fixed_freq = None
        predictor = aging_predictor or system.delta_vth_at

    for epoch in range(n_epochs):
        t = epoch * dt_s
        if strategy == "adaptive":
            dvth = predictor(t) if t > 0 else 0.0
            overdrive = system.vdd - (system.vth0 + dvth)
            if overdrive <= 0.02:
                freq = 0.0
            else:
                predicted_delay = system.nominal_delay_ps * (
                    (system.vdd - system.vth0) / overdrive
                ) ** ALPHA
                freq = 1000.0 / predicted_delay * (1.0 - margin)
        else:
            freq = fixed_freq
        true_delay = system.delay_at(t)
        period_ps = 1000.0 / freq if freq > 0 else float("inf")
        violated = period_ps < true_delay
        if violated:
            log.violations += 1
        else:
            log.work += freq * dt_s  # only violation-free cycles count
        log.times_y.append(t / YEAR_S)
        log.frequencies.append(freq)
        log.delays.append(true_delay)
    return log


def compare_strategies(
    system, mission_years=10.0, aging_predictor=None, epochs_per_year=12
):
    """Run all three strategies; returns {strategy: MissionLog}."""
    return {
        s: run_mission(
            system,
            s,
            mission_years=mission_years,
            epochs_per_year=epochs_per_year,
            aging_predictor=aging_predictor,
        )
        for s in ("static_worst_case", "static_nominal", "adaptive")
    }
