"""The Fig. 3 self-heating flow: per-instance SHE through conventional STA.

Upper flow of Fig. 3:

1. characterize the standard-cell library normally (delays), and again
   with SPICE instructions that *measure SHE temperatures* per timing arc;
2. copy the SHE temperatures into the cell library, replacing delay
   information;
3. run conventional STA with the SHE library — the resulting SDF holds,
   for every cell instance, its maximum SHE temperature under its actual
   slew/load conditions (Fig. 2's per-instance temperature map).

Slew tables are retained from the delay characterization so transition
propagation during STA stays physical while the "delay" slot carries
temperatures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.cell import StandardCell
from repro.circuit.characterization import SpiceLikeCharacterizer
from repro.circuit.sta import StaticTimingAnalysis, write_sdf


@dataclass
class SheReport:
    """Per-instance SHE results of one flow run."""

    instance_delta_t: dict  # instance name -> max SHE dT (K)
    instance_cell: dict  # instance name -> cell name
    sdf_text: str

    def temperatures(self):
        return np.array(list(self.instance_delta_t.values()))

    def spread(self):
        """(min, mean, max) SHE dT across instances — the Fig. 2 spread."""
        t = self.temperatures()
        return float(t.min()), float(t.mean()), float(t.max())

    def per_cell_type(self):
        """Mapping cell name -> list of instance SHE dTs.

        The paper's point: one cell *type* experiences a wide variety of
        SHE temperatures depending on instance position and connectivity.
        """
        by_cell = {}
        for name, dt in self.instance_delta_t.items():
            by_cell.setdefault(self.instance_cell[name], []).append(dt)
        return by_cell

    def histogram(self, bins=10):
        counts, edges = np.histogram(self.temperatures(), bins=bins)
        return counts, edges


class SheFlow:
    """Run the Fig. 3 upper flow on a netlist.

    Parameters
    ----------
    characterizer:
        The SPICE-like characterizer (shared cost counter).
    activity:
        Assumed switching activity for SHE power.
    """

    def __init__(self, characterizer=None, activity=1.0):
        self.characterizer = characterizer or SpiceLikeCharacterizer()
        self.activity = activity

    def build_she_library(self, delay_library):
        """SHE-characterized copy of a delay-characterized library.

        Delay tables are replaced by SHE temperature tables; output-slew
        tables are copied from the delay characterization so STA
        propagates realistic transitions.
        """
        she_lib = delay_library.clone_empty(name=f"{delay_library.name}_she")
        for cell in delay_library:
            if not cell.arcs:
                raise ValueError(
                    f"cell {cell.name} is uncharacterized; run delay characterization first"
                )
            clone = cell.clone_uncharacterized()
            self.characterizer.characterize_cell_she(
                clone, vdd=delay_library.vdd, activity=self.activity
            )
            # Keep physical slew propagation from the delay characterization.
            for she_arc, delay_arc in zip(clone.arcs, cell.arcs):
                she_arc.output_slew = delay_arc.output_slew
            she_lib.add(clone)
        return she_lib

    def run(self, netlist, delay_library, input_slew_ps=20.0):
        """Execute the flow and return a :class:`SheReport`."""
        she_library = self.build_she_library(delay_library)
        sta = StaticTimingAnalysis(
            netlist, she_library, input_slew_ps=input_slew_ps
        ).run()
        annotation = sta.annotation()
        sdf = write_sdf(sta, design_name=f"{netlist.name}_she")
        instance_cell = {name: netlist.get(name).cell_name for name in annotation}
        return SheReport(
            instance_delta_t=annotation,
            instance_cell=instance_cell,
            sdf_text=sdf,
        )
