"""Standard-cell and circuit level (Sec. II, Figs. 2-3).

Implements the EDA substrate the paper's self-heating flow runs on:

* NLDM-style standard cells and libraries (:mod:`repro.circuit.cell`,
  :mod:`repro.circuit.library`),
* a "SPICE-like" characterizer standing in for proprietary foundry decks
  (:mod:`repro.circuit.characterization`),
* gate-level netlists plus a synthetic processor-core generator
  (:mod:`repro.circuit.netlist`),
* a static timing analysis engine with an SDF writer
  (:mod:`repro.circuit.sta`),
* the Fig. 3 SHE flow — characterize self-heating *temperatures* into a
  library and extract per-instance SHE through ordinary STA
  (:mod:`repro.circuit.she_flow`),
* ML-based on-the-fly library characterization generating thousands of
  per-instance corner cells in one shot (:mod:`repro.circuit.ml_characterization`),
* guardband estimation comparing worst-case vs SHE-aware ML corners
  (:mod:`repro.circuit.guardband`).
"""

from repro.circuit.cell import LookupTable, TimingArc, StandardCell
from repro.circuit.library import Library, build_default_library
from repro.circuit.characterization import SpiceLikeCharacterizer
from repro.circuit.netlist import Netlist, Instance, synthesize_core
from repro.circuit.sta import StaticTimingAnalysis, write_sdf
from repro.circuit.she_flow import SheFlow
from repro.circuit.ml_characterization import MLCharacterizer
from repro.circuit.guardband import guardband_comparison
from repro.circuit.liberty import write_liberty, parse_liberty, read_liberty
from repro.circuit.signal_probability import (
    propagate_probabilities,
    instance_stress,
    switching_activity,
)
from repro.circuit.aging_flow import AgingFlow, AgingSignoffResult

__all__ = [
    "LookupTable",
    "TimingArc",
    "StandardCell",
    "Library",
    "build_default_library",
    "SpiceLikeCharacterizer",
    "Netlist",
    "Instance",
    "synthesize_core",
    "StaticTimingAnalysis",
    "write_sdf",
    "SheFlow",
    "MLCharacterizer",
    "guardband_comparison",
    "write_liberty",
    "parse_liberty",
    "read_liberty",
    "propagate_probabilities",
    "instance_stress",
    "switching_activity",
    "AgingFlow",
    "AgingSignoffResult",
]
