"""Gate-level netlists and a synthetic processor-core generator.

The netlist is a DAG of cell instances between primary inputs and timing
endpoints.  :func:`synthesize_core` generates a layered, processor-like
post-layout design with realistic fan-out and wire-load distributions —
the substitution for the paper's RISC-V core layout of Fig. 2 (what
matters there is the per-instance *diversity* of slews and loads, which
layering + random fan-out reproduces).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Instance:
    """One placed cell instance.

    Attributes
    ----------
    name:
        Unique instance name, e.g. ``"u123"``.
    cell_name:
        Library cell this instance maps to.
    fanin:
        Mapping input pin -> driver (instance name or primary-input name).
    wire_cap_ff:
        Extra interconnect capacitance on the output net.
    """

    name: str
    cell_name: str
    fanin: dict = field(default_factory=dict)
    wire_cap_ff: float = 0.0


class Netlist:
    """A combinational netlist between primary inputs and outputs.

    Instances must form a DAG; :meth:`topological_order` raises on cycles.
    """

    def __init__(self, name="design"):
        self.name = name
        self.primary_inputs = []
        self.primary_outputs = []  # instance names whose outputs are POs
        self._instances = {}
        self._fanout_cache = None

    def add_primary_input(self, name):
        if name in self._instances or name in self.primary_inputs:
            raise ValueError(f"name {name!r} already used")
        self.primary_inputs.append(name)
        self._fanout_cache = None
        return name

    def add_instance(self, instance):
        if instance.name in self._instances or instance.name in self.primary_inputs:
            raise ValueError(f"name {instance.name!r} already used")
        for pin, driver in instance.fanin.items():
            if driver not in self._instances and driver not in self.primary_inputs:
                raise ValueError(
                    f"instance {instance.name!r} pin {pin!r} driven by unknown {driver!r}"
                )
        self._instances[instance.name] = instance
        self._fanout_cache = None
        return instance

    def mark_primary_output(self, instance_name):
        if instance_name not in self._instances:
            raise ValueError(f"unknown instance {instance_name!r}")
        self.primary_outputs.append(instance_name)

    def get(self, name):
        return self._instances[name]

    def __len__(self):
        return len(self._instances)

    def __iter__(self):
        return iter(self._instances.values())

    def instance_names(self):
        return list(self._instances)

    def fanout_map(self):
        """Mapping driver name -> list of (instance name, input pin) sinks."""
        if self._fanout_cache is None:
            fanout = {name: [] for name in self.primary_inputs}
            fanout.update({name: [] for name in self._instances})
            for inst in self._instances.values():
                for pin, driver in inst.fanin.items():
                    fanout[driver].append((inst.name, pin))
            self._fanout_cache = fanout
        return self._fanout_cache

    def topological_order(self):
        """Instance names in topological order (inputs first); raises on cycles."""
        indegree = {name: len(inst.fanin) for name, inst in self._instances.items()}
        # Edges from primary inputs are satisfied immediately.
        for inst in self._instances.values():
            for driver in inst.fanin.values():
                if driver in self.primary_inputs:
                    indegree[inst.name] -= 1
        ready = [n for n, d in indegree.items() if d == 0]
        fanout = self.fanout_map()
        order = []
        while ready:
            name = ready.pop()
            order.append(name)
            for sink, _pin in fanout[name]:
                indegree[sink] -= 1
                if indegree[sink] == 0:
                    ready.append(sink)
        if len(order) != len(self._instances):
            raise ValueError("netlist contains a combinational cycle")
        return order

    def load_of(self, name, library):
        """Total load (fF) on an instance/PI output: sink pin caps + wire cap."""
        load = 0.0
        for sink_name, _pin in self.fanout_map()[name]:
            sink = self._instances[sink_name]
            load += library.get(sink.cell_name).input_cap_ff
        if name in self._instances:
            load += self._instances[name].wire_cap_ff
        return load


def synthesize_core(
    library,
    n_instances=800,
    n_inputs=32,
    n_levels=12,
    seed=0,
    output_fraction=0.08,
):
    """Generate a processor-core-like layered netlist over ``library`` cells.

    Instances are placed into ``n_levels`` logic levels; each instance's
    input pins connect to random drivers from the previous few levels (a
    locality model of placed logic), and wire caps follow a lognormal
    distribution as in routed designs.  Sequential cells (DFFs) are placed
    at the final level so the design has register endpoints.
    """
    if n_instances < n_levels:
        raise ValueError("need at least one instance per level")
    rng = np.random.default_rng(seed)
    netlist = Netlist(name=f"core_{n_instances}")
    for i in range(n_inputs):
        netlist.add_primary_input(f"pi{i}")

    comb_cells = [c.name for c in library.combinational_cells()]
    seq_cells = [c.name for c in library if c.is_sequential]
    level_of = {}
    levels = [[] for _ in range(n_levels)]
    # Distribute instances over levels with a mid-heavy profile like real cones.
    weights = np.array([1.0 + np.sin(np.pi * (l + 1) / (n_levels + 1)) for l in range(n_levels)])
    weights /= weights.sum()
    counts = np.maximum(1, (weights * n_instances).astype(int))
    while counts.sum() < n_instances:
        counts[rng.integers(n_levels)] += 1
    while counts.sum() > n_instances:
        counts[int(np.argmax(counts))] -= 1

    uid = 0
    for level in range(n_levels):
        for _ in range(counts[level]):
            name = f"u{uid}"
            uid += 1
            is_last = level == n_levels - 1
            if is_last and seq_cells and rng.random() < 0.5:
                cell_name = seq_cells[rng.integers(len(seq_cells))]
            else:
                cell_name = comb_cells[rng.integers(len(comb_cells))]
            cell = library.get(cell_name)
            fanin = {}
            for pin in cell.inputs:
                if level == 0:
                    driver = f"pi{rng.integers(n_inputs)}"
                else:
                    # Prefer nearby levels (placement locality).
                    back = min(int(rng.exponential(1.2)) + 1, level)
                    candidates = levels[level - back]
                    if not candidates:
                        candidates = levels[level - 1]
                    driver = candidates[rng.integers(len(candidates))]
                fanin[pin] = driver
            wire_cap = float(rng.lognormal(mean=0.2, sigma=0.6))
            inst = Instance(name=name, cell_name=cell_name, fanin=fanin, wire_cap_ff=wire_cap)
            netlist.add_instance(inst)
            levels[level].append(name)
            level_of[name] = level

    # Primary outputs: the sequential endpoints plus a sample of last levels.
    for name in levels[-1]:
        netlist.mark_primary_output(name)
    n_extra = max(1, int(output_fraction * n_instances))
    pool = [n for lvl in levels[:-1] for n in lvl]
    for name in rng.choice(pool, size=min(n_extra, len(pool)), replace=False):
        netlist.mark_primary_output(str(name))
    return netlist
