"""Guardband estimation: worst-case corner vs SHE-aware per-instance ML corner.

The payoff of the Fig. 3 flow (Sec. II): conventional sign-off assumes
every cell sits at the global worst-case temperature (chip temperature
plus the maximum possible SHE anywhere), while the SHE-aware flow gives
each instance its *actual* channel temperature.  Less pessimism means a
smaller timing guardband at full reliability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.characterization import SpiceLikeCharacterizer
from repro.circuit.ml_characterization import MLCharacterizer
from repro.circuit.she_flow import SheFlow
from repro.circuit.sta import StaticTimingAnalysis


@dataclass
class GuardbandResult:
    """Clock periods (ps) under the two sign-off strategies."""

    nominal_period: float  # no SHE consideration at all (optimistic floor)
    worst_case_period: float  # global worst-case SHE corner (conventional)
    she_aware_period: float  # per-instance SHE corner via ML characterization
    max_she_dt: float
    ml_validation_mape: float

    @property
    def guardband_worst_case(self):
        """Sign-off margin added by the conventional flow (ps)."""
        return self.worst_case_period - self.nominal_period

    @property
    def guardband_she_aware(self):
        return self.she_aware_period - self.nominal_period

    @property
    def guardband_reduction(self):
        """Fraction of the conventional guardband removed by the SHE flow."""
        wc = self.guardband_worst_case
        if wc <= 0:
            return 0.0
        return (wc - self.guardband_she_aware) / wc

    @property
    def performance_gain(self):
        """Clock-frequency gain of SHE-aware sign-off over worst-case."""
        return self.worst_case_period / self.she_aware_period - 1.0


def guardband_comparison(
    netlist,
    base_library_factory,
    chip_temperature_c=45.0,
    aging_delta_vth=0.03,
    ml_training_samples=1500,
    seed=0,
):
    """Run nominal, worst-case, and SHE-aware sign-off on one netlist.

    Parameters
    ----------
    base_library_factory:
        Zero-argument callable returning a fresh, *uncharacterized*
        library (cells are characterized at different corners per flow).
    chip_temperature_c:
        Ambient/chip temperature on top of which SHE adds.
    aging_delta_vth:
        End-of-life threshold shift applied in every corner (the study
        isolates the SHE pessimism, so aging is equal across flows).
    """
    characterizer = SpiceLikeCharacterizer()

    # 1. Nominal sign-off: chip temperature, no SHE (the optimistic floor).
    nominal_lib = base_library_factory()
    nominal_lib.temperature_c = chip_temperature_c
    nominal_lib.delta_vth = aging_delta_vth
    characterizer.characterize_library(nominal_lib)
    nominal_sta = StaticTimingAnalysis(netlist, nominal_lib).run()
    nominal_period = nominal_sta.min_feasible_period()

    # 2. Per-instance SHE temperatures via the Fig. 3 upper flow.
    she_report = SheFlow(characterizer).run(netlist, nominal_lib)
    max_dt = she_report.spread()[2]

    # 3. Conventional worst-case corner: everyone at chip temp + max SHE.
    worst_lib = base_library_factory()
    worst_lib.temperature_c = chip_temperature_c + max_dt
    worst_lib.delta_vth = aging_delta_vth
    characterizer.characterize_library(worst_lib)
    worst_sta = StaticTimingAnalysis(netlist, worst_lib).run()
    worst_period = worst_sta.min_feasible_period()

    # 4. SHE-aware flow: ML-generated per-instance corner library.
    ml = MLCharacterizer(oracle=characterizer, seed=seed)
    ml.fit(nominal_lib, n_samples=ml_training_samples)
    mape = ml.validate(nominal_lib)
    instance_temps = {
        name: chip_temperature_c + dt
        for name, dt in she_report.instance_delta_t.items()
    }
    instance_dvth = {name: aging_delta_vth for name in instance_temps}
    _, resolver = ml.generate_instance_library(
        netlist, nominal_lib, instance_temps, instance_dvth
    )
    aware_sta = StaticTimingAnalysis(
        netlist, nominal_lib, cell_resolver=resolver
    ).run()
    aware_period = aware_sta.min_feasible_period()

    return GuardbandResult(
        nominal_period=nominal_period,
        worst_case_period=worst_period,
        she_aware_period=aware_period,
        max_she_dt=max_dt,
        ml_validation_mape=mape,
    )
