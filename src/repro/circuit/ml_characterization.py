"""ML-based on-the-fly cell-library characterization (Fig. 3 lower flow).

The per-instance corner idea ("characterize each cell instance in the
circuit under the impact of its corresponding SHE temperature") yields
thousands of cells — infeasible with SPICE but fast with an ML model that
maps (cell descriptor, slew, load, temperature, delta-Vth) to delay
(ref [9]).  The model is trained once per technology from a modest sample
of SPICE-like characterizations, then generates circuit-specific corner
libraries "within seconds".
"""

from __future__ import annotations

import numpy as np

from repro.circuit.cell import LookupTable, TimingArc
from repro.circuit.characterization import SpiceLikeCharacterizer
from repro.ml.mlp import MLPRegressor
from repro.ml.preprocessing import StandardScaler


def _cell_features(cell):
    """Structural descriptor of a cell, independent of operating condition."""
    ref = cell.transistors[0]
    return [
        ref.width_nm / 100.0,
        np.log(ref.width_nm / 100.0),
        float(ref.n_fins),
        float(len(cell.inputs)),
        float(cell.stack_depth),
        cell.input_cap_ff,
        float(cell.n_transistors),
    ]


def _condition_features(slew, load, temperature_c, delta_vth):
    """Operating-condition features, with log transforms for the decades-wide
    slew/load axes (keeps the regression smooth across the NLDM grid)."""
    return [
        slew,
        np.log(slew),
        load,
        np.log(load),
        temperature_c,
        delta_vth,
    ]


class MLCharacterizer:
    """Learned replacement for SPICE-based cell characterization.

    Parameters
    ----------
    oracle:
        The :class:`SpiceLikeCharacterizer` used to produce training
        labels (stands in for the foundry's SPICE flow).
    model_factory:
        Zero-argument callable returning a fresh regressor with
        ``fit``/``predict``; defaults to an MLP regressor on log-delay.
    """

    def __init__(self, oracle=None, model_factory=None, seed=0):
        self.oracle = oracle or SpiceLikeCharacterizer()
        self.model_factory = model_factory or (
            lambda: MLPRegressor(
                hidden=(96, 96), lr=3e-3, n_epochs=500, batch_size=64, seed=seed
            )
        )
        self.seed = seed
        self._scaler = None
        self._model = None
        self.training_points_ = 0

    # -- training -------------------------------------------------------------
    def _sample_conditions(self, n_samples, rng):
        slews = rng.uniform(5.0, 160.0, n_samples)
        loads = rng.uniform(1.0, 32.0, n_samples)
        temps = rng.uniform(25.0, 150.0, n_samples)
        dvth = rng.uniform(0.0, 0.06, n_samples)
        return slews, loads, temps, dvth

    def fit(self, library, n_samples=1500):
        """Train on random (cell, condition) pairs labelled by the oracle."""
        cells = list(library)
        if not cells:
            raise ValueError("library is empty")
        rng = np.random.default_rng(self.seed)
        slews, loads, temps, dvth = self._sample_conditions(n_samples, rng)
        X = []
        y = []
        for i in range(n_samples):
            cell = cells[rng.integers(len(cells))]
            delay = self.oracle.arc_delay(
                cell,
                slews[i],
                loads[i],
                temperature_c=temps[i],
                vdd=library.vdd,
                delta_vth=dvth[i],
            )
            X.append(_cell_features(cell) + _condition_features(slews[i], loads[i], temps[i], dvth[i]))
            y.append(delay)
        X = np.asarray(X)
        y = np.asarray(y)
        self._scaler = StandardScaler().fit(X)
        self._model = self.model_factory()
        # Learn log-delay: delays span decades across strengths/loads.
        self._model.fit(self._scaler.transform(X), np.log(y))
        self.training_points_ = n_samples
        return self

    # -- inference ------------------------------------------------------------
    def predict_delay(self, cell, slew, load, temperature_c=25.0, delta_vth=0.0):
        """Predicted arc delay (ps) for one condition."""
        if self._model is None:
            raise RuntimeError("MLCharacterizer is not fitted")
        x = np.asarray(
            [_cell_features(cell) + _condition_features(slew, load, temperature_c, delta_vth)]
        )
        return float(np.exp(self._model.predict(self._scaler.transform(x))[0]))

    def _predict_grid(self, cell, slews, loads, temperature_c, delta_vth):
        if self._model is None:
            raise RuntimeError("MLCharacterizer is not fitted")
        rows = []
        for s in slews:
            for c in loads:
                rows.append(
                    _cell_features(cell) + _condition_features(s, c, temperature_c, delta_vth)
                )
        pred = np.exp(self._model.predict(self._scaler.transform(np.asarray(rows))))
        return pred.reshape(len(slews), len(loads))

    def characterize_cell(
        self, cell, temperature_c=25.0, delta_vth=0.0, slews=None, loads=None
    ):
        """Fill a cell's arcs with ML-predicted tables (no oracle calls)."""
        slews = tuple(slews or self.oracle.slews)
        loads = tuple(loads or self.oracle.loads)
        grid = self._predict_grid(cell, slews, loads, temperature_c, delta_vth)
        cell.arcs = []
        for pin in cell.inputs:
            slew_grid = 0.9 * grid + 0.08 * np.asarray(slews)[:, None]
            cell.arcs.append(
                TimingArc(
                    input_pin=pin,
                    output_pin=cell.output,
                    delay=LookupTable(slews, loads, grid),
                    output_slew=LookupTable(slews, loads, slew_grid),
                )
            )
        return cell

    def generate_instance_library(
        self,
        netlist,
        base_library,
        instance_temperature,
        instance_delta_vth=None,
        name=None,
    ):
        """Per-instance corner cells for a whole netlist in one shot.

        Parameters
        ----------
        instance_temperature:
            Mapping instance name -> channel temperature (chip temperature
            plus its SHE dT from :class:`repro.circuit.she_flow.SheFlow`).
        instance_delta_vth:
            Optional mapping instance name -> aging shift.

        Returns
        -------
        (library, resolver):
            ``library`` holds one characterized cell per instance (named
            ``"<cell>@<instance>"``); ``resolver`` plugs directly into
            :class:`repro.circuit.sta.StaticTimingAnalysis`.
        """
        instance_delta_vth = instance_delta_vth or {}
        lib = base_library.clone_empty(name=name or f"{base_library.name}_per_instance")
        mapping = {}
        for inst in netlist:
            base_cell = base_library.get(inst.cell_name)
            per_inst = base_cell.clone_uncharacterized(
                name=f"{inst.cell_name}@{inst.name}"
            )
            self.characterize_cell(
                per_inst,
                temperature_c=instance_temperature.get(inst.name, base_library.temperature_c),
                delta_vth=instance_delta_vth.get(inst.name, base_library.delta_vth),
            )
            lib.add(per_inst)
            mapping[inst.name] = per_inst

        def resolver(instance):
            return mapping[instance.name]

        return lib, resolver

    def validate(self, library, n_samples=300, seed=1):
        """Mean absolute percentage error vs the oracle on held-out points."""
        cells = list(library)
        rng = np.random.default_rng(seed)
        slews, loads, temps, dvth = self._sample_conditions(n_samples, rng)
        errors = []
        for i in range(n_samples):
            cell = cells[rng.integers(len(cells))]
            truth = self.oracle.arc_delay(
                cell, slews[i], loads[i],
                temperature_c=temps[i], vdd=library.vdd, delta_vth=dvth[i],
            )
            pred = self.predict_delay(
                cell, slews[i], loads[i], temperature_c=temps[i], delta_vth=dvth[i]
            )
            errors.append(abs(pred - truth) / truth)
        return float(np.mean(errors))
