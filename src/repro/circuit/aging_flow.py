"""Workload-dependent circuit aging estimation (refs [11], [12]).

Conventional sign-off assumes every transistor ages at the worst-case
stress (duty cycle 1.0, maximum activity) for the full lifetime.  The
surveyed ML flow instead estimates each instance's *actual* stress from
the workload's signal statistics, predicts its per-instance threshold
shift with the device aging models, and generates an aged per-instance
corner library with the ML characterizer — the aging twin of the SHE
flow, reusing the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.ml_characterization import MLCharacterizer
from repro.circuit.signal_probability import instance_stress
from repro.circuit.sta import StaticTimingAnalysis
from repro.transistor.aging import combined_delta_vth


@dataclass
class AgingSignoffResult:
    """Clock periods under fresh, worst-case-aged, and workload-aware flows."""

    fresh_period: float
    worst_case_period: float
    workload_aware_period: float
    max_delta_vth: float
    mean_delta_vth: float

    @property
    def guardband_worst_case(self):
        return self.worst_case_period - self.fresh_period

    @property
    def guardband_workload_aware(self):
        return self.workload_aware_period - self.fresh_period

    @property
    def guardband_reduction(self):
        wc = self.guardband_worst_case
        if wc <= 0:
            return 0.0
        return (wc - self.guardband_workload_aware) / wc


class AgingFlow:
    """Per-instance workload-dependent aging sign-off.

    Parameters
    ----------
    characterizer:
        The SPICE-like oracle used for reference corners and ML training.
    lifetime_s:
        Projected lifetime (default 10 years).
    temperature_c:
        Mission temperature driving the aging physics.
    """

    def __init__(self, characterizer, lifetime_s=3.15e8, temperature_c=85.0):
        self.characterizer = characterizer
        self.lifetime_s = lifetime_s
        self.temperature_c = temperature_c

    def instance_delta_vth(self, netlist, library, pi_probabilities=None):
        """Per-instance end-of-life threshold shift from workload stress."""
        stress = instance_stress(netlist, pi_probabilities)
        shifts = {}
        for name, s in stress.items():
            inst = netlist.get(name)
            cell = library.get(inst.cell_name)
            ref = cell.transistors[0]
            shifts[name] = float(
                combined_delta_vth(
                    ref,
                    self.lifetime_s,
                    duty_cycle=s["duty_cycle"],
                    switching_activity=s["activity"],
                    temperature_c=self.temperature_c,
                    vdd=library.vdd,
                )
            )
        return shifts

    def worst_case_delta_vth(self, library):
        """The blanket shift conventional sign-off assumes for every cell."""
        ref = next(iter(library)).transistors[0]
        return float(
            combined_delta_vth(
                ref,
                self.lifetime_s,
                duty_cycle=1.0,
                switching_activity=0.5,
                temperature_c=self.temperature_c,
                vdd=library.vdd,
            )
        )

    def signoff(
        self,
        netlist,
        base_library_factory,
        pi_probabilities=None,
        ml_training_samples=3000,
        seed=0,
    ):
        """Compare fresh / worst-case-aged / workload-aware sign-off."""
        # Fresh reference corner.
        fresh_lib = base_library_factory()
        fresh_lib.temperature_c = self.temperature_c
        self.characterizer.characterize_library(fresh_lib)
        fresh_period = (
            StaticTimingAnalysis(netlist, fresh_lib).run().min_feasible_period()
        )

        # Conventional worst-case aging corner.
        wc_shift = self.worst_case_delta_vth(fresh_lib)
        worst_lib = base_library_factory()
        worst_lib.temperature_c = self.temperature_c
        worst_lib.delta_vth = wc_shift
        self.characterizer.characterize_library(worst_lib)
        worst_period = (
            StaticTimingAnalysis(netlist, worst_lib).run().min_feasible_period()
        )

        # Workload-aware per-instance shifts via the ML characterizer.
        shifts = self.instance_delta_vth(netlist, fresh_lib, pi_probabilities)
        ml = MLCharacterizer(oracle=self.characterizer, seed=seed)
        ml.fit(fresh_lib, n_samples=ml_training_samples)
        temps = {name: self.temperature_c for name in shifts}
        _, resolver = ml.generate_instance_library(
            netlist, fresh_lib, temps, instance_delta_vth=shifts
        )
        aware_period = (
            StaticTimingAnalysis(netlist, fresh_lib, cell_resolver=resolver)
            .run()
            .min_feasible_period()
        )

        values = np.asarray(list(shifts.values()))
        return AgingSignoffResult(
            fresh_period=fresh_period,
            worst_case_period=worst_period,
            workload_aware_period=aware_period,
            max_delta_vth=float(values.max()),
            mean_delta_vth=float(values.mean()),
        )
