"""Signal-probability propagation through a netlist.

Workload-dependent aging (refs [11], [12]) needs each instance's stress
statistics: the probability its output (and inputs) sit at logic high,
and its switching activity.  This module propagates primary-input signal
probabilities through the gate network using per-kind probability
functions (inputs treated as independent — the standard first-order
approximation), plus a lag-one activity estimate.
"""

from __future__ import annotations

import numpy as np


def _kind_of(cell_name):
    return cell_name.split("_")[0]


def output_probability(kind, input_probs):
    """P(output = 1) of a gate given independent input-high probabilities."""
    p = list(input_probs)
    if kind in ("INV",):
        return 1.0 - p[0]
    if kind in ("BUF", "DFF"):
        return p[0]
    if kind == "NAND2":
        return 1.0 - p[0] * p[1]
    if kind == "NAND3":
        return 1.0 - p[0] * p[1] * p[2]
    if kind == "NOR2":
        return (1.0 - p[0]) * (1.0 - p[1])
    if kind == "NOR3":
        return (1.0 - p[0]) * (1.0 - p[1]) * (1.0 - p[2])
    if kind == "AND2":
        return p[0] * p[1]
    if kind == "OR2":
        return 1.0 - (1.0 - p[0]) * (1.0 - p[1])
    if kind == "XOR2":
        return p[0] * (1.0 - p[1]) + p[1] * (1.0 - p[0])
    if kind == "XNOR2":
        return 1.0 - (p[0] * (1.0 - p[1]) + p[1] * (1.0 - p[0]))
    if kind == "AOI21":  # Y = !((A & B) | C)
        return (1.0 - p[0] * p[1]) * (1.0 - p[2])
    if kind == "OAI21":  # Y = !((A | B) & C)
        return 1.0 - (1.0 - (1.0 - p[0]) * (1.0 - p[1])) * p[2]
    raise ValueError(f"no probability model for cell kind {kind!r}")


def propagate_probabilities(netlist, pi_probabilities=None, default_pi=0.5):
    """Per-net signal probabilities over a netlist.

    Parameters
    ----------
    pi_probabilities:
        Mapping primary-input name -> P(high); missing PIs default to
        ``default_pi``.

    Returns
    -------
    dict
        net name (PI or instance name) -> P(high).
    """
    probs = {}
    pi_probabilities = pi_probabilities or {}
    for pi in netlist.primary_inputs:
        p = pi_probabilities.get(pi, default_pi)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability for {pi!r} out of range")
        probs[pi] = float(p)
    for name in netlist.topological_order():
        inst = netlist.get(name)
        kind = _kind_of(inst.cell_name)
        # Pin order matters for AOI/OAI; follow the cell's declared inputs.
        input_probs = [probs[inst.fanin[pin]] for pin in sorted(inst.fanin)]
        probs[name] = float(np.clip(output_probability(kind, input_probs), 0.0, 1.0))
    return probs


def switching_activity(probability):
    """Lag-one activity estimate: P(toggle) = 2 p (1 - p) for i.i.d. cycles."""
    p = np.asarray(probability, dtype=float)
    return 2.0 * p * (1.0 - p)


def instance_stress(netlist, pi_probabilities=None, default_pi=0.5):
    """Per-instance aging stress statistics.

    Returns a mapping instance name -> dict with

    * ``duty_cycle`` — fraction of time the PMOS pull-up network is under
      NBTI stress.  A PMOS stresses while its gate input is low; the
      first-order per-cell figure is the mean input-low probability.
    * ``activity`` — mean input switching activity (drives HCI).
    * ``output_probability`` — P(output high).
    """
    probs = propagate_probabilities(netlist, pi_probabilities, default_pi)
    stress = {}
    for name in netlist.instance_names():
        inst = netlist.get(name)
        input_ps = [probs[d] for d in inst.fanin.values()]
        if input_ps:
            duty = float(np.mean([1.0 - p for p in input_ps]))
            activity = float(np.mean(switching_activity(input_ps)))
        else:
            duty, activity = 0.5, 0.1
        stress[name] = {
            "duty_cycle": duty,
            "activity": activity,
            "output_probability": probs[name],
        }
    return stress
