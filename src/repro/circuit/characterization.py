"""SPICE-like standard-cell characterization.

Stands in for the transistor-level simulation a foundry flow would run
(Sec. II, Fig. 3).  For each timing arc and each (input slew, output load)
grid point it evaluates the analytic device models of
:mod:`repro.transistor` — including the PVT+aging corner — and fills NLDM
lookup tables.  A per-evaluation cost counter models the fact that real
SPICE characterization is the expensive step the ML flow amortizes away.

The same class also implements the *SHE characterization* of the Fig. 3
upper flow: instead of measuring delays, it measures each arc's
self-heating temperature and stores it in the delay slot of the library
("the obtained SHE temperatures are copied into the cell library,
replacing the cell's delay information").
"""

from __future__ import annotations

import numpy as np

from repro.circuit.cell import LookupTable, TimingArc
from repro.transistor.device import Transistor, alpha_power_delay
from repro.transistor.self_heating import SelfHeatingModel

DEFAULT_SLEWS = (5.0, 10.0, 20.0, 40.0, 80.0, 160.0)  # ps
DEFAULT_LOADS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)  # fF


class SpiceLikeCharacterizer:
    """Characterize cells into NLDM tables using the device models.

    Parameters
    ----------
    slews / loads:
        Characterization grid axes.
    she_model:
        Self-heating model used for SHE characterization and for the
        optional SHE-in-the-loop delay characterization.
    cost_per_point:
        Abstract "SPICE seconds" per simulated grid point, used by the
        benchmarks to compare against ML characterization cost.
    """

    def __init__(
        self,
        slews=DEFAULT_SLEWS,
        loads=DEFAULT_LOADS,
        she_model=None,
        cost_per_point=1.0,
    ):
        self.slews = tuple(slews)
        self.loads = tuple(loads)
        self.she_model = she_model or SelfHeatingModel()
        self.cost_per_point = cost_per_point
        self.simulated_points = 0

    # -- single-point "SPICE" evaluations ------------------------------------
    def arc_delay(
        self,
        cell,
        input_slew,
        load,
        temperature_c=25.0,
        vdd=0.8,
        delta_vth=0.0,
        include_she=False,
        activity=1.0,
    ):
        """Propagation delay (ps) of a cell under one operating condition.

        The cell's switching path is modelled as its worst-stack device
        driving ``load`` plus a slew-dependent penalty.  When
        ``include_she`` is set, the device's own self-heating raises its
        channel temperature before the delay is evaluated — the feedback
        the Fig. 3 flow exposes.
        """
        self.simulated_points += 1
        ref = cell.transistors[0]
        device = Transistor(
            width_nm=ref.width_nm,
            n_fins=ref.n_fins,
            vth=min(ref.vth + delta_vth, vdd - 0.05),
            is_pmos=ref.is_pmos,
        )
        channel_temp = temperature_c
        if include_she:
            channel_temp += self.she_model.delta_t(
                device, input_slew, load, activity=activity, vdd=vdd
            )
        effective_load = load + 0.6 * cell.input_cap_ff  # self-loading parasitics
        base = alpha_power_delay(
            device, effective_load, vdd=vdd, temperature_c=channel_temp
        )
        stack_penalty = 1.0 + 0.35 * (cell.stack_depth - 1)
        slew_penalty = 1.0 + 0.004 * input_slew
        return base * stack_penalty * slew_penalty

    def arc_output_slew(self, cell, input_slew, load, **kwargs):
        """Output transition time (ps); tracks delay with a load-weighted tail."""
        delay = self.arc_delay(cell, input_slew, load, **kwargs)
        return 0.9 * delay + 0.08 * input_slew

    def arc_she_temperature(self, cell, input_slew, load, vdd=0.8, activity=1.0):
        """Maximum self-heating dT (K) across the cell's devices for one arc."""
        self.simulated_points += 1
        return self.she_model.cell_delta_t(
            cell.transistors, input_slew, load, activity=activity, vdd=vdd
        )

    # -- full-cell characterization ------------------------------------------
    def characterize_cell(
        self, cell, temperature_c=25.0, vdd=0.8, delta_vth=0.0, include_she=False
    ):
        """Fill the cell's timing arcs with delay/slew NLDM tables (in place)."""
        cell.arcs = []
        n_s, n_l = len(self.slews), len(self.loads)
        for pin in cell.inputs:
            delays = np.zeros((n_s, n_l))
            slews_out = np.zeros((n_s, n_l))
            for i, s in enumerate(self.slews):
                for j, c in enumerate(self.loads):
                    delays[i, j] = self.arc_delay(
                        cell, s, c,
                        temperature_c=temperature_c, vdd=vdd,
                        delta_vth=delta_vth, include_she=include_she,
                    )
                    slews_out[i, j] = 0.9 * delays[i, j] + 0.08 * s
            cell.arcs.append(
                TimingArc(
                    input_pin=pin,
                    output_pin=cell.output,
                    delay=LookupTable(self.slews, self.loads, delays),
                    output_slew=LookupTable(self.slews, self.loads, slews_out),
                )
            )
        return cell

    def characterize_cell_she(self, cell, vdd=0.8, activity=1.0):
        """Fill the cell's arcs with SHE *temperature* tables in the delay slot.

        This is the Fig. 3 upper-flow trick: downstream STA then reports
        per-instance maximum SHE temperatures instead of delays.  Output
        "slew" tables propagate the input slew unchanged so the lookup
        conditions stay consistent during traversal.
        """
        cell.arcs = []
        n_s, n_l = len(self.slews), len(self.loads)
        for pin in cell.inputs:
            temps = np.zeros((n_s, n_l))
            slews_out = np.zeros((n_s, n_l))
            for i, s in enumerate(self.slews):
                for j, c in enumerate(self.loads):
                    temps[i, j] = self.arc_she_temperature(
                        cell, s, c, vdd=vdd, activity=activity
                    )
                    slews_out[i, j] = s  # pass-through; see docstring
            cell.arcs.append(
                TimingArc(
                    input_pin=pin,
                    output_pin=cell.output,
                    delay=LookupTable(self.slews, self.loads, temps),
                    output_slew=LookupTable(self.slews, self.loads, slews_out),
                )
            )
        return cell

    def characterize_library(self, library, include_she=False):
        """Characterize every cell in a library at the library's corner."""
        for cell in library:
            self.characterize_cell(
                cell,
                temperature_c=library.temperature_c,
                vdd=library.vdd,
                delta_vth=library.delta_vth,
                include_she=include_she,
            )
        return library

    def characterize_library_she(self, library, activity=1.0):
        """SHE-characterize every cell (Fig. 3 upper flow)."""
        for cell in library:
            self.characterize_cell_she(cell, vdd=library.vdd, activity=activity)
        return library

    @property
    def spice_cost(self):
        """Accumulated abstract simulation cost (for flow-cost comparisons)."""
        return self.simulated_points * self.cost_per_point
