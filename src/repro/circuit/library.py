"""Cell libraries (Liberty-like) and the default 59-cell library of Fig. 2."""

from __future__ import annotations

from repro.circuit.cell import make_cell


class Library:
    """A named collection of standard cells with shared corner metadata.

    Attributes
    ----------
    name:
        Library/corner name, e.g. ``"nominal_25C"``.
    temperature_c / vdd / delta_vth:
        The PVT+aging corner the cells' tables were characterized at.
    """

    def __init__(self, name, temperature_c=25.0, vdd=0.8, delta_vth=0.0):
        self.name = name
        self.temperature_c = temperature_c
        self.vdd = vdd
        self.delta_vth = delta_vth
        self._cells = {}

    def add(self, cell):
        if cell.name in self._cells:
            raise ValueError(f"duplicate cell {cell.name!r} in library {self.name!r}")
        self._cells[cell.name] = cell
        return cell

    def get(self, name):
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"cell {name!r} not in library {self.name!r}") from None

    def __contains__(self, name):
        return name in self._cells

    def __len__(self):
        return len(self._cells)

    def __iter__(self):
        return iter(self._cells.values())

    def cell_names(self):
        return list(self._cells)

    def combinational_cells(self):
        return [c for c in self if not c.is_sequential]

    def clone_empty(self, name=None, **corner):
        """A library with the same corner metadata but no cells."""
        lib = Library(
            name or self.name,
            temperature_c=corner.get("temperature_c", self.temperature_c),
            vdd=corner.get("vdd", self.vdd),
            delta_vth=corner.get("delta_vth", self.delta_vth),
        )
        return lib


# Kind/strength menu totalling 59 distinct cells, matching the count the
# paper reports for the RISC-V core of Fig. 2 ("only 59 different standard
# cells are used in the design").
_DEFAULT_MENU = [
    ("INV", (1, 2, 4, 8)),
    ("BUF", (1, 2, 4)),
    ("NAND2", (1, 2, 3, 4, 8)),
    ("NAND3", (1, 2, 3, 4, 8)),
    ("NOR2", (1, 2, 3, 4, 8)),
    ("NOR3", (1, 2, 3, 4, 8)),
    ("AND2", (1, 2, 3, 4, 8)),
    ("OR2", (1, 2, 3, 4, 8)),
    ("AOI21", (1, 2, 3, 4, 8)),
    ("OAI21", (1, 2, 3, 4, 8)),
    ("XOR2", (1, 2, 3, 4, 8)),
    ("XNOR2", (1, 2, 3, 4, 8)),
    ("DFF", (1, 2)),
]


def build_default_library(name="nominal", temperature_c=25.0, vdd=0.8, delta_vth=0.0):
    """Build the default 59-cell library (uncharacterized).

    Characterize it with :class:`repro.circuit.characterization.SpiceLikeCharacterizer`
    before running STA.
    """
    lib = Library(name, temperature_c=temperature_c, vdd=vdd, delta_vth=delta_vth)
    for kind, strengths in _DEFAULT_MENU:
        for s in strengths:
            lib.add(make_cell(kind, s))
    # Expected cell count per the paper's Fig. 2 design (59 distinct cells).
    assert len(lib) == 59, f"unexpected library size {len(lib)}"
    return lib
