"""Standard cells, timing arcs, and NLDM-style lookup tables."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.transistor.device import Transistor


class LookupTable:
    """2-D nonlinear-delay-model table over (input slew, output load).

    Values are bilinearly interpolated inside the characterized grid and
    clamped at its edges, matching how STA tools treat NLDM tables.
    The same structure stores delays (ps), output slews (ps), or — in the
    Fig. 3 SHE flow — self-heating temperatures (K), since the flow's core
    trick is that "the delays have been replaced with temperatures".
    """

    def __init__(self, slews, loads, values):
        self.slews = np.asarray(slews, dtype=float)
        self.loads = np.asarray(loads, dtype=float)
        self.values = np.asarray(values, dtype=float)
        if self.slews.ndim != 1 or self.loads.ndim != 1:
            raise ValueError("slew/load axes must be 1-D")
        if self.values.shape != (len(self.slews), len(self.loads)):
            raise ValueError(
                f"values shape {self.values.shape} does not match axes "
                f"({len(self.slews)}, {len(self.loads)})"
            )
        if np.any(np.diff(self.slews) <= 0) or np.any(np.diff(self.loads) <= 0):
            raise ValueError("axes must be strictly increasing")

    def __call__(self, slew, load):
        """Bilinear interpolation with edge clamping."""
        s = float(np.clip(slew, self.slews[0], self.slews[-1]))
        c = float(np.clip(load, self.loads[0], self.loads[-1]))
        i = int(np.clip(np.searchsorted(self.slews, s) - 1, 0, len(self.slews) - 2))
        j = int(np.clip(np.searchsorted(self.loads, c) - 1, 0, len(self.loads) - 2))
        s0, s1 = self.slews[i], self.slews[i + 1]
        c0, c1 = self.loads[j], self.loads[j + 1]
        fs = (s - s0) / (s1 - s0)
        fc = (c - c0) / (c1 - c0)
        v = self.values
        return float(
            v[i, j] * (1 - fs) * (1 - fc)
            + v[i + 1, j] * fs * (1 - fc)
            + v[i, j + 1] * (1 - fs) * fc
            + v[i + 1, j + 1] * fs * fc
        )

    def max_value(self):
        return float(self.values.max())


@dataclass
class TimingArc:
    """One input-pin-to-output timing arc of a cell.

    ``delay`` and ``output_slew`` are :class:`LookupTable` objects indexed
    by (input slew, output load).
    """

    input_pin: str
    output_pin: str
    delay: LookupTable
    output_slew: LookupTable


@dataclass
class StandardCell:
    """A standard cell: logic footprint, transistors, pins, and arcs.

    Attributes
    ----------
    name:
        Library cell name, e.g. ``"NAND2_X2"``.
    inputs / output:
        Pin names.  All cells here are single-output.
    transistors:
        Device list used by characterization (pull-up PMOS + pull-down NMOS).
    input_cap_ff:
        Capacitance each input pin presents to its driver.
    is_sequential:
        Flip-flops start/end timing paths.
    arcs:
        Timing arcs; empty until the cell is characterized.
    stack_depth:
        Longest series-transistor stack (NAND2 -> 2); slows the cell.
    """

    name: str
    inputs: tuple
    output: str
    transistors: list
    input_cap_ff: float
    is_sequential: bool = False
    arcs: list = field(default_factory=list)
    stack_depth: int = 1

    def __post_init__(self):
        if not self.inputs and not self.is_sequential:
            raise ValueError("combinational cell needs at least one input")
        if not self.transistors:
            raise ValueError("cell needs at least one transistor")

    @property
    def n_transistors(self):
        return len(self.transistors)

    def arc_for_input(self, pin):
        """The timing arc triggered by ``pin``; raises if not characterized."""
        for arc in self.arcs:
            if arc.input_pin == pin:
                return arc
        raise KeyError(f"cell {self.name} has no characterized arc for pin {pin}")

    def clone_uncharacterized(self, name=None):
        """A copy of this cell without timing arcs (for per-instance corners)."""
        return StandardCell(
            name=name or self.name,
            inputs=self.inputs,
            output=self.output,
            transistors=list(self.transistors),
            input_cap_ff=self.input_cap_ff,
            is_sequential=self.is_sequential,
            arcs=[],
            stack_depth=self.stack_depth,
        )


def make_cell(kind, strength=1):
    """Construct an uncharacterized cell of a given kind and drive strength.

    Supported kinds: INV, BUF, NAND2, NAND3, NOR2, NOR3, AND2, OR2,
    AOI21, OAI21, XOR2, XNOR2, DFF.  Drive ``strength`` scales transistor
    widths (X1, X2, ...) as in commercial libraries.
    """
    kind = kind.upper()
    width = 100.0 * strength
    templates = {
        "INV": (("A",), 1, 1, 1),
        "BUF": (("A",), 2, 2, 1),
        "NAND2": (("A", "B"), 2, 2, 2),
        "NAND3": (("A", "B", "C"), 3, 3, 3),
        "NOR2": (("A", "B"), 2, 2, 2),
        "NOR3": (("A", "B", "C"), 3, 3, 3),
        "AND2": (("A", "B"), 3, 3, 2),
        "OR2": (("A", "B"), 3, 3, 2),
        "AOI21": (("A", "B", "C"), 3, 3, 2),
        "OAI21": (("A", "B", "C"), 3, 3, 2),
        "XOR2": (("A", "B"), 4, 4, 2),
        "XNOR2": (("A", "B"), 4, 4, 2),
        "DFF": (("D",), 6, 6, 2),
    }
    if kind not in templates:
        raise ValueError(f"unknown cell kind {kind!r}")
    inputs, n_pmos, n_nmos, stack = templates[kind]
    transistors = [
        Transistor(width_nm=width, n_fins=2, is_pmos=True) for _ in range(n_pmos)
    ] + [Transistor(width_nm=width, n_fins=2, is_pmos=False) for _ in range(n_nmos)]
    # Input cap grows with gate count and strength; ~0.8 fF per unit gate.
    input_cap = 0.8 * strength * (1.0 + 0.15 * (len(inputs) - 1))
    return StandardCell(
        name=f"{kind}_X{strength}",
        inputs=inputs,
        output="Q" if kind == "DFF" else "Y",
        transistors=transistors,
        input_cap_ff=input_cap,
        is_sequential=(kind == "DFF"),
        stack_depth=stack,
    )
