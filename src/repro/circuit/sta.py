"""Static timing analysis over NLDM libraries, with SDF export.

The engine propagates arrival times and transition slews in topological
order, honoring per-arc (slew, load) table lookups, flip-flop endpoints,
and a clock-period constraint.  A ``cell_resolver`` hook lets callers bind
each instance to its *own* characterized cell — the mechanism behind the
per-instance corner libraries of the Fig. 3 ML flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs

DEFAULT_INPUT_SLEW_PS = 20.0
DFF_SETUP_PS = 20.0


@dataclass
class InstanceTiming:
    """Timing data computed for one instance."""

    name: str
    cell_name: str
    load_ff: float
    pin_slews: dict = field(default_factory=dict)  # input pin -> slew at pin
    pin_arrivals: dict = field(default_factory=dict)  # input pin -> arrival at pin
    arc_values: dict = field(default_factory=dict)  # input pin -> arc table value
    arrival: float = 0.0  # at output
    slew: float = 0.0  # at output
    critical_pin: str = ""

    @property
    def max_arc_value(self):
        """Worst arc value — the quantity an SDF annotation would carry."""
        if not self.arc_values:
            return 0.0
        return max(self.arc_values.values())


class StaticTimingAnalysis:
    """One STA run of a netlist against a library (or per-instance cells).

    Parameters
    ----------
    netlist:
        A :class:`repro.circuit.netlist.Netlist`.
    library:
        Library used both for pin capacitances (loads) and, by default,
        for timing arcs.
    clock_period_ps:
        Constraint used for slack computation.
    input_slew_ps:
        Transition time assumed at primary inputs (and at clock pins).
    cell_resolver:
        Optional callable ``(instance) -> StandardCell`` overriding where
        each instance's characterized arcs come from.  Loads always come
        from ``library`` so that swapping timing corners does not change
        the electrical network.
    """

    def __init__(
        self,
        netlist,
        library,
        clock_period_ps=1000.0,
        input_slew_ps=DEFAULT_INPUT_SLEW_PS,
        cell_resolver=None,
    ):
        self.netlist = netlist
        self.library = library
        self.clock_period_ps = clock_period_ps
        self.input_slew_ps = input_slew_ps
        self._resolve = cell_resolver or (lambda inst: library.get(inst.cell_name))
        self.timings = {}
        self.endpoint_slacks = {}
        self._ran = False

    def run(self):
        """Propagate arrivals/slews; returns self for chaining."""
        with obs.span("circuit.sta.run", design=self.netlist.name):
            self._run()
        obs.inc("circuit.sta.runs")
        obs.inc("circuit.sta.arrival_propagations", len(self.timings))
        return self

    def _run(self):
        arrivals = {pi: 0.0 for pi in self.netlist.primary_inputs}
        slews = {pi: self.input_slew_ps for pi in self.netlist.primary_inputs}
        self.timings = {}
        for name in self.netlist.topological_order():
            inst = self.netlist.get(name)
            cell = self._resolve(inst)
            load = self.netlist.load_of(name, self.library)
            timing = InstanceTiming(name=name, cell_name=inst.cell_name, load_ff=load)
            for pin, driver in inst.fanin.items():
                pin_slew = slews[driver]
                pin_arrival = arrivals[driver]
                timing.pin_slews[pin] = pin_slew
                timing.pin_arrivals[pin] = pin_arrival
                arc = cell.arc_for_input(pin)
                timing.arc_values[pin] = arc.delay(pin_slew, load)
            if cell.is_sequential:
                # D-pin is an endpoint; Q launches a fresh path at clk->Q.
                clk_slew = self.input_slew_ps
                arc = cell.arcs[0]
                timing.arrival = arc.delay(clk_slew, load)
                timing.slew = arc.output_slew(clk_slew, load)
                timing.critical_pin = "CLK"
            else:
                best_pin = None
                best_arrival = 0.0
                for pin in inst.fanin:
                    a = timing.pin_arrivals[pin] + timing.arc_values[pin]
                    if best_pin is None or a > best_arrival:
                        best_pin = pin
                        best_arrival = a
                arc = cell.arc_for_input(best_pin)
                timing.arrival = best_arrival
                timing.slew = arc.output_slew(timing.pin_slews[best_pin], load)
                timing.critical_pin = best_pin
            arrivals[name] = timing.arrival
            slews[name] = timing.slew
            self.timings[name] = timing

        self.endpoint_slacks = {}
        for name in self.netlist.primary_outputs:
            timing = self.timings[name]
            inst = self.netlist.get(name)
            cell = self._resolve(inst)
            if cell.is_sequential:
                # Data must arrive at D before the capture edge minus setup.
                data_arrival = max(timing.pin_arrivals.values(), default=0.0)
                slack = self.clock_period_ps - DFF_SETUP_PS - data_arrival
            else:
                slack = self.clock_period_ps - timing.arrival
            self.endpoint_slacks[name] = slack
        self._ran = True

    # -- results --------------------------------------------------------------
    def _require_run(self):
        if not self._ran:
            raise RuntimeError("call run() first")

    @property
    def worst_slack(self):
        self._require_run()
        if not self.endpoint_slacks:
            raise RuntimeError("design has no timing endpoints")
        return min(self.endpoint_slacks.values())

    @property
    def worst_arrival(self):
        self._require_run()
        return max(t.arrival for t in self.timings.values())

    def min_feasible_period(self):
        """Smallest clock period meeting setup at every endpoint."""
        self._require_run()
        worst = 0.0
        for name in self.netlist.primary_outputs:
            timing = self.timings[name]
            inst = self.netlist.get(name)
            cell = self._resolve(inst)
            if cell.is_sequential:
                data_arrival = max(timing.pin_arrivals.values(), default=0.0)
                worst = max(worst, data_arrival + DFF_SETUP_PS)
            else:
                worst = max(worst, timing.arrival)
        return worst

    def critical_path(self):
        """Instance names along the worst path, endpoint last."""
        self._require_run()
        end = min(self.endpoint_slacks, key=self.endpoint_slacks.get)
        return self._path_to_endpoint(end)

    def _path_to_endpoint(self, endpoint):
        """Backtrack the critical path into one endpoint."""
        path = [endpoint]
        current = endpoint
        timing = self.timings[current]
        if timing.critical_pin == "CLK" and timing.pin_arrivals:
            # Sequential endpoint: the path arrives at the D pin; hop to the
            # driver of the latest-arriving input and continue from there.
            worst_pin = max(timing.pin_arrivals, key=timing.pin_arrivals.get)
            driver = self.netlist.get(current).fanin[worst_pin]
            if driver in self.netlist.primary_inputs:
                path.reverse()
                return path
            path.append(driver)
            current = driver
        while True:
            timing = self.timings[current]
            if timing.critical_pin in ("", "CLK"):
                break
            driver = self.netlist.get(current).fanin[timing.critical_pin]
            if driver in self.netlist.primary_inputs:
                break
            path.append(driver)
            current = driver
        path.reverse()
        return path

    def endpoint_paths(self, n_paths=5):
        """The ``n_paths`` worst endpoints with their critical paths.

        Returns a list of dicts sorted by ascending slack, each with
        ``endpoint``, ``slack``, ``arrival``, and ``path`` (instance
        names, endpoint last) — the data a PrimeTime-style ``report_timing``
        presents.
        """
        self._require_run()
        if n_paths < 1:
            raise ValueError("n_paths must be positive")
        ranked = sorted(self.endpoint_slacks.items(), key=lambda kv: kv[1])
        out = []
        for endpoint, slack in ranked[:n_paths]:
            timing = self.timings[endpoint]
            inst = self.netlist.get(endpoint)
            cell = self._resolve(inst)
            if cell.is_sequential:
                arrival = max(timing.pin_arrivals.values(), default=0.0)
            else:
                arrival = timing.arrival
            out.append(
                {
                    "endpoint": endpoint,
                    "slack": slack,
                    "arrival": arrival,
                    "path": self._path_to_endpoint(endpoint),
                }
            )
        return out

    def format_timing_report(self, n_paths=5):
        """Human-readable multi-path timing report (PrimeTime-style)."""
        lines = [
            f"Timing report for {self.netlist.name} "
            f"(clock period {self.clock_period_ps:.1f} ps)",
            "=" * 64,
        ]
        for entry in self.endpoint_paths(n_paths):
            endpoint = entry["endpoint"]
            inst = self.netlist.get(endpoint)
            lines.append(f"Endpoint: {endpoint} ({inst.cell_name})")
            lines.append(
                f"  arrival {entry['arrival']:.2f} ps   slack {entry['slack']:.2f} ps"
            )
            for name in entry["path"]:
                t = self.timings[name]
                lines.append(
                    f"    {name:<10} {t.cell_name:<12} "
                    f"arrival {t.arrival:8.2f}  slew {t.slew:7.2f}  "
                    f"load {t.load_ff:6.2f}"
                )
            lines.append("-" * 64)
        return "\n".join(lines) + "\n"

    def annotation(self):
        """Per-instance worst arc value (delay ps — or SHE dT when run
        against a SHE-characterized library, per the Fig. 3 flow)."""
        self._require_run()
        return {name: t.max_arc_value for name, t in self.timings.items()}

    def instance_conditions(self):
        """Per-instance (input pin -> slew, load) operating conditions.

        These are exactly the features the ML characterizer needs to build
        per-instance corner cells.
        """
        self._require_run()
        return {
            name: {"pin_slews": dict(t.pin_slews), "load_ff": t.load_ff}
            for name, t in self.timings.items()
        }


def write_sdf(sta, path=None, design_name=None, unit="ps"):
    """Serialize an STA run's per-arc values as a (minimal) SDF file.

    When the STA was run against a SHE library, the IOPATH values are SHE
    temperatures — the paper's "SDF file no longer contains delays but the
    (maximum) SHE temperatures for each cell".  Returns the SDF text; if
    ``path`` is given the text is also written there.
    """
    sta._require_run()
    design = design_name or sta.netlist.name
    lines = [
        "(DELAYFILE",
        '  (SDFVERSION "3.0")',
        f'  (DESIGN "{design}")',
        f'  (TIMESCALE 1{unit})',
    ]
    for name, timing in sta.timings.items():
        inst = sta.netlist.get(name)
        lines.append("  (CELL")
        lines.append(f'    (CELLTYPE "{inst.cell_name}")')
        lines.append(f"    (INSTANCE {name})")
        lines.append("    (DELAY (ABSOLUTE")
        for pin, value in timing.arc_values.items():
            lines.append(
                f"      (IOPATH {pin} Y ({value:.3f}::{value:.3f}) ({value:.3f}::{value:.3f}))"
            )
        lines.append("    ))")
        lines.append("  )")
    lines.append(")")
    text = "\n".join(lines) + "\n"
    if path is not None:
        with open(path, "w") as f:
            f.write(text)
    return text
