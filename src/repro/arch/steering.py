"""Surrogate-steered adaptive FI campaigns with sequential early stopping.

Uniform campaigns (:meth:`FaultInjector.run_campaign`) spend most of
their budget on coordinates whose outcome is already predictable — dead
registers mask essentially every flip, ``pc``/``ir`` corrupt essentially
every time.  The paper's Sec. III point (and the ENFOR-SA / MRFI move)
is that ML-accelerated FI earns its orders of magnitude by *pruning
trials*: spend injections where the outcome is uncertain, and stop as
soon as the quantity of interest is known tightly enough.

This module implements that loop as an **adaptive unit source** for the
campaign scheduler:

* The coordinate space is stratified by ``element x cycle-phase``; each
  stratum's probability under the uniform campaign measure (``q_s``) is
  known exactly, so the post-stratified estimator
  ``sum_s q_s * p_hat_s`` is an unbiased estimate of the
  uniform-campaign AVF **no matter how trials are allocated** — steering
  moves variance, never the estimand (see
  :func:`repro.runtime.stats.stratified_estimate`).
* Trials are generated in **rounds**.  Round 0 covers every stratum
  proportionally; later rounds allocate by a Neyman rule
  ``n_s ~ q_s * sqrt(p~_s (1 - p~_s))`` where ``p~_s`` blends the
  observed stratum rate with a surrogate model
  (:class:`repro.ml.GradientBoostingClassifier` or
  :class:`repro.ml.KNeighborsClassifier`, refit online on
  :func:`repro.arch.vulnerability.element_features` + cycle-phase
  features), mixed with an ``explore`` floor of the uniform measure.
* After every sealed round the CI half-width of the estimate is checked
  against ``target_ci``; the campaign **stops early** once the target
  is met, and the unspent budget is reported as ``trials_saved``.

Determinism contract: round ``r``'s coordinates are drawn from the
documented seed-tree child ``SeedSequence(entropy=seed,
spawn_key=(STEER_STREAM_KEY, r))`` (:data:`STEER_STREAM_DOC`), and a
round is generated only once **all** units of earlier rounds have
committed.  The committed outcome multiset of a sealed prefix does not
depend on scheduling, so the same seed and config produce byte-identical
campaigns across ``jobs``, ``chunk_size``, and transports — and a
``--resume`` replays the identical rounds from the result cache.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field, fields

import numpy as np

from repro import obs
from repro.arch.fault_injection import CampaignResult, Outcome
from repro.runtime.stats import (
    hoeffding_halfwidth,
    stratified_estimate,
    wilson_halfwidth,
    wilson_interval,
)

#: First element of the acquisition stream's ``spawn_key``.  The seed
#: tree already assigns arity-1 keys ``(trial,)`` to campaign trials
#: (:func:`repro.runtime.seeding.trial_seed_sequence`) and arity-2 keys
#: ``(unit, attempt)`` rooted at the *jitter* seed to retry backoff
#: (:mod:`repro.runtime.policy`); steering takes the arity-2 namespace
#: ``(STEER_STREAM_KEY, round)`` rooted at the campaign seed, with a
#: first component far above any real unit index.
STEER_STREAM_KEY = 0x53544545  # "STEE"

STEER_STREAM_DOC = (
    "steered round r draws all coordinates from "
    "numpy.random.default_rng(SeedSequence(entropy=seed, "
    "spawn_key=(STEER_STREAM_KEY, r)))"
)

#: Outcomes that count as failures for AVF (matches
#: :meth:`CampaignResult.failure_rate`).
_FAILURE_OUTCOMES = (Outcome.SDC, Outcome.CRASH, Outcome.HANG)

SURROGATES = ("gbdt", "knn", "none")
MODES = ("steered", "uniform")


@dataclass
class SteeringConfig:
    """Everything that shapes a steered campaign (all of it is keyed).

    ``mode="uniform"`` keeps the round/stopping machinery but draws
    every round uniformly and stops on a plain Wilson interval — the
    sequential *baseline* a steered run is compared against.
    """

    target_ci: float = 0.02  #: stop when the CI half-width reaches this
    confidence: float = 0.95
    round_trials: int = 128  #: trials generated per adaptive round
    chunk_size: int = 32  #: trials per scheduler unit
    phase_bins: int = 4  #: cycle-phase strata per element
    explore: float = 0.05  #: floor share allocated by the uniform measure
    surrogate: str = "gbdt"  #: "gbdt", "knn", or "none" (empirical only)
    refit_chunks: int = 4  #: refit after this many new committed chunks
    prior_strength: float = 4.0  #: pseudo-trials the surrogate contributes
    early_stop: bool = True

    mode: str = "steered"

    def validate(self):
        """Raise ``ValueError`` on any out-of-range field."""
        if not 0.0 < self.target_ci < 0.5:
            raise ValueError("target_ci must be in (0, 0.5)")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.round_trials < 1:
            raise ValueError("round_trials must be positive")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if self.phase_bins < 1:
            raise ValueError("phase_bins must be positive")
        if not 0.0 <= self.explore <= 1.0:
            raise ValueError("explore must be in [0, 1]")
        if self.surrogate not in SURROGATES:
            raise ValueError(f"surrogate must be one of {SURROGATES}")
        if self.refit_chunks < 1:
            raise ValueError("refit_chunks must be positive")
        if self.prior_strength < 0:
            raise ValueError("prior_strength must be non-negative")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")

    def fingerprint(self):
        """Cache-key dict: every field steers generation, so all enter."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class CoordChunk:
    """One scheduler unit: a fixed tuple of (cycle, element, bit) coords."""

    coords: tuple

    def __len__(self):
        return len(self.coords)


def _steered_chunk(injector, chunk):
    """Execute one coordinate chunk (process-pool worker)."""
    with obs.span("arch.fault_injection.chunk", trials=len(chunk)):
        return injector.inject_many(list(chunk.coords))


def _largest_remainder(shares, total, minimum=0):
    """Integer allocation of ``total`` by ``shares`` (sum ~1), deterministic.

    Floor-then-distribute by largest fractional part (ties broken by
    index).  ``minimum`` then guarantees a floor per slot, funded by the
    largest allocations — callers must ensure ``total >= minimum * len``.
    """
    raw = [s * total for s in shares]
    counts = [int(math.floor(r)) for r in raw]
    deficit = total - sum(counts)
    order = sorted(range(len(shares)), key=lambda i: (counts[i] - raw[i], i))
    for i in order[:deficit]:
        counts[i] += 1
    if minimum:
        if minimum * len(counts) > total:
            raise ValueError("total too small for the per-slot minimum")
        for i in range(len(counts)):
            while counts[i] < minimum:
                donor = max(
                    range(len(counts)),
                    key=lambda j: (counts[j], -j),
                )
                counts[donor] -= 1
                counts[i] += 1
    return counts


class SteeredUnitSource:
    """Adaptive :class:`CampaignScheduler` unit source for steered FI.

    Implements the static unit protocol (``__len__``/``item``/``key``/
    ``weight``/``total_weight``) plus the adaptive seams (``on_result``,
    ``available``, ``exhausted``).  The *unit layout* — how many rounds,
    their sizes, their chunk boundaries — is a pure function of the
    config, so ``__len__`` and every ``key(i)`` are known up front and
    the manifest journal stays resume-compatible; only the coordinates
    inside each chunk are decided adaptively, at round-seal time, from
    committed outcomes alone.
    """

    def __init__(self, *, seed, budget, elements, golden_cycles,
                 config=None, features=None):
        self.config = config or SteeringConfig()
        self.config.validate()
        cfg = self.config
        self.seed = int(seed)
        self.budget = int(budget)
        self.elements = list(elements)
        self.golden_cycles = int(golden_cycles)
        if self.budget < 1:
            raise ValueError("budget must be positive")
        if not self.elements:
            raise ValueError("elements must be non-empty")
        if self.golden_cycles < 1:
            raise ValueError("golden_cycles must be positive")
        if cfg.surrogate != "none" and cfg.mode == "steered":
            if features is None:
                raise ValueError(
                    "a surrogate needs per-element feature rows; pass "
                    "features aligned with elements or surrogate='none'"
                )
            features = np.asarray(features, dtype=float)
            if features.shape[0] != len(self.elements):
                raise ValueError("features must align with elements")
        self.features = features

        # Strata: element x cycle-phase, in fixed (element, phase) order.
        bins = min(cfg.phase_bins, self.golden_cycles)
        self._phase_bounds = [
            b * self.golden_cycles // bins for b in range(bins + 1)
        ]
        self._bins = bins
        self._strata = [
            (e, b) for e in range(len(self.elements)) for b in range(bins)
        ]
        self._stratum_index = {s: k for k, s in enumerate(self._strata)}
        self._element_index = {e: k for k, e in enumerate(self.elements)}
        n_el = len(self.elements)
        self._q = [
            (self._phase_bounds[b + 1] - self._phase_bounds[b])
            / self.golden_cycles / n_el
            for (_, b) in self._strata
        ]

        # Static unit layout: round sizes are config-determined.
        self._round_sizes = self._plan_rounds()
        self._unit_bounds = []  # (round, start_in_round, stop_in_round)
        self._round_end_unit = []
        for r, size in enumerate(self._round_sizes):
            for start in range(0, size, cfg.chunk_size):
                self._unit_bounds.append(
                    (r, start, min(start + cfg.chunk_size, size))
                )
            self._round_end_unit.append(len(self._unit_bounds))

        # Adaptive state.
        self._chunks = []  # CoordChunk per generated unit, unit order
        self._committed = []  # per generated unit
        self._unit_tallies = {}  # unit -> list of (stratum, failed)
        self._next_commit = 0  # sealed prefix pointer
        self._rounds_generated = 0
        self._rounds_sealed = 0
        self._n_s = [0] * len(self._strata)
        self._f_s = [0] * len(self._strata)
        self._trials_committed = 0
        self._failures_committed = 0
        self._p_model = None  # per-stratum surrogate probabilities
        self._units_since_fit = 0
        self.refits = 0
        self.stopped = False
        self.stop_reason = None
        self.trajectory = []  # one dict per sealed round
        self._generate_round()

    # -- static layout ---------------------------------------------------
    def _plan_rounds(self):
        cfg = self.config
        sizes = []
        remaining = self.budget
        first = cfg.round_trials
        if cfg.mode == "steered":
            # The bootstrap round must reach every stratum at least once
            # or the post-stratified estimator is undefined.
            first = max(first, len(self._strata))
            if self.budget < first:
                raise ValueError(
                    f"budget ({self.budget}) must cover the bootstrap "
                    f"round ({first} trials: max(round_trials, strata))"
                )
        while remaining > 0:
            size = min(first if not sizes else cfg.round_trials, remaining)
            sizes.append(size)
            remaining -= size
        return sizes

    def __len__(self):
        return len(self._unit_bounds)

    def key(self, i):
        """Unit cache-key coordinates (static: layout is config-pure)."""
        r, start, stop = self._unit_bounds[i]
        return ("steer", self.seed, r, start, stop)

    def weight(self, i):
        """Trials carried by unit ``i``."""
        _, start, stop = self._unit_bounds[i]
        return stop - start

    @property
    def total_weight(self):
        """The full trial budget (executed trials may stop short of it)."""
        return self.budget

    def item(self, i):
        """The generated :class:`CoordChunk` at unit ``i``."""
        return self._chunks[i]

    # -- adaptive seams --------------------------------------------------
    def available(self):
        """Units generated so far — the scheduler's admission bound."""
        return len(self._chunks)

    @property
    def exhausted(self):
        """True once the stopping rule has ended the campaign."""
        return self.stopped

    def on_result(self, i, records):
        """Commit unit ``i``: tally strata, seal rounds, steer, stop."""
        if self._committed[i]:
            return
        self._committed[i] = True
        tallies = []
        for record in records:
            s = self._locate(record.cycle, record.element)
            failed = record.outcome in _FAILURE_OUTCOMES
            tallies.append((s, failed))
            self._n_s[s] += 1
            self._f_s[s] += failed
            self._trials_committed += 1
            self._failures_committed += failed
        self._unit_tallies[i] = tallies
        self._units_since_fit += 1
        while (self._next_commit < len(self._chunks)
               and self._committed[self._next_commit]):
            self._next_commit += 1
        while (self._rounds_sealed < self._rounds_generated
               and self._next_commit
               >= self._round_end_unit[self._rounds_sealed]):
            self._seal_round()

    def _locate(self, cycle, element):
        # Invert the *generation* partition: ``_phase_bounds`` is a floor
        # partition, so when ``golden_cycles % bins != 0`` the naive
        # ``cycle * bins // golden_cycles`` disagrees with it and tallies
        # land in the wrong stratum.
        e = self._element_index[element]
        b = bisect.bisect_right(self._phase_bounds, cycle) - 1
        b = min(max(b, 0), self._bins - 1)
        return self._stratum_index[(e, b)]

    # -- round sealing ---------------------------------------------------
    def _seal_round(self):
        cfg = self.config
        r = self._rounds_sealed
        self._rounds_sealed += 1
        obs.inc("arch.fi.steering.rounds")
        estimate, halfwidth = self.estimate()
        self.trajectory.append({
            "round": r,
            "trials": self._trials_committed,
            "estimate": estimate,
            "halfwidth": halfwidth,
            "hoeffding": hoeffding_halfwidth(
                self._trials_committed, cfg.confidence
            ),
        })
        obs.emit(
            "steer.round", round=r, trials=self._trials_committed,
            estimate=estimate, halfwidth=halfwidth, target=cfg.target_ci,
        )
        if cfg.early_stop and halfwidth <= cfg.target_ci:
            self._stop("target", estimate, halfwidth)
            return
        if self._rounds_generated >= len(self._round_sizes):
            self._stop("budget", estimate, halfwidth)
            return
        if cfg.mode == "steered" and cfg.surrogate != "none":
            self._maybe_refit(r)
        self._generate_round()

    def _stop(self, reason, estimate, halfwidth):
        self.stopped = True
        self.stop_reason = reason
        saved = self.budget - self._trials_committed
        if reason == "target":
            obs.inc("arch.fi.steering.stopped_early")
        obs.inc("arch.fi.steering.trials_saved", saved)
        obs.emit(
            "steer.stop", reason=reason,
            trials_executed=self._trials_committed, budget=self.budget,
            trials_saved=saved, estimate=estimate, halfwidth=halfwidth,
            rounds=self._rounds_sealed, refits=self.refits,
        )

    # -- estimation ------------------------------------------------------
    def estimate(self):
        """Current ``(avf, ci_halfwidth)`` from committed trials only."""
        cfg = self.config
        if cfg.mode == "uniform":
            return (
                (self._failures_committed / self._trials_committed
                 if self._trials_committed else 0.0),
                wilson_halfwidth(
                    self._failures_committed, self._trials_committed,
                    cfg.confidence,
                ),
            )
        # Model-assisted CI: the variance plugs in the same blended
        # per-stratum rates that drive allocation, so a stratum the
        # surrogate (plus its own observations) calls dead contributes
        # ~zero width instead of a worst-case continuity correction.
        return stratified_estimate(
            self._q, self._f_s, self._n_s, cfg.confidence,
            variance_rates=self._blended(),
        )

    def _global_rate(self):
        # Laplace-smoothed so an all-masked or all-failed prefix keeps a
        # usable prior.
        return (self._failures_committed + 1.0) / (self._trials_committed + 2.0)

    def _blended(self):
        """Per-stratum ``p~_s``: observed rate shrunk toward the prior."""
        cfg = self.config
        prior = self._p_model
        fallback = self._global_rate()
        out = []
        for s in range(len(self._strata)):
            p_prior = fallback if prior is None else float(prior[s])
            out.append(
                (self._f_s[s] + cfg.prior_strength * p_prior)
                / (self._n_s[s] + cfg.prior_strength)
            )
        return out

    # -- surrogate -------------------------------------------------------
    def _maybe_refit(self, sealed_round):
        cfg = self.config
        if self._units_since_fit < cfg.refit_chunks:
            return
        X, y = self._training_set()
        if len(X) > 2048:
            # Cap the fit cost: evenly spaced row selection is
            # deterministic and keeps every round represented.
            keep = np.linspace(0, len(X) - 1, 2048).astype(int)
            X, y = X[keep], y[keep]
        if len(np.unique(y)) < 2:
            # Single-class history: the constant rate is the best model.
            self._p_model = np.full(len(self._strata), float(y[0]) if len(y) else 0.5)
            self._units_since_fit = 0
            return
        from repro.ml import (
            GradientBoostingClassifier,
            KNeighborsClassifier,
            StandardScaler,
        )
        scaler = StandardScaler().fit(X)
        if cfg.surrogate == "gbdt":
            model = GradientBoostingClassifier(
                n_estimators=30, max_depth=3, seed=0
            )
        else:
            model = KNeighborsClassifier(
                n_neighbors=min(15, len(X))
            )
        model.fit(scaler.transform(X), y)
        proba = model.predict_proba(scaler.transform(self._stratum_rows()))
        fail_col = int(np.argmax(model.classes_ == 1))
        self._p_model = proba[:, fail_col]
        self._units_since_fit = 0
        self.refits += 1
        obs.inc("arch.fi.steering.refits")
        obs.emit(
            "steer.refit", round=sealed_round, samples=len(X),
            surrogate=cfg.surrogate,
        )

    def _row(self, element_index, cycle_frac):
        return list(self.features[element_index]) + [cycle_frac]

    def _training_set(self):
        """Committed trials as (features, fail) rows, in unit order.

        Built from stored per-unit tallies in *unit* order — never
        arrival order — so the fitted model (hence the next allocation)
        is identical no matter how the transport interleaved commits.
        """
        X, y = [], []
        for i in range(self._next_commit):
            chunk = self._chunks[i]
            for (cycle, element, _bit), (s, failed) in zip(
                chunk.coords, self._unit_tallies[i]
            ):
                e, _ = self._strata[s]
                X.append(self._row(e, (cycle + 0.5) / self.golden_cycles))
                y.append(int(failed))
        return np.asarray(X, dtype=float), np.asarray(y, dtype=int)

    def _stratum_rows(self):
        rows = []
        for (e, b) in self._strata:
            center = 0.5 * (self._phase_bounds[b] + self._phase_bounds[b + 1])
            rows.append(self._row(e, center / self.golden_cycles))
        return np.asarray(rows, dtype=float)

    # -- generation ------------------------------------------------------
    def _round_rng(self, r):
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=self.seed, spawn_key=(STEER_STREAM_KEY, r)
            )
        )

    def _allocation(self, r, size):
        cfg = self.config
        if r == 0:
            return _largest_remainder(self._q, size, minimum=1)
        scores = [
            q * math.sqrt(p * (1.0 - p))
            for q, p in zip(self._q, self._blended())
        ]
        total = sum(scores)
        if total <= 0.0:
            shares = list(self._q)
        else:
            shares = [
                (1.0 - cfg.explore) * s / total + cfg.explore * q
                for s, q in zip(scores, self._q)
            ]
        return _largest_remainder(shares, size)

    def _generate_round(self):
        cfg = self.config
        r = self._rounds_generated
        size = self._round_sizes[r]
        rng = self._round_rng(r)
        coords = []
        if cfg.mode == "uniform":
            cycles = rng.integers(0, self.golden_cycles, size=size)
            els = rng.integers(0, len(self.elements), size=size)
            bits = rng.integers(0, 32, size=size)
            coords = [
                (int(c), self.elements[int(e)], int(b))
                for c, e, b in zip(cycles, els, bits)
            ]
        else:
            for s, n in enumerate(self._allocation(r, size)):
                if n == 0:
                    continue
                e, b = self._strata[s]
                lo, hi = self._phase_bounds[b], self._phase_bounds[b + 1]
                cycles = rng.integers(lo, hi, size=n)
                bits = rng.integers(0, 32, size=n)
                element = self.elements[e]
                coords.extend(
                    (int(c), element, int(bit))
                    for c, bit in zip(cycles, bits)
                )
        self._rounds_generated += 1
        for start in range(0, size, cfg.chunk_size):
            self._chunks.append(
                CoordChunk(coords=tuple(coords[start:start + cfg.chunk_size]))
            )
            self._committed.append(False)

    # -- reporting -------------------------------------------------------
    def summary(self):
        """Steering facts for run records and results (JSON-safe)."""
        cfg = self.config
        estimate, halfwidth = (
            self.estimate() if self._trials_committed else (0.0, 1.0)
        )
        return {
            "mode": cfg.mode,
            "surrogate": cfg.surrogate if cfg.mode == "steered" else None,
            "target_ci": cfg.target_ci,
            "confidence": cfg.confidence,
            "early_stop": cfg.early_stop,
            "budget": self.budget,
            "trials_executed": self._trials_committed,
            "trials_saved": self.budget - self._trials_committed,
            "avf_estimate": estimate,
            "ci_halfwidth": halfwidth,
            "rounds": self._rounds_sealed,
            "refits": self.refits,
            "stopped_early": self.stop_reason == "target",
            "stop_reason": self.stop_reason,
            "strata": len(self._strata),
            "phase_bins": self._bins,
            "round_trials": cfg.round_trials,
            "chunk_size": cfg.chunk_size,
            "explore": cfg.explore,
            "seed_stream": STEER_STREAM_DOC,
            "trajectory": list(self.trajectory),
        }


@dataclass
class SteeredCampaignResult(CampaignResult):
    """A steered campaign's records plus its steering/stopping facts."""

    steering: dict = field(default_factory=dict)

    def uniform_interval(self, confidence=0.95):
        """Wilson interval a *uniform* campaign of these records would get.

        Only meaningful for ``mode="uniform"`` results; for steered
        records the raw failure fraction is allocation-biased — use
        ``steering["avf_estimate"]`` instead.
        """
        failures = sum(
            r.outcome in _FAILURE_OUTCOMES for r in self.records
        )
        return wilson_interval(failures, len(self.records), confidence)


def run_steered_campaign(injector, budget=4096, seed=0, elements=None,
                         config=None, jobs=1, cache=None, progress=None,
                         policy=None, resume=False, worker_wrapper=None,
                         transport=None, transport_options=None):
    """Run an adaptively steered campaign on ``injector``.

    Drop-in sibling of :meth:`FaultInjector.run_campaign`: same runtime
    knobs (cache, policy, resume, transports, chaos wrapper), but trials
    are allocated by :class:`SteeredUnitSource` and the campaign stops
    once the AVF CI half-width reaches ``config.target_ci`` (or the
    ``budget`` is spent).  Returns a :class:`SteeredCampaignResult`;
    runner accounting lands in ``injector.last_run_stats``.
    """
    import functools

    from repro.arch.cpu import CPU
    from repro.runtime.runner import CampaignRunner

    config = config or SteeringConfig()
    config.validate()
    elements = list(elements or CPU(injector.program).state_elements())
    features = None
    if config.mode == "steered" and config.surrogate != "none":
        from repro.arch.vulnerability import element_features
        all_elements, all_rows = element_features(injector.program)
        index = {name: i for i, name in enumerate(all_elements)}
        try:
            features = all_rows[[index[e] for e in elements]]
        except KeyError as exc:
            raise ValueError(f"unknown element {exc.args[0]!r}") from None
    source = SteeredUnitSource(
        seed=seed, budget=budget, elements=elements,
        golden_cycles=injector.golden_cycles, config=config,
        features=features,
    )
    worker = functools.partial(_steered_chunk, injector)
    if worker_wrapper is not None:
        worker = worker_wrapper(worker)
    runner = CampaignRunner(
        jobs=jobs, cache=cache, progress=progress,
        classify=lambda record: record.outcome.value,
        policy=policy, resume=resume,
        transport=transport, transport_options=transport_options,
    )
    with obs.span(
        "arch.fault_injection.steered_campaign",
        program=injector.program.name, budget=budget, mode=config.mode,
    ):
        per_unit = runner.run_units(
            worker, source,
            key=("fi-steer", injector.fingerprint(), config.fingerprint(),
                 budget, elements),
        )
    injector.last_run_stats = runner.stats
    records = [
        record
        for unit_records in per_unit
        if unit_records is not None
        for record in unit_records
    ]
    return SteeredCampaignResult(
        program=injector.program.name,
        golden_output=injector.golden_output,
        golden_cycles=injector.golden_cycles,
        records=records,
        steering=source.summary(),
    )
