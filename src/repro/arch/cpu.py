"""CPU simulator with injectable state elements.

The machine executes one instruction per cycle.  Its *state elements* —
the fault-injection targets, standing in for the flip-flops of a real
pipeline — are:

* the 16 x 32-bit register file (``"reg<i>"``),
* the program counter (``"pc"``),
* the fetched-instruction latch (``"ir"``), whose bits encode opcode and
  operand fields as a packed word, so a flip there corrupts the
  instruction in flight (mimicking pipeline-latch faults).

Faults are injected by flipping a chosen bit of a chosen element at a
chosen cycle, mid-execution.  Outcomes are classified by the caller
(:mod:`repro.arch.fault_injection`).

Data memory is a copy-on-write overlay over the program's (immutable)
initial image: stores land in a small per-run overlay dict, loads fall
through to the initial image.  That makes :meth:`CPU.snapshot` /
:meth:`CPU.restore` — the primitives behind the checkpoint-and-replay
fault-injection engine — O(registers + stores so far) instead of
O(total memory footprint).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.isa import (
    ARITH_OPS,
    N_REGISTERS,
    WORD_MASK,
    Instruction,
    Opcode,
)

MEMORY_LIMIT = 1 << 20  # addresses above this are architectural crashes

_OPCODES = list(Opcode)
# pack_instruction sits on the fault-injection hot path (every "ir"
# fault re-packs the instruction stream), so the opcode lookup is a
# precomputed dict rather than an O(n) list scan.
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODES)}


class CrashError(Exception):
    """Architectural crash: invalid opcode, bad PC, or bad memory access."""


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    halted: bool
    cycles: int
    memory: dict
    registers: list
    trace_reads: dict = field(default_factory=dict)  # reg -> read count
    trace_writes: dict = field(default_factory=dict)  # reg -> write count

    def output(self, output_range):
        start, length = output_range
        return tuple(self.memory.get(start + i, 0) for i in range(length))


def _signed(value):
    value &= WORD_MASK
    return value - (1 << 32) if value & 0x80000000 else value


def pack_instruction(instr):
    """Pack an instruction into a 32-bit word (opcode|rd|rs1|rs2|imm16)."""
    op_idx = _OPCODE_INDEX[instr.opcode]
    imm16 = instr.imm & 0xFFFF
    return (
        (op_idx & 0x1F) << 27
        | (instr.rd & 0xF) << 23
        | (instr.rs1 & 0xF) << 19
        | (instr.rs2 & 0xF) << 15
        | imm16
    )


def unpack_instruction(word):
    """Inverse of :func:`pack_instruction`; raises CrashError on bad opcode."""
    op_idx = (word >> 27) & 0x1F
    if op_idx >= len(_OPCODES):
        raise CrashError(f"invalid opcode index {op_idx}")
    imm = word & 0xFFFF
    if imm & 0x8000:
        imm -= 1 << 16
    return Instruction(
        opcode=_OPCODES[op_idx],
        rd=(word >> 23) & 0xF,
        rs1=(word >> 19) & 0xF,
        rs2=(word >> 15) & 0xF,
        imm=imm,
    )


@dataclass(frozen=True)
class CPUSnapshot:
    """Full architectural state at a cycle boundary (between steps).

    ``mem_overlay`` holds only the words written since reset — the
    copy-on-write delta against the program's initial memory image —
    so snapshots stay cheap for memory-heavy workloads.
    """

    registers: tuple
    pc: int
    cycles: int
    halted: bool
    mem_overlay: dict
    ir_fault: int


class CPU:
    """Functional simulator with named, bit-addressable state elements."""

    def __init__(self, program, max_cycles=100_000):
        self.program = program
        self.max_cycles = max_cycles
        # Read-only base image; all writes go to the per-run overlay.
        self._mem_base = program.initial_memory
        self.reset()

    def reset(self):
        self.registers = [0] * N_REGISTERS
        self.pc = 0
        self._mem_overlay = {}
        self.cycles = 0
        self.halted = False
        # A pending IR fault set by flip_bit("ir", ...) but never consumed
        # (e.g. the run crashed before the next fetch) must not leak into
        # the next run of a reused CPU object.
        self._ir_fault = 0
        self._reads = {}
        self._writes = {}

    @property
    def memory(self):
        """Merged data-memory view (initial image + overlay).

        A fresh dict each access: mutate memory through execution (ST)
        only, never through this view.
        """
        merged = dict(self._mem_base)
        merged.update(self._mem_overlay)
        return merged

    def read_memory(self, addr):
        """Current value of one data-memory word."""
        overlay = self._mem_overlay
        if addr in overlay:
            return overlay[addr]
        return self._mem_base.get(addr, 0)

    def output(self, output_range):
        """The program's declared output words in the current state."""
        start, length = output_range
        return tuple(self.read_memory(start + i) for i in range(length))

    # -- checkpointing (the forked-engine surface) -----------------------------
    def snapshot(self):
        """Capture full architectural state between steps (O(state delta))."""
        return CPUSnapshot(
            registers=tuple(self.registers),
            pc=self.pc,
            cycles=self.cycles,
            halted=self.halted,
            mem_overlay=dict(self._mem_overlay),
            ir_fault=self._ir_fault,
        )

    def restore(self, snap):
        """Rewind to a snapshot taken on a CPU running the same program."""
        self.registers = list(snap.registers)
        self.pc = snap.pc
        self.cycles = snap.cycles
        self.halted = snap.halted
        self._mem_overlay = dict(snap.mem_overlay)
        self._ir_fault = snap.ir_fault
        self._reads = {}
        self._writes = {}

    def state_matches(self, snap, reg_indices=None):
        """Whether current architectural state equals a snapshot's.

        ``reg_indices`` restricts the register comparison to the given
        indices (a caller-computed liveness set); pc, cycle count, halt
        flag, pending IR fault, and the memory overlay are always
        compared in full.
        """
        if (
            self.pc != snap.pc
            or self.cycles != snap.cycles
            or self.halted != snap.halted
            or self._ir_fault != snap.ir_fault
        ):
            return False
        regs = snap.registers
        if reg_indices is None:
            if tuple(self.registers) != regs:
                return False
        else:
            mine = self.registers
            for i in reg_indices:
                if mine[i] != regs[i]:
                    return False
        return self._mem_overlay == snap.mem_overlay

    # -- state-element access (the fault-injection surface) -------------------
    def state_elements(self):
        """Names of all injectable state elements."""
        return [f"reg{i}" for i in range(N_REGISTERS)] + ["pc", "ir"]

    def flip_bit(self, element, bit):
        """Flip one bit of a state element *now* (between cycles).

        Flipping ``"ir"`` corrupts the next fetched instruction word.
        """
        if not 0 <= bit < 32:
            raise ValueError("bit index out of range")
        if element.startswith("reg"):
            idx = int(element[3:])
            if idx == 0:
                return  # r0 is hardwired to zero: fault is masked by design
            self.registers[idx] ^= 1 << bit
            self.registers[idx] &= WORD_MASK
        elif element == "pc":
            self.pc ^= 1 << bit
        elif element == "ir":
            self._ir_fault ^= 1 << bit
        else:
            raise ValueError(f"unknown state element {element!r}")

    # -- execution -------------------------------------------------------------
    def step(self):
        """Execute one cycle; raises CrashError on architectural violations."""
        if self.halted:
            return
        if not 0 <= self.pc < len(self.program.instructions):
            raise CrashError(f"pc {self.pc} outside program")
        instr = self.program.instructions[self.pc]
        ir_fault = self._ir_fault
        if ir_fault:
            instr = unpack_instruction(pack_instruction(instr) ^ ir_fault)
            self._ir_fault = 0
        self._execute(instr)
        self.cycles += 1
        if self.cycles >= self.max_cycles and not self.halted:
            raise TimeoutError(f"exceeded {self.max_cycles} cycles")

    def _read(self, reg):
        self._reads[reg] = self._reads.get(reg, 0) + 1
        return 0 if reg == 0 else self.registers[reg]

    def _write(self, reg, value):
        self._writes[reg] = self._writes.get(reg, 0) + 1
        if reg != 0:
            self.registers[reg] = value & WORD_MASK

    def _execute(self, instr):
        op = instr.opcode
        next_pc = self.pc + 1
        if op == Opcode.NOP:
            pass
        elif op in ARITH_OPS:
            a = self._read(instr.rs1)
            b = self._read(instr.rs2)
            if op == Opcode.ADD:
                value = a + b
            elif op == Opcode.SUB:
                value = a - b
            elif op == Opcode.MUL:
                value = a * b
            elif op == Opcode.AND:
                value = a & b
            elif op == Opcode.OR:
                value = a | b
            elif op == Opcode.XOR:
                value = a ^ b
            elif op == Opcode.SHL:
                value = a << (b & 31)
            else:  # SHR
                value = a >> (b & 31)
            self._write(instr.rd, value)
        elif op == Opcode.ADDI:
            self._write(instr.rd, self._read(instr.rs1) + instr.imm)
        elif op == Opcode.LUI:
            self._write(instr.rd, instr.imm)
        elif op == Opcode.LD:
            addr = (self._read(instr.rs1) + instr.imm) & WORD_MASK
            if addr >= MEMORY_LIMIT:
                raise CrashError(f"load from invalid address {addr}")
            self._write(instr.rd, self.read_memory(addr))
        elif op == Opcode.ST:
            addr = (self._read(instr.rs1) + instr.imm) & WORD_MASK
            if addr >= MEMORY_LIMIT:
                raise CrashError(f"store to invalid address {addr}")
            self._mem_overlay[addr] = self._read(instr.rs2) & WORD_MASK
        elif op == Opcode.BEQ:
            if self._read(instr.rs1) == self._read(instr.rs2):
                next_pc = self.pc + 1 + instr.imm
        elif op == Opcode.BNE:
            if self._read(instr.rs1) != self._read(instr.rs2):
                next_pc = self.pc + 1 + instr.imm
        elif op == Opcode.BLT:
            if _signed(self._read(instr.rs1)) < _signed(self._read(instr.rs2)):
                next_pc = self.pc + 1 + instr.imm
        elif op == Opcode.JMP:
            next_pc = self.pc + 1 + instr.imm
        elif op == Opcode.HALT:
            self.halted = True
            return
        else:  # pragma: no cover - enum is exhaustive
            raise CrashError(f"unimplemented opcode {op}")
        self.pc = next_pc

    def run_span(self, stop_cycle=None):
        """Execute until ``cycles == stop_cycle``, halt, crash, or timeout.

        A tight-loop twin of repeated :meth:`step` for the
        checkpoint-and-replay fault-injection engine: architectural
        state evolves identically (same crashes, same
        :class:`TimeoutError` budget, same halt semantics), but the
        interpreter loop is inlined with cached locals and skips the
        per-register read/write trace counters — bookkeeping that only
        :class:`ExecutionResult` consumers (e.g. selective replication)
        need and that fault-injection records never observe.

        ``stop_cycle=None`` runs to halt or cycle budget.  A pending IR
        fault is consumed by the first fetch, exactly as in
        :meth:`step`.
        """
        instructions = self.program.instructions
        n_instr = len(instructions)
        regs = self.registers
        overlay = self._mem_overlay
        base = self._mem_base
        max_cycles = self.max_cycles
        arith = ARITH_OPS
        pc = self.pc
        cycles = self.cycles
        halted = self.halted
        # An IR fault is consumed by the first fetch, so keep it in a
        # local instead of re-reading the attribute every cycle; -1 is an
        # unreachable cycle count, sparing a per-cycle None compare.
        ir_fault = self._ir_fault
        if stop_cycle is None:
            stop_cycle = -1
        try:
            while not halted and cycles != stop_cycle:
                if not 0 <= pc < n_instr:
                    raise CrashError(f"pc {pc} outside program")
                instr = instructions[pc]
                if ir_fault:
                    instr = unpack_instruction(pack_instruction(instr) ^ ir_fault)
                    ir_fault = 0
                    self._ir_fault = 0
                op = instr.opcode
                next_pc = pc + 1
                # r0 reads as 0 because writes to it are dropped, so the
                # registers[0] == 0 invariant lets reads skip the check.
                if op in arith:
                    a = regs[instr.rs1]
                    b = regs[instr.rs2]
                    if op is Opcode.ADD:
                        value = a + b
                    elif op is Opcode.SUB:
                        value = a - b
                    elif op is Opcode.MUL:
                        value = a * b
                    elif op is Opcode.AND:
                        value = a & b
                    elif op is Opcode.OR:
                        value = a | b
                    elif op is Opcode.XOR:
                        value = a ^ b
                    elif op is Opcode.SHL:
                        value = a << (b & 31)
                    else:  # SHR
                        value = a >> (b & 31)
                    if instr.rd:
                        regs[instr.rd] = value & WORD_MASK
                elif op is Opcode.ADDI:
                    if instr.rd:
                        regs[instr.rd] = (regs[instr.rs1] + instr.imm) & WORD_MASK
                elif op is Opcode.LUI:
                    if instr.rd:
                        regs[instr.rd] = instr.imm & WORD_MASK
                elif op is Opcode.LD:
                    addr = (regs[instr.rs1] + instr.imm) & WORD_MASK
                    if addr >= MEMORY_LIMIT:
                        raise CrashError(f"load from invalid address {addr}")
                    if instr.rd:
                        value = overlay[addr] if addr in overlay else base.get(addr, 0)
                        regs[instr.rd] = value & WORD_MASK
                elif op is Opcode.ST:
                    addr = (regs[instr.rs1] + instr.imm) & WORD_MASK
                    if addr >= MEMORY_LIMIT:
                        raise CrashError(f"store to invalid address {addr}")
                    overlay[addr] = regs[instr.rs2] & WORD_MASK
                elif op is Opcode.BEQ:
                    if regs[instr.rs1] == regs[instr.rs2]:
                        next_pc = pc + 1 + instr.imm
                elif op is Opcode.BNE:
                    if regs[instr.rs1] != regs[instr.rs2]:
                        next_pc = pc + 1 + instr.imm
                elif op is Opcode.BLT:
                    if _signed(regs[instr.rs1]) < _signed(regs[instr.rs2]):
                        next_pc = pc + 1 + instr.imm
                elif op is Opcode.JMP:
                    next_pc = pc + 1 + instr.imm
                elif op is Opcode.HALT:
                    halted = True
                    cycles += 1
                    break
                elif op is not Opcode.NOP:  # pragma: no cover - exhaustive
                    raise CrashError(f"unimplemented opcode {op}")
                pc = next_pc
                cycles += 1
                if cycles >= max_cycles:
                    raise TimeoutError(f"exceeded {max_cycles} cycles")
        finally:
            # Write back on every exit path so a CrashError/TimeoutError
            # leaves the same state repeated step() calls would.
            self.pc = pc
            self.cycles = cycles
            self.halted = halted

    def run(self, fault=None):
        """Run to completion.

        Parameters
        ----------
        fault:
            Optional ``(cycle, element, bit)`` triple; the bit is flipped
            just *before* the given cycle executes.

        Returns
        -------
        :class:`ExecutionResult`

        Raises
        ------
        CrashError, TimeoutError
            Propagated to the caller for outcome classification.
        """
        self.reset()
        fault_cycle = -1
        if fault is not None:
            fault_cycle, element, bit = fault
        while not self.halted:
            if fault is not None and self.cycles == fault_cycle:
                self.flip_bit(element, bit)
                fault = None  # single-event upset
            self.step()
        return ExecutionResult(
            halted=True,
            cycles=self.cycles,
            memory=self.memory,
            registers=list(self.registers),
            trace_reads=dict(self._reads),
            trace_writes=dict(self._writes),
        )
