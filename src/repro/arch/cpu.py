"""CPU simulator with injectable state elements.

The machine executes one instruction per cycle.  Its *state elements* —
the fault-injection targets, standing in for the flip-flops of a real
pipeline — are:

* the 16 x 32-bit register file (``"reg<i>"``),
* the program counter (``"pc"``),
* the fetched-instruction latch (``"ir"``), whose bits encode opcode and
  operand fields as a packed word, so a flip there corrupts the
  instruction in flight (mimicking pipeline-latch faults).

Faults are injected by flipping a chosen bit of a chosen element at a
chosen cycle, mid-execution.  Outcomes are classified by the caller
(:mod:`repro.arch.fault_injection`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.isa import (
    ARITH_OPS,
    N_REGISTERS,
    WORD_MASK,
    Instruction,
    Opcode,
)

MEMORY_LIMIT = 1 << 20  # addresses above this are architectural crashes

_OPCODES = list(Opcode)
# pack_instruction sits on the fault-injection hot path (every "ir"
# fault re-packs the instruction stream), so the opcode lookup is a
# precomputed dict rather than an O(n) list scan.
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODES)}


class CrashError(Exception):
    """Architectural crash: invalid opcode, bad PC, or bad memory access."""


@dataclass
class ExecutionResult:
    """Outcome of one program run."""

    halted: bool
    cycles: int
    memory: dict
    registers: list
    trace_reads: dict = field(default_factory=dict)  # reg -> read count
    trace_writes: dict = field(default_factory=dict)  # reg -> write count

    def output(self, output_range):
        start, length = output_range
        return tuple(self.memory.get(start + i, 0) for i in range(length))


def _signed(value):
    value &= WORD_MASK
    return value - (1 << 32) if value & 0x80000000 else value


def pack_instruction(instr):
    """Pack an instruction into a 32-bit word (opcode|rd|rs1|rs2|imm16)."""
    op_idx = _OPCODE_INDEX[instr.opcode]
    imm16 = instr.imm & 0xFFFF
    return (
        (op_idx & 0x1F) << 27
        | (instr.rd & 0xF) << 23
        | (instr.rs1 & 0xF) << 19
        | (instr.rs2 & 0xF) << 15
        | imm16
    )


def unpack_instruction(word):
    """Inverse of :func:`pack_instruction`; raises CrashError on bad opcode."""
    op_idx = (word >> 27) & 0x1F
    if op_idx >= len(_OPCODES):
        raise CrashError(f"invalid opcode index {op_idx}")
    imm = word & 0xFFFF
    if imm & 0x8000:
        imm -= 1 << 16
    return Instruction(
        opcode=_OPCODES[op_idx],
        rd=(word >> 23) & 0xF,
        rs1=(word >> 19) & 0xF,
        rs2=(word >> 15) & 0xF,
        imm=imm,
    )


class CPU:
    """Functional simulator with named, bit-addressable state elements."""

    def __init__(self, program, max_cycles=100_000):
        self.program = program
        self.max_cycles = max_cycles
        self.reset()

    def reset(self):
        self.registers = [0] * N_REGISTERS
        self.pc = 0
        self.memory = dict(self.program.initial_memory)
        self.cycles = 0
        self.halted = False
        self._reads = {}
        self._writes = {}

    # -- state-element access (the fault-injection surface) -------------------
    def state_elements(self):
        """Names of all injectable state elements."""
        return [f"reg{i}" for i in range(N_REGISTERS)] + ["pc", "ir"]

    def flip_bit(self, element, bit):
        """Flip one bit of a state element *now* (between cycles).

        Flipping ``"ir"`` corrupts the next fetched instruction word.
        """
        if not 0 <= bit < 32:
            raise ValueError("bit index out of range")
        if element.startswith("reg"):
            idx = int(element[3:])
            if idx == 0:
                return  # r0 is hardwired to zero: fault is masked by design
            self.registers[idx] ^= 1 << bit
            self.registers[idx] &= WORD_MASK
        elif element == "pc":
            self.pc ^= 1 << bit
        elif element == "ir":
            self._ir_fault = getattr(self, "_ir_fault", 0) ^ (1 << bit)
        else:
            raise ValueError(f"unknown state element {element!r}")

    # -- execution -------------------------------------------------------------
    def step(self):
        """Execute one cycle; raises CrashError on architectural violations."""
        if self.halted:
            return
        if not 0 <= self.pc < len(self.program.instructions):
            raise CrashError(f"pc {self.pc} outside program")
        instr = self.program.instructions[self.pc]
        ir_fault = getattr(self, "_ir_fault", 0)
        if ir_fault:
            instr = unpack_instruction(pack_instruction(instr) ^ ir_fault)
            self._ir_fault = 0
        self._execute(instr)
        self.cycles += 1
        if self.cycles >= self.max_cycles and not self.halted:
            raise TimeoutError(f"exceeded {self.max_cycles} cycles")

    def _read(self, reg):
        self._reads[reg] = self._reads.get(reg, 0) + 1
        return 0 if reg == 0 else self.registers[reg]

    def _write(self, reg, value):
        self._writes[reg] = self._writes.get(reg, 0) + 1
        if reg != 0:
            self.registers[reg] = value & WORD_MASK

    def _execute(self, instr):
        op = instr.opcode
        next_pc = self.pc + 1
        if op == Opcode.NOP:
            pass
        elif op in ARITH_OPS:
            a = self._read(instr.rs1)
            b = self._read(instr.rs2)
            if op == Opcode.ADD:
                value = a + b
            elif op == Opcode.SUB:
                value = a - b
            elif op == Opcode.MUL:
                value = a * b
            elif op == Opcode.AND:
                value = a & b
            elif op == Opcode.OR:
                value = a | b
            elif op == Opcode.XOR:
                value = a ^ b
            elif op == Opcode.SHL:
                value = a << (b & 31)
            else:  # SHR
                value = a >> (b & 31)
            self._write(instr.rd, value)
        elif op == Opcode.ADDI:
            self._write(instr.rd, self._read(instr.rs1) + instr.imm)
        elif op == Opcode.LUI:
            self._write(instr.rd, instr.imm)
        elif op == Opcode.LD:
            addr = (self._read(instr.rs1) + instr.imm) & WORD_MASK
            if addr >= MEMORY_LIMIT:
                raise CrashError(f"load from invalid address {addr}")
            self._write(instr.rd, self.memory.get(addr, 0))
        elif op == Opcode.ST:
            addr = (self._read(instr.rs1) + instr.imm) & WORD_MASK
            if addr >= MEMORY_LIMIT:
                raise CrashError(f"store to invalid address {addr}")
            self.memory[addr] = self._read(instr.rs2) & WORD_MASK
        elif op == Opcode.BEQ:
            if self._read(instr.rs1) == self._read(instr.rs2):
                next_pc = self.pc + 1 + instr.imm
        elif op == Opcode.BNE:
            if self._read(instr.rs1) != self._read(instr.rs2):
                next_pc = self.pc + 1 + instr.imm
        elif op == Opcode.BLT:
            if _signed(self._read(instr.rs1)) < _signed(self._read(instr.rs2)):
                next_pc = self.pc + 1 + instr.imm
        elif op == Opcode.JMP:
            next_pc = self.pc + 1 + instr.imm
        elif op == Opcode.HALT:
            self.halted = True
            return
        else:  # pragma: no cover - enum is exhaustive
            raise CrashError(f"unimplemented opcode {op}")
        self.pc = next_pc

    def run(self, fault=None):
        """Run to completion.

        Parameters
        ----------
        fault:
            Optional ``(cycle, element, bit)`` triple; the bit is flipped
            just *before* the given cycle executes.

        Returns
        -------
        :class:`ExecutionResult`

        Raises
        ------
        CrashError, TimeoutError
            Propagated to the caller for outcome classification.
        """
        self.reset()
        fault_cycle = -1
        if fault is not None:
            fault_cycle, element, bit = fault
        while not self.halted:
            if fault is not None and self.cycles == fault_cycle:
                self.flip_bit(element, bit)
                fault = None  # single-event upset
            self.step()
        return ExecutionResult(
            halted=True,
            cycles=self.cycles,
            memory=dict(self.memory),
            registers=list(self.registers),
            trace_reads=dict(self._reads),
            trace_writes=dict(self._writes),
        )
