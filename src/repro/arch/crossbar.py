"""Memristor-crossbar fault criticality and selective redundancy (ref [28]).

DNN weights mapped onto memristor crossbars suffer stuck-at faults.  Full
redundancy (a spare for every cell) is wasteful: [28] trained a small
neural network to predict, from fault features, whether a given fault is
*critical* to the DNN's accuracy (reported ~99 % accuracy), and by
protecting only critical faults cut the required redundancy by ~93 %.

Substrate: a numpy MLP classifier whose layer weights live on
:class:`Crossbar` arrays; stuck-at-0/1 faults overwrite cell conductances;
criticality ground truth comes from measuring the accuracy drop the fault
causes on a validation batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.metrics import accuracy_score
from repro.ml.mlp import MLPClassifier
from repro.ml.preprocessing import StandardScaler


class Crossbar:
    """One crossbar array holding a weight matrix as conductances.

    Conductances are clipped to ``[-g_max, g_max]``; stuck-at faults pin a
    cell to 0 (stuck-off) or ±g_max (stuck-on).
    """

    def __init__(self, weights, g_max=None):
        self.weights = np.array(weights, dtype=float)
        if self.weights.ndim != 2:
            raise ValueError("crossbar weights must be 2-D")
        self.g_max = float(g_max if g_max is not None else np.abs(self.weights).max() or 1.0)
        self.faults = {}  # (row, col) -> stuck value

    @property
    def shape(self):
        return self.weights.shape

    @property
    def n_cells(self):
        return self.weights.size

    def inject_stuck_at(self, row, col, stuck_on):
        """Pin cell (row, col) to +/-g_max (stuck-on, keeping sign) or 0."""
        r, c = self.shape
        if not (0 <= row < r and 0 <= col < c):
            raise ValueError("fault coordinates out of range")
        if stuck_on:
            sign = np.sign(self.weights[row, col]) or 1.0
            self.faults[(row, col)] = sign * self.g_max
        else:
            self.faults[(row, col)] = 0.0

    def clear_faults(self):
        self.faults = {}

    def effective_weights(self):
        """Weight matrix with faults applied."""
        W = self.weights.copy()
        for (row, col), value in self.faults.items():
            W[row, col] = value
        return W

    def matvec(self, x):
        """Analog MVM through the (possibly faulty) crossbar."""
        return np.asarray(x, dtype=float) @ self.effective_weights()


@dataclass
class FaultDescriptor:
    """Features of one candidate fault for criticality prediction.

    ``delta_conductance`` (how far the stuck value moves the weight) and
    ``input_activity`` (mean |activation| of the presynaptic neuron,
    profiled once on a calibration batch) are the strongest predictors —
    the kind of profiling features [28] feeds its criticality network.
    """

    layer: int
    row: int
    col: int
    stuck_on: bool
    weight_value: float
    weight_magnitude_rank: float  # percentile of |w| within its layer
    fan_out: float  # downstream column count (proxy for influence)
    delta_conductance: float = 0.0
    input_activity: float = 0.0

    def feature_vector(self):
        return [
            float(self.layer),
            self.row,
            self.col,
            float(self.stuck_on),
            self.weight_value,
            abs(self.weight_value),
            self.weight_magnitude_rank,
            self.fan_out,
            self.delta_conductance,
            self.input_activity,
            self.delta_conductance * self.input_activity,
        ]


class CrossbarFaultStudy:
    """Criticality labelling, prediction, and selective-redundancy accounting.

    Parameters
    ----------
    model:
        A fitted :class:`repro.ml.mlp.MLPClassifier` (the "DNN").
    X_val / y_val:
        Validation batch used to measure each fault's accuracy impact.
    criticality_threshold:
        Accuracy drop (absolute) above which a fault is labelled critical.
    """

    def __init__(self, model, X_val, y_val, criticality_threshold=0.01):
        if model.weights_ is None:
            raise ValueError("model must be fitted")
        self.model = model
        self.X_val = np.asarray(X_val, dtype=float)
        self.y_val = np.asarray(y_val)
        self.threshold = criticality_threshold
        self.crossbars = [Crossbar(W) for W in model.weights_]
        self.baseline_accuracy = accuracy_score(self.y_val, model.predict(self.X_val))
        self._input_activity = self._profile_activity()

    def _profile_activity(self):
        """Mean |activation| feeding each layer, profiled on the val batch."""
        acts = self.model._forward(self.X_val)
        # acts[k] is the input to layer k's weight matrix.
        return [np.abs(a).mean(axis=0) for a in acts[:-1]]

    def _metrics_with_faults(self):
        """(accuracy, mean true-class softmax margin) under current faults."""
        original = [W.copy() for W in self.model.weights_]
        try:
            for layer, xbar in enumerate(self.crossbars):
                self.model.weights_[layer] = xbar.effective_weights()
            probs = self.model.predict_proba(self.X_val)
            pred = self.model.classes_[np.argmax(probs, axis=1)]
            acc = accuracy_score(self.y_val, pred)
            class_index = {c: i for i, c in enumerate(self.model.classes_)}
            true_cols = np.array([class_index[c] for c in self.y_val])
            margin = float(probs[np.arange(len(probs)), true_cols].mean())
            return acc, margin
        finally:
            for layer, W in enumerate(original):
                self.model.weights_[layer] = W

    def measure_fault(self, layer, row, col, stuck_on):
        """Ground-truth criticality of one fault (the expensive step).

        A fault is critical when it measurably damages the network: the
        validation accuracy drops by more than ``criticality_threshold``
        *or* the mean true-class confidence margin drops by more than the
        same threshold.  The margin term removes the label noise a small
        validation batch would otherwise add near the accuracy threshold.
        """
        if not hasattr(self, "_baseline_margin"):
            _, self._baseline_margin = self._metrics_with_faults()
        xbar = self.crossbars[layer]
        xbar.inject_stuck_at(row, col, stuck_on)
        acc, margin = self._metrics_with_faults()
        xbar.clear_faults()
        acc_drop = self.baseline_accuracy - acc
        margin_drop = self._baseline_margin - margin
        critical = acc_drop > self.threshold or margin_drop > self.threshold
        return max(acc_drop, margin_drop), critical

    def sample_faults(self, n_faults=300, seed=0):
        """Random fault descriptors with measured criticality labels."""
        rng = np.random.default_rng(seed)
        descriptors = []
        labels = []
        for _ in range(n_faults):
            layer = int(rng.integers(len(self.crossbars)))
            W = self.crossbars[layer].weights
            row = int(rng.integers(W.shape[0]))
            col = int(rng.integers(W.shape[1]))
            stuck_on = bool(rng.integers(2))
            rank = float(np.mean(np.abs(W) <= abs(W[row, col])))
            fan_out = float(W.shape[1])
            xbar = self.crossbars[layer]
            if stuck_on:
                stuck_value = (np.sign(W[row, col]) or 1.0) * xbar.g_max
            else:
                stuck_value = 0.0
            desc = FaultDescriptor(
                layer=layer,
                row=row,
                col=col,
                stuck_on=stuck_on,
                weight_value=float(W[row, col]),
                weight_magnitude_rank=rank,
                fan_out=fan_out,
                delta_conductance=float(abs(stuck_value - W[row, col])),
                input_activity=float(self._input_activity[layer][row]),
            )
            _, critical = self.measure_fault(layer, row, col, stuck_on)
            descriptors.append(desc)
            labels.append(int(critical))
        return descriptors, np.asarray(labels)

    def train_criticality_predictor(self, descriptors, labels, seed=0):
        """Small NN predicting fault criticality from descriptor features."""
        X = np.asarray([d.feature_vector() for d in descriptors])
        scaler = StandardScaler().fit(X)
        clf = MLPClassifier(hidden=(16,), n_epochs=250, lr=3e-3, seed=seed)
        clf.fit(scaler.transform(X), labels)

        def predictor(descs):
            Xq = np.asarray([d.feature_vector() for d in descs])
            return clf.predict(scaler.transform(Xq))

        return predictor, clf

    @staticmethod
    def redundancy_savings(labels_predicted):
        """Redundancy reduction from protecting only predicted-critical cells.

        Full protection needs one spare per (potentially faulty) cell;
        selective protection spares only predicted-critical ones.
        """
        labels_predicted = np.asarray(labels_predicted)
        if len(labels_predicted) == 0:
            raise ValueError("no predictions given")
        return 1.0 - labels_predicted.mean()
