"""Microarchitectural fault injection with outcome classification.

One injection flips one bit of one state element at one cycle of a
program's execution (single-event upset).  Outcomes follow the taxonomy
the paper's Sec. III (and ref [24]) uses:

* ``MASKED`` — run completes with the golden output;
* ``SDC`` — run completes but the output differs silently;
* ``CRASH`` — architectural violation (bad opcode/PC/address);
* ``HANG`` — cycle budget exceeded;
* ``SYMPTOM`` — run completes with the golden output but showed a
  detectable anomaly (cycle-count deviation), the hook symptom-based
  detectors key on.

Campaign execution is delegated to the shared runtime layer
(:mod:`repro.runtime`): each trial draws from its own deterministic
seed stream, so campaigns can fan out over a process pool (``jobs``),
memoize chunks on disk (``cache``), and report progress — with results
bit-identical to the serial path.  See ``docs/campaigns.md``.
"""

from __future__ import annotations

import enum
import functools
import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.arch.cpu import CPU, CrashError
from repro.runtime import CampaignRunner


class Outcome(enum.Enum):
    MASKED = "masked"
    SDC = "sdc"
    CRASH = "crash"
    HANG = "hang"
    SYMPTOM = "symptom"


OUTCOME_INDEX = {o: i for i, o in enumerate(Outcome)}


@dataclass
class InjectionRecord:
    """One fault-injection trial."""

    program: str
    cycle: int
    element: str
    bit: int
    outcome: Outcome
    pc_at_injection: int = -1
    opcode_at_injection: str = ""


@dataclass
class CampaignResult:
    """All trials of one campaign plus the golden reference."""

    program: str
    golden_output: tuple
    golden_cycles: int
    records: list = field(default_factory=list)

    def counts(self):
        """Mapping outcome -> number of trials."""
        out = {o: 0 for o in Outcome}
        for r in self.records:
            out[r.outcome] += 1
        return out

    def rates(self):
        """Mapping outcome -> fraction of trials."""
        n = len(self.records)
        if n == 0:
            raise ValueError("campaign has no records")
        return {o: c / n for o, c in self.counts().items()}

    def failure_rate(self):
        """Fraction of trials that are SDC, crash, or hang."""
        rates = self.rates()
        return rates[Outcome.SDC] + rates[Outcome.CRASH] + rates[Outcome.HANG]

    def per_element(self):
        """Mapping state element -> list of its records."""
        by_el = {}
        for r in self.records:
            by_el.setdefault(r.element, []).append(r)
        return by_el

    def element_failure_rates(self):
        """Mapping element -> failure fraction among its injections."""
        out = {}
        for element, records in self.per_element().items():
            bad = sum(
                r.outcome in (Outcome.SDC, Outcome.CRASH, Outcome.HANG)
                for r in records
            )
            out[element] = bad / len(records)
        return out


class FaultInjector:
    """Runs fault-injection campaigns on a program.

    Parameters
    ----------
    program:
        The workload (:class:`repro.arch.isa.Program`).
    max_cycles_factor:
        Hang threshold as a multiple of the golden cycle count.
    symptom_tolerance:
        Relative cycle-count deviation below which a correct-output run is
        MASKED; above it, SYMPTOM.
    """

    def __init__(self, program, max_cycles_factor=4.0, symptom_tolerance=0.02):
        self.program = program
        golden = CPU(program, max_cycles=1_000_000).run()
        self.golden_output = golden.output(program.output_range)
        self.golden_cycles = golden.cycles
        self.max_cycles = max(int(golden.cycles * max_cycles_factor), golden.cycles + 64)
        self.symptom_tolerance = symptom_tolerance
        self.last_run_stats = None  # RunStats of the most recent campaign
        # Golden PC trace: which instruction was executing at each cycle.
        tracer = CPU(program, max_cycles=1_000_000)
        self.golden_pc_trace = []
        while not tracer.halted:
            self.golden_pc_trace.append(tracer.pc)
            tracer.step()

    def inject_one(self, cycle, element, bit):
        """Run with one fault and classify the outcome."""
        cpu = CPU(self.program, max_cycles=self.max_cycles)
        # Log-feature context: the instruction the golden run executed at the
        # injection cycle (pattern mining keys on it).
        if 0 <= cycle < len(self.golden_pc_trace):
            pc_at = self.golden_pc_trace[cycle]
            opcode_at = self.program.instructions[pc_at].opcode.value
        else:
            pc_at = -1
            opcode_at = ""
        try:
            with obs.span("arch.cpu.run"):
                result = cpu.run(fault=(cycle, element, bit))
        except CrashError:
            return self._record(cycle, element, bit, Outcome.CRASH, pc_at, opcode_at)
        except TimeoutError:
            return self._record(cycle, element, bit, Outcome.HANG, pc_at, opcode_at)
        output = result.output(self.program.output_range)
        if output != self.golden_output:
            outcome = Outcome.SDC
        elif (
            abs(result.cycles - self.golden_cycles)
            > self.symptom_tolerance * self.golden_cycles
        ):
            outcome = Outcome.SYMPTOM
        else:
            outcome = Outcome.MASKED
        return self._record(cycle, element, bit, outcome, pc_at, opcode_at)

    def _record(self, cycle, element, bit, outcome, pc_at, opcode_at):
        obs.inc("arch.fault_injection.trials")
        obs.inc(f"arch.fault_injection.outcome.{outcome.value}")
        return InjectionRecord(
            program=self.program.name,
            cycle=cycle,
            element=element,
            bit=bit,
            outcome=outcome,
            pc_at_injection=pc_at,
            opcode_at_injection=opcode_at,
        )

    def fingerprint(self):
        """Content digest of everything that determines a trial's result.

        Namespaces the result cache: any change to the program, the hang
        budget, or the symptom threshold changes the fingerprint and
        invalidates prior entries.
        """
        listing = "\n".join(repr(i) for i in self.program.instructions)
        return {
            "program": self.program.name,
            "instructions": hashlib.sha256(listing.encode()).hexdigest(),
            "output_range": list(self.program.output_range),
            "golden_cycles": self.golden_cycles,
            "max_cycles": self.max_cycles,
            "symptom_tolerance": self.symptom_tolerance,
        }

    def _campaign(self, worker, n_trials, seed, key_parts, jobs, cache, progress,
                  chunk_size, policy, resume, worker_wrapper=None):
        if worker_wrapper is not None:
            # Test hook (e.g. repro.runtime.ChaosWorker): wraps execution
            # only — cache keys are unchanged, so a wrapper must not alter
            # what a trial computes, merely how reliably it completes.
            worker = worker_wrapper(worker)
        runner = CampaignRunner(
            jobs=jobs, cache=cache, progress=progress, chunk_size=chunk_size,
            classify=lambda record: record.outcome.value,
            policy=policy, resume=resume,
        )
        with obs.span(
            "arch.fault_injection.campaign",
            program=self.program.name, trials=n_trials,
        ):
            records = runner.run_trials(
                worker, n_trials, seed=seed,
                key=("fi-campaign", self.fingerprint(), key_parts),
            )
        self.last_run_stats = runner.stats
        return CampaignResult(
            program=self.program.name,
            golden_output=self.golden_output,
            golden_cycles=self.golden_cycles,
            records=records,
        )

    def run_campaign(self, n_trials=500, seed=0, elements=None, jobs=1,
                     cache=None, progress=None, chunk_size=32, policy=None,
                     resume=False, worker_wrapper=None):
        """Uniformly random (cycle, element, bit) injection campaign.

        Trial ``i`` samples its coordinates from the seed stream
        ``(seed, i)`` regardless of chunking, so any ``jobs`` value
        yields identical records.  ``cache`` (a
        :class:`repro.runtime.ResultCache`) memoizes trial chunks;
        ``progress`` receives :class:`repro.runtime.ProgressEvent`
        updates.  ``policy`` (a :class:`repro.runtime.FaultPolicy`)
        governs per-unit timeouts, retries, and pool respawns;
        ``resume=True`` replays an interrupted campaign's journal from
        the cache and finishes it bit-identically.  Runner accounting is
        left in ``self.last_run_stats``.

        ``worker_wrapper`` is a fault-tolerance test hook: a callable
        applied to the chunk worker before execution (typically
        :class:`repro.runtime.ChaosWorker`).  It does not enter the
        cache key, so wrapped campaigns must produce the same records.
        """
        elements = list(elements or CPU(self.program).state_elements())
        worker = functools.partial(_random_chunk, self, tuple(elements))
        return self._campaign(worker, n_trials, seed, ("random", elements),
                              jobs, cache, progress, chunk_size, policy, resume,
                              worker_wrapper)

    def exhaustive_element_campaign(self, element, n_trials=200, seed=0, jobs=1,
                                    cache=None, progress=None, chunk_size=32,
                                    policy=None, resume=False):
        """Many injections into a single element (per-element AVF estimation)."""
        worker = functools.partial(_element_chunk, self, element)
        return self._campaign(worker, n_trials, seed, ("element", element),
                              jobs, cache, progress, chunk_size, policy, resume)


def _random_chunk(injector, elements, chunk):
    """Execute one trial chunk of a random campaign (process-pool worker)."""
    records = []
    with obs.span("arch.fault_injection.chunk", trials=len(chunk)):
        for rng in chunk.rngs():
            cycle = int(rng.integers(0, injector.golden_cycles))
            element = elements[int(rng.integers(len(elements)))]
            bit = int(rng.integers(0, 32))
            records.append(injector.inject_one(cycle, element, bit))
    return records


def _element_chunk(injector, element, chunk):
    """Execute one trial chunk of a single-element campaign."""
    records = []
    with obs.span("arch.fault_injection.chunk", trials=len(chunk)):
        for rng in chunk.rngs():
            cycle = int(rng.integers(0, injector.golden_cycles))
            bit = int(rng.integers(0, 32))
            records.append(injector.inject_one(cycle, element, bit))
    return records
