"""Microarchitectural fault injection with outcome classification.

One injection flips one bit of one state element at one cycle of a
program's execution (single-event upset).  Outcomes follow the taxonomy
the paper's Sec. III (and ref [24]) uses:

* ``MASKED`` — run completes with the golden output;
* ``SDC`` — run completes but the output differs silently;
* ``CRASH`` — architectural violation (bad opcode/PC/address);
* ``HANG`` — cycle budget exceeded;
* ``SYMPTOM`` — run completes with the golden output but showed a
  detectable anomaly (cycle-count deviation), the hook symptom-based
  detectors key on.

Campaign execution is delegated to the shared runtime layer
(:mod:`repro.runtime`): each trial draws from its own deterministic
seed stream, so campaigns can fan out over a process pool (``jobs``),
memoize chunks on disk (``cache``), and report progress — with results
bit-identical to the serial path.  See ``docs/campaigns.md``.

Trial execution itself runs on one of three engines (``engine=``):

* ``"batched"`` (the ``"auto"`` default) — trial-vectorized suffix
  replay: whole chunks of trials march down the golden PC trace in
  lockstep as numpy lanes, with per-opcode masked updates and the same
  reconvergence early-exit as the forked engine; lanes whose control
  flow diverges from the golden trace fall back to the scalar replay
  path (:mod:`repro.arch.batched_engine`).
* ``"forked"`` — scalar checkpoint-and-replay: the single golden run
  leaves a ladder of architectural snapshots; each trial restores the
  nearest snapshot at-or-before its injection cycle, replays only the
  short gap, flips the bit, and executes the post-fault suffix — with
  an early-exit masking check that classifies the trial without
  running the rest of the suffix once live state has reconverged with
  the golden trace at a snapshot boundary.
* ``"reference"`` — the original full re-execution from cycle 0, kept
  as the equivalence oracle (CLI: ``--reference-engine``).

All engines produce bit-identical :class:`InjectionRecord`\\ s; the
resolved engine is part of :meth:`FaultInjector.fingerprint`, so
cached results never cross engines.  See ``docs/fi-engine.md`` for
the full design contract and ``docs/performance.md`` for measured
speedups.
"""

from __future__ import annotations

import enum
import functools
import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.arch.cpu import CPU, CrashError
from repro.runtime import CampaignRunner, stable_digest

#: Trial-execution engines (``"auto"`` resolves to ``"batched"``).
ENGINES = ("auto", "batched", "forked", "reference")

#: Default campaign chunk size per engine.  The batched engine amortizes
#: its per-sweep overhead over the whole chunk, so it defaults to wider
#: chunks; records are chunk-size-independent either way.
DEFAULT_CHUNK_SIZE = 32
BATCHED_CHUNK_SIZE = 1024

#: Cycle budget for the golden (fault-free) characterization run.
GOLDEN_MAX_CYCLES = 1_000_000

#: Snapshot-ladder cap under adaptive intervals: when the golden run
#: outgrows it, every other snapshot is dropped and the interval
#: doubles, bounding memory at O(cap) snapshots for any program length.
MAX_AUTO_SNAPSHOTS = 256

#: Per-process cache of built batched engines, keyed by injector
#: fingerprint.  Transports re-pickle the injector per submitted task
#: (``__getstate__`` drops the engine to keep submissions small), so
#: without this every task landing in a worker process would rebuild
#: the golden-effect arrays and snapshot ladder from scratch; with it,
#: the first task in a process pays the build and every later task for
#: a fingerprint-identical injector reuses it (counted by the
#: ``arch.fi.engine.ladder_reuse`` metric).  Bounded to a handful of
#: entries — one per distinct program/engine config a worker serves.
_ENGINE_CACHE_SLOTS = 4
_ENGINE_CACHE = {}


class Outcome(enum.Enum):
    """Sec. III outcome taxonomy for one injection trial."""

    MASKED = "masked"
    SDC = "sdc"
    CRASH = "crash"
    HANG = "hang"
    SYMPTOM = "symptom"


OUTCOME_INDEX = {o: i for i, o in enumerate(Outcome)}


@dataclass
class InjectionRecord:
    """One fault-injection trial."""

    program: str
    cycle: int
    element: str
    bit: int
    outcome: Outcome
    pc_at_injection: int = -1
    opcode_at_injection: str = ""


@dataclass
class CampaignResult:
    """All trials of one campaign plus the golden reference."""

    program: str
    golden_output: tuple
    golden_cycles: int
    records: list = field(default_factory=list)

    def counts(self):
        """Mapping outcome -> number of trials."""
        out = {o: 0 for o in Outcome}
        for r in self.records:
            out[r.outcome] += 1
        return out

    def rates(self):
        """Mapping outcome -> fraction of trials."""
        n = len(self.records)
        if n == 0:
            raise ValueError("campaign has no records")
        return {o: c / n for o, c in self.counts().items()}

    def failure_rate(self):
        """Fraction of trials that are SDC, crash, or hang."""
        rates = self.rates()
        return rates[Outcome.SDC] + rates[Outcome.CRASH] + rates[Outcome.HANG]

    def per_element(self):
        """Mapping state element -> list of its records."""
        by_el = {}
        for r in self.records:
            by_el.setdefault(r.element, []).append(r)
        return by_el

    def element_failure_rates(self):
        """Mapping element -> failure fraction among its injections."""
        out = {}
        for element, records in self.per_element().items():
            bad = sum(
                r.outcome in (Outcome.SDC, Outcome.CRASH, Outcome.HANG)
                for r in records
            )
            out[element] = bad / len(records)
        return out


class FaultInjector:
    """Runs fault-injection campaigns on a program.

    Parameters
    ----------
    program:
        The workload (:class:`repro.arch.isa.Program`).
    max_cycles_factor:
        Hang threshold as a multiple of the golden cycle count.
    symptom_tolerance:
        Relative cycle-count deviation below which a correct-output run is
        MASKED; above it, SYMPTOM.
    engine:
        Trial-execution engine: ``"batched"`` (trial-vectorized suffix
        replay), ``"forked"`` (scalar checkpoint-and-replay),
        ``"reference"`` (full rerun from cycle 0, the equivalence
        oracle), or ``"auto"`` (default; resolves to ``"batched"``).
        All engines produce bit-identical records.
    snapshot_interval:
        Cycles between golden-state snapshots on the forked engine.
        ``None`` (default) adapts: it starts at 1 and doubles whenever
        the ladder outgrows :data:`MAX_AUTO_SNAPSHOTS`, so short
        programs checkpoint densely and long ones stay bounded.
    """

    def __init__(self, program, max_cycles_factor=4.0, symptom_tolerance=0.02,
                 engine="auto", snapshot_interval=None):
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        if snapshot_interval is not None and snapshot_interval < 1:
            raise ValueError("snapshot_interval must be positive")
        self.program = program
        self.requested_engine = engine
        self.engine = "batched" if engine == "auto" else engine
        self.symptom_tolerance = symptom_tolerance
        self.last_run_stats = None  # RunStats of the most recent campaign
        self._batched = None  # lazy BatchedEngine (per process; unpickled)

        # One golden run produces everything the trials need: the output
        # words and cycle count, the per-cycle PC trace (which instruction
        # was in flight at each cycle — pattern mining and the selective
        # replication flow key on it), and the forked engine's ladder of
        # architectural snapshots.
        cpu = CPU(program, max_cycles=GOLDEN_MAX_CYCLES)
        interval = snapshot_interval or 1
        adaptive = snapshot_interval is None
        snapshots = []
        trace = []
        while not cpu.halted:
            if cpu.cycles % interval == 0:
                snapshots.append(cpu.snapshot())
                if adaptive and len(snapshots) > MAX_AUTO_SNAPSHOTS:
                    snapshots = snapshots[::2]
                    interval *= 2
            trace.append(cpu.pc)
            cpu.step()
        self.golden_output = cpu.output(program.output_range)
        self.golden_cycles = cpu.cycles
        self.golden_pc_trace = trace
        self.max_cycles = max(int(cpu.cycles * max_cycles_factor), cpu.cycles + 64)
        self.snapshot_interval = interval
        self._snapshots = snapshots
        self._live_regs = self._boundary_liveness(trace, interval)
        # Last snapshot cycle: boundary checks past it are impossible.
        self._last_boundary = ((self.golden_cycles - 1) // interval) * interval
        # Trials restore into one reusable CPU instead of building a fresh
        # simulator per injection.
        self._trial_cpu = CPU(program, max_cycles=self.max_cycles)
        obs.inc("arch.fi.engine.snapshots", len(snapshots))
        obs.emit(
            "fi.ladder",
            engine=self.engine, program=program.name,
            golden_cycles=self.golden_cycles, snapshots=len(snapshots),
            snapshot_interval=interval,
        )

    def _boundary_liveness(self, trace, interval):
        """Golden live-in register sets at each snapshot boundary.

        A register the golden suffix never reads before overwriting
        cannot influence anything the outcome classification observes
        (output words and cycle count) — the ACE/un-ACE distinction of
        AVF analysis.  The early-exit check therefore compares only the
        live set: a flipped dead register still reconverges, instead of
        pinning the trial to a full suffix re-execution.
        """
        live = set()
        live_at = {}
        instructions = self.program.instructions
        for cycle in range(len(trace) - 1, -1, -1):
            instr = instructions[trace[cycle]]
            written = instr.writes
            if written is not None:
                live.discard(written)
            live.update(instr.reads)
            if cycle % interval == 0:
                # r0 is hardwired to zero in every run; never compare it.
                live_at[cycle] = tuple(sorted(live - {0}))
        return live_at

    def _injection_context(self, cycle):
        """Log-feature context: the golden instruction at the injection
        cycle (pattern mining keys on it)."""
        if 0 <= cycle < len(self.golden_pc_trace):
            pc_at = self.golden_pc_trace[cycle]
            return pc_at, self.program.instructions[pc_at].opcode.value
        return -1, ""

    def _classify(self, output, cycles):
        """The Sec. III taxonomy for a completed (non-crash) run."""
        if output != self.golden_output:
            return Outcome.SDC
        if (
            abs(cycles - self.golden_cycles)
            > self.symptom_tolerance * self.golden_cycles
        ):
            return Outcome.SYMPTOM
        return Outcome.MASKED

    def inject_one(self, cycle, element, bit):
        """Run one trial on the configured engine and classify the outcome.

        On the batched engine a single trial gains nothing from
        vectorization, so it runs on the scalar replay path — outcomes
        are bit-identical by the engine-equivalence contract.  Use
        :meth:`inject_many` to amortize trials over one batched sweep.
        """
        pc_at, opcode_at = self._injection_context(cycle)
        if self.engine == "reference":
            outcome = self._inject_reference(cycle, element, bit)
        else:
            outcome = self._inject_forked(cycle, element, bit)
        return self._record(cycle, element, bit, outcome, pc_at, opcode_at)

    def inject_many(self, coords):
        """Run trials for ``coords`` (``(cycle, element, bit)`` triples).

        Returns one :class:`InjectionRecord` per coordinate, in input
        order, bit-identical on every engine.  On the batched engine,
        register trials execute as lanes of one vectorized sweep
        (:mod:`repro.arch.batched_engine`); ``pc``/``ir`` trials leave
        the golden trace at the injection cycle itself, so they replay
        to the injection point and finish on the block-compiled
        interpreter.
        """
        coords = [(cycle, element, bit) for cycle, element, bit in coords]
        if self.engine != "batched":
            records = [self.inject_one(*coord) for coord in coords]
            self._emit_trials(records)
            return records
        outcomes = [None] * len(coords)
        lanes = []
        offtrace = []
        for i, (cycle, element, bit) in enumerate(coords):
            if not 0 <= cycle < self.golden_cycles:
                obs.inc("arch.fi.engine.cycles_skipped", self.golden_cycles)
                outcomes[i] = self._classify(
                    self.golden_output, self.golden_cycles
                )
            elif element.startswith("reg"):
                lanes.append((i, cycle, int(element[3:]), bit))
            else:
                offtrace.append((i, cycle, element, bit))
        if offtrace:
            engine = self._batched_engine()
            obs.inc("arch.fi.engine.batch.offtrace_trials", len(offtrace))
            for i, cycle, element, bit in offtrace:
                outcomes[i] = engine.run_offtrace(cycle, element, bit)
        if lanes:
            engine = self._batched_engine()
            with obs.span("arch.cpu.batch", trials=len(lanes)):
                for i, outcome in engine.run(lanes):
                    outcomes[i] = outcome
        records = []
        for (cycle, element, bit), outcome in zip(coords, outcomes):
            pc_at, opcode_at = self._injection_context(cycle)
            records.append(
                self._record(cycle, element, bit, outcome, pc_at, opcode_at)
            )
        self._emit_trials(records)
        return records

    def _emit_trials(self, records):
        """Flight-recorder rows for one executed batch of trials.

        One ``fi.trials`` event per :meth:`inject_many` call, carrying a
        compact ``[cycle, element, bit, outcome]`` row per trial — the
        framing (not one event per trial) is what keeps the per-trial
        recording overhead inside the perf-smoke budget.  Guarded here
        so the row list is never even built while recording is off.
        """
        if not records or not obs.enabled():
            return
        obs.emit(
            "fi.trials",
            engine=self.engine,
            program=self.program.name,
            items=[[r.cycle, r.element, r.bit, r.outcome.value]
                   for r in records],
        )

    def _batched_engine(self):
        """The lazily-built vectorized engine, shared per process.

        Looked up in (and inserted into) the module-level
        :data:`_ENGINE_CACHE` by fingerprint digest, so the unpickled
        injector copies that arrive with each transport task reuse the
        engine a previous task already built in this worker process.
        The fingerprint covers everything that determines a trial's
        result, which is exactly the reuse-safety contract.
        """
        if self._batched is None:
            key = stable_digest("fi-engine", self.fingerprint())
            engine = _ENGINE_CACHE.get(key)
            if engine is None:
                from repro.arch.batched_engine import BatchedEngine

                engine = BatchedEngine(self)
                while len(_ENGINE_CACHE) >= _ENGINE_CACHE_SLOTS:
                    _ENGINE_CACHE.pop(next(iter(_ENGINE_CACHE)))
                _ENGINE_CACHE[key] = engine
            else:
                obs.inc("arch.fi.engine.ladder_reuse")
            self._batched = engine
        return self._batched

    def __getstate__(self):
        """Pickle without the lazy batched engine.

        Chunk workers re-pickle the injector per submitted unit; the
        engine's precomputed golden-effect arrays would bloat every
        submit, and rebuilding them in the worker is cheap.
        """
        state = dict(self.__dict__)
        state["_batched"] = None
        return state

    def _inject_reference(self, cycle, element, bit):
        """Full re-execution from cycle 0 (the equivalence oracle)."""
        cpu = CPU(self.program, max_cycles=self.max_cycles)
        try:
            with obs.span("arch.cpu.run"):
                result = cpu.run(fault=(cycle, element, bit))
        except CrashError:
            return Outcome.CRASH
        except TimeoutError:
            return Outcome.HANG
        return self._classify(result.output(self.program.output_range), result.cycles)

    def _inject_forked(self, cycle, element, bit):
        """Checkpoint-and-replay: restore, replay the gap, flip, run the
        suffix with an early-exit masking check at snapshot boundaries."""
        if not 0 <= cycle < self.golden_cycles:
            # The reference loop halts before ever injecting such a
            # fault: the trial *is* the golden run.
            obs.inc("arch.fi.engine.cycles_skipped", self.golden_cycles)
            return self._classify(self.golden_output, self.golden_cycles)
        cpu = self._trial_cpu
        interval = self.snapshot_interval
        snapshots = self._snapshots
        snap = snapshots[cycle // interval]
        cpu.restore(snap)
        obs.inc("arch.fi.engine.cycles_skipped", snap.cycles)
        obs.inc("arch.fi.engine.cycles_replayed", cycle - snap.cycles)
        with obs.span("arch.cpu.replay"):
            # The pre-fault gap repeats the golden prefix: it cannot
            # crash, hang, or halt before reaching the injection cycle.
            cpu.run_span(cycle)
            cpu.flip_bit(element, bit)
            return self._run_suffix(cpu, (cycle // interval + 1) * interval)

    def _run_suffix(self, cpu, boundary):
        """Execute the post-fault suffix and classify the outcome.

        Runs boundary-to-boundary through the golden window, pausing at
        each snapshot cycle for the early-exit check; shared by the
        forked engine and the batched engine's divergence fallback.
        """
        interval = self.snapshot_interval
        snapshots = self._snapshots
        live_at = self._live_regs
        try:
            while boundary <= self._last_boundary and not cpu.halted:
                cpu.run_span(boundary)
                if cpu.halted:
                    break
                live = live_at.get(boundary)
                if live is not None and cpu.state_matches(
                    snapshots[boundary // interval], live
                ):
                    # Live state reconverged with the golden run at
                    # the same cycle: the remaining suffix is the
                    # golden suffix, so classify without executing it.
                    obs.inc("arch.fi.engine.early_exits")
                    obs.inc(
                        "arch.fi.engine.cycles_pruned",
                        self.golden_cycles - boundary,
                    )
                    return self._classify(
                        self.golden_output, self.golden_cycles
                    )
                boundary += interval
            # Past the last boundary no reconvergence check is
            # possible: run straight to halt or cycle budget.
            if not cpu.halted:
                cpu.run_span()
        except CrashError:
            return Outcome.CRASH
        except TimeoutError:
            return Outcome.HANG
        return self._classify(cpu.output(self.program.output_range), cpu.cycles)

    def _record(self, cycle, element, bit, outcome, pc_at, opcode_at):
        obs.inc("arch.fault_injection.trials")
        obs.inc(f"arch.fault_injection.outcome.{outcome.value}")
        return InjectionRecord(
            program=self.program.name,
            cycle=cycle,
            element=element,
            bit=bit,
            outcome=outcome,
            pc_at_injection=pc_at,
            opcode_at_injection=opcode_at,
        )

    def fingerprint(self):
        """Content digest of everything that determines a trial's result.

        Namespaces the result cache: any change to the program, the hang
        budget, the symptom threshold, or the resolved trial engine
        changes the fingerprint and invalidates prior entries.  The
        engines are proven bit-identical, but keeping their cache
        namespaces separate means an oracle engine always re-executes —
        an oracle that reads back another engine's results would verify
        nothing.  (The snapshot interval is deliberately *not*
        fingerprinted: records are interval-independent by contract.)
        """
        listing = "\n".join(repr(i) for i in self.program.instructions)
        return {
            "program": self.program.name,
            "instructions": hashlib.sha256(listing.encode()).hexdigest(),
            "output_range": list(self.program.output_range),
            "golden_cycles": self.golden_cycles,
            "max_cycles": self.max_cycles,
            "symptom_tolerance": self.symptom_tolerance,
            "engine": self.engine,
        }

    def engine_stats(self):
        """Resolved engine choice plus snapshot-ladder statistics.

        The ``fi`` experiment stores this in its run record so a report
        can explain where a campaign's time went (which engine actually
        ran, how dense the checkpoint ladder was) without re-deriving
        it from the program.
        """
        return {
            "engine": self.engine,
            "requested_engine": self.requested_engine,
            "golden_cycles": self.golden_cycles,
            "max_cycles": self.max_cycles,
            "snapshots": len(self._snapshots),
            "snapshot_interval": self.snapshot_interval,
            "last_boundary": self._last_boundary,
        }

    def _campaign(self, worker, n_trials, seed, key_parts, jobs, cache, progress,
                  chunk_size, policy, resume, worker_wrapper=None,
                  transport=None, transport_options=None):
        if chunk_size is None:
            chunk_size = (
                BATCHED_CHUNK_SIZE if self.engine == "batched"
                else DEFAULT_CHUNK_SIZE
            )
        if worker_wrapper is not None:
            # Test hook (e.g. repro.runtime.ChaosWorker): wraps execution
            # only — cache keys are unchanged, so a wrapper must not alter
            # what a trial computes, merely how reliably it completes.
            worker = worker_wrapper(worker)
        runner = CampaignRunner(
            jobs=jobs, cache=cache, progress=progress, chunk_size=chunk_size,
            classify=lambda record: record.outcome.value,
            policy=policy, resume=resume,
            transport=transport, transport_options=transport_options,
        )
        with obs.span(
            "arch.fault_injection.campaign",
            program=self.program.name, trials=n_trials,
        ):
            records = runner.run_trials(
                worker, n_trials, seed=seed,
                key=("fi-campaign", self.fingerprint(), key_parts),
            )
        self.last_run_stats = runner.stats
        return CampaignResult(
            program=self.program.name,
            golden_output=self.golden_output,
            golden_cycles=self.golden_cycles,
            records=records,
        )

    def run_campaign(self, n_trials=500, seed=0, elements=None, jobs=1,
                     cache=None, progress=None, chunk_size=None, policy=None,
                     resume=False, worker_wrapper=None, transport=None,
                     transport_options=None):
        """Uniformly random (cycle, element, bit) injection campaign.

        Trial ``i`` samples its coordinates from the seed stream
        ``(seed, i)`` regardless of chunking, so any ``jobs`` or
        ``chunk_size`` value yields identical records
        (``chunk_size=None`` picks the engine default).  ``cache`` (a
        :class:`repro.runtime.ResultCache`) memoizes trial chunks;
        ``progress`` receives :class:`repro.runtime.ProgressEvent`
        updates.  ``policy`` (a :class:`repro.runtime.FaultPolicy`)
        governs per-unit timeouts, retries, and pool respawns;
        ``resume=True`` replays an interrupted campaign's journal from
        the cache and finishes it bit-identically.  Runner accounting is
        left in ``self.last_run_stats``.

        ``worker_wrapper`` is a fault-tolerance test hook: a callable
        applied to the chunk worker before execution (typically
        :class:`repro.runtime.ChaosWorker`).  It does not enter the
        cache key, so wrapped campaigns must produce the same records.

        ``transport``/``transport_options`` select the execution
        backend (``"inline"``, ``"pool"``, ``"fqueue"``, or a
        :class:`repro.runtime.Transport` instance); every backend
        yields bit-identical records.  See ``docs/distributed.md``.
        """
        elements = list(elements or CPU(self.program).state_elements())
        worker = functools.partial(_random_chunk, self, tuple(elements))
        return self._campaign(worker, n_trials, seed, ("random", elements),
                              jobs, cache, progress, chunk_size, policy, resume,
                              worker_wrapper, transport, transport_options)

    def run_steered_campaign(self, budget=4096, seed=0, elements=None,
                             config=None, jobs=1, cache=None, progress=None,
                             policy=None, resume=False, worker_wrapper=None,
                             transport=None, transport_options=None):
        """Adaptively steered campaign with sequential early stopping.

        Trials are allocated by stratified importance sampling from an
        online surrogate and the campaign stops once the AVF confidence
        half-width reaches the steering config's target — see
        :mod:`repro.arch.steering` and ``docs/steering.md``.  Accepts
        the same runtime knobs as :meth:`run_campaign`; ``budget`` caps
        the trials a run may spend.  Returns a
        :class:`repro.arch.steering.SteeredCampaignResult`.
        """
        from repro.arch.steering import run_steered_campaign
        return run_steered_campaign(
            self, budget=budget, seed=seed, elements=elements, config=config,
            jobs=jobs, cache=cache, progress=progress, policy=policy,
            resume=resume, worker_wrapper=worker_wrapper,
            transport=transport, transport_options=transport_options,
        )

    def exhaustive_element_campaign(self, element, n_trials=200, seed=0, jobs=1,
                                    cache=None, progress=None, chunk_size=None,
                                    policy=None, resume=False, transport=None,
                                    transport_options=None):
        """Many injections into a single element (per-element AVF estimation)."""
        worker = functools.partial(_element_chunk, self, element)
        return self._campaign(worker, n_trials, seed, ("element", element),
                              jobs, cache, progress, chunk_size, policy, resume,
                              transport=transport,
                              transport_options=transport_options)


def _random_chunk(injector, elements, chunk):
    """Execute one trial chunk of a random campaign (process-pool worker).

    Coordinates are drawn per-trial from the chunk's seed streams and
    then executed together via :meth:`FaultInjector.inject_many`, so
    the batched engine sees the whole chunk as one sweep while the draw
    order (hence every record) stays engine- and chunk-independent.
    """
    with obs.span("arch.fault_injection.chunk", trials=len(chunk)):
        coords = []
        for rng in chunk.rngs():
            cycle = int(rng.integers(0, injector.golden_cycles))
            element = elements[int(rng.integers(len(elements)))]
            bit = int(rng.integers(0, 32))
            coords.append((cycle, element, bit))
        return injector.inject_many(coords)


def _element_chunk(injector, element, chunk):
    """Execute one trial chunk of a single-element campaign."""
    with obs.span("arch.fault_injection.chunk", trials=len(chunk)):
        coords = []
        for rng in chunk.rngs():
            cycle = int(rng.integers(0, injector.golden_cycles))
            bit = int(rng.integers(0, 32))
            coords.append((cycle, element, bit))
        return injector.inject_many(coords)
