"""Microarchitectural fault injection with outcome classification.

One injection flips one bit of one state element at one cycle of a
program's execution (single-event upset).  Outcomes follow the taxonomy
the paper's Sec. III (and ref [24]) uses:

* ``MASKED`` — run completes with the golden output;
* ``SDC`` — run completes but the output differs silently;
* ``CRASH`` — architectural violation (bad opcode/PC/address);
* ``HANG`` — cycle budget exceeded;
* ``SYMPTOM`` — run completes with the golden output but showed a
  detectable anomaly (cycle-count deviation), the hook symptom-based
  detectors key on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.arch.cpu import CPU, CrashError


class Outcome(enum.Enum):
    MASKED = "masked"
    SDC = "sdc"
    CRASH = "crash"
    HANG = "hang"
    SYMPTOM = "symptom"


OUTCOME_INDEX = {o: i for i, o in enumerate(Outcome)}


@dataclass
class InjectionRecord:
    """One fault-injection trial."""

    program: str
    cycle: int
    element: str
    bit: int
    outcome: Outcome
    pc_at_injection: int = -1
    opcode_at_injection: str = ""


@dataclass
class CampaignResult:
    """All trials of one campaign plus the golden reference."""

    program: str
    golden_output: tuple
    golden_cycles: int
    records: list = field(default_factory=list)

    def counts(self):
        """Mapping outcome -> number of trials."""
        out = {o: 0 for o in Outcome}
        for r in self.records:
            out[r.outcome] += 1
        return out

    def rates(self):
        """Mapping outcome -> fraction of trials."""
        n = len(self.records)
        if n == 0:
            raise ValueError("campaign has no records")
        return {o: c / n for o, c in self.counts().items()}

    def failure_rate(self):
        """Fraction of trials that are SDC, crash, or hang."""
        rates = self.rates()
        return rates[Outcome.SDC] + rates[Outcome.CRASH] + rates[Outcome.HANG]

    def per_element(self):
        """Mapping state element -> list of its records."""
        by_el = {}
        for r in self.records:
            by_el.setdefault(r.element, []).append(r)
        return by_el

    def element_failure_rates(self):
        """Mapping element -> failure fraction among its injections."""
        out = {}
        for element, records in self.per_element().items():
            bad = sum(
                r.outcome in (Outcome.SDC, Outcome.CRASH, Outcome.HANG)
                for r in records
            )
            out[element] = bad / len(records)
        return out


class FaultInjector:
    """Runs fault-injection campaigns on a program.

    Parameters
    ----------
    program:
        The workload (:class:`repro.arch.isa.Program`).
    max_cycles_factor:
        Hang threshold as a multiple of the golden cycle count.
    symptom_tolerance:
        Relative cycle-count deviation below which a correct-output run is
        MASKED; above it, SYMPTOM.
    """

    def __init__(self, program, max_cycles_factor=4.0, symptom_tolerance=0.02):
        self.program = program
        golden = CPU(program, max_cycles=1_000_000).run()
        self.golden_output = golden.output(program.output_range)
        self.golden_cycles = golden.cycles
        self.max_cycles = max(int(golden.cycles * max_cycles_factor), golden.cycles + 64)
        self.symptom_tolerance = symptom_tolerance
        # Golden PC trace: which instruction was executing at each cycle.
        tracer = CPU(program, max_cycles=1_000_000)
        self.golden_pc_trace = []
        while not tracer.halted:
            self.golden_pc_trace.append(tracer.pc)
            tracer.step()

    def inject_one(self, cycle, element, bit):
        """Run with one fault and classify the outcome."""
        cpu = CPU(self.program, max_cycles=self.max_cycles)
        # Log-feature context: the instruction the golden run executed at the
        # injection cycle (pattern mining keys on it).
        if 0 <= cycle < len(self.golden_pc_trace):
            pc_at = self.golden_pc_trace[cycle]
            opcode_at = self.program.instructions[pc_at].opcode.value
        else:
            pc_at = -1
            opcode_at = ""
        try:
            result = cpu.run(fault=(cycle, element, bit))
        except CrashError:
            return self._record(cycle, element, bit, Outcome.CRASH, pc_at, opcode_at)
        except TimeoutError:
            return self._record(cycle, element, bit, Outcome.HANG, pc_at, opcode_at)
        output = result.output(self.program.output_range)
        if output != self.golden_output:
            outcome = Outcome.SDC
        elif (
            abs(result.cycles - self.golden_cycles)
            > self.symptom_tolerance * self.golden_cycles
        ):
            outcome = Outcome.SYMPTOM
        else:
            outcome = Outcome.MASKED
        return self._record(cycle, element, bit, outcome, pc_at, opcode_at)

    def _record(self, cycle, element, bit, outcome, pc_at, opcode_at):
        return InjectionRecord(
            program=self.program.name,
            cycle=cycle,
            element=element,
            bit=bit,
            outcome=outcome,
            pc_at_injection=pc_at,
            opcode_at_injection=opcode_at,
        )

    def run_campaign(self, n_trials=500, seed=0, elements=None):
        """Uniformly random (cycle, element, bit) injection campaign."""
        rng = np.random.default_rng(seed)
        cpu = CPU(self.program)
        elements = list(elements or cpu.state_elements())
        result = CampaignResult(
            program=self.program.name,
            golden_output=self.golden_output,
            golden_cycles=self.golden_cycles,
        )
        for _ in range(n_trials):
            cycle = int(rng.integers(0, self.golden_cycles))
            element = elements[rng.integers(len(elements))]
            bit = int(rng.integers(0, 32))
            result.records.append(self.inject_one(cycle, element, bit))
        return result

    def exhaustive_element_campaign(self, element, n_trials=200, seed=0):
        """Many injections into a single element (per-element AVF estimation)."""
        rng = np.random.default_rng(seed)
        result = CampaignResult(
            program=self.program.name,
            golden_output=self.golden_output,
            golden_cycles=self.golden_cycles,
        )
        for _ in range(n_trials):
            cycle = int(rng.integers(0, self.golden_cycles))
            bit = int(rng.integers(0, 32))
            result.records.append(self.inject_one(cycle, element, bit))
        return result
