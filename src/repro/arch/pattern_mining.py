"""Mining fault-injection logs (refs [22], [23], Sec. III-B2).

[22] used gradient-boosted decision trees to find error patterns in six
months of HPC logs and predict future GPU errors; [23] combined
supervised and unsupervised learning over 1.2 M injection trials.  Here
the log is a pooled :class:`repro.arch.fault_injection.CampaignResult`
set, and the miner offers:

* a supervised outcome predictor (gradient boosting) with per-feature
  importance (which log features correlate with failures), and
* unsupervised structure discovery (PCA + k-means) over failure records.
"""

from __future__ import annotations

import numpy as np

from repro.arch.fault_injection import OUTCOME_INDEX, Outcome
from repro.arch.isa import Opcode
from repro.ml.cluster import KMeans
from repro.ml.decomposition import PCA
from repro.ml.ensemble import GradientBoostingClassifier
from repro.ml.preprocessing import StandardScaler

_OPCODE_NAMES = [op.value for op in Opcode]

FEATURE_NAMES = (
    "cycle_fraction",
    "bit_position",
    "is_register",
    "is_pc",
    "is_ir",
    "register_index",
    "opcode_index",
)


def record_features(record, golden_cycles):
    """Numeric features of one injection record (what a log row carries)."""
    is_reg = record.element.startswith("reg")
    reg_idx = int(record.element[3:]) if is_reg else -1
    opcode_idx = (
        _OPCODE_NAMES.index(record.opcode_at_injection)
        if record.opcode_at_injection in _OPCODE_NAMES
        else -1
    )
    return [
        record.cycle / max(golden_cycles, 1),
        float(record.bit),
        float(is_reg),
        float(record.element == "pc"),
        float(record.element == "ir"),
        float(reg_idx),
        float(opcode_idx),
    ]


class PatternMiner:
    """Supervised + unsupervised analysis of pooled injection campaigns."""

    def __init__(self, campaigns, seed=0):
        campaigns = list(campaigns)
        if not campaigns:
            raise ValueError("need at least one campaign")
        self.seed = seed
        X = []
        y = []
        for campaign in campaigns:
            for record in campaign.records:
                X.append(record_features(record, campaign.golden_cycles))
                y.append(OUTCOME_INDEX[record.outcome])
        self.X = np.asarray(X)
        self.y = np.asarray(y)
        self._scaler = StandardScaler().fit(self.X)
        self._clf = None

    @property
    def n_records(self):
        return len(self.y)

    # -- supervised ------------------------------------------------------------
    def fit_outcome_predictor(self, n_estimators=25, max_depth=4):
        """Train the GBDT outcome predictor on the pooled log."""
        self._clf = GradientBoostingClassifier(
            n_estimators=n_estimators, max_depth=max_depth, subsample=0.8, seed=self.seed
        )
        self._clf.fit(self._scaler.transform(self.X), self.y)
        return self

    def predict_outcomes(self, campaign):
        """Predicted outcome index for each record of a new campaign."""
        if self._clf is None:
            raise RuntimeError("call fit_outcome_predictor first")
        X = np.asarray(
            [record_features(r, campaign.golden_cycles) for r in campaign.records]
        )
        return self._clf.predict(self._scaler.transform(X))

    def training_accuracy(self):
        if self._clf is None:
            raise RuntimeError("call fit_outcome_predictor first")
        pred = self._clf.predict(self._scaler.transform(self.X))
        return float(np.mean(pred == self.y))

    def feature_importance(self, n_permutations=3):
        """Permutation importance of each log feature for outcome prediction."""
        if self._clf is None:
            raise RuntimeError("call fit_outcome_predictor first")
        rng = np.random.default_rng(self.seed)
        base = self.training_accuracy()
        Xs = self._scaler.transform(self.X)
        importance = {}
        for j, name in enumerate(FEATURE_NAMES):
            drops = []
            for _ in range(n_permutations):
                Xp = Xs.copy()
                rng.shuffle(Xp[:, j])
                acc = float(np.mean(self._clf.predict(Xp) == self.y))
                drops.append(base - acc)
            importance[name] = float(np.mean(drops))
        return importance

    # -- unsupervised ------------------------------------------------------------
    def failure_clusters(self, n_clusters=3, n_components=3):
        """Cluster *failing* records in PCA space; returns (labels, records_mask).

        Surfacing recurring failure modes without labels is the [23]
        unsupervised use-case.
        """
        failing = np.isin(
            self.y,
            [OUTCOME_INDEX[Outcome.SDC], OUTCOME_INDEX[Outcome.CRASH], OUTCOME_INDEX[Outcome.HANG]],
        )
        Xf = self._scaler.transform(self.X[failing])
        if len(Xf) < n_clusters:
            raise ValueError("too few failing records to cluster")
        n_components = min(n_components, Xf.shape[1])
        Z = PCA(n_components=n_components).fit_transform(Xf)
        km = KMeans(n_clusters=n_clusters, seed=self.seed).fit(Z)
        return km.labels_, failing

    def cluster_summary(self, n_clusters=3):
        """Per-cluster dominant element kind and mean cycle fraction."""
        labels, failing = self.failure_clusters(n_clusters=n_clusters)
        Xf = self.X[failing]
        summary = []
        for k in range(n_clusters):
            members = Xf[labels == k]
            if len(members) == 0:
                continue
            kinds = np.array(["reg", "pc", "ir"])
            kind_counts = np.array(
                [members[:, 2].sum(), members[:, 3].sum(), members[:, 4].sum()]
            )
            summary.append(
                {
                    "cluster": k,
                    "size": int(len(members)),
                    "dominant_element": str(kinds[int(np.argmax(kind_counts))]),
                    "mean_cycle_fraction": float(members[:, 0].mean()),
                    "mean_bit": float(members[:, 1].mean()),
                }
            )
        return summary
