"""Symptom-based error detection on DNN intermediate outputs (ref [30]).

[30] runs a small two-hidden-layer MLP alongside a DNN, watching the
intermediate activations for anomalies that precede misclassification;
it reports ~99 % recall / ~97 % precision at ~2.7 % compute overhead.

Substrate: the "mission DNN" is a :class:`repro.ml.mlp.MLPClassifier`;
hardware errors are simulated by injecting large-magnitude perturbations
into a hidden layer's activations during inference (the effect of a bit
flip in an accumulator).  The detector is a small MLP over summary
statistics of every hidden layer's activations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.metrics import precision_score, recall_score
from repro.ml.mlp import MLPClassifier, _relu
from repro.ml.preprocessing import StandardScaler


def _forward_with_injection(model, x, inject_layer=None, inject_fn=None):
    """Run the mission DNN on one sample, optionally corrupting one layer.

    Returns (predicted class index, list of hidden activation vectors).
    """
    h = x.reshape(1, -1)
    hidden_acts = []
    for layer, (W, b) in enumerate(zip(model.weights_[:-1], model.biases_[:-1])):
        h = _relu(h @ W + b)
        if inject_layer == layer and inject_fn is not None:
            h = inject_fn(h)
        hidden_acts.append(h.ravel().copy())
    z = h @ model.weights_[-1] + model.biases_[-1]
    return int(np.argmax(z)), hidden_acts


def activation_statistics(hidden_acts):
    """Per-layer summary features: mean, std, max, min, L2, zero fraction."""
    feats = []
    for a in hidden_acts:
        feats.extend(
            [
                float(a.mean()),
                float(a.std()),
                float(a.max()),
                float(a.min()),
                float(np.linalg.norm(a)),
                float(np.mean(a == 0.0)),
            ]
        )
    return feats


def bitflip_like_injection(rng, magnitude=20.0):
    """An injection function multiplying/overwriting one activation.

    Mimics a high-order bit flip in an accumulator: one neuron's value is
    replaced by a large outlier.
    """

    def inject(h):
        h = h.copy()
        j = rng.integers(h.shape[1])
        h[0, j] = magnitude * (1.0 + rng.random())
        return h

    return inject


@dataclass
class DetectionReport:
    recall: float
    precision: float
    overhead: float  # detector params / mission params


class SymptomDetector:
    """Train and evaluate the anomaly detector for a mission DNN."""

    def __init__(self, mission_model, seed=0):
        if mission_model.weights_ is None:
            raise ValueError("mission model must be fitted")
        self.mission = mission_model
        self.seed = seed
        self._detector = None
        self._scaler = None

    def _build_dataset(self, X, error_rate=0.5, magnitude=20.0, seed=None):
        """(features, error_label, misclassification_label) triples."""
        rng = np.random.default_rng(self.seed if seed is None else seed)
        feats = []
        labels = []
        caused_error = []
        n_hidden_layers = len(self.mission.weights_) - 1
        for x in np.asarray(X, dtype=float):
            clean_pred, _ = _forward_with_injection(self.mission, x)
            if rng.random() < error_rate:
                inject = bitflip_like_injection(rng, magnitude)
                layer = int(rng.integers(n_hidden_layers))
                pred, acts = _forward_with_injection(
                    self.mission, x, inject_layer=layer, inject_fn=inject
                )
                labels.append(1)
                caused_error.append(int(pred != clean_pred))
            else:
                pred, acts = _forward_with_injection(self.mission, x)
                labels.append(0)
                caused_error.append(0)
            feats.append(activation_statistics(acts))
        return np.asarray(feats), np.asarray(labels), np.asarray(caused_error)

    def fit(self, X_train, error_rate=0.5, magnitude=20.0):
        """Train the detector on injected vs clean activation statistics."""
        feats, labels, _ = self._build_dataset(X_train, error_rate, magnitude)
        self._scaler = StandardScaler().fit(feats)
        # Two small hidden layers as in [30]; kept tiny so the on-line
        # overhead stays in the low-percent range.
        self._detector = MLPClassifier(
            hidden=(10, 6), n_epochs=200, lr=3e-3, seed=self.seed
        )
        self._detector.fit(self._scaler.transform(feats), labels)
        return self

    def evaluate(self, X_test, error_rate=0.5, magnitude=20.0, seed=1):
        """Recall/precision of error detection plus compute overhead."""
        if self._detector is None:
            raise RuntimeError("detector is not fitted")
        feats, labels, _ = self._build_dataset(
            X_test, error_rate, magnitude, seed=self.seed + seed
        )
        pred = self._detector.predict(self._scaler.transform(feats))
        overhead = self._detector.n_parameters() / self.mission.n_parameters()
        return DetectionReport(
            recall=recall_score(labels, pred),
            precision=precision_score(labels, pred),
            overhead=overhead,
        )
