"""Trial-vectorized fault-injection engine (batched suffix replay).

The forked engine (:mod:`repro.arch.fault_injection`) made each trial
cheap by replaying only the post-fault suffix; this module makes the
suffix itself cheap by replaying *many* trials' suffixes together.  The
key observation: until its control flow diverges, a faulty run executes
exactly the golden PC trace — only register and memory *values* differ.
So a whole batch of trials can march down the golden trace in lockstep,
as columns ("lanes") of one ``(16, L)`` numpy register array, with each
instruction applied to every lane at once (per-opcode masked updates,
the same move :func:`repro.core.simulate_runs_batch` uses for the
Sec. V Monte Carlo kernels).

Per-lane memory is a *delta dict* against the running golden memory:
an entry exists only where the lane's memory differs from golden at the
current cycle.  That keeps the three retirement checks O(small):

* **reconvergence** at a snapshot boundary — live registers equal and
  delta empty ⇒ the remaining suffix is the golden suffix; classify
  without executing it (the forked engine's early-exit, batched);
* **halt** — lanes still in lockstep at ``HALT`` classify from their
  delta-patched output words;
* **divergence** — a lane whose branch direction differs from the
  golden trace (or whose load/store address crashes) leaves lockstep;
  branch divergences finish on the block-compiled interpreter
  (:mod:`repro.arch.block_interp`), crashes classify immediately.

Lanes *activate* at their injection cycle (before it, their state is
golden by definition, so no work is simulated), and retire by
swap-remove, so the active width tracks the genuinely-divergent
population — usually a handful of SDC lanes — rather than the batch
size.  When the batch empties, the sweep jumps forward to the next
injection cycle by restoring golden state from the snapshot ladder and
fast-forwarding with precomputed per-cycle effect arrays instead of
executing instructions.

Equivalence contract: identical :class:`InjectionRecord` outcomes to
the ``forked`` and ``reference`` engines for every coordinate — pinned
by tests and by ``benchmarks/perf_smoke.py``.  See
``docs/fi-engine.md`` for the full design walkthrough.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.arch.block_interp import CRASHED, HALTED, BlockProgram
from repro.arch.cpu import CPU, CPUSnapshot, CrashError, MEMORY_LIMIT

# Safe despite the mutual relationship: fault_injection only imports
# this module lazily, from inside FaultInjector._batched_engine().
from repro.arch.fault_injection import Outcome
from repro.arch.isa import ARITH_OPS, N_REGISTERS, WORD_MASK, Opcode

U64 = np.uint64
_MASK = U64(WORD_MASK)
_SIGN = U64(0x80000000)  # bias for unsigned-compare BLT
_SHIFT = U64(31)
_MEM_LIMIT = U64(MEMORY_LIMIT)

# Dispatch categories for the vectorized interpreter.  Branches with
# imm == 0 and JMP cannot diverge from the golden trace and touch no
# lane state, so they compile to _NOP.
_NOP, _ARITH, _ADDI, _LUI, _LD, _ST, _BRANCH, _HALT = range(8)

_ARITH_SUB = {
    Opcode.ADD: 0, Opcode.SUB: 1, Opcode.MUL: 2, Opcode.AND: 3,
    Opcode.OR: 4, Opcode.XOR: 5, Opcode.SHL: 6, Opcode.SHR: 7,
}
_BRANCH_SUB = {Opcode.BEQ: 0, Opcode.BNE: 1, Opcode.BLT: 2}


class BatchedEngine:
    """Vectorized lockstep executor over one injector's golden trace.

    Built lazily (and per worker process) by
    :meth:`repro.arch.fault_injection.FaultInjector.inject_many`; one
    golden recording pass precomputes, per cycle, the decoded
    instruction and the golden run's architectural effects — written
    register/value, load/store address, store value, branch direction —
    which the sweep uses both to fast-forward golden state and to keep
    per-lane memory deltas canonical.
    """

    def __init__(self, injector):
        """Precompute per-cycle decoded ops and golden effects."""
        self._inj = injector
        program = injector.program
        n = injector.golden_cycles
        instructions = program.instructions

        ops = []
        g_written = np.full(n, -1, np.int64)
        g_value = np.zeros(n, U64)
        g_ldaddr = np.full(n, -1, np.int64)
        g_staddr = np.full(n, -1, np.int64)
        g_stval = np.zeros(n, U64)
        g_taken = np.zeros(n, bool)

        cpu = CPU(program, max_cycles=n + 1)
        c = 0
        while not cpu.halted:
            instr = instructions[cpu.pc]
            op = instr.opcode
            if op in ARITH_OPS:
                ops.append((_ARITH, instr.rd, instr.rs1, instr.rs2,
                            _ARITH_SUB[op]))
            elif op is Opcode.ADDI:
                ops.append((_ADDI, instr.rd, instr.rs1,
                            U64(instr.imm & WORD_MASK)))
            elif op is Opcode.LUI:
                ops.append((_LUI, instr.rd, U64(instr.imm & WORD_MASK)))
            elif op is Opcode.LD:
                ops.append((_LD, instr.rd, instr.rs1,
                            U64(instr.imm & WORD_MASK)))
                g_ldaddr[c] = (cpu.registers[instr.rs1] + instr.imm) & WORD_MASK
            elif op is Opcode.ST:
                ops.append((_ST, instr.rs1, instr.rs2,
                            U64(instr.imm & WORD_MASK)))
                g_staddr[c] = (cpu.registers[instr.rs1] + instr.imm) & WORD_MASK
                g_stval[c] = cpu.registers[instr.rs2]
            elif op in _BRANCH_SUB and instr.imm != 0:
                ops.append((_BRANCH, instr.rs1, instr.rs2, instr.imm,
                            _BRANCH_SUB[op]))
            elif op is Opcode.HALT:
                ops.append((_HALT,))
            else:  # NOP, JMP, zero-offset branches: lane state untouched
                ops.append((_NOP,))
            prev_pc = cpu.pc
            cpu.step()
            written = instr.writes
            if written:  # writes to r0 are dropped: golden value unchanged
                g_written[c] = written
                g_value[c] = cpu.registers[written]
            if op in _BRANCH_SUB:
                g_taken[c] = cpu.pc != prev_pc + 1
            c += 1

        self._ops = ops
        self._g_written = g_written
        self._g_value = g_value
        self._g_ldaddr = g_ldaddr
        self._g_staddr = g_staddr
        self._g_stval = g_stval
        self._g_taken = g_taken
        self._mem_base = program.initial_memory
        self._trace = injector.golden_pc_trace
        self._block = BlockProgram(program)
        # Per-boundary live-register index arrays for the vectorized
        # reconvergence compare, built from the injector's liveness map.
        self._live_rows = {
            cycle: np.array(live, np.intp)
            for cycle, live in injector._live_regs.items()
        }

    def run(self, lanes):
        """Execute trial lanes and return ``[(key, Outcome), ...]``.

        ``lanes`` is a list of ``(key, cycle, reg_index, bit)`` with
        ``0 <= cycle < golden_cycles``; keys are returned untouched so
        the caller can restore submission order.
        """
        inj = self._inj
        n_cycles = inj.golden_cycles
        interval = inj.snapshot_interval
        snapshots = inj._snapshots
        last_boundary = inj._last_boundary
        ops = self._ops
        g_written = self._g_written
        g_value = self._g_value
        g_staddr = self._g_staddr
        g_stval = self._g_stval
        g_taken = self._g_taken
        mem_base = self._mem_base
        out_start, out_len = inj.program.output_range

        lanes = sorted(lanes, key=lambda lane: lane[1])
        total = len(lanes)
        regs = np.zeros((N_REGISTERS, total), U64)
        deltas = [None] * total
        keys = [None] * total
        results = []

        golden = None  # golden register file at cycle ``c`` (np array)
        g_overlay = {}  # golden memory overlay at cycle ``c``
        c = 0
        k = 0  # active lane count (columns [0:k) of ``regs``)
        p = 0  # next lane to activate
        n_dirty = 0  # active lanes with a non-empty memory delta

        m_groups = m_skipped = m_replayed = 0
        m_vec_cycles = m_lane_cycles = m_div = 0
        m_exits = m_pruned = 0

        def golden_mem(addr):
            """Golden memory at *addr*: overlay first, then the base image."""
            if addr in g_overlay:
                return g_overlay[addr]
            return mem_base.get(addr, 0)

        def lane_output(delta):
            """The lane's program output, reading through its memory delta."""
            if not delta:
                return inj.golden_output
            return tuple(
                delta.get(out_start + i, golden_mem(out_start + i))
                for i in range(out_len)
            )

        def retire(j):
            """Swap-remove lane *j* from the active prefix ``[:k]``."""
            nonlocal k, n_dirty
            k -= 1
            if deltas[j]:
                n_dirty -= 1
            if j != k:
                regs[:, j] = regs[:, k]
                deltas[j] = deltas[k]
                keys[j] = keys[k]
            deltas[k] = None

        def diverge(j, pc, cycles):
            """Classify lane *j* after it leaves the golden trace.

            Both divergent branch directions are block leaders by CFG
            construction, so the block-compiled interpreter finishes the
            suffix.
            """
            overlay = dict(g_overlay)
            overlay.update(deltas[j])
            return self._finish_block(
                [int(v) for v in regs[:, j]], overlay, pc, cycles
            )

        while p < total or k:
            if k == 0:
                # Batch is empty: jump straight to the next injection
                # cycle, fast-forwarding golden state from the nearest
                # snapshot (or the current position) via the
                # precomputed effect arrays — no instruction executes.
                target = lanes[p][1]
                snap = snapshots[target // interval]
                if golden is None or snap.cycles > c:
                    m_skipped += snap.cycles - c
                    golden = np.array(snap.registers, U64)
                    g_overlay = dict(snap.mem_overlay)
                    c = snap.cycles
                m_groups += 1
                m_replayed += target - c
                for cc in range(c, target):
                    written = g_written[cc]
                    if written >= 0:
                        golden[written] = g_value[cc]
                    staddr = g_staddr[cc]
                    if staddr >= 0:
                        g_overlay[int(staddr)] = int(g_stval[cc])
                c = target

            if k and c % interval == 0 and c <= last_boundary:
                # Reconvergence check: same criterion as the forked
                # engine's ``state_matches`` — live registers equal and
                # (via the empty-delta invariant) memory equal.  Lanes
                # activated *at* this cycle are appended below, after
                # the check, matching the forked engine's first-check
                # boundary of strictly-after-injection.
                rows = self._live_rows[c]
                if rows.size:
                    eq = (regs[rows, :k] == golden[rows][:, None]).all(axis=0)
                else:
                    eq = np.ones(k, bool)
                for j in range(k - 1, -1, -1):
                    if eq[j] and not deltas[j]:
                        m_exits += 1
                        m_pruned += n_cycles - c
                        results.append((
                            keys[j],
                            inj._classify(inj.golden_output, n_cycles),
                        ))
                        retire(j)

            while p < total and lanes[p][1] == c:
                key, _, reg, bit = lanes[p]
                p += 1
                regs[:, k] = golden
                deltas[k] = {}
                keys[k] = key
                if reg:  # r0 is hardwired to zero: flip masked by design
                    regs[reg, k] ^= U64(1 << bit)
                k += 1
            if k == 0:
                continue

            op = ops[c]
            cat = op[0]
            if cat == _ARITH:
                _, rd, rs1, rs2, sub = op
                if rd:
                    a = regs[rs1, :k]
                    b = regs[rs2, :k]
                    if sub == 0:
                        value = (a + b) & _MASK
                    elif sub == 1:
                        value = (a - b) & _MASK
                    elif sub == 2:
                        value = (a * b) & _MASK
                    elif sub == 3:
                        value = a & b
                    elif sub == 4:
                        value = a | b
                    elif sub == 5:
                        value = a ^ b
                    elif sub == 6:
                        value = (a << (b & _SHIFT)) & _MASK
                    else:
                        value = a >> (b & _SHIFT)
                    regs[rd, :k] = value
            elif cat == _ADDI:
                _, rd, rs1, imm = op
                if rd:
                    regs[rd, :k] = (regs[rs1, :k] + imm) & _MASK
            elif cat == _LUI:
                _, rd, imm = op
                if rd:
                    regs[rd, :k] = imm
            elif cat == _LD:
                _, rd, rs1, imm = op
                addr = (regs[rs1, :k] + imm) & _MASK
                bad = addr >= _MEM_LIMIT
                if bad.any():
                    for j in np.flatnonzero(bad)[::-1]:
                        results.append((keys[j], Outcome.CRASH))
                        retire(j)
                    if k == 0:
                        written = g_written[c]
                        if written >= 0:
                            golden[written] = g_value[c]
                        c += 1
                        continue
                    addr = (regs[rs1, :k] + imm) & _MASK
                if rd:
                    g_addr = int(self._g_ldaddr[c])
                    g_val = g_value[c]
                    if n_dirty == 0:
                        hit = addr == U64(g_addr)
                        if hit.all():
                            regs[rd, :k] = g_val
                        else:
                            values = np.full(k, g_val, U64)
                            for j in np.flatnonzero(~hit):
                                values[j] = golden_mem(int(addr[j]))
                            regs[rd, :k] = values
                    else:
                        values = np.empty(k, U64)
                        for j in range(k):
                            a_j = int(addr[j])
                            delta = deltas[j]
                            values[j] = (
                                delta[a_j] if a_j in delta
                                else golden_mem(a_j)
                            )
                        regs[rd, :k] = values
            elif cat == _ST:
                _, rs1, rs2, imm = op
                addr = (regs[rs1, :k] + imm) & _MASK
                bad = addr >= _MEM_LIMIT
                if bad.any():
                    for j in np.flatnonzero(bad)[::-1]:
                        results.append((keys[j], Outcome.CRASH))
                        retire(j)
                    if k == 0:
                        g_addr = int(g_staddr[c])
                        g_overlay[g_addr] = int(g_stval[c])
                        c += 1
                        continue
                    addr = (regs[rs1, :k] + imm) & _MASK
                value = regs[rs2, :k]
                g_addr = int(g_staddr[c])
                g_val = int(g_stval[c])
                dirty = (addr != U64(g_addr)) | (value != U64(g_val))
                if n_dirty or dirty.any():
                    # Keep deltas canonical: an entry exists iff the
                    # lane's word differs from golden *after* both
                    # stores land this cycle.
                    for j in range(k):
                        delta = deltas[j]
                        if not dirty[j] and not delta:
                            continue
                        was_dirty = bool(delta)
                        l_addr = int(addr[j])
                        l_val = int(value[j])
                        if l_addr == g_addr:
                            if l_val != g_val:
                                delta[l_addr] = l_val
                            else:
                                delta.pop(l_addr, None)
                        else:
                            if l_val != golden_mem(l_addr):
                                delta[l_addr] = l_val
                            else:
                                delta.pop(l_addr, None)
                            # Golden stores at g_addr; the lane does not,
                            # so its (unchanged) word there may now differ.
                            prev = (
                                delta[g_addr] if g_addr in delta
                                else golden_mem(g_addr)
                            )
                            if prev != g_val:
                                delta[g_addr] = prev
                            else:
                                delta.pop(g_addr, None)
                        n_dirty += bool(delta) - was_dirty
                g_overlay[g_addr] = g_val
            elif cat == _BRANCH:
                _, rs1, rs2, imm, sub = op
                a = regs[rs1, :k]
                b = regs[rs2, :k]
                if sub == 0:
                    cond = a == b
                elif sub == 1:
                    cond = a != b
                else:  # BLT: signed compare via bias trick
                    cond = (a ^ _SIGN) < (b ^ _SIGN)
                taken = bool(g_taken[c])
                div = ~cond if taken else cond
                if div.any():
                    # Divergent lanes take the non-golden direction.
                    pc = self._trace[c] + 1 + (0 if taken else imm)
                    for j in np.flatnonzero(div)[::-1]:
                        m_div += 1
                        results.append((keys[j], diverge(j, pc, c + 1)))
                        retire(j)
            elif cat == _HALT:
                for j in range(k):
                    results.append((
                        keys[j],
                        inj._classify(lane_output(deltas[j]), n_cycles),
                    ))
                    deltas[j] = None
                k = 0
                n_dirty = 0
                c += 1
                continue
            # NOP/JMP/zero-offset branches: nothing to do.

            written = g_written[c]
            if written >= 0:
                golden[written] = g_value[c]
            m_vec_cycles += 1
            m_lane_cycles += k
            c += 1

        obs.inc("arch.fi.engine.batch.groups", m_groups)
        obs.inc("arch.fi.engine.batch.lanes", total)
        obs.inc("arch.fi.engine.batch.vector_cycles", m_vec_cycles)
        obs.inc("arch.fi.engine.batch.lane_cycles", m_lane_cycles)
        obs.inc("arch.fi.engine.batch.divergences", m_div)
        obs.inc("arch.fi.engine.early_exits", m_exits)
        obs.inc("arch.fi.engine.cycles_pruned", m_pruned)
        obs.inc("arch.fi.engine.cycles_skipped", m_skipped)
        obs.inc("arch.fi.engine.cycles_replayed", m_replayed)
        return results

    def run_offtrace(self, cycle, element, bit):
        """Run one ``pc``/``ir`` trial: scalar to a block leader, then
        finish on the block-compiled interpreter.

        A pc flip can land at a non-leader and an ir fault corrupts the
        *next* fetch, so the trial scalar-steps until the fault is
        consumed and the PC sits on a block leader (bounded by one block
        length), then hands off to :class:`BlockProgram`.
        """
        inj = self._inj
        cpu = inj._trial_cpu
        interval = inj.snapshot_interval
        snap = inj._snapshots[cycle // interval]
        cpu.restore(snap)
        obs.inc("arch.fi.engine.cycles_skipped", snap.cycles)
        obs.inc("arch.fi.engine.cycles_replayed", cycle - snap.cycles)
        with obs.span("arch.cpu.replay"):
            cpu.run_span(cycle)
            cpu.flip_bit(element, bit)
            leaders = self._block.leaders
            try:
                while not cpu.halted and (
                    cpu._ir_fault or cpu.pc not in leaders
                ):
                    cpu.step()
            except CrashError:
                return Outcome.CRASH
            except TimeoutError:
                return Outcome.HANG
            if cpu.halted:
                return inj._classify(
                    cpu.output(inj.program.output_range), cpu.cycles
                )
            return self._finish_block(
                list(cpu.registers), cpu._mem_overlay, cpu.pc, cpu.cycles
            )

    def _finish_block(self, regs_list, overlay, pc, cycles):
        """Finish an off-trace trial via the compiled block runner.

        Near-budget and off-dispatch returns bounce to the scalar CPU so
        cycle-exact timeout/halt-at-budget semantics are preserved.
        """
        inj = self._inj
        status, pc2, cyc2, out_regs = self._block.run(
            regs_list, overlay, self._mem_base, pc, cycles, inj.max_cycles
        )
        if status == HALTED:
            return inj._classify(self._output_from(overlay), cyc2)
        if status == CRASHED:
            return Outcome.CRASH
        obs.inc("arch.fi.engine.batch.scalar_tails")
        cpu = inj._trial_cpu
        cpu.restore(CPUSnapshot(
            registers=tuple(out_regs), pc=pc2, cycles=cyc2,
            halted=False, mem_overlay=overlay, ir_fault=0,
        ))
        try:
            cpu.run_span()
        except CrashError:
            return Outcome.CRASH
        except TimeoutError:
            return Outcome.HANG
        return inj._classify(
            cpu.output(inj.program.output_range), cpu.cycles
        )

    def _output_from(self, overlay):
        """Read the program's output words through ``overlay``."""
        start, length = self._inj.program.output_range
        base = self._mem_base
        return tuple(
            overlay.get(start + i, base.get(start + i, 0))
            for i in range(length)
        )
