"""IPAS-style SVM-guided selective instruction replication (ref [27]).

Full software replication duplicates every instruction (plus a compare),
roughly doubling execution time.  IPAS instead: (1) runs random fault
injections to label instructions vulnerable (their corruption causes
silent output corruption) or safe, (2) trains an SVM on per-instruction
features, (3) replicates only predicted-vulnerable instructions.  The
paper's headline: up to 47 % less slowdown at similar SDC coverage.

Here, "replicating" an instruction protects it: an injection into its
destination at its execution cycle is detected by the duplicate-and-
compare and recovered (the fault is nullified).  Coverage is the fraction
of otherwise-SDC-causing injections that the protection catches;
slowdown is the instruction-count overhead of the duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.fault_injection import FaultInjector, Outcome
from repro.arch.isa import BRANCH_OPS, MEMORY_OPS, Opcode
from repro.arch.sdc_prediction import instruction_node_features
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import LinearSVC

REPLICATION_OVERHEAD_PER_INSTRUCTION = 2.0  # duplicate + compare


def _instruction_features(program, idx, exec_counts):
    """IPAS-style static + dynamic features for one instruction."""
    instr = program.instructions[idx]
    base = instruction_node_features(instr)
    return base + [
        idx / len(program.instructions),
        float(exec_counts.get(idx, 0)),
    ]


@dataclass
class ReplicationOutcome:
    """Protection quality and cost of one replication strategy."""

    strategy: str
    protected_fraction: float  # fraction of (executed) instructions replicated
    coverage: float  # fraction of SDC-causing faults detected/recovered
    slowdown: float  # relative execution-time overhead vs unprotected

    def slowdown_reduction_vs(self, other):
        """How much of ``other``'s slowdown this strategy avoids."""
        if other.slowdown <= 0:
            return 0.0
        return 1.0 - self.slowdown / other.slowdown


class ReplicationStudy:
    """Label, train, and evaluate selective replication on a workload set."""

    def __init__(self, programs, n_trials_per_instruction=30, seed=0):
        self.programs = list(programs)
        self.n_trials = n_trials_per_instruction
        self.seed = seed
        self._injectors = {p.name: FaultInjector(p) for p in self.programs}
        self._exec_counts = {}
        self._sdc_trials = {}  # program -> list[(instr_idx, cycle, bit)] causing SDC
        self._labels = {}
        for p_idx, program in enumerate(self.programs):
            self._profile(program, seed + p_idx)

    def _profile(self, program, seed):
        """Fault-inject each executed instruction's destination; record SDCs."""
        injector = self._injectors[program.name]
        rng = np.random.default_rng(seed)
        cycles_by_pc = {}
        for cycle, pc in enumerate(injector.golden_pc_trace):
            cycles_by_pc.setdefault(pc, []).append(cycle)
        self._exec_counts[program.name] = {
            pc: len(c) for pc, c in cycles_by_pc.items()
        }
        sdc_trials = []
        labels = np.zeros(len(program.instructions), dtype=int)
        for idx, instr in enumerate(program.instructions):
            cycles = cycles_by_pc.get(idx)
            if not cycles or instr.writes is None:
                continue
            element = f"reg{instr.writes}"
            sdc_count = 0
            for _ in range(self.n_trials):
                cycle = int(rng.choice(cycles)) + 1
                bit = int(rng.integers(0, 32))
                record = injector.inject_one(cycle, element, bit)
                if record.outcome == Outcome.SDC:
                    sdc_count += 1
                    sdc_trials.append((idx, cycle, bit))
            if sdc_count / self.n_trials > 0.15:
                labels[idx] = 1  # vulnerable
        self._sdc_trials[program.name] = sdc_trials
        self._labels[program.name] = labels

    # -- SVM training ----------------------------------------------------------
    def _dataset(self, programs):
        X = []
        y = []
        meta = []
        for program in programs:
            counts = self._exec_counts[program.name]
            for idx in range(len(program.instructions)):
                X.append(_instruction_features(program, idx, counts))
                y.append(self._labels[program.name][idx])
                meta.append((program.name, idx))
        return np.asarray(X), np.asarray(y), meta

    def train_svm(self, train_programs=None):
        """Fit the vulnerability SVM; returns (svm, scaler)."""
        train_programs = train_programs or self.programs
        X, y, _ = self._dataset(train_programs)
        if len(np.unique(y)) < 2:
            raise ValueError("training labels are degenerate; raise n_trials")
        scaler = StandardScaler().fit(X)
        svm = LinearSVC(C=2.0, n_epochs=80, seed=self.seed)
        svm.fit(scaler.transform(X), y)
        return svm, scaler

    # -- evaluation --------------------------------------------------------------
    def _evaluate_protection(self, program, protected_set, strategy):
        """Coverage/slowdown when ``protected_set`` instructions are replicated."""
        sdc_trials = self._sdc_trials[program.name]
        if sdc_trials:
            caught = sum(1 for idx, _, _ in sdc_trials if idx in protected_set)
            coverage = caught / len(sdc_trials)
        else:
            coverage = 1.0
        counts = self._exec_counts[program.name]
        total_dyn = sum(counts.values())
        protected_dyn = sum(counts.get(i, 0) for i in protected_set)
        slowdown = REPLICATION_OVERHEAD_PER_INSTRUCTION * protected_dyn / max(total_dyn, 1)
        executed = [i for i in range(len(program.instructions)) if counts.get(i, 0)]
        frac = len([i for i in protected_set if i in executed]) / max(len(executed), 1)
        return ReplicationOutcome(
            strategy=strategy,
            protected_fraction=frac,
            coverage=coverage,
            slowdown=slowdown,
        )

    def evaluate_full_replication(self, program):
        """Baseline: every register-writing instruction is replicated."""
        protected = {
            i for i, instr in enumerate(program.instructions) if instr.writes is not None
        }
        return self._evaluate_protection(program, protected, "full")

    def evaluate_ipas(self, program, svm=None, scaler=None):
        """IPAS: replicate only SVM-predicted-vulnerable instructions."""
        if svm is None or scaler is None:
            svm, scaler = self.train_svm()
        counts = self._exec_counts[program.name]
        X = np.asarray(
            [
                _instruction_features(program, idx, counts)
                for idx in range(len(program.instructions))
            ]
        )
        pred = svm.predict(scaler.transform(X))
        protected = {i for i, flag in enumerate(pred) if flag == 1}
        return self._evaluate_protection(program, protected, "ipas")

    def evaluate_heuristic(self, program):
        """Baseline selective replication: protect the static backward slice
        of every store (the output-producing chain), a common heuristic.

        Over-protects address computations and loop bookkeeping — the
        pessimism IPAS's learned classifier prunes away.
        """
        instrs = program.instructions
        protected = set()
        wanted_regs = set()
        for instr in instrs:
            if instr.opcode == Opcode.ST:
                wanted_regs.update(instr.reads)
        changed = True
        while changed:
            changed = False
            for idx in range(len(instrs) - 1, -1, -1):
                instr = instrs[idx]
                if instr.writes is not None and instr.writes in wanted_regs:
                    if idx not in protected:
                        protected.add(idx)
                        changed = True
                        for r in instr.reads:
                            if r not in wanted_regs:
                                wanted_regs.add(r)
        return self._evaluate_protection(program, protected, "heuristic")

    def evaluate_oracle(self, program):
        """Upper bound: replicate exactly the injected-vulnerable set."""
        protected = {i for i, flag in enumerate(self._labels[program.name]) if flag}
        return self._evaluate_protection(program, protected, "oracle")

    def leave_one_out(self, program):
        """Train the SVM on the other workloads, evaluate on ``program``."""
        others = [p for p in self.programs if p.name != program.name]
        if not others:
            raise ValueError("need at least two programs for leave-one-out")
        svm, scaler = self.train_svm(train_programs=others)
        return self.evaluate_ipas(program, svm=svm, scaler=scaler)
