"""Workload programs for the fault-injection studies.

Each factory returns a :class:`repro.arch.isa.Program` with deterministic
initial data and a declared output region, so SDC detection can compare a
faulty run's output words against the golden run.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import (
    Program,
    add,
    addi,
    beq,
    blt,
    halt,
    jmp,
    ld,
    lui,
    mul,
    nop,
    shr,
    st,
    xor,
)


def _data(n, seed, high=100):
    rng = np.random.default_rng(seed)
    return [int(v) for v in rng.integers(1, high, size=n)]


def vector_add(n=16, seed=0):
    """C[i] = A[i] + B[i]; A at 0, B at 100, C at 200."""
    a = _data(n, seed)
    b = _data(n, seed + 1)
    memory = {i: a[i] for i in range(n)}
    memory.update({100 + i: b[i] for i in range(n)})
    instructions = [
        addi(1, 0, 0),      # 0: i = 0
        lui(2, n),          # 1: n
        beq(1, 2, 6),       # 2: if i == n goto 9
        ld(3, 1, 0),        # 3: A[i]
        ld(4, 1, 100),      # 4: B[i]
        add(5, 3, 4),       # 5
        st(5, 1, 200),      # 6: C[i]
        addi(1, 1, 1),      # 7
        jmp(-7),            # 8: goto 2
        halt(),             # 9
    ]
    return Program("vector_add", instructions, output_range=(200, n), initial_memory=memory)


def dot_product(n=16, seed=1):
    """result = sum(A[i] * B[i]); stored at 300."""
    a = _data(n, seed)
    b = _data(n, seed + 1)
    memory = {i: a[i] for i in range(n)}
    memory.update({100 + i: b[i] for i in range(n)})
    instructions = [
        addi(1, 0, 0),      # 0: i
        lui(2, n),          # 1: n
        addi(6, 0, 0),      # 2: acc
        beq(1, 2, 6),       # 3: if i == n goto 10
        ld(3, 1, 0),        # 4
        ld(4, 1, 100),      # 5
        mul(5, 3, 4),       # 6
        add(6, 6, 5),       # 7
        addi(1, 1, 1),      # 8
        jmp(-7),            # 9: goto 3
        st(6, 0, 300),      # 10
        halt(),             # 11
    ]
    return Program("dot_product", instructions, output_range=(300, 1), initial_memory=memory)


def matmul(k=4, seed=2):
    """C = A @ B for k x k matrices; A at 0, B at 100, C at 200."""
    a = _data(k * k, seed, high=20)
    b = _data(k * k, seed + 1, high=20)
    memory = {i: a[i] for i in range(k * k)}
    memory.update({100 + i: b[i] for i in range(k * k)})
    instructions = [
        lui(4, k),          # 0
        addi(1, 0, 0),      # 1: i = 0
        beq(1, 4, 22),      # 2: if i == k goto 25
        addi(2, 0, 0),      # 3: j = 0
        beq(2, 4, 18),      # 4: if j == k goto 23
        addi(3, 0, 0),      # 5: l = 0
        addi(5, 0, 0),      # 6: acc = 0
        beq(3, 4, 10),      # 7: if l == k goto 18
        mul(6, 1, 4),       # 8: i*k
        add(6, 6, 3),       # 9: i*k + l
        ld(7, 6, 0),        # 10: A[i,l]
        mul(8, 3, 4),       # 11: l*k
        add(8, 8, 2),       # 12: l*k + j
        ld(9, 8, 100),      # 13: B[l,j]
        mul(10, 7, 9),      # 14
        add(5, 5, 10),      # 15
        addi(3, 3, 1),      # 16
        jmp(-11),           # 17: goto 7
        mul(6, 1, 4),       # 18
        add(6, 6, 2),       # 19: i*k + j
        st(5, 6, 200),      # 20: C[i,j]
        addi(2, 2, 1),      # 21
        jmp(-19),           # 22: goto 4
        addi(1, 1, 1),      # 23
        jmp(-23),           # 24: goto 2
        halt(),             # 25
    ]
    return Program("matmul", instructions, output_range=(200, k * k), initial_memory=memory)


def bubble_sort(n=10, seed=3):
    """In-place ascending sort of n words at address 0."""
    data = _data(n, seed)
    memory = {i: data[i] for i in range(n)}
    instructions = [
        lui(1, n),          # 0
        addi(2, 0, 0),      # 1: i = 0
        beq(2, 1, 14),      # 2: if i == n goto 17
        addi(3, 0, 0),      # 3: j = 0
        addi(4, 1, -1),     # 4: n - 1
        beq(3, 4, 9),       # 5: if j == n-1 goto 15
        ld(5, 3, 0),        # 6: a[j]
        ld(6, 3, 1),        # 7: a[j+1]
        blt(5, 6, 4),       # 8: ordered -> goto 13
        st(6, 3, 0),        # 9: swap
        st(5, 3, 1),        # 10
        nop(),              # 11
        nop(),              # 12
        addi(3, 3, 1),      # 13
        jmp(-10),           # 14: goto 5
        addi(2, 2, 1),      # 15
        jmp(-15),           # 16: goto 2
        halt(),             # 17
    ]
    return Program("bubble_sort", instructions, output_range=(0, n), initial_memory=memory)


def fibonacci(n=15):
    """First n Fibonacci numbers into addresses 0..n-1."""
    instructions = [
        addi(1, 0, 0),      # 0: a = 0
        addi(2, 0, 1),      # 1: b = 1
        addi(3, 0, 0),      # 2: i = 0
        lui(4, n),          # 3
        beq(3, 4, 6),       # 4: if i == n goto 11
        st(1, 3, 0),        # 5: mem[i] = a
        add(5, 1, 2),       # 6
        add(1, 2, 0),       # 7: a = b
        add(2, 5, 0),       # 8: b = a_old + b_old
        addi(3, 3, 1),      # 9
        jmp(-7),            # 10: goto 4
        halt(),             # 11
    ]
    return Program("fibonacci", instructions, output_range=(0, n))


def checksum(n=24, seed=4):
    """XOR-fold of n words at 0; result at 400."""
    data = _data(n, seed, high=2**16)
    memory = {i: data[i] for i in range(n)}
    instructions = [
        addi(1, 0, 0),      # 0: i
        lui(2, n),          # 1
        addi(3, 0, 0),      # 2: acc
        beq(1, 2, 4),       # 3: if i == n goto 8
        ld(4, 1, 0),        # 4
        xor(3, 3, 4),       # 5
        addi(1, 1, 1),      # 6
        jmp(-5),            # 7: goto 3
        st(3, 0, 400),      # 8
        halt(),             # 9
    ]
    return Program("checksum", instructions, output_range=(400, 1), initial_memory=memory)


def fir_filter(n=20, k=4, seed=5):
    """FIR convolution: y[i] = sum_j h[j] * x[i+j].

    Taps ``h`` at 0, signal ``x`` at 100, output ``y`` at 200 — the
    multiply-accumulate sliding window at the heart of sub-band coding
    blocks like the paper's ADPCM workload.
    """
    taps = _data(k, seed, high=8)
    signal = _data(n, seed + 1, high=50)
    n_out = n - k + 1
    memory = {i: taps[i] for i in range(k)}
    memory.update({100 + i: signal[i] for i in range(n)})
    instructions = [
        lui(2, n_out),      # 0
        lui(4, k),          # 1
        addi(1, 0, 0),      # 2: i = 0
        beq(1, 2, 13),      # 3: if i == n_out goto 17
        addi(3, 0, 0),      # 4: j = 0
        addi(5, 0, 0),      # 5: acc = 0
        beq(3, 4, 7),       # 6: if j == k goto 14
        ld(6, 3, 0),        # 7: h[j]
        add(7, 1, 3),       # 8: i + j
        ld(8, 7, 100),      # 9: x[i+j]
        mul(9, 6, 8),       # 10
        add(5, 5, 9),       # 11
        addi(3, 3, 1),      # 12
        jmp(-8),            # 13: goto 6
        st(5, 1, 200),      # 14: y[i]
        addi(1, 1, 1),      # 15
        jmp(-14),           # 16: goto 3
        halt(),             # 17
    ]
    return Program("fir_filter", instructions, output_range=(200, n_out), initial_memory=memory)


def binary_search(n=16, seed=6):
    """Binary search in a sorted array at 0; target at 300, index at 400.

    Stores the found index, or the insertion point when absent.
    """
    rng = np.random.default_rng(seed)
    data = sorted(set(int(v) for v in rng.integers(1, 500, size=2 * n)))[:n]
    while len(data) < n:
        data.append(data[-1] + 1)
    target = int(data[rng.integers(n)]) if rng.random() < 0.7 else int(rng.integers(1, 500))
    memory = {i: data[i] for i in range(n)}
    memory[300] = target
    instructions = [
        addi(1, 0, 0),      # 0: lo = 0
        lui(2, n),          # 1: hi = n
        ld(3, 0, 300),      # 2: target
        beq(1, 2, 11),      # 3: if lo == hi goto 15
        add(4, 1, 2),       # 4
        addi(6, 0, 1),      # 5
        shr(4, 4, 6),       # 6: mid = (lo + hi) >> 1
        ld(5, 4, 0),        # 7: a[mid]
        beq(5, 3, 5),       # 8: found -> goto 14
        blt(5, 3, 2),       # 9: a[mid] < target -> goto 12
        add(2, 4, 0),       # 10: hi = mid
        jmp(-9),            # 11: goto 3
        addi(1, 4, 1),      # 12: lo = mid + 1
        jmp(-11),           # 13: goto 3
        add(1, 4, 0),       # 14: lo = mid (found)
        st(1, 0, 400),      # 15
        halt(),             # 16
    ]
    return Program("binary_search", instructions, output_range=(400, 1), initial_memory=memory)


def all_programs():
    """The default workload suite used by the studies and benches."""
    return [
        vector_add(),
        dot_product(),
        matmul(),
        bubble_sort(),
        fibonacci(),
        checksum(),
        fir_filter(),
        binary_search(),
    ]


def golden_outputs(program, max_cycles=200_000):
    """Golden (fault-free) output words of a program."""
    from repro.arch.cpu import CPU

    result = CPU(program, max_cycles=max_cycles).run()
    return result.output(program.output_range)
