"""Accelerating fault injection with ML (ref [20], Sec. III-B1).

Ground truth: a full per-element injection campaign over every state
element of every workload, labelling each element vulnerable/robust.
Acceleration: train a simple model (kNN or SVM, as in [20]) on the
campaigns of a *fraction* of the elements and predict the rest from their
structural features.  [20]'s finding — ~20 % of the injection data
suffices for comparable accuracy — is reproduced by
:meth:`FIAccelerationStudy.accuracy_vs_fraction`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.fault_injection import FaultInjector
from repro.arch.vulnerability import element_features, vulnerability_table, vulnerable_labels
from repro.ml.knn import KNeighborsClassifier
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import LinearSVC


@dataclass
class FIAccelerationResult:
    """Result of one train-fraction evaluation."""

    fraction: float
    model_name: str
    accuracy: float
    injections_used: int
    injections_full: int

    @property
    def injection_savings(self):
        return 1.0 - self.injections_used / self.injections_full


class FIAccelerationStudy:
    """Vulnerability prediction from partial injection campaigns.

    Parameters
    ----------
    programs:
        Workloads pooled into one dataset (element x program samples).
    n_trials_per_element:
        Ground-truth injections per element (the cost being amortized).
    """

    def __init__(self, programs, n_trials_per_element=80, seed=0):
        self.seed = seed
        self.n_trials_per_element = n_trials_per_element
        self._X = []
        self._y = []
        self._n_elements = 0
        for p_idx, program in enumerate(programs):
            injector = FaultInjector(program)
            table = vulnerability_table(
                injector, n_trials_per_element=n_trials_per_element, seed=seed + p_idx
            )
            labels, _ = vulnerable_labels(table)
            elements, X = element_features(program)
            for el, row in zip(elements, X):
                self._X.append(row)
                self._y.append(labels[el])
                self._n_elements += 1
        self._X = np.asarray(self._X)
        self._y = np.asarray(self._y)

    @property
    def n_samples(self):
        return len(self._y)

    def _models(self):
        return {
            "knn": lambda: KNeighborsClassifier(n_neighbors=3),
            "svm": lambda: LinearSVC(C=1.0, n_epochs=60, seed=self.seed),
        }

    def evaluate(self, train_fraction=0.2, model="knn", seed=None):
        """Train on a fraction of elements, test on the rest."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(self.seed if seed is None else seed)
        n = self.n_samples
        idx = rng.permutation(n)
        n_train = max(2, int(round(train_fraction * n)))
        train_idx, test_idx = idx[:n_train], idx[n_train:]
        if len(test_idx) == 0:
            raise ValueError("train_fraction leaves no test elements")
        scaler = StandardScaler().fit(self._X[train_idx])
        clf = self._models()[model]()
        clf.fit(scaler.transform(self._X[train_idx]), self._y[train_idx])
        pred = clf.predict(scaler.transform(self._X[test_idx]))
        accuracy = float(np.mean(pred == self._y[test_idx]))
        return FIAccelerationResult(
            fraction=train_fraction,
            model_name=model,
            accuracy=accuracy,
            injections_used=n_train * self.n_trials_per_element,
            injections_full=n * self.n_trials_per_element,
        )

    def accuracy_vs_fraction(self, fractions=(0.1, 0.2, 0.4, 0.8), model="knn", n_repeats=3):
        """Mean accuracy at each training fraction (the [20] sweep)."""
        out = []
        for frac in fractions:
            accs = [
                self.evaluate(frac, model=model, seed=self.seed + 101 * r).accuracy
                for r in range(n_repeats)
            ]
            out.append((frac, float(np.mean(accs))))
        return out
