"""A small RISC ISA for the fault-injection CPU simulator.

16 general-purpose 32-bit registers (``r0`` hardwired to zero), a flat
word-addressed data memory, and a compact instruction set sufficient for
the kernels in :mod:`repro.arch.programs`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

N_REGISTERS = 16
WORD_MASK = 0xFFFFFFFF


class Opcode(enum.Enum):
    """Instruction opcodes."""

    NOP = "nop"
    ADD = "add"  # rd = rs1 + rs2
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    ADDI = "addi"  # rd = rs1 + imm
    LUI = "lui"  # rd = imm
    LD = "ld"  # rd = mem[rs1 + imm]
    ST = "st"  # mem[rs1 + imm] = rs2
    BEQ = "beq"  # if rs1 == rs2: pc += imm
    BNE = "bne"
    BLT = "blt"  # signed compare
    JMP = "jmp"  # pc += imm
    HALT = "halt"


# Opcodes indexed for feature vectors.
OPCODE_INDEX = {op: i for i, op in enumerate(Opcode)}

ARITH_OPS = {
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND,
    Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
}
BRANCH_OPS = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.JMP}
MEMORY_OPS = {Opcode.LD, Opcode.ST}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Fields not used by an opcode are zero.  ``imm`` is a signed integer
    (branch offsets are relative to the *next* PC).
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self):
        for reg in (self.rd, self.rs1, self.rs2):
            if not 0 <= reg < N_REGISTERS:
                raise ValueError(f"register index {reg} out of range")

    @property
    def reads(self):
        """Register indices this instruction reads."""
        op = self.opcode
        if op in ARITH_OPS:
            return (self.rs1, self.rs2)
        if op in (Opcode.ADDI, Opcode.LD):
            return (self.rs1,)
        if op == Opcode.ST:
            return (self.rs1, self.rs2)
        if op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT):
            return (self.rs1, self.rs2)
        return ()

    @property
    def writes(self):
        """Register index written, or None."""
        op = self.opcode
        if op in ARITH_OPS or op in (Opcode.ADDI, Opcode.LUI, Opcode.LD):
            return self.rd
        return None

    def __str__(self):
        return (
            f"{self.opcode.value} rd=r{self.rd} rs1=r{self.rs1} "
            f"rs2=r{self.rs2} imm={self.imm}"
        )


class Program:
    """An instruction sequence plus metadata about its outputs.

    Parameters
    ----------
    name:
        Human-readable workload name.
    instructions:
        Ordered instruction list; execution starts at index 0.
    output_range:
        ``(start, length)`` region of data memory holding the result that
        SDC detection compares against the golden run.
    initial_memory:
        Mapping address -> initial word value.
    """

    def __init__(self, name, instructions, output_range, initial_memory=None):
        self.name = name
        self.instructions = list(instructions)
        if not self.instructions:
            raise ValueError("program must contain at least one instruction")
        if self.instructions[-1].opcode != Opcode.HALT:
            raise ValueError("program must end with HALT")
        start, length = output_range
        if length <= 0:
            raise ValueError("output range must be non-empty")
        self.output_range = (int(start), int(length))
        self.initial_memory = dict(initial_memory or {})

    def __len__(self):
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, i):
        return self.instructions[i]


# -- tiny builder helpers -----------------------------------------------------
def add(rd, rs1, rs2):
    return Instruction(Opcode.ADD, rd=rd, rs1=rs1, rs2=rs2)


def sub(rd, rs1, rs2):
    return Instruction(Opcode.SUB, rd=rd, rs1=rs1, rs2=rs2)


def mul(rd, rs1, rs2):
    return Instruction(Opcode.MUL, rd=rd, rs1=rs1, rs2=rs2)


def and_(rd, rs1, rs2):
    return Instruction(Opcode.AND, rd=rd, rs1=rs1, rs2=rs2)


def or_(rd, rs1, rs2):
    return Instruction(Opcode.OR, rd=rd, rs1=rs1, rs2=rs2)


def xor(rd, rs1, rs2):
    return Instruction(Opcode.XOR, rd=rd, rs1=rs1, rs2=rs2)


def shl(rd, rs1, rs2):
    return Instruction(Opcode.SHL, rd=rd, rs1=rs1, rs2=rs2)


def shr(rd, rs1, rs2):
    return Instruction(Opcode.SHR, rd=rd, rs1=rs1, rs2=rs2)


def addi(rd, rs1, imm):
    return Instruction(Opcode.ADDI, rd=rd, rs1=rs1, imm=imm)


def lui(rd, imm):
    return Instruction(Opcode.LUI, rd=rd, imm=imm)


def ld(rd, rs1, imm=0):
    return Instruction(Opcode.LD, rd=rd, rs1=rs1, imm=imm)


def st(rs2, rs1, imm=0):
    return Instruction(Opcode.ST, rs1=rs1, rs2=rs2, imm=imm)


def beq(rs1, rs2, imm):
    return Instruction(Opcode.BEQ, rs1=rs1, rs2=rs2, imm=imm)


def bne(rs1, rs2, imm):
    return Instruction(Opcode.BNE, rs1=rs1, rs2=rs2, imm=imm)


def blt(rs1, rs2, imm):
    return Instruction(Opcode.BLT, rs1=rs1, rs2=rs2, imm=imm)


def jmp(imm):
    return Instruction(Opcode.JMP, imm=imm)


def halt():
    return Instruction(Opcode.HALT)


def nop():
    return Instruction(Opcode.NOP)
