"""Scale-dependent soft-error behaviour prediction (ref [21], Sec. III-B1).

[21] showed that the fault behaviour of large-scale applications (DOE
codes on 4096 cores) can be modelled with ~90 % accuracy *using data from
small-scale execution on a single core*, and that boosting models
(AdaBoost, stochastic gradient boosting) are more consistently accurate
than MLPs, naive Bayes, or SVMs because they keep learning from
mispredicted samples.

Synthetic substrate: each "application run" is described by observables a
single-core fault-injection study produces (masking rate, error latency,
corruption spread rate, detection coverage, recomputation slack, ...).
A hidden, threshold-heavy nonlinear process — the error-propagation
physics of scaling out — maps these observables to the dominant fault
behaviour at 4096 cores (vanished / output corruption / crash).  Models
are trained on applications whose large-scale behaviour is known and
evaluated on unseen applications, reproducing the [21] comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.ensemble import AdaBoostClassifier, GradientBoostingClassifier
from repro.ml.mlp import MLPClassifier
from repro.ml.naive_bayes import GaussianNB
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import LinearSVC

OUTCOME_NAMES = ("vanished", "corruption", "crash")

FEATURE_NAMES = (
    "single_core_masking_rate",
    "error_latency",
    "spread_rate",
    "detection_coverage",
    "recomputation_slack",
    "communication_fraction",
    "memory_intensity",
)


def _large_scale_outcome(latent, rng, large_scale=4096):
    """Hidden propagation physics: small-scale traits -> large-scale class.

    Deliberately built from interacting thresholds (regimes), the
    structure boosting handles well and low-capacity/linear models do not.
    """
    masking, latency, spread, coverage, slack, comm, mem = latent
    log_s = np.log2(large_scale)
    # An error that spreads through communication gets amplified by scale;
    # high masking and detection coverage damp it.
    amplification = (0.6 * spread + 0.8 * spread * comm) * log_s / 6.0
    containment = 0.45 * masking + 0.5 * coverage + 0.2 * slack
    # Regime flips: codes that are communication- XOR memory-bound propagate
    # differently, and strong masking+coverage changes the containment
    # regime — sharp nonlinearities linear/NB models cannot represent.
    regime = 0.45 if (comm > 0.5) != (mem > 0.5) else 0.0
    regime2 = -0.3 if (masking > 0.6 and coverage > 0.6) else 0.0
    pressure = amplification - containment + regime + regime2 + rng.normal(0, 0.07)
    crash_axis = (
        mem * (1.0 - latency) * log_s / 6.0
        - 0.45 * slack
        + (0.3 if latency < 0.25 else 0.0)
        + rng.normal(0, 0.07)
    )
    if pressure < 0.3:
        return 0  # vanished
    if crash_axis > 0.3 and latency < 0.55:
        return 2  # crash
    return 1  # corruption


def generate_applications(n_apps, seed=0, large_scale=4096, n_noise_features=13):
    """Synthetic (single-core observables, large-scale class) dataset.

    Besides the seven informative observables, each log row carries
    ``n_noise_features`` irrelevant columns (timestamps, node ids, ...),
    as real injection logs do — the clutter boosting models prune
    naturally and low-capacity models stumble over.
    """
    rng = np.random.default_rng(seed)
    X = []
    y = []
    for _ in range(n_apps):
        latent = np.array(
            [
                rng.uniform(0.0, 1.0),  # masking rate
                rng.uniform(0.0, 1.0),  # error latency (normalized)
                rng.uniform(0.0, 1.0),  # spread rate
                rng.uniform(0.0, 1.0),  # detection coverage
                rng.uniform(0.0, 1.0),  # recomputation slack
                rng.uniform(0.0, 1.0),  # communication fraction
                rng.uniform(0.0, 1.0),  # memory intensity
            ]
        )
        outcome = _large_scale_outcome(latent, rng, large_scale)
        # Observables are the latent traits plus single-core measurement
        # noise, followed by the irrelevant log columns.
        observed = np.concatenate(
            [
                latent + rng.normal(0, 0.04, size=latent.shape),
                rng.uniform(0.0, 1.0, size=n_noise_features),
            ]
        )
        X.append(observed)
        y.append(outcome)
    return np.asarray(X), np.asarray(y)


@dataclass
class ScaleResult:
    model_name: str
    accuracy: float


class ScalePredictionStudy:
    """Compare model families on large-scale behaviour prediction."""

    def __init__(self, n_train=600, n_test=400, large_scale=4096, seed=0):
        self.seed = seed
        self.large_scale = large_scale
        self.X_train, self.y_train = generate_applications(
            n_train, seed=seed, large_scale=large_scale
        )
        self.X_test, self.y_test = generate_applications(
            n_test, seed=seed + 1, large_scale=large_scale
        )
        self._scaler = StandardScaler().fit(self.X_train)

    def model_zoo(self):
        """The [21] comparison set: boosting vs the simpler families."""
        return {
            "adaboost": lambda: AdaBoostClassifier(n_estimators=50, max_depth=3, seed=self.seed),
            "gradient_boosting": lambda: GradientBoostingClassifier(
                n_estimators=30, max_depth=3, subsample=0.7, seed=self.seed
            ),
            "mlp": lambda: MLPClassifier(hidden=(16,), n_epochs=60, lr=2e-3, seed=self.seed),
            "naive_bayes": GaussianNB,
            "svm": lambda: LinearSVC(C=1.0, n_epochs=40, seed=self.seed),
        }

    def evaluate(self, model_name):
        """Held-out accuracy of one model."""
        zoo = self.model_zoo()
        if model_name not in zoo:
            raise KeyError(f"unknown model {model_name!r}")
        model = zoo[model_name]()
        Xtr = self._scaler.transform(self.X_train)
        Xte = self._scaler.transform(self.X_test)
        if model_name == "svm":
            # Binary surrogate as in [21]'s per-class analysis: failure vs not.
            ytr = (self.y_train > 0).astype(int)
            yte = (self.y_test > 0).astype(int)
            model.fit(Xtr, ytr)
            acc = float(np.mean(model.predict(Xte) == yte))
        else:
            model.fit(Xtr, self.y_train)
            acc = float(np.mean(model.predict(Xte) == self.y_test))
        return ScaleResult(model_name=model_name, accuracy=acc)

    def compare_all(self):
        """Accuracy per model, sorted best-first."""
        results = [self.evaluate(name) for name in self.model_zoo()]
        return sorted(results, key=lambda r: -r.accuracy)

    def boosting_wins(self):
        """True when a boosting model is the most accurate multiclass model.

        (The SVM row is a binary surrogate, so it is excluded from the
        multiclass ranking, mirroring the paper's discussion.)
        """
        multiclass = [r for r in self.compare_all() if r.model_name != "svm"]
        return multiclass[0].model_name in ("adaboost", "gradient_boosting")
