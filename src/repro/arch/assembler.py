"""A two-pass assembler for the repro ISA.

Turns label-based assembly text into a :class:`repro.arch.isa.Program`,
so workloads for the fault-injection studies can be written as readable
source instead of hand-counted branch offsets.

Syntax
------
* one instruction per line: ``add r5, r3, r4`` / ``addi r1, r0, 4`` /
  ``ld r3, r1, 100`` / ``st r5, r1, 200`` / ``beq r1, r2, done`` /
  ``jmp loop`` / ``halt`` / ``nop``;
* labels end with a colon (``loop:``), alone or before an instruction;
* branch/jump targets may be labels (resolved relative to next PC) or
  literal signed offsets;
* ``;`` and ``#`` start comments;
* directives: ``.output START LENGTH`` declares the output range,
  ``.word ADDR VALUE`` preloads data memory.
"""

from __future__ import annotations

import re

from repro.arch.isa import Instruction, Opcode, Program

_REGISTER = re.compile(r"^r(\d+)$")

# opcode -> operand layout
_THREE_REG = {"add", "sub", "mul", "and", "or", "xor", "shl", "shr"}


class AssemblyError(ValueError):
    """Raised for malformed assembly source."""


def _reg(token, line_no):
    m = _REGISTER.match(token.strip().lower())
    if not m:
        raise AssemblyError(f"line {line_no}: expected register, got {token!r}")
    idx = int(m.group(1))
    if not 0 <= idx < 16:
        raise AssemblyError(f"line {line_no}: register {token!r} out of range")
    return idx


def _imm_or_label(token, line_no):
    token = token.strip()
    try:
        return int(token, 0), None
    except ValueError:
        if re.match(r"^[A-Za-z_][A-Za-z0-9_]*$", token):
            return None, token
        raise AssemblyError(f"line {line_no}: bad immediate/label {token!r}")


def assemble(source, name="assembled", output_range=None):
    """Assemble source text into a :class:`Program`.

    ``output_range`` overrides any ``.output`` directive in the source.
    """
    labels = {}
    pending = []  # (index, opcode, operands, line_no)
    memory = {}
    declared_output = None

    # First pass: strip comments, collect labels and instruction tuples.
    index = 0
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = re.split(r"[;#]", raw)[0].strip()
        if not line:
            continue
        while True:
            m = re.match(r"^([A-Za-z_][A-Za-z0-9_]*)\s*:\s*(.*)$", line)
            if not m:
                break
            label = m.group(1)
            if label in labels:
                raise AssemblyError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = index
            line = m.group(2).strip()
        if not line:
            continue
        if line.startswith(".output"):
            parts = line.split()
            if len(parts) != 3:
                raise AssemblyError(f"line {line_no}: .output START LENGTH")
            declared_output = (int(parts[1], 0), int(parts[2], 0))
            continue
        if line.startswith(".word"):
            parts = line.split()
            if len(parts) != 3:
                raise AssemblyError(f"line {line_no}: .word ADDR VALUE")
            memory[int(parts[1], 0)] = int(parts[2], 0)
            continue
        mnemonic, _, rest = line.partition(" ")
        operands = [op for op in re.split(r"\s*,\s*", rest.strip()) if op] if rest else []
        pending.append((index, mnemonic.lower(), operands, line_no))
        index += 1

    # Second pass: encode with resolved label offsets.
    instructions = [None] * index
    for pc, mnemonic, operands, line_no in pending:
        try:
            opcode = Opcode(mnemonic)
        except ValueError:
            raise AssemblyError(f"line {line_no}: unknown opcode {mnemonic!r}") from None

        def branch_target(token):
            value, label = _imm_or_label(token, line_no)
            if label is not None:
                if label not in labels:
                    raise AssemblyError(f"line {line_no}: undefined label {label!r}")
                return labels[label] - (pc + 1)
            return value

        def expect(n):
            if len(operands) != n:
                raise AssemblyError(
                    f"line {line_no}: {mnemonic} expects {n} operands, "
                    f"got {len(operands)}"
                )

        if mnemonic in _THREE_REG:
            expect(3)
            instr = Instruction(
                opcode,
                rd=_reg(operands[0], line_no),
                rs1=_reg(operands[1], line_no),
                rs2=_reg(operands[2], line_no),
            )
        elif mnemonic == "addi":
            expect(3)
            imm, label = _imm_or_label(operands[2], line_no)
            if label is not None:
                raise AssemblyError(f"line {line_no}: addi needs a literal")
            instr = Instruction(
                opcode, rd=_reg(operands[0], line_no),
                rs1=_reg(operands[1], line_no), imm=imm,
            )
        elif mnemonic == "lui":
            expect(2)
            imm, label = _imm_or_label(operands[1], line_no)
            if label is not None:
                raise AssemblyError(f"line {line_no}: lui needs a literal")
            instr = Instruction(opcode, rd=_reg(operands[0], line_no), imm=imm)
        elif mnemonic == "ld":
            expect(3)
            imm, label = _imm_or_label(operands[2], line_no)
            if label is not None:
                raise AssemblyError(f"line {line_no}: ld offset must be literal")
            instr = Instruction(
                opcode, rd=_reg(operands[0], line_no),
                rs1=_reg(operands[1], line_no), imm=imm,
            )
        elif mnemonic == "st":
            expect(3)
            imm, label = _imm_or_label(operands[2], line_no)
            if label is not None:
                raise AssemblyError(f"line {line_no}: st offset must be literal")
            instr = Instruction(
                opcode, rs2=_reg(operands[0], line_no),
                rs1=_reg(operands[1], line_no), imm=imm,
            )
        elif mnemonic in ("beq", "bne", "blt"):
            expect(3)
            instr = Instruction(
                opcode,
                rs1=_reg(operands[0], line_no),
                rs2=_reg(operands[1], line_no),
                imm=branch_target(operands[2]),
            )
        elif mnemonic == "jmp":
            expect(1)
            instr = Instruction(opcode, imm=branch_target(operands[0]))
        elif mnemonic in ("halt", "nop"):
            expect(0)
            instr = Instruction(opcode)
        else:  # pragma: no cover - Opcode() above is exhaustive
            raise AssemblyError(f"line {line_no}: unhandled opcode {mnemonic!r}")
        instructions[pc] = instr

    output = output_range or declared_output
    if output is None:
        raise AssemblyError("no output range: add a .output directive or pass one")
    return Program(name, instructions, output_range=output, initial_memory=memory)
