"""Block-compiled suffix interpreter for off-trace fault-injection lanes.

Once a trial's control flow leaves the golden PC trace, the batched
engine (:mod:`repro.arch.batched_engine`) can no longer step it in
lockstep with the other lanes — and the scalar interpreter pays ~1 µs
of Python dispatch per simulated cycle, which makes hang trials (which
must run to the cycle budget to prove they hang) the dominant cost of a
campaign.  This module removes most of that dispatch: it compiles a
program's static control-flow graph into one generated Python function
whose basic blocks are straight-line code over register *locals*
(``r1`` … ``r15``; ``r0`` folds to the literal ``0``), re-dispatching
on the PC only at block boundaries.

Semantics mirror :meth:`repro.arch.cpu.CPU.run_span` exactly — same
32-bit masking, signed-compare branches, copy-on-write memory overlay,
:data:`repro.arch.cpu.MEMORY_LIMIT` crashes, and halt behaviour.  Two
situations are deliberately *not* handled inline and bounce back to the
scalar CPU instead:

* **near-budget** — within one maximal block length of ``max_cycles``,
  so the scalar loop delivers the cycle-exact ``TimeoutError``;
* **off-dispatch entry** — an entry PC that is not a block leader
  (possible for ``pc``-flip faults; divergent branch directions are
  always leaders by CFG construction).

The interpreter never checks golden reconvergence: early exits are an
optimization, not a semantic, so classifying from the final
architectural state produces bit-identical outcomes.  See
``docs/fi-engine.md``.
"""

from __future__ import annotations

from repro.arch.cpu import MEMORY_LIMIT
from repro.arch.isa import WORD_MASK, Opcode

#: Status codes returned by a compiled runner (first tuple element).
HALTED, CRASHED, NEAR_BUDGET, OFF_DISPATCH = range(4)

_TERMINATORS = (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.JMP, Opcode.HALT)
_BRANCHES = (Opcode.BEQ, Opcode.BNE, Opcode.BLT)

_REGS_TUPLE = "(0, " + ", ".join(f"r{i}" for i in range(1, 16)) + ")"


def _reg_read(idx):
    return "0" if idx == 0 else f"r{idx}"


class BlockProgram:
    """A program compiled to a block-dispatch interpreter function.

    Attributes
    ----------
    leaders:
        Frozenset of basic-block entry PCs; :meth:`run` may only be
        entered at one of these (callers scalar-step to a leader
        first).
    source:
        The generated Python source, kept for debugging.
    """

    def __init__(self, program):
        """Build the CFG, generate source, and compile the runner."""
        instrs = program.instructions
        n = len(instrs)
        leaders = {0}
        for i, ins in enumerate(instrs):
            if ins.opcode in _TERMINATORS:
                if i + 1 < n:
                    leaders.add(i + 1)
                if ins.opcode is not Opcode.HALT:
                    target = i + 1 + ins.imm
                    if 0 <= target < n:
                        leaders.add(target)
        self.leaders = frozenset(leaders)
        ordered = sorted(leaders)
        blocks = {}
        max_len = 1
        for leader in ordered:
            lines, length = self._emit_block(program, leader, leaders)
            blocks[leader] = lines
            max_len = max(max_len, length)

        out = [
            "def _run(regs, overlay, base, pc, cycles, max_cycles):",
            "    _, r1, r2, r3, r4, r5, r6, r7, "
            "r8, r9, r10, r11, r12, r13, r14, r15 = regs",
            "    ov = overlay",
            "    bget = base.get",
            "    while True:",
            f"        if cycles + {max_len} >= max_cycles:",
            f"            return ({NEAR_BUDGET}, pc, cycles, {_REGS_TUPLE})",
        ]
        self._emit_dispatch(out, ordered, blocks, "        ")
        self.source = "\n".join(out)
        namespace = {}
        exec(self.source, namespace)  # noqa: S102 - static program codegen
        self.run = namespace["_run"]

    def _emit_dispatch(self, out, ordered, blocks, pad):
        """Binary if-tree over block leaders; leaves inline the blocks."""
        if len(ordered) == 1:
            leader = ordered[0]
            out.append(f"{pad}if pc == {leader}:")
            out.extend(pad + "    " + line for line in blocks[leader])
            out.append(f"{pad}else:")
            out.append(
                f"{pad}    return ({OFF_DISPATCH}, pc, cycles, {_REGS_TUPLE})"
            )
            return
        mid = len(ordered) // 2
        out.append(f"{pad}if pc < {ordered[mid]}:")
        self._emit_dispatch(out, ordered[:mid], blocks, pad + "    ")
        out.append(f"{pad}else:")
        self._emit_dispatch(out, ordered[mid:], blocks, pad + "    ")

    def _emit_block(self, program, leader, leaders):
        """Generate one basic block; returns (lines, cycle_length)."""
        instrs = program.instructions
        n = len(instrs)
        lines = []
        i = leader
        length = 0
        while True:
            ins = instrs[i]
            op = ins.opcode
            length += 1
            if op in _TERMINATORS:
                lines.append(f"cycles += {length}")
                if op is Opcode.HALT:
                    lines.append(f"return ({HALTED}, {i}, cycles, None)")
                elif op is Opcode.JMP:
                    self._emit_goto(lines, i + 1 + ins.imm, n, "")
                else:
                    a = _reg_read(ins.rs1)
                    b = _reg_read(ins.rs2)
                    if op is Opcode.BEQ:
                        cond = f"{a} == {b}"
                    elif op is Opcode.BNE:
                        cond = f"{a} != {b}"
                    else:  # BLT: signed compare via bias trick
                        cond = f"({a} ^ 2147483648) < ({b} ^ 2147483648)"
                    lines.append(f"if {cond}:")
                    self._emit_goto(lines, i + 1 + ins.imm, n, "    ")
                    lines.append("else:")
                    self._emit_goto(lines, i + 1, n, "    ")
                return lines, length
            self._emit_straight(lines, ins)
            i += 1
            if i in leaders:  # fall through into the next block
                lines.append(f"cycles += {length}")
                lines.append(f"pc = {i}")
                lines.append("continue")
                return lines, length

    def _emit_goto(self, lines, target, n, pad):
        if 0 <= target < n:
            lines.append(f"{pad}pc = {target}")
            lines.append(f"{pad}continue")
        else:  # the scalar loop would crash on the next fetch
            lines.append(f"{pad}return ({CRASHED}, {target}, cycles, None)")

    def _emit_straight(self, lines, ins):
        """Emit one non-terminator instruction as straight-line code."""
        op = ins.opcode
        rd = ins.rd
        a = _reg_read(ins.rs1)
        b = _reg_read(ins.rs2)
        mask = WORD_MASK
        if op is Opcode.NOP:
            return
        if op is Opcode.LD:
            imm = ins.imm & mask
            lines.append(f"a_ = ({a} + {imm}) & {mask}")
            lines.append(f"if a_ >= {MEMORY_LIMIT}:")
            lines.append(f"    return ({CRASHED}, a_, cycles, None)")
            if rd:
                lines.append(f"r{rd} = ov[a_] if a_ in ov else bget(a_, 0)")
            return
        if op is Opcode.ST:
            imm = ins.imm & mask
            lines.append(f"a_ = ({a} + {imm}) & {mask}")
            lines.append(f"if a_ >= {MEMORY_LIMIT}:")
            lines.append(f"    return ({CRASHED}, a_, cycles, None)")
            lines.append(f"ov[a_] = {b}")
            return
        if rd == 0:  # writes to r0 are dropped; nothing else can fault
            return
        if op is Opcode.ADD:
            expr = f"({a} + {b}) & {mask}"
        elif op is Opcode.SUB:
            expr = f"({a} - {b}) & {mask}"
        elif op is Opcode.MUL:
            expr = f"({a} * {b}) & {mask}"
        elif op is Opcode.AND:
            expr = f"{a} & {b}"
        elif op is Opcode.OR:
            expr = f"{a} | {b}"
        elif op is Opcode.XOR:
            expr = f"{a} ^ {b}"
        elif op is Opcode.SHL:
            expr = f"({a} << ({b} & 31)) & {mask}"
        elif op is Opcode.SHR:
            expr = f"{a} >> ({b} & 31)"
        elif op is Opcode.ADDI:
            expr = f"({a} + {ins.imm}) & {mask}"
        elif op is Opcode.LUI:
            expr = str(ins.imm & mask)
        else:  # pragma: no cover - Opcode is exhaustive
            raise ValueError(f"unexpected opcode {op}")
        lines.append(f"r{rd} = {expr}")
