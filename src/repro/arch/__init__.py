"""Architecture-level reliability (Sec. III).

Substrate: a small RISC ISA (:mod:`repro.arch.isa`), a CPU simulator with
explicit, injectable state elements (:mod:`repro.arch.cpu`), and a set of
workload programs (:mod:`repro.arch.programs`).

On top of it, the surveyed ML techniques:

* :mod:`repro.arch.fault_injection` — microarchitectural fault-injection
  campaigns with outcome classification (masked/SDC/crash/hang/symptom);
* :mod:`repro.arch.vulnerability` — structural features and AVF per state
  element;
* :mod:`repro.arch.ml_fi_acceleration` — ref [20]: predict element
  vulnerability from ~20 % of the injections;
* :mod:`repro.arch.scale_prediction` — ref [21]: predict large-scale error
  behaviour from small-scale runs, boosting vs simpler models;
* :mod:`repro.arch.pattern_mining` — refs [22],[23]: supervised +
  unsupervised mining of injection logs;
* :mod:`repro.arch.sdc_prediction` — ref [24]: GAT over instruction graphs
  predicting per-instruction fault outcomes;
* :mod:`repro.arch.selective_replication` — ref [27] (IPAS): SVM-guided
  instruction replication;
* :mod:`repro.arch.crossbar` — ref [28]: fault criticality in memristor
  crossbars and selective redundancy;
* :mod:`repro.arch.symptom_detection` — ref [30]: MLP anomaly detection on
  DNN intermediate outputs;
* :mod:`repro.arch.warning_net` — ref [32]: early warning of task failure
  under input perturbation.
"""

from repro.arch.isa import Instruction, Opcode, Program
from repro.arch.assembler import assemble, AssemblyError
from repro.arch.cpu import CPU, ExecutionResult, CrashError
from repro.arch import programs
from repro.arch.fault_injection import FaultInjector, Outcome, CampaignResult
from repro.arch.steering import (
    SteeredCampaignResult,
    SteeredUnitSource,
    SteeringConfig,
    run_steered_campaign,
)
from repro.arch.vulnerability import element_features, vulnerability_table, avf
from repro.arch.ml_fi_acceleration import FIAccelerationStudy
from repro.arch.scale_prediction import ScalePredictionStudy
from repro.arch.pattern_mining import PatternMiner
from repro.arch.sdc_prediction import build_instruction_graph, SDCPredictor
from repro.arch.selective_replication import ReplicationStudy
from repro.arch.replication_transform import (
    protect_program,
    measure_protection,
    MeasuredProtection,
)
from repro.arch.crossbar import Crossbar, CrossbarFaultStudy
from repro.arch.symptom_detection import SymptomDetector
from repro.arch.warning_net import WarningNet

__all__ = [
    "Instruction",
    "Opcode",
    "Program",
    "assemble",
    "AssemblyError",
    "CPU",
    "ExecutionResult",
    "CrashError",
    "programs",
    "FaultInjector",
    "Outcome",
    "CampaignResult",
    "SteeredCampaignResult",
    "SteeredUnitSource",
    "SteeringConfig",
    "run_steered_campaign",
    "element_features",
    "vulnerability_table",
    "avf",
    "FIAccelerationStudy",
    "ScalePredictionStudy",
    "PatternMiner",
    "build_instruction_graph",
    "SDCPredictor",
    "ReplicationStudy",
    "protect_program",
    "measure_protection",
    "MeasuredProtection",
    "Crossbar",
    "CrossbarFaultStudy",
    "SymptomDetector",
    "WarningNet",
]
