"""WarningNet-style early warning of task failure under input perturbation
(ref [32], Sec. III-C2).

A mission-critical task (here an image classifier) degrades under input
perturbations — sensor noise, blur, occlusion.  WarningNet is a much
smaller network running in parallel on the *input* that predicts whether
the current perturbation level will make the mission task fail, at a
fraction (~1/20) of the mission task's cost, enabling on-demand input
pre-processing before failures happen.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.metrics import accuracy_score, precision_score, recall_score
from repro.ml.mlp import MLPClassifier
from repro.ml.preprocessing import StandardScaler

PERTURBATION_KINDS = ("noise", "blur", "occlusion")


def make_image_dataset(n_samples=400, side=8, n_classes=4, seed=0):
    """Synthetic "sensor image" dataset: class = quadrant of a bright blob."""
    rng = np.random.default_rng(seed)
    X = np.zeros((n_samples, side * side))
    y = np.zeros(n_samples, dtype=int)
    half = side // 2
    for i in range(n_samples):
        img = rng.normal(0.0, 0.08, (side, side))
        cls = int(rng.integers(n_classes))
        r0 = 0 if cls in (0, 1) else half
        c0 = 0 if cls in (0, 2) else half
        rr = r0 + rng.integers(half - 2)
        cc = c0 + rng.integers(half - 2)
        img[rr : rr + 3, cc : cc + 3] += 1.0
        X[i] = img.ravel()
        y[i] = cls
    return X, y


def perturb(X, kind, severity, side=8, rng=None):
    """Apply a perturbation of the given kind and severity in [0, 1]."""
    if kind not in PERTURBATION_KINDS:
        raise ValueError(f"unknown perturbation {kind!r}")
    if not 0.0 <= severity <= 1.0:
        raise ValueError("severity must be in [0, 1]")
    rng = rng or np.random.default_rng(0)
    X = np.asarray(X, dtype=float).copy()
    if kind == "noise":
        X += rng.normal(0.0, 1.5 * severity, X.shape)
    elif kind == "blur":
        imgs = X.reshape(-1, side, side)
        blurred = imgs.copy()
        passes = int(round(severity * 4))
        for _ in range(passes):
            padded = np.pad(blurred, ((0, 0), (1, 1), (1, 1)), mode="edge")
            blurred = (
                padded[:, :-2, 1:-1] + padded[:, 2:, 1:-1]
                + padded[:, 1:-1, :-2] + padded[:, 1:-1, 2:]
                + padded[:, 1:-1, 1:-1]
            ) / 5.0
        X = blurred.reshape(X.shape)
    else:  # occlusion
        imgs = X.reshape(-1, side, side)
        size = int(round(severity * side))
        if size > 0:
            for img in imgs:
                r = rng.integers(max(side - size, 1))
                c = rng.integers(max(side - size, 1))
                img[r : r + size, c : c + size] = 0.0
        X = imgs.reshape(X.shape)
    return X


def warning_features(X, side=8):
    """Cheap per-image statistics WarningNet consumes (no deep features)."""
    imgs = np.asarray(X, dtype=float).reshape(len(X), side, side)
    gx = np.abs(np.diff(imgs, axis=2)).mean(axis=(1, 2))
    gy = np.abs(np.diff(imgs, axis=1)).mean(axis=(1, 2))
    return np.column_stack(
        [
            imgs.mean(axis=(1, 2)),
            imgs.std(axis=(1, 2)),
            imgs.max(axis=(1, 2)),
            imgs.min(axis=(1, 2)),
            gx,
            gy,
            (np.abs(imgs) < 0.05).mean(axis=(1, 2)),
        ]
    )


@dataclass
class WarningReport:
    accuracy: float
    recall: float
    precision: float
    cost_ratio: float  # warning-net params / mission-task params
    lead_detection_rate: float  # warnings raised among failing inputs


class WarningNet:
    """Small failure-warning network running beside a mission classifier."""

    def __init__(self, mission_model, side=8, seed=0):
        if mission_model.weights_ is None:
            raise ValueError("mission model must be fitted")
        self.mission = mission_model
        self.side = side
        self.seed = seed
        self._net = None
        self._scaler = None

    def _labelled_stream(self, X, y, seed=None, n_augment=1):
        """Perturbed input stream labelled by whether the mission task fails.

        ``n_augment`` passes draw several independent perturbations per
        image, enlarging the training stream.
        """
        rng = np.random.default_rng(self.seed if seed is None else seed)
        Xp = []
        fail = []
        for _ in range(n_augment):
            for x, target in zip(np.asarray(X, dtype=float), np.asarray(y)):
                kind = PERTURBATION_KINDS[rng.integers(len(PERTURBATION_KINDS))]
                severity = float(rng.uniform(0.0, 1.0))
                xp = perturb(x.reshape(1, -1), kind, severity, side=self.side, rng=rng)[0]
                pred = self.mission.predict(xp.reshape(1, -1))[0]
                Xp.append(xp)
                fail.append(int(pred != target))
        return np.asarray(Xp), np.asarray(fail)

    def fit(self, X, y, n_augment=6):
        """Train on a perturbed stream labelled by mission failures."""
        Xp, fail = self._labelled_stream(X, y, n_augment=n_augment)
        feats = warning_features(Xp, side=self.side)
        # Failures are the minority class in a mostly-benign stream;
        # oversample them so recall (missed warnings are the costly error)
        # is not sacrificed for accuracy.
        failing = np.where(fail == 1)[0]
        if 0 < len(failing) < len(fail) / 2:
            reps = int(np.ceil(len(fail) / (2 * len(failing)))) - 1
            if reps > 0:
                feats = np.vstack([feats] + [feats[failing]] * reps)
                fail = np.concatenate([fail] + [fail[failing]] * reps)
        self._scaler = StandardScaler().fit(feats)
        self._net = MLPClassifier(hidden=(12,), n_epochs=300, lr=3e-3, seed=self.seed)
        self._net.fit(self._scaler.transform(feats), fail)
        return self

    def warn(self, X):
        """1 = warning (mission failure likely) per input image."""
        if self._net is None:
            raise RuntimeError("WarningNet is not fitted")
        feats = warning_features(X, side=self.side)
        return self._net.predict(self._scaler.transform(feats))

    def evaluate(self, X, y, seed=7):
        """Warning quality and cost on a fresh perturbed stream."""
        if self._net is None:
            raise RuntimeError("WarningNet is not fitted")
        Xp, fail = self._labelled_stream(X, y, seed=self.seed + seed)
        pred = self.warn(Xp)
        cost_ratio = self._net.n_parameters() / self.mission.n_parameters()
        failing = fail == 1
        lead = float(np.mean(pred[failing])) if failing.any() else 1.0
        return WarningReport(
            accuracy=accuracy_score(fail, pred),
            recall=recall_score(fail, pred),
            precision=precision_score(fail, pred),
            cost_ratio=cost_ratio,
            lead_detection_rate=lead,
        )
