"""Program-level duplicate-and-compare transformation (refs [25], [26]).

The software error-resilience approaches the paper surveys (NEMESIS-style)
*transform* the program: each protected instruction's result is computed
twice and the copies compared; a mismatch branches to a detection handler
before the corrupted value can reach an output.  This module implements
the transformation on :class:`repro.arch.isa.Program` so protection is
*measured* — real cycle overhead on the CPU simulator, real detection of
injected faults — instead of modelled analytically as in
:mod:`repro.arch.selective_replication`.

Scheme per protected register-writing instruction ``I`` (dest ``rd``):

* if ``rd`` is also a source, its pre-write value is first saved to a
  scratch register;
* ``I`` executes normally;
* a recomputation of ``I`` into a second scratch register follows (with
  the saved source substituted where needed);
* ``bne rd, scratch, handler`` catches divergence.

The handler stores a magic flag word and halts; outcome classification
then distinguishes *detected* faults from silent corruptions.  Branch
targets of the original program are relocated across the inserted code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.cpu import CPU, CrashError
from repro.arch.isa import (
    ARITH_OPS,
    BRANCH_OPS,
    Instruction,
    Opcode,
    Program,
    add,
    bne,
    halt,
    lui,
    st,
)

DETECTION_FLAG_ADDR = 900
DETECTION_FLAG_VALUE = 0x5A5A

_PROTECTABLE_OPS = ARITH_OPS | {Opcode.ADDI, Opcode.LUI, Opcode.LD}


def _substitute_source(instr, old_reg, new_reg):
    """Copy of ``instr`` with source register ``old_reg`` replaced."""
    rs1 = new_reg if instr.rs1 == old_reg else instr.rs1
    rs2 = new_reg if instr.rs2 == old_reg else instr.rs2
    return Instruction(instr.opcode, rd=instr.rd, rs1=rs1, rs2=rs2, imm=instr.imm)


def protect_program(program, protected_indices, save_reg=15, check_reg=14,
                    flag_reg=13):
    """Return a protected :class:`Program` with duplicate-and-compare code.

    Parameters
    ----------
    protected_indices:
        Original-program instruction indices to protect.  Only
        register-writing, protectable instructions are transformed;
        others in the set are silently left as-is.
    save_reg / check_reg / flag_reg:
        Scratch registers the transform may clobber; the original program
        must not use them.

    Raises
    ------
    ValueError
        When the original program uses a scratch register.
    """
    scratch = {save_reg, check_reg, flag_reg}
    for instr in program.instructions:
        used = set(instr.reads)
        if instr.writes is not None:
            used.add(instr.writes)
        if used & scratch:
            raise ValueError(
                f"program uses scratch register(s) {sorted(used & scratch)}"
            )
    protected = set(protected_indices)

    # Emit blocks per original instruction; remember each block's start.
    blocks = []  # list of lists of ("instr", Instruction) or ("check",)
    for idx, instr in enumerate(program.instructions):
        block = []
        if (
            idx in protected
            and instr.opcode in _PROTECTABLE_OPS
            and instr.writes is not None
        ):
            rd = instr.writes
            recompute = instr
            if rd in instr.reads:
                block.append(("plain", add(save_reg, rd, 0)))  # save old rd
                recompute = _substitute_source(instr, rd, save_reg)
            block.append(("plain", instr))
            block.append(
                ("plain", Instruction(
                    recompute.opcode,
                    rd=check_reg,
                    rs1=recompute.rs1,
                    rs2=recompute.rs2,
                    imm=recompute.imm,
                ))
            )
            block.append(("check", bne(rd, check_reg, 0)))  # target fixed later
        else:
            block.append(("plain", instr))
        blocks.append(block)

    # Positions of each original instruction's block in the new program.
    new_pos = []
    cursor = 0
    for block in blocks:
        new_pos.append(cursor)
        cursor += len(block)
    handler_pos = cursor

    # Materialize with branch relocation.
    instructions = []
    for idx, block in enumerate(blocks):
        for kind, instr in block:
            pc = len(instructions)
            if kind == "check":
                instructions.append(
                    Instruction(
                        Opcode.BNE, rs1=instr.rs1, rs2=instr.rs2,
                        imm=handler_pos - (pc + 1),
                    )
                )
            elif instr.opcode in BRANCH_OPS:
                orig_target = idx + 1 + instr.imm
                if not 0 <= orig_target < len(blocks):
                    raise ValueError(
                        f"branch at {idx} targets {orig_target}, outside program"
                    )
                new_target = new_pos[orig_target]
                instructions.append(
                    Instruction(
                        instr.opcode, rd=instr.rd, rs1=instr.rs1, rs2=instr.rs2,
                        imm=new_target - (pc + 1),
                    )
                )
            else:
                instructions.append(instr)

    # Detection handler: set the flag and stop.
    instructions.append(lui(flag_reg, DETECTION_FLAG_VALUE))
    instructions.append(st(flag_reg, 0, DETECTION_FLAG_ADDR))
    instructions.append(halt())

    return Program(
        f"{program.name}_protected",
        instructions,
        output_range=program.output_range,
        initial_memory=program.initial_memory,
    )


@dataclass
class MeasuredProtection:
    """Measured cost and quality of one protected program."""

    program_name: str
    baseline_cycles: int
    protected_cycles: int
    sdc_rate_unprotected: float
    sdc_rate_protected: float
    detection_rate: float  # fraction of injections caught by the handler

    @property
    def slowdown(self):
        return self.protected_cycles / self.baseline_cycles

    @property
    def sdc_reduction(self):
        if self.sdc_rate_unprotected <= 0:
            return 0.0
        return 1.0 - self.sdc_rate_protected / self.sdc_rate_unprotected


def measure_protection(program, protected_indices, n_trials=300, seed=0):
    """Inject faults into baseline and protected versions; measure both.

    Injections target destination registers right after register-writing
    instructions execute (the fault window duplication covers).
    """
    protected_prog = protect_program(program, protected_indices)
    base_golden = CPU(program, max_cycles=1_000_000).run()
    prot_golden = CPU(protected_prog, max_cycles=1_000_000).run()
    if prot_golden.output(program.output_range) != base_golden.output(
        program.output_range
    ):
        raise AssertionError("protection transform changed program semantics")

    rng = np.random.default_rng(seed)

    def campaign(target, golden_cycles):
        trace_cpu = CPU(target, max_cycles=1_000_000)
        trace = []
        while not trace_cpu.halted:
            trace.append(trace_cpu.pc)
            trace_cpu.step()
        # Injectable cycles: right after a register-writing instruction.
        windows = [
            (cycle + 1, target.instructions[pc].writes)
            for cycle, pc in enumerate(trace)
            if target.instructions[pc].writes is not None
        ]
        sdc = 0
        detected = 0
        for _ in range(n_trials):
            cycle, rd = windows[rng.integers(len(windows))]
            bit = int(rng.integers(0, 32))
            cpu = CPU(target, max_cycles=4 * golden_cycles + 1000)
            try:
                result = cpu.run(fault=(cycle, f"reg{rd}", bit))
            except (CrashError, TimeoutError):
                continue
            if result.memory.get(DETECTION_FLAG_ADDR, 0) == DETECTION_FLAG_VALUE:
                detected += 1
            elif result.output(program.output_range) != base_golden.output(
                program.output_range
            ):
                sdc += 1
        return sdc / n_trials, detected / n_trials

    sdc_base, _ = campaign(program, base_golden.cycles)
    sdc_prot, det_prot = campaign(protected_prog, prot_golden.cycles)
    return MeasuredProtection(
        program_name=program.name,
        baseline_cycles=base_golden.cycles,
        protected_cycles=prot_golden.cycles,
        sdc_rate_unprotected=sdc_base,
        sdc_rate_protected=sdc_prot,
        detection_rate=det_prot,
    )
