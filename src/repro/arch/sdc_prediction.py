"""Instruction-level SDC-proneness prediction with a GAT (ref [24]).

A program is modelled as a heterogeneous graph: nodes are instructions,
edges are typed relations — data dependence (edge type 0), control-flow
adjacency (type 1), and memory-region sharing (type 2).  Node features
combine the opcode one-hot with operand statistics.  Labels come from a
per-instruction fault-injection campaign (dominant outcome when faulting
the instruction's destination as it executes).  The trained model is
*inductive*: it predicts outcome proneness for instructions of programs
never seen in training.
"""

from __future__ import annotations

import numpy as np

from repro.arch.cpu import CPU
from repro.arch.fault_injection import FaultInjector, Outcome
from repro.arch.isa import BRANCH_OPS, MEMORY_OPS, Opcode
from repro.ml.gnn import Graph, GraphAttentionClassifier

# Node label classes, following [24]'s taxonomy.
LABELS = (Outcome.MASKED, Outcome.SDC, Outcome.CRASH, Outcome.HANG)
LABEL_INDEX = {o: i for i, o in enumerate(LABELS)}
_OPCODES = list(Opcode)


def instruction_node_features(instr):
    """Feature vector for one instruction node: opcode one-hot + structure."""
    onehot = [0.0] * len(_OPCODES)
    onehot[_OPCODES.index(instr.opcode)] = 1.0
    return onehot + [
        float(len(instr.reads)),
        1.0 if instr.writes is not None else 0.0,
        float(instr.opcode in BRANCH_OPS),
        float(instr.opcode in MEMORY_OPS),
        instr.imm / 64.0,
    ]


def build_instruction_graph(program, labels=None):
    """Program -> heterogeneous instruction graph.

    Edge types: 0 = data dependence (def -> use, nearest previous def),
    1 = sequential control flow plus branch targets, 2 = shared memory
    base register between memory instructions.
    """
    n = len(program.instructions)
    X = np.asarray([instruction_node_features(i) for i in program.instructions])
    edges = []
    types = []
    last_def = {}
    mem_users = {}
    for idx, instr in enumerate(program.instructions):
        # control-flow adjacency
        if idx + 1 < n and instr.opcode != Opcode.HALT:
            edges.append((idx, idx + 1))
            types.append(1)
        if instr.opcode in BRANCH_OPS:
            target = idx + 1 + instr.imm
            if 0 <= target < n:
                edges.append((idx, target))
                types.append(1)
        # data dependences
        for r in instr.reads:
            if r in last_def:
                edges.append((last_def[r], idx))
                types.append(0)
        if instr.writes is not None:
            last_def[instr.writes] = idx
        # memory-region sharing via base register
        if instr.opcode in MEMORY_OPS:
            base = instr.rs1
            for other in mem_users.get(base, []):
                edges.append((other, idx))
                types.append(2)
            mem_users.setdefault(base, []).append(idx)
    return Graph(X, edges, types, y=labels)


def label_instructions(program, n_trials_per_instruction=40, seed=0):
    """Per-instruction dominant fault outcome via targeted injection.

    For each instruction we inject into its destination register (or PC
    for branches) right after cycles where the golden run executed it.
    The label is the most frequent non-masked outcome, or MASKED when the
    majority of injections vanish.
    """
    injector = FaultInjector(program)
    rng = np.random.default_rng(seed)
    trace = injector.golden_pc_trace
    cycles_by_pc = {}
    for cycle, pc in enumerate(trace):
        cycles_by_pc.setdefault(pc, []).append(cycle)
    labels = []
    for idx, instr in enumerate(program.instructions):
        cycles = cycles_by_pc.get(idx)
        if not cycles:
            labels.append(LABEL_INDEX[Outcome.MASKED])  # dead code
            continue
        if instr.writes is not None:
            element = f"reg{instr.writes}"
        elif instr.opcode in BRANCH_OPS or instr.opcode == Opcode.HALT:
            element = "pc"
        else:
            element = "ir"
        counts = {o: 0 for o in LABELS}
        for _ in range(n_trials_per_instruction):
            # Inject right after this instruction executed so its result
            # (or the control decision) is what gets corrupted.
            cycle = int(rng.choice(cycles)) + 1
            bit = int(rng.integers(0, 32))
            record = injector.inject_one(cycle, element, bit)
            outcome = record.outcome
            if outcome == Outcome.SYMPTOM:
                outcome = Outcome.MASKED
            counts[outcome] += 1
        failures = {o: c for o, c in counts.items() if o != Outcome.MASKED}
        total_failures = sum(failures.values())
        if total_failures >= 0.25 * n_trials_per_instruction:
            dominant = max(failures, key=failures.get)
        else:
            dominant = Outcome.MASKED
        labels.append(LABEL_INDEX[dominant])
    return np.asarray(labels)


class SDCPredictor:
    """Inductive GAT classifier over instruction graphs."""

    def __init__(self, hidden=16, n_epochs=150, lr=0.05, seed=0,
                 n_trials_per_instruction=30):
        n_features = len(_OPCODES) + 5
        self.n_trials_per_instruction = n_trials_per_instruction
        self.seed = seed
        self._gat = GraphAttentionClassifier(
            hidden=hidden,
            n_classes=len(LABELS),
            n_edge_types=3,
            lr=lr,
            n_epochs=n_epochs,
            seed=seed,
        )
        self._n_features = n_features

    def fit(self, programs):
        """Label each training program by injection, then train the GAT."""
        graphs = []
        for i, program in enumerate(programs):
            labels = label_instructions(
                program,
                n_trials_per_instruction=self.n_trials_per_instruction,
                seed=self.seed + i,
            )
            graphs.append(build_instruction_graph(program, labels=labels))
        self._gat.fit(graphs)
        return self

    def predict(self, program):
        """Predicted outcome class index per instruction of an unseen program."""
        graph = build_instruction_graph(program)
        return self._gat.predict(graph)

    def predict_proba(self, program):
        graph = build_instruction_graph(program)
        return self._gat.predict_proba(graph)

    def sdc_prone_instructions(self, program, threshold=0.3):
        """Indices of instructions whose predicted SDC probability exceeds
        ``threshold`` — the replication candidates."""
        probs = self.predict_proba(program)
        sdc_col = LABEL_INDEX[Outcome.SDC]
        return [i for i, p in enumerate(probs[:, sdc_col]) if p > threshold]
