"""Transistor self-heating (SHE) model.

With confined 3D devices (nanosheet/ribbon FETs), switching power cannot
dissipate out of the channel and raises the channel temperature above the
chip temperature (Sec. II, Fig. 2).  The experienced SHE depends on the
device geometry (width, fins) *and* on the cell instance's operating
condition — input slew and output load — which is why per-instance SHE
estimation requires the Fig. 3 flow rather than a single per-cell-type
number.

Model: thermal ΔT = R_th * P_switching, with

* ``R_th`` growing with fin count (more confinement) and shrinking with
  width (more dissipation area),
* ``P`` proportional to drive current during the switching window, which
  lengthens with output load and input slew.
"""

from __future__ import annotations

import numpy as np

from repro.transistor.device import Transistor, saturation_current


class SelfHeatingModel:
    """Analytic SHE estimator for a transistor under a timing-arc condition.

    Parameters
    ----------
    r_th_base:
        Base thermal resistance (K per normalized power unit).
    confinement_per_fin:
        Extra fractional confinement per additional fin.
    """

    def __init__(self, r_th_base=28.0, confinement_per_fin=0.35):
        if r_th_base <= 0:
            raise ValueError("r_th_base must be positive")
        self.r_th_base = r_th_base
        self.confinement_per_fin = confinement_per_fin

    def thermal_resistance(self, transistor: Transistor) -> float:
        """Effective thermal resistance of the device channel."""
        confinement = 1.0 + self.confinement_per_fin * (transistor.n_fins - 1)
        area_relief = (transistor.width_nm / 100.0) ** 0.5
        return self.r_th_base * confinement / area_relief

    def delta_t(
        self,
        transistor: Transistor,
        input_slew_ps: float,
        load_cap_ff: float,
        activity: float = 1.0,
        vdd: float = 0.8,
    ) -> float:
        """Self-heating temperature rise (K above chip temperature).

        Parameters
        ----------
        input_slew_ps:
            Input transition time; slower slews keep the device in the
            high-current region longer (more short-circuit heating).
        load_cap_ff:
            Output load; larger loads lengthen the switching window.
        activity:
            Switching activity factor in [0, 1]; SHE scales with how often
            the device actually toggles.
        """
        if input_slew_ps < 0 or load_cap_ff < 0:
            raise ValueError("slew and load must be non-negative")
        activity = float(np.clip(activity, 0.0, 1.0))
        i_sat = saturation_current(transistor, vdd=vdd)
        # Switching-window energy ~ I * V * (t_slew-driven + load-driven terms);
        # saturating forms keep extreme conditions physical.
        slew_term = 1.0 - np.exp(-input_slew_ps / 40.0)
        load_term = 1.0 - np.exp(-load_cap_ff / 8.0)
        power = i_sat * vdd * (0.35 + 0.4 * slew_term + 0.55 * load_term)
        return float(self.thermal_resistance(transistor) * power * activity * 0.6)

    def cell_delta_t(
        self,
        transistors,
        input_slew_ps: float,
        load_cap_ff: float,
        activity: float = 1.0,
        vdd: float = 0.8,
    ) -> float:
        """Maximum SHE across a cell's transistors (what the SDF flow records)."""
        transistors = list(transistors)
        if not transistors:
            raise ValueError("cell must contain at least one transistor")
        return max(
            self.delta_t(t, input_slew_ps, load_cap_ff, activity, vdd)
            for t in transistors
        )
