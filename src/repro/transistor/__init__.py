"""Device-level models (Sec. II): delay, aging, and self-heating.

These analytic models stand in for the foundry's confidential
physics-based SPICE models.  They expose the same interfaces the upper
layers need — (operating condition -> delay / delta-Vth / temperature) —
with realistic nonlinearity and monotonic trends, so the characterization
and ML flows built on top of them exercise the same code paths as the
paper's flows did on proprietary decks.
"""

from repro.transistor.device import Transistor, alpha_power_delay
from repro.transistor.aging import (
    nbti_delta_vth,
    hci_delta_vth,
    combined_delta_vth,
    aged_transistor,
    waveform_duty_cycle,
)
from repro.transistor.self_heating import SelfHeatingModel

__all__ = [
    "Transistor",
    "alpha_power_delay",
    "nbti_delta_vth",
    "hci_delta_vth",
    "combined_delta_vth",
    "aged_transistor",
    "waveform_duty_cycle",
    "SelfHeatingModel",
]
