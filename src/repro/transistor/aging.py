"""BTI and HCI aging models: threshold-voltage shift over lifetime.

These play the role of the foundry's confidential, calibrated physics
models (Sec. II).  Functional forms follow the standard
reaction-diffusion / power-law empirical literature:

* NBTI:  dVth = A * duty^n1 * exp(-Ea/kT) * t^n  (recoverable fraction
  folded into the effective duty-cycle exponent)
* HCI:   dVth = B * f_sw * exp(V_dd/V0) * exp(-Ea/kT) * t^m

Both grow with stress time, temperature, and voltage — the trends the ML
and HDC mimic models must learn.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.transistor.device import Transistor

BOLTZMANN_EV = 8.617e-5  # eV/K

# Empirical coefficients chosen to give ~30-60 mV shifts over a 10-year
# lifetime at 125C, matching the magnitudes guardband studies assume.
NBTI_A = 3.5e-3
NBTI_TIME_EXPONENT = 0.16
NBTI_DUTY_EXPONENT = 0.5
NBTI_EA = 0.08  # eV, effective activation energy

HCI_B = 8e-6
HCI_TIME_EXPONENT = 0.45
HCI_V0 = 0.25
HCI_EA = 0.05


def _kelvin(temperature_c):
    return temperature_c + 273.15


def nbti_delta_vth(stress_time_s, duty_cycle, temperature_c, vdd=0.8):
    """NBTI threshold shift (V) after DC/AC stress.

    Parameters
    ----------
    stress_time_s:
        Accumulated stress time in seconds.
    duty_cycle:
        Fraction of time the PMOS gate is under stress (input low), 0..1.
    temperature_c:
        Channel temperature in Celsius (self-heating raises it).
    vdd:
        Stress voltage.
    """
    stress_time_s = np.asarray(stress_time_s, dtype=float)
    if np.any(stress_time_s < 0):
        raise ValueError("stress time must be non-negative")
    duty = np.clip(np.asarray(duty_cycle, dtype=float), 0.0, 1.0)
    obs.inc("transistor.aging.nbti_evals", int(np.size(stress_time_s)))
    t_k = _kelvin(np.asarray(temperature_c, dtype=float))
    arrhenius = np.exp(-NBTI_EA / (BOLTZMANN_EV * t_k))
    field = (vdd / 0.8) ** 2.0
    return (
        NBTI_A
        * field
        * duty**NBTI_DUTY_EXPONENT
        * arrhenius
        * stress_time_s**NBTI_TIME_EXPONENT
        * 14.0  # normalization so 10y/125C/duty 0.5 ~ 45 mV
    )


def hci_delta_vth(stress_time_s, switching_activity, temperature_c, vdd=0.8):
    """HCI threshold shift (V); grows with switching activity and VDD."""
    stress_time_s = np.asarray(stress_time_s, dtype=float)
    if np.any(stress_time_s < 0):
        raise ValueError("stress time must be non-negative")
    activity = np.clip(np.asarray(switching_activity, dtype=float), 0.0, 1.0)
    obs.inc("transistor.aging.hci_evals", int(np.size(stress_time_s)))
    t_k = _kelvin(np.asarray(temperature_c, dtype=float))
    arrhenius = np.exp(-HCI_EA / (BOLTZMANN_EV * t_k))
    return (
        HCI_B
        * activity
        * np.exp(vdd / HCI_V0)
        * arrhenius
        * stress_time_s**HCI_TIME_EXPONENT
    )


def combined_delta_vth(
    transistor: Transistor,
    stress_time_s,
    duty_cycle=0.5,
    switching_activity=0.1,
    temperature_c=25.0,
    vdd=0.8,
):
    """Total aging shift for a device: NBTI for PMOS, HCI for NMOS, both summed.

    PMOS devices experience NBTI under static stress plus a small HCI
    component; NMOS devices are dominated by HCI (PBTI is folded in as a
    30 % NBTI-like term, typical for high-k metal gates).
    """
    nbti = nbti_delta_vth(stress_time_s, duty_cycle, temperature_c, vdd)
    hci = hci_delta_vth(stress_time_s, switching_activity, temperature_c, vdd)
    if transistor.is_pmos:
        return nbti + 0.3 * hci
    return 0.3 * nbti + hci


def aged_transistor(
    transistor: Transistor,
    stress_time_s,
    duty_cycle=0.5,
    switching_activity=0.1,
    temperature_c=25.0,
    vdd=0.8,
) -> Transistor:
    """Return a copy of ``transistor`` with the aged threshold voltage."""
    shift = float(
        combined_delta_vth(
            transistor, stress_time_s, duty_cycle, switching_activity, temperature_c, vdd
        )
    )
    return transistor.with_vth_shift(shift)


def waveform_duty_cycle(waveform, threshold=0.4):
    """Stress duty cycle of a gate-voltage waveform (fraction below threshold).

    For PMOS NBTI the device is stressed while its gate is low; this
    helper extracts that statistic from sampled waveforms, which is the
    feature the HDC aging mimic (:class:`repro.hdc.HDCAgingModel`) learns
    implicitly.
    """
    waveform = np.asarray(waveform, dtype=float)
    if waveform.size == 0:
        raise ValueError("waveform must not be empty")
    return float(np.mean(waveform < threshold))
