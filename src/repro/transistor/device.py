"""Transistor abstraction and the alpha-power-law delay model.

The alpha-power law (Sakurai-Newton) gives gate delay as

    t_d = K * C_L * V_dd / (V_dd - V_th)^alpha

with alpha ~ 1.3 for short-channel devices.  It captures the first-order
dependency of delay on supply voltage, threshold voltage (hence aging),
and load capacitance that the characterization flows in
:mod:`repro.circuit` need.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

# Nominal 7 nm-class FinFET-ish parameters (arbitrary but self-consistent units).
NOMINAL_VDD = 0.8  # volts
NOMINAL_VTH = 0.30  # volts
ALPHA = 1.3
ROOM_TEMPERATURE = 25.0  # Celsius


@dataclass(frozen=True)
class Transistor:
    """A minimal transistor description for cell characterization.

    Attributes
    ----------
    width_nm:
        Effective channel width; wider devices drive more current.
    n_fins:
        Fin count for FinFET/nanosheet devices; scales drive and heat.
    vth:
        Threshold voltage in volts (shifted upward by aging).
    is_pmos:
        PMOS devices are NBTI-prone; NMOS devices are HCI-prone.
    """

    width_nm: float = 100.0
    n_fins: int = 2
    vth: float = NOMINAL_VTH
    is_pmos: bool = False

    def __post_init__(self):
        if self.width_nm <= 0:
            raise ValueError("width_nm must be positive")
        if self.n_fins < 1:
            raise ValueError("n_fins must be at least 1")
        if not 0.0 < self.vth < NOMINAL_VDD:
            raise ValueError("vth must lie strictly between 0 and VDD")

    @property
    def drive_strength(self) -> float:
        """Relative drive current, normalized to the nominal device."""
        return (self.width_nm / 100.0) * (self.n_fins / 2.0)

    def with_vth_shift(self, delta_vth: float) -> "Transistor":
        """A copy of this device with its threshold shifted by aging."""
        return replace(self, vth=self.vth + delta_vth)


def alpha_power_delay(
    transistor: Transistor,
    load_cap_ff: float,
    vdd: float = NOMINAL_VDD,
    temperature_c: float = ROOM_TEMPERATURE,
    alpha: float = ALPHA,
) -> float:
    """Gate delay (ps) of a transistor driving a capacitive load.

    Includes a first-order temperature dependence: carrier mobility
    degrades ~0.15 %/K above room temperature, which slows the device.
    This is where self-heating feeds back into timing.
    """
    if load_cap_ff <= 0:
        raise ValueError("load capacitance must be positive")
    if vdd <= transistor.vth:
        raise ValueError("VDD must exceed Vth for the device to switch")
    k = 0.69  # fitted scale constant, ps * V / fF at nominal drive
    base = k * load_cap_ff * vdd / (vdd - transistor.vth) ** alpha
    base /= transistor.drive_strength
    mobility_derate = 1.0 + 0.0015 * (temperature_c - ROOM_TEMPERATURE)
    return base * max(mobility_derate, 0.1)


def saturation_current(
    transistor: Transistor,
    vdd: float = NOMINAL_VDD,
    alpha: float = ALPHA,
) -> float:
    """Relative saturation current, the main driver of self-heating power."""
    if vdd <= transistor.vth:
        return 0.0
    return transistor.drive_strength * (vdd - transistor.vth) ** alpha
