"""repro — learning-oriented reliability improvement, transistor to application.

Reproduction of the DATE 2023 paper "Learning-Oriented Reliability
Improvement of Computing Systems From Transistor to Application Level".

Subpackages
-----------
``repro.ml``
    From-scratch numpy ML substrate (classical models, MLPs, GAT, k-means).
``repro.hdc``
    Hyperdimensional computing: robust classification and aging mimicry.
``repro.transistor``
    Device-level models: alpha-power delay, BTI/HCI aging, self-heating.
``repro.circuit``
    Standard cells, libraries, netlists, STA, characterization flows
    (including the SHE flow of the paper's Fig. 3).
``repro.arch``
    CPU simulator, fault injection, and the surveyed ML reliability
    techniques at the architecture level.
``repro.system``
    Multicore platform, power/thermal models, lifetime models, and
    RL-based dynamic reliability managers.
``repro.core``
    The paper's own contribution: the Fig. 1 learning loop and the
    Sec. V fault-tolerant timing-guaranteed system analysis (Figs. 5-6).
``repro.runtime``
    Shared parallel-execution layer: deterministic per-trial seed
    streams, process-pool campaign fan-out, on-disk result caching,
    and progress telemetry (see ``docs/campaigns.md``).
``repro.obs``
    Cross-layer observability: hierarchical tracing spans, a
    process-global metrics registry, and structured JSONL run records
    rendered by ``python -m repro report`` (see
    ``docs/observability.md``).
"""

__version__ = "1.1.0"
