"""Discrete-time multicore platform simulator.

Each step of ``dt`` seconds:

1. a manager (RL or baseline) may retune knobs — per-core V-f levels,
   power states, or the task-to-core assignment;
2. each core executes its assigned tasks' due jobs; jobs that cannot
   finish within their deadline at the current speed are deadline misses;
3. soft errors strike busy cores at the voltage-dependent SER; a struck
   job fails functionally;
4. power is computed and the thermal RC network integrates;
5. metrics accumulate (energy, misses, failures, temperatures, cycles).

The simulator is deliberately coarse (job-level, not cycle-level): what
the managers learn from are the *couplings* — DVFS ↔ SER ↔ execution
time ↔ temperature ↔ lifetime — which the step loop preserves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.system.power import total_power
from repro.system.reliability_models import combined_mttf
from repro.system.scheduler import load_per_core
from repro.system.ser import soft_error_rate
from repro.system.thermal import ThermalModel


@dataclass
class SimulationMetrics:
    """Accumulated results of one simulated mission window."""

    sim_time: float = 0.0
    energy_j: float = 0.0
    jobs_released: int = 0
    deadline_misses: int = 0
    soft_failures: int = 0
    peak_temperature_c: float = 0.0
    mean_temperature_c: float = 0.0
    mean_cycle_amplitude_k: float = 0.0
    mttf_years: float = 0.0

    @property
    def deadline_hit_rate(self):
        if self.jobs_released == 0:
            return 1.0
        return 1.0 - self.deadline_misses / self.jobs_released

    @property
    def functional_reliability(self):
        if self.jobs_released == 0:
            return 1.0
        return 1.0 - self.soft_failures / self.jobs_released


class Platform:
    """Cores + tasks + thermal network, stepped in dt increments."""

    def __init__(self, cores, task_set, assignment, dt=0.05, seed=0, ambient_c=40.0):
        self.cores = list(cores)
        self.task_set = task_set
        self.assignment = dict(assignment)
        self.dt = dt
        self.rng = np.random.default_rng(seed)
        self.thermal = ThermalModel(len(self.cores), ambient_c=ambient_c)
        self.time = 0.0
        self.metrics = SimulationMetrics()
        self._next_release = {t.name: 0.0 for t in task_set}

    def remap(self, assignment):
        """Install a new task-to-core assignment (migration knob)."""
        self.assignment = dict(assignment)

    def core_of(self, task):
        return self.cores[self.assignment[task.name]]

    def _release_jobs(self):
        """Jobs whose release time falls inside the current step."""
        due = []
        for task in self.task_set:
            while self._next_release[task.name] < self.time + self.dt:
                due.append(task)
                self._next_release[task.name] += task.period
        return due

    def step(self):
        """Advance the platform by one dt."""
        due_jobs = self._release_jobs()
        busy_time = np.zeros(len(self.cores))
        for task in due_jobs:
            self.metrics.jobs_released += 1
            core_idx = self.assignment[task.name]
            core = self.cores[core_idx]
            exec_time = core.scaled_wcet(task)
            if exec_time > task.deadline or not np.isfinite(exec_time):
                self.metrics.deadline_misses += 1
                exec_time = min(task.deadline, self.dt) if np.isfinite(exec_time) else 0.0
            else:
                # Soft error during the exposure window?
                rate = (
                    soft_error_rate(core.vf.voltage)
                    * core.vulnerability_factor
                    * task.vulnerability
                )
                if self.rng.random() < 1.0 - np.exp(-rate * exec_time):
                    self.metrics.soft_failures += 1
            busy_time[core_idx] += exec_time

        powers = []
        for idx, core in enumerate(self.cores):
            core.utilization = float(np.clip(busy_time[idx] / self.dt, 0.0, 1.0))
            core.temperature_c = float(self.thermal.temperatures[idx])
            powers.append(total_power(core))
        self.thermal.step(powers, self.dt)
        for idx, core in enumerate(self.cores):
            core.temperature_c = float(self.thermal.temperatures[idx])
        self.metrics.energy_j += float(np.sum(powers)) * self.dt
        self.time += self.dt
        self.metrics.sim_time = self.time

    def run(self, duration, manager=None, control_period=None):
        """Simulate ``duration`` seconds; the manager acts every control period."""
        control_period = control_period or (10 * self.dt)
        next_control = 0.0
        manager_name = type(manager).__name__ if manager is not None else "none"
        steps = 0
        with obs.span("system.platform.run", manager=manager_name):
            while self.time < duration:
                if manager is not None and self.time >= next_control:
                    manager.control(self)
                    obs.inc("system.managers.control_epochs")
                    next_control += control_period
                self.step()
                steps += 1
            self.finalize()
        obs.inc("system.platform.steps", steps)
        return self.metrics

    def finalize(self):
        """Fill in the derived lifetime/thermal metrics."""
        self.metrics.peak_temperature_c = self.thermal.peak_temperature()
        self.metrics.mean_temperature_c = self.thermal.mean_temperature()
        self.metrics.mean_cycle_amplitude_k = self.thermal.mean_cycle_amplitude()
        mttfs = []
        for idx, core in enumerate(self.cores):
            amp = self.thermal.mean_cycle_amplitude(idx)
            mttfs.append(
                float(
                    combined_mttf(
                        temperature_c=self.metrics.mean_temperature_c,
                        voltage=core.vf.voltage,
                        current_density=core.vf.voltage * core.vf.frequency / 2.2,
                        cycle_amplitude_k=max(amp, 0.5),
                        duty_cycle=0.5,
                        activity=core.utilization * 0.4 + 0.05,
                    )
                )
            )
        from repro.system.mttf import system_mttf

        self.metrics.mttf_years = system_mttf(mttfs)
