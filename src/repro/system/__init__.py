"""OS/application-level reliability management (Sec. IV).

Substrate: periodic tasks (:mod:`repro.system.task`), cores with discrete
V-f levels (:mod:`repro.system.core`), power and RC thermal models
(:mod:`repro.system.power`, :mod:`repro.system.thermal`), device-level
lifetime models (:mod:`repro.system.reliability_models`), soft-error-rate
vs voltage (:mod:`repro.system.ser`), and a discrete-time multicore
platform simulator (:mod:`repro.system.platform`).

Learning layer: tabular Q-learning (:mod:`repro.system.rl`) and the
surveyed dynamic reliability managers (:mod:`repro.system.managers`):
RL-DVFS availability/lifetime management ([1],[33],[43]), RL thermal
management via task migration ([39],[40],[44],[49]), NN-based MWTF task
mapping ([2], :mod:`repro.system.mwtf_mapping`), and adaptive replica
management ([45], :mod:`repro.system.replication_manager`).
"""

from repro.system.task import Task, TaskSet, generate_task_set
from repro.system.core import Core, VFLevel, DEFAULT_VF_LEVELS
from repro.system.power import dynamic_power, leakage_power, total_power
from repro.system.thermal import ThermalModel
from repro.system.reliability_models import (
    em_mttf,
    tddb_mttf,
    tc_mttf,
    nbti_mttf,
    hci_mttf,
    combined_mttf,
)
from repro.system.ser import soft_error_rate, task_failure_probability
from repro.system.mttf import system_mttf, availability
from repro.system.mwtf import mwtf
from repro.system.scheduler import edf_feasible, first_fit_partition, utilization
from repro.system.platform import Platform, SimulationMetrics
from repro.system.rl import QLearningAgent, Discretizer
from repro.system.managers import (
    RLDVFSManager,
    PerCoreRLDVFSManager,
    RLThermalManager,
    MigrationThermalManager,
    StaticManager,
    RandomManager,
    GreedyThermalManager,
    run_managed_simulation,
)
from repro.system.mwtf_mapping import MWTFMappingStudy
from repro.system.replication_manager import AdaptiveReplicationManager, ReplicationEnvironment
from repro.system.dpm import ConsolidationDPMManager
from repro.system.mixed_criticality import (
    MCWorkload,
    MCTask,
    LearnedController,
    OptimisticController,
    PessimisticController,
    generate_lo_tasks,
    run_mc_simulation,
)

__all__ = [
    "Task",
    "TaskSet",
    "generate_task_set",
    "Core",
    "VFLevel",
    "DEFAULT_VF_LEVELS",
    "dynamic_power",
    "leakage_power",
    "total_power",
    "ThermalModel",
    "em_mttf",
    "tddb_mttf",
    "tc_mttf",
    "nbti_mttf",
    "hci_mttf",
    "combined_mttf",
    "soft_error_rate",
    "task_failure_probability",
    "system_mttf",
    "availability",
    "mwtf",
    "edf_feasible",
    "first_fit_partition",
    "utilization",
    "Platform",
    "SimulationMetrics",
    "QLearningAgent",
    "Discretizer",
    "RLDVFSManager",
    "PerCoreRLDVFSManager",
    "RLThermalManager",
    "MigrationThermalManager",
    "StaticManager",
    "RandomManager",
    "GreedyThermalManager",
    "run_managed_simulation",
    "MWTFMappingStudy",
    "AdaptiveReplicationManager",
    "ReplicationEnvironment",
    "ConsolidationDPMManager",
    "MCWorkload",
    "MCTask",
    "LearnedController",
    "OptimisticController",
    "PessimisticController",
    "generate_lo_tasks",
    "run_mc_simulation",
]
