"""Tabular Q-learning for the reliability managers (Fig. 1 loop).

The paper's Fig. 1 casts reliability management as an agent observing
*states* (temperature, utilization, error rates), taking *actions*
(knob settings), and maximizing a *reward* built from resiliency models
(MTTF, SER, deadline misses).  A tabular epsilon-greedy Q-learner is the
lightweight choice the survey repeatedly recommends for run-time use.
"""

from __future__ import annotations

import numpy as np


class Discretizer:
    """Maps a continuous observation vector to a discrete state tuple."""

    def __init__(self, bins_per_dim):
        """``bins_per_dim`` is a list of bin-edge arrays, one per dimension."""
        self.edges = [np.asarray(e, dtype=float) for e in bins_per_dim]
        for e in self.edges:
            if np.any(np.diff(e) <= 0):
                raise ValueError("bin edges must be strictly increasing")

    def __call__(self, observation):
        observation = np.asarray(observation, dtype=float)
        if observation.shape != (len(self.edges),):
            raise ValueError(
                f"expected {len(self.edges)} dims, got {observation.shape}"
            )
        return tuple(
            int(np.searchsorted(edges, x)) for edges, x in zip(self.edges, observation)
        )

    @property
    def n_states_per_dim(self):
        return [len(e) + 1 for e in self.edges]


class QLearningAgent:
    """Epsilon-greedy tabular Q-learning with decaying exploration."""

    def __init__(
        self,
        n_actions,
        alpha=0.2,
        gamma=0.9,
        epsilon=0.3,
        epsilon_decay=0.995,
        epsilon_min=0.02,
        seed=0,
    ):
        if n_actions < 1:
            raise ValueError("need at least one action")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if not 0 <= gamma < 1:
            raise ValueError("gamma must be in [0, 1)")
        self.n_actions = n_actions
        self.alpha = alpha
        self.gamma = gamma
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self.epsilon_min = epsilon_min
        self.rng = np.random.default_rng(seed)
        self.q = {}  # state tuple -> action-value array

    def _values(self, state):
        if state not in self.q:
            self.q[state] = np.zeros(self.n_actions)
        return self.q[state]

    def act(self, state, explore=True):
        """Pick an action; epsilon-greedy when exploring."""
        values = self._values(state)
        if explore and self.rng.random() < self.epsilon:
            return int(self.rng.integers(self.n_actions))
        best = np.flatnonzero(values == values.max())
        return int(self.rng.choice(best))

    def update(self, state, action, reward, next_state):
        """One Q-learning backup; also decays epsilon."""
        values = self._values(state)
        next_best = self._values(next_state).max()
        td_target = reward + self.gamma * next_best
        values[action] += self.alpha * (td_target - values[action])
        self.epsilon = max(self.epsilon * self.epsilon_decay, self.epsilon_min)

    @property
    def n_visited_states(self):
        return len(self.q)
