"""Lumped RC thermal model for a multicore die.

Each core is a thermal node with resistance to ambient and conductive
coupling to its neighbors; temperature evolves by forward-Euler
integration.  Tracks the statistics lifetime models need: peak
temperature, spatial gradients, and thermal cycles (for Coffin-Manson).
"""

from __future__ import annotations

import numpy as np


class ThermalModel:
    """RC network: ``C dT/dt = P - (T - T_amb)/R - sum_j (T - T_j)/R_c``."""

    def __init__(
        self,
        n_cores,
        ambient_c=40.0,
        r_core=8.0,  # K/W to ambient
        r_couple=20.0,  # K/W between adjacent cores
        c_core=0.25,  # J/K
    ):
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.n_cores = n_cores
        self.ambient_c = ambient_c
        self.r_core = r_core
        self.r_couple = r_couple
        self.c_core = c_core
        self.temperatures = np.full(n_cores, float(ambient_c))
        self.peak_history = [self.temperatures.copy()]
        self._cycle_state = np.zeros(n_cores)  # last extreme per core
        self._cycle_direction = np.zeros(n_cores)  # +1 heating, -1 cooling
        self.thermal_cycles = [[] for _ in range(n_cores)]  # delta-T of cycles

    def step(self, powers, dt):
        """Advance the network by ``dt`` seconds under per-core powers (W)."""
        powers = np.asarray(powers, dtype=float)
        if powers.shape != (self.n_cores,):
            raise ValueError("powers must have one entry per core")
        T = self.temperatures
        flow = (T - self.ambient_c) / self.r_core
        couple = np.zeros_like(T)
        for i in range(self.n_cores - 1):
            q = (T[i] - T[i + 1]) / self.r_couple
            couple[i] += q
            couple[i + 1] -= q
        dT = (powers - flow - couple) * dt / self.c_core
        new_T = T + dT
        self._track_cycles(T, new_T)
        self.temperatures = new_T
        self.peak_history.append(new_T.copy())
        return self.temperatures

    def _track_cycles(self, old, new):
        """Record temperature-swing amplitudes at direction reversals."""
        direction = np.sign(new - old)
        for i in range(self.n_cores):
            if direction[i] == 0:
                continue
            if self._cycle_direction[i] == 0:
                self._cycle_direction[i] = direction[i]
                self._cycle_state[i] = old[i]
            elif direction[i] != self._cycle_direction[i]:
                swing = abs(old[i] - self._cycle_state[i])
                if swing > 0.5:  # ignore numerical jitter
                    self.thermal_cycles[i].append(swing)
                self._cycle_state[i] = old[i]
                self._cycle_direction[i] = direction[i]

    # -- statistics --------------------------------------------------------------
    def peak_temperature(self):
        return float(np.max(np.stack(self.peak_history)))

    def mean_temperature(self):
        return float(np.mean(np.stack(self.peak_history)))

    def max_spatial_gradient(self):
        """Largest instantaneous temperature difference across the die."""
        hist = np.stack(self.peak_history)
        return float(np.max(hist.max(axis=1) - hist.min(axis=1)))

    def mean_cycle_amplitude(self, core=None):
        """Mean thermal-cycle swing (K); 0.0 when no full cycle occurred."""
        if core is not None:
            cycles = self.thermal_cycles[core]
        else:
            cycles = [c for per_core in self.thermal_cycles for c in per_core]
        if not cycles:
            return 0.0
        return float(np.mean(cycles))

    def cycle_count(self, core=None):
        if core is not None:
            return len(self.thermal_cycles[core])
        return sum(len(c) for c in self.thermal_cycles)
