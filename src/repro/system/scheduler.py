"""Scheduling utilities: EDF feasibility and partitioned assignment."""

from __future__ import annotations

from repro import obs


def utilization(tasks, speed=1.0):
    """Total utilization of ``tasks`` on a core of relative ``speed``."""
    if speed <= 0:
        raise ValueError("speed must be positive")
    return sum(t.wcet / speed / t.period for t in tasks)


def edf_feasible(tasks, speed=1.0):
    """EDF feasibility for implicit-deadline periodic tasks: U <= 1."""
    obs.inc("system.scheduler.edf_checks")
    return utilization(tasks, speed) <= 1.0 + 1e-12


def first_fit_partition(task_set, cores):
    """First-fit-decreasing partition of tasks onto cores under EDF.

    Returns a mapping task name -> core index, or raises if infeasible.
    Core speeds account for heterogeneous throughput at max frequency.
    """
    bins = [[] for _ in cores]
    order = sorted(task_set, key=lambda t: -t.utilization)
    for task in order:
        placed = False
        for idx, core in enumerate(cores):
            candidate = bins[idx] + [task]
            if edf_feasible(candidate, speed=core.speed_factor):
                bins[idx].append(task)
                placed = True
                break
        if not placed:
            raise ValueError(f"task {task.name} does not fit on any core")
    assignment = {}
    for idx, tasks in enumerate(bins):
        for task in tasks:
            assignment[task.name] = idx
    obs.inc("system.scheduler.partitions")
    obs.inc("system.scheduler.placements", len(assignment))
    return assignment


def load_per_core(task_set, cores, assignment):
    """Utilization each core carries under an assignment (at max frequency)."""
    loads = [0.0] * len(cores)
    for task in task_set:
        idx = assignment[task.name]
        loads[idx] += task.wcet / cores[idx].speed_factor / task.period
    return loads
