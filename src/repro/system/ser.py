"""Soft-error rate vs supply voltage, and task failure probability.

Lowering V-f saves energy and heat but raises the transient-fault rate
exponentially (the critical-charge effect) *and* stretches execution time
— the functional-reliability tension Sec. IV revolves around:

    SER(V) = SER0 * 10^((V_nom - V) / S)

with S the voltage sensitivity (volts per decade).  The probability a
task executes without a corrupting soft error is

    P_ok = exp(-SER * AVF * t_exec)
"""

from __future__ import annotations

import numpy as np

SER0 = 1e-6  # raw faults per second at nominal voltage (accelerated scale)
V_NOM = 1.0
SENSITIVITY = 0.35  # volts per decade of SER


def soft_error_rate(voltage, ser0=SER0, sensitivity=SENSITIVITY):
    """Raw soft-error rate (faults/s) at a given supply voltage."""
    if np.any(np.asarray(voltage) <= 0):
        raise ValueError("voltage must be positive")
    return ser0 * 10.0 ** ((V_NOM - np.asarray(voltage, dtype=float)) / sensitivity)


def task_failure_probability(task, voltage, execution_time, vulnerability_factor=1.0):
    """Probability that a soft error corrupts one job of ``task``.

    ``execution_time`` is the job's wall-clock time at the chosen V-f
    (longer at lower frequency — the second reliability penalty of DVFS).
    """
    if execution_time < 0:
        raise ValueError("execution time must be non-negative")
    rate = soft_error_rate(voltage) * task.vulnerability * vulnerability_factor
    return float(1.0 - np.exp(-rate * execution_time))


def expected_failures(task_set, core, dt):
    """Expected soft-error task failures on ``core`` during ``dt`` seconds."""
    rate = soft_error_rate(core.vf.voltage) * core.vulnerability_factor
    busy_fraction = core.utilization
    mean_vulnerability = (
        float(np.mean([t.vulnerability for t in task_set])) if len(task_set) else 0.0
    )
    return rate * mean_vulnerability * busy_fraction * dt
