"""NN-based MWTF-maximizing task mapping on heterogeneous cores (ref [2]).

[2] trains a neural network to estimate the vulnerability factor of each
(task, core) pairing on a heterogeneous multicore, then maps tasks to
maximize mean workload to failure — balancing performance (shorter
exposure) against vulnerability (lower AVF cores).

Substrate: cores differ in speed and microarchitectural vulnerability; a
task's *effective* AVF on a core is a nonlinear ground-truth function of
task traits and core traits (profiled by fault injection in [2],
synthesized here).  The NN learns that function from labelled pairings;
mapping uses predicted AVF inside the MWTF objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.system.core import Core, DEFAULT_VF_LEVELS
from repro.system.mwtf import mapping_mwtf
from repro.system.scheduler import edf_feasible
from repro.ml.mlp import MLPRegressor
from repro.ml.preprocessing import StandardScaler


def make_heterogeneous_cores(n_big=2, n_little=2, seed=0):
    """A big.LITTLE-style platform: fast/vulnerable vs slow/robust cores."""
    rng = np.random.default_rng(seed)
    cores = []
    for i in range(n_big):
        # Big cores: wide OoO structures expose far more state to strikes.
        cores.append(
            Core(
                core_id=i,
                vf_levels=DEFAULT_VF_LEVELS,
                speed_factor=float(rng.uniform(1.3, 1.5)),
                vulnerability_factor=float(rng.uniform(2.6, 3.4)),
            )
        )
    for i in range(n_little):
        cores.append(
            Core(
                core_id=n_big + i,
                vf_levels=DEFAULT_VF_LEVELS,
                speed_factor=float(rng.uniform(0.7, 0.9)),
                vulnerability_factor=float(rng.uniform(0.4, 0.7)),
            )
        )
    return cores


def _true_pair_avf(task, core, rng=None):
    """Hidden ground truth: effective AVF of running ``task`` on ``core``.

    Mixes task-intrinsic vulnerability with core susceptibility, with a
    saturating interaction (highly vulnerable task on a highly vulnerable
    core does not multiply unboundedly).
    """
    raw = task.vulnerability * core.vulnerability_factor
    interaction = 0.15 * np.tanh(task.utilization * core.speed_factor)
    value = 1.0 - np.exp(-(raw + interaction))
    if rng is not None:
        value = float(np.clip(value + rng.normal(0, 0.02), 0.0, 1.0))
    return float(value)


def _pair_features(task, core):
    return [
        task.vulnerability,
        task.utilization,
        task.wcet,
        task.period,
        core.speed_factor,
        core.vulnerability_factor,
        core.vf.voltage,
    ]


@dataclass
class MappingResult:
    strategy: str
    assignment: dict
    mwtf: float
    makespan_utilization: float  # max per-core utilization (perf proxy)


class MWTFMappingStudy:
    """Train the pair-AVF NN and compare mapping strategies."""

    def __init__(self, cores, seed=0):
        self.cores = list(cores)
        self.seed = seed
        self._model = None
        self._scaler = None

    # -- NN vulnerability estimation ------------------------------------------
    def train(self, training_tasks, n_noise_repeats=3):
        """Learn (task, core) -> AVF from profiled pairings."""
        rng = np.random.default_rng(self.seed)
        X = []
        y = []
        for task in training_tasks:
            for core in self.cores:
                for _ in range(n_noise_repeats):
                    X.append(_pair_features(task, core))
                    y.append(_true_pair_avf(task, core, rng))
        X = np.asarray(X)
        y = np.asarray(y)
        self._scaler = StandardScaler().fit(X)
        self._model = MLPRegressor(hidden=(32, 16), n_epochs=600, lr=3e-3, seed=self.seed)
        self._model.fit(self._scaler.transform(X), y)
        return self

    def predicted_avf(self, task, core):
        if self._model is None:
            raise RuntimeError("study is not trained")
        x = self._scaler.transform(np.asarray([_pair_features(task, core)]))
        return float(np.clip(self._model.predict(x)[0], 1e-3, 1.0))

    def estimation_error(self, tasks):
        """Mean absolute AVF estimation error over (task, core) pairs."""
        errs = []
        for task in tasks:
            for core in self.cores:
                errs.append(
                    abs(self.predicted_avf(task, core) - _true_pair_avf(task, core))
                )
        return float(np.mean(errs))

    # -- mapping strategies -----------------------------------------------------
    def _greedy_assign(self, task_set, score):
        """Greedy utilization-feasible assignment maximizing ``score(task, core)``."""
        bins = [[] for _ in self.cores]
        assignment = {}
        for task in sorted(task_set, key=lambda t: -t.utilization):
            ranked = sorted(
                range(len(self.cores)), key=lambda i: -score(task, self.cores[i])
            )
            placed = False
            for idx in ranked:
                if edf_feasible(bins[idx] + [task], speed=self.cores[idx].speed_factor):
                    bins[idx].append(task)
                    assignment[task.name] = idx
                    placed = True
                    break
            if not placed:
                raise ValueError(f"task {task.name} does not fit anywhere")
        return assignment

    def _result(self, task_set, assignment, strategy):
        loads = [0.0] * len(self.cores)
        for task in task_set:
            idx = assignment[task.name]
            loads[idx] += task.wcet / self.cores[idx].speed_factor / task.period
        # MWTF under the *true* AVF (evaluation is against ground truth).
        true_mwtf = self._ground_truth_mwtf(task_set, assignment)
        return MappingResult(
            strategy=strategy,
            assignment=assignment,
            mwtf=true_mwtf,
            makespan_utilization=max(loads),
        )

    def _ground_truth_mwtf(self, task_set, assignment):
        from repro.system.ser import soft_error_rate

        total_rate = 0.0
        total_work = 0.0
        for task in task_set:
            core = self.cores[assignment[task.name]]
            avf = _true_pair_avf(task, core)
            t_exec = core.scaled_wcet(task)
            rate = soft_error_rate(core.vf.voltage) * avf * t_exec
            jobs_per_s = 1.0 / task.period
            total_work += jobs_per_s
            total_rate += jobs_per_s * rate
        return total_work / max(total_rate, 1e-30)

    def map_performance_only(self, task_set):
        """Baseline: fastest-core-first (ignores vulnerability)."""
        assignment = self._greedy_assign(task_set, lambda t, c: c.speed_factor)
        return self._result(task_set, assignment, "performance")

    def map_mwtf_nn(self, task_set):
        """[2]: NN-predicted AVF inside the MWTF score."""
        if self._model is None:
            raise RuntimeError("study is not trained")

        def score(task, core):
            avf = self.predicted_avf(task, core)
            t_exec = core.scaled_wcet(task)
            return 1.0 / max(avf * t_exec, 1e-12)

        assignment = self._greedy_assign(task_set, score)
        return self._result(task_set, assignment, "mwtf_nn")

    def map_mwtf_oracle(self, task_set):
        """Upper bound: true AVF inside the MWTF score."""

        def score(task, core):
            avf = _true_pair_avf(task, core)
            t_exec = core.scaled_wcet(task)
            return 1.0 / max(avf * t_exec, 1e-12)

        assignment = self._greedy_assign(task_set, score)
        return self._result(task_set, assignment, "mwtf_oracle")
