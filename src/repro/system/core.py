"""Core model with discrete V-f levels and power states."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VFLevel:
    """One DVFS operating point."""

    voltage: float  # volts
    frequency: float  # GHz

    def __post_init__(self):
        if self.voltage <= 0 or self.frequency <= 0:
            raise ValueError("voltage and frequency must be positive")


# A typical embedded DVFS ladder (V scales roughly with f).
DEFAULT_VF_LEVELS = (
    VFLevel(0.60, 0.6),
    VFLevel(0.70, 1.0),
    VFLevel(0.80, 1.4),
    VFLevel(0.90, 1.8),
    VFLevel(1.00, 2.2),
)

POWER_STATES = ("active", "idle", "sleep", "off")


class Core:
    """One processor core: V-f level, power state, and thermal node.

    The core is *heterogeneous-ready*: ``speed_factor`` scales throughput
    (big vs LITTLE) and ``vulnerability_factor`` scales its raw SER
    susceptibility (different microarchitectures expose different AVF,
    the effect [2] exploits).
    """

    def __init__(
        self,
        core_id,
        vf_levels=DEFAULT_VF_LEVELS,
        speed_factor=1.0,
        vulnerability_factor=1.0,
        ambient_c=40.0,
    ):
        if speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        self.core_id = core_id
        self.vf_levels = tuple(vf_levels)
        if not self.vf_levels:
            raise ValueError("need at least one V-f level")
        self.speed_factor = speed_factor
        self.vulnerability_factor = vulnerability_factor
        self.level_index = len(self.vf_levels) - 1  # boot at max
        self.power_state = "active"
        self.temperature_c = ambient_c
        self.utilization = 0.0

    @property
    def vf(self):
        return self.vf_levels[self.level_index]

    @property
    def nominal_frequency(self):
        return self.vf_levels[-1].frequency

    def set_level(self, index):
        if not 0 <= index < len(self.vf_levels):
            raise ValueError(f"V-f level {index} out of range")
        self.level_index = index

    def set_power_state(self, state):
        if state not in POWER_STATES:
            raise ValueError(f"unknown power state {state!r}")
        self.power_state = state

    def effective_speed(self):
        """Throughput relative to a nominal core at maximum frequency."""
        if self.power_state != "active":
            return 0.0
        return self.speed_factor * self.vf.frequency / self.nominal_frequency

    def scaled_wcet(self, task):
        """Execution time of ``task`` on this core at the current level."""
        speed = self.effective_speed()
        if speed <= 0:
            return float("inf")
        return task.wcet / speed
