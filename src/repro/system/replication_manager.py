"""Adaptive replica management under changing environments (ref [45]).

Fault-tolerant real-time systems replicate task executions; the right
replica count depends on the environment's fault rate, which drifts
(altitude, radiation, temperature).  A learning manager predicts the
current fault regime from noisy observations and sets the replica count,
balancing failure probability against the replication overhead — versus
static policies that are either wasteful or under-protected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.ensemble import RandomForestClassifier
from repro.ml.preprocessing import StandardScaler


class ReplicationEnvironment:
    """A drifting fault-rate environment with observable noisy symptoms.

    The hidden state is a fault-rate regime (0 = benign, 1 = elevated,
    2 = harsh); regimes persist and transition slowly.  Observations are
    noisy sensor features correlated with the regime (error-detector
    counts, temperature, altitude proxy).
    """

    REGIME_RATES = (0.002, 0.02, 0.12)  # per-job fault probability

    def __init__(self, seed=0, persistence=0.95):
        self.rng = np.random.default_rng(seed)
        self.persistence = persistence
        self.regime = 0

    def step(self):
        """Advance the hidden regime one epoch."""
        if self.rng.random() > self.persistence:
            self.regime = int(self.rng.integers(3))
        return self.regime

    def observe(self):
        """Noisy sensor vector correlated with the regime."""
        base = np.array(
            [
                0.5 + 1.2 * self.regime,  # corrected-error counter
                45.0 + 8.0 * self.regime,  # temperature
                0.2 + 0.3 * self.regime,  # radiation/altitude proxy
            ]
        )
        return base + self.rng.normal(0, [0.35, 2.5, 0.1])

    def job_fails(self, n_replicas):
        """True when all replicas of a majority-voted job are corrupted.

        With ``n`` replicas and per-replica fault probability ``p``, the
        job fails when a majority of replicas is corrupted.
        """
        p = self.REGIME_RATES[self.regime]
        faults = self.rng.random(n_replicas) < p
        return int(faults.sum()) > n_replicas // 2


@dataclass
class ReplicationMetrics:
    jobs: int = 0
    failures: int = 0
    replicas_executed: int = 0

    @property
    def failure_rate(self):
        return self.failures / max(self.jobs, 1)

    @property
    def overhead(self):
        """Mean replicas per job (1.0 = no replication)."""
        return self.replicas_executed / max(self.jobs, 1)


class AdaptiveReplicationManager:
    """Learns the regime from observations and adapts the replica count."""

    REPLICAS_PER_REGIME = (1, 3, 5)

    def __init__(self, seed=0):
        self.seed = seed
        self._clf = None
        self._scaler = None

    def train(self, env_factory, n_epochs=800):
        """Collect (observation, regime) pairs from a training environment."""
        env = env_factory()
        X = []
        y = []
        for _ in range(n_epochs):
            env.step()
            X.append(env.observe())
            y.append(env.regime)
        X = np.asarray(X)
        y = np.asarray(y)
        self._scaler = StandardScaler().fit(X)
        self._clf = RandomForestClassifier(n_estimators=12, max_depth=6, seed=self.seed)
        self._clf.fit(self._scaler.transform(X), y)
        return self

    def choose_replicas(self, observation):
        if self._clf is None:
            raise RuntimeError("manager is not trained")
        regime = int(
            self._clf.predict(self._scaler.transform(np.asarray([observation])))[0]
        )
        return self.REPLICAS_PER_REGIME[regime]

    @staticmethod
    def run_episode(env, policy, n_epochs=500, jobs_per_epoch=4):
        """Run a mission under a replica policy ``policy(observation) -> n``."""
        metrics = ReplicationMetrics()
        for _ in range(n_epochs):
            env.step()
            obs = env.observe()
            n_replicas = policy(obs)
            for _ in range(jobs_per_epoch):
                metrics.jobs += 1
                metrics.replicas_executed += n_replicas
                if env.job_fails(n_replicas):
                    metrics.failures += 1
        return metrics
