"""Core power model: dynamic switching power plus temperature-dependent leakage."""

from __future__ import annotations

import numpy as np

# Effective switched capacitance (nF-equivalent scale constant) and leakage
# coefficients tuned for watts-range embedded cores.
C_EFF = 1.1  # W / (V^2 * GHz) at full utilization
LEAK_K = 0.12  # W / V at reference temperature
LEAK_T_COEFF = 0.012  # 1/K exponential leakage growth
REFERENCE_T = 40.0

IDLE_POWER_FACTOR = {"active": 1.0, "idle": 0.3, "sleep": 0.05, "off": 0.0}


def dynamic_power(voltage, frequency, utilization=1.0):
    """Switching power ``C V^2 f u`` in watts."""
    if voltage <= 0 or frequency <= 0:
        raise ValueError("voltage and frequency must be positive")
    utilization = float(np.clip(utilization, 0.0, 1.0))
    return C_EFF * voltage**2 * frequency * utilization


def leakage_power(voltage, temperature_c):
    """Static power, exponential in temperature (the leakage-thermal loop)."""
    if voltage <= 0:
        raise ValueError("voltage must be positive")
    return LEAK_K * voltage * np.exp(LEAK_T_COEFF * (temperature_c - REFERENCE_T))


def total_power(core):
    """Current power draw of a :class:`repro.system.core.Core`."""
    factor = IDLE_POWER_FACTOR[core.power_state]
    if factor == 0.0:
        return 0.0
    p_dyn = dynamic_power(core.vf.voltage, core.vf.frequency, core.utilization)
    p_leak = leakage_power(core.vf.voltage, core.temperature_c)
    return factor * (p_dyn * (1.0 if core.power_state == "active" else 0.0) + p_leak)
